"""AST-based self-lint for the repro source tree.

``ruff`` covers style; this tool checks *project-specific* hazards the
generic linters don't know about:

* ``async-blocking`` — a blocking call (``time.sleep``, synchronous
  ``subprocess``/``socket`` entry points, direct file IO) in the body
  of an ``async def`` inside ``repro.serve``: the event loop stalls and
  every in-flight request stalls with it.  Blocking work belongs in the
  worker pool or behind ``loop.run_in_executor``.
* ``lock-across-await`` — a synchronous ``with <lock>:`` whose body
  awaits: the lock is held across a suspension point, so every other
  task that touches it deadlocks the loop (asyncio locks must be
  ``async with``; threading locks must never wrap an ``await``).
* ``bare-except`` — ``except:`` catches ``SystemExit``/
  ``KeyboardInterrupt`` and hides typos; catch ``Exception`` (or
  something narrower) instead.

Suppress a finding by appending ``# devlint: ignore[rule]`` (or a bare
``# devlint: ignore``) to the offending line.

Run as ``python -m tools.devlint [paths...]``; with no paths it checks
``src/repro``.  Exit status 1 when findings remain.
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path

#: Dotted call targets that block the calling thread.
BLOCKING_CALLS = {
    "time.sleep",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "socket.create_connection", "socket.getaddrinfo",
    "urllib.request.urlopen",
    "os.system", "os.waitpid",
}

#: Bare-name calls that block (builtins doing synchronous file IO).
BLOCKING_NAMES = {"open", "input"}

#: Attribute-call suffixes that do synchronous file IO regardless of
#: the receiver (pathlib mostly).
BLOCKING_ATTRS = {"read_text", "write_text", "read_bytes",
                  "write_bytes", "unlink", "mkdir", "rename"}

_IGNORE_RE = re.compile(r"#\s*devlint:\s*ignore(?:\[([a-z-]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One devlint diagnostic."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _mentions_lock(node: ast.AST) -> bool:
    """True when an expression's name chain looks like a lock."""
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None and "lock" in name.lower():
            return True
    return False


def _contains_await(nodes: list[ast.stmt]) -> ast.Await | None:
    """First Await in the statements, not crossing function bounds."""
    stack: list[ast.AST] = list(nodes)
    while stack:
        node = stack.pop(0)
        if isinstance(node, ast.Await):
            return node
        if isinstance(node, (ast.AsyncFunctionDef, ast.FunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return None


class _Checker(ast.NodeVisitor):
    def __init__(self, path: str, in_serve: bool):
        self.path = path
        self.in_serve = in_serve
        self.findings: list[Finding] = []
        self._async_depth = 0

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(self.path, getattr(node, "lineno", 0), rule,
                    message))

    # -- function nesting ------------------------------------------------
    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef):
        self._async_depth += 1
        self.generic_visit(node)
        self._async_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef):
        # A nested sync def runs outside the event loop turn; its
        # blocking calls are the executor's business, not ours.
        depth, self._async_depth = self._async_depth, 0
        self.generic_visit(node)
        self._async_depth = depth

    visit_Lambda = visit_FunctionDef

    # -- async-blocking --------------------------------------------------
    def visit_Call(self, node: ast.Call):
        if self.in_serve and self._async_depth > 0:
            target = _dotted(node.func)
            blocking = (
                target in BLOCKING_CALLS
                or (isinstance(node.func, ast.Name)
                    and node.func.id in BLOCKING_NAMES)
                or (isinstance(node.func, ast.Attribute)
                    and node.func.attr in BLOCKING_ATTRS))
            if blocking:
                what = target or getattr(node.func, "attr", "?")
                self._emit(node, "async-blocking",
                           f"blocking call {what}() inside async def; "
                           f"use the worker pool or run_in_executor")
        self.generic_visit(node)

    # -- lock-across-await -----------------------------------------------
    def visit_With(self, node: ast.With):
        if self._async_depth > 0 and any(
                _mentions_lock(item.context_expr)
                for item in node.items):
            awaited = _contains_await(node.body)
            if awaited is not None:
                self._emit(
                    node, "lock-across-await",
                    f"synchronous lock held across the await on line "
                    f"{awaited.lineno}; use 'async with' on an "
                    f"asyncio.Lock, or release before awaiting")
        self.generic_visit(node)

    # -- bare-except -----------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler):
        if node.type is None:
            self._emit(node, "bare-except",
                       "bare 'except:' swallows SystemExit and "
                       "KeyboardInterrupt; catch Exception instead")
        self.generic_visit(node)


def _suppressed(lines: list[str], finding: Finding) -> bool:
    if not 1 <= finding.line <= len(lines):
        return False
    match = _IGNORE_RE.search(lines[finding.line - 1])
    if match is None:
        return False
    rule = match.group(1)
    return rule is None or rule == finding.rule


def check_source(source: str, path: str = "<string>",
                 in_serve: bool | None = None) -> list[Finding]:
    """Devlint findings for one source text.

    ``in_serve`` controls the async-blocking check (it only applies to
    ``repro.serve`` modules); by default it is inferred from ``path``.
    """
    if in_serve is None:
        in_serve = "serve" in Path(path).parts
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 0, "syntax-error",
                        str(exc.msg))]
    checker = _Checker(path, in_serve)
    checker.visit(tree)
    lines = source.splitlines()
    return [f for f in checker.findings if not _suppressed(lines, f)]


def check_paths(paths: list[str | Path]) -> list[Finding]:
    findings: list[Finding] = []
    for root in paths:
        root = Path(root)
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            findings.extend(check_source(
                file.read_text(), str(file)))
    return findings


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    paths = args or ["src/repro"]
    findings = check_paths(paths)
    for finding in findings:
        print(finding.render())
    count = len(findings)
    print(f"devlint: {count} finding(s) in "
          f"{', '.join(str(p) for p in paths)}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
