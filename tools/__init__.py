"""Repository development tooling (not part of the repro package)."""
