"""Simulation-engine performance harness.

Times the three layers the fault-injection stack is built on and emits
``BENCH_sim.json`` so future changes have a trajectory to beat:

* **golden throughput** (vectors/sec): compiled tape vs the seed
  per-cube interpreter, on every generator-suite circuit;
* **campaign throughput** (fault-vectors/sec): the shared-golden
  batched campaign vs the seed engine (fresh vectors + interpreted
  golden + Python cone overlay per fault) and the per-fault tape mode;
* **end-to-end flow**: wall-clock of ``run_ced_flow`` on a subset of
  the suite.

Run as a script (no PYTHONPATH needed)::

    python benchmarks/bench_simperf.py            # full suite
    python benchmarks/bench_simperf.py --quick    # CI smoke run

The seed ("legacy") campaign is timed on a capped fault sample — its
throughput is per-fault constant, so the cap only bounds wall-clock.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

import numpy as np

from repro.bench.suite import TABLE2_SPECS, load_benchmark, tiny_benchmark
from repro.ced.flow import run_ced_flow
from repro.sim import WORD_BITS, BitSimulator, fault_list, run_campaign
from repro.sim.simulator import _popcount_unpackbits
from repro.synth import quick_map

DEFAULT_OUT = ROOT / "BENCH_sim.json"


def _time(fn, min_seconds: float = 0.2, max_reps: int = 50):
    """Run ``fn`` until ``min_seconds`` elapse; return seconds/call."""
    fn()  # warm-up
    reps = 0
    start = time.perf_counter()
    while True:
        fn()
        reps += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds or reps >= max_reps:
            return elapsed / reps


def _legacy_campaign(sim: BitSimulator, faults, n_words: int,
                     seed: int) -> int:
    """The seed engine, verbatim: fresh vectors per fault, interpreted
    golden, Python cone overlay, per-row OR, unpackbits popcount."""
    rng = np.random.default_rng(seed)
    error_runs = 0
    for fault in faults:
        pi_words = sim.random_inputs(rng, n_words)
        golden = sim.run_interpreted(pi_words)
        overlay = sim.run_fault(golden, fault.signal, fault.stuck)
        diff = sim.outputs_of(golden) ^ sim.faulty_outputs(golden,
                                                           overlay)
        if diff.any():
            any_error = np.zeros(n_words, dtype=np.uint64)
            for row in diff:
                any_error |= row
            error_runs += _popcount_unpackbits(any_error)
    return error_runs


def bench_circuit(name: str, circuit, n_words: int,
                  legacy_fault_cap: int) -> dict:
    mapped = quick_map(circuit)
    sim = BitSimulator(mapped)
    rng = np.random.default_rng(0)
    pi = sim.random_inputs(rng, n_words)
    vectors = n_words * WORD_BITS

    t_interp = _time(lambda: sim.run_interpreted(pi))
    t_tape = _time(lambda: sim.run(pi))

    faults = fault_list(mapped)
    legacy_faults = faults[:max(1, legacy_fault_cap)]
    t0 = time.perf_counter()
    _legacy_campaign(sim, legacy_faults, n_words, seed=2008)
    legacy_seconds = time.perf_counter() - t0
    legacy_fvps = len(legacy_faults) * vectors / legacy_seconds

    t0 = time.perf_counter()
    run_campaign(mapped, n_words=n_words, seed=2008,
                 faults=legacy_faults, vector_mode="per-fault")
    per_fault_seconds = time.perf_counter() - t0
    per_fault_fvps = len(legacy_faults) * vectors / per_fault_seconds

    t0 = time.perf_counter()
    run_campaign(mapped, n_words=n_words, seed=2008, faults=faults,
                 vector_mode="shared")
    shared_seconds = time.perf_counter() - t0
    shared_fvps = len(faults) * vectors / shared_seconds

    return {
        "gates": mapped.gate_count,
        "signals": len(sim.signals),
        "levels": sim.depth,
        "n_faults": len(faults),
        "golden": {
            "n_words": n_words,
            "interpreted_vectors_per_sec": round(vectors / t_interp),
            "tape_vectors_per_sec": round(vectors / t_tape),
            "speedup": round(t_interp / t_tape, 2),
        },
        "campaign": {
            "n_words": n_words,
            "legacy_interpreted": {
                "faults_timed": len(legacy_faults),
                "seconds": round(legacy_seconds, 3),
                "fault_vectors_per_sec": round(legacy_fvps),
            },
            "per_fault_tape": {
                "faults_timed": len(legacy_faults),
                "seconds": round(per_fault_seconds, 3),
                "fault_vectors_per_sec": round(per_fault_fvps),
            },
            "shared_batched": {
                "faults_timed": len(faults),
                "seconds": round(shared_seconds, 3),
                "fault_vectors_per_sec": round(shared_fvps),
            },
            "speedup_shared_vs_legacy": round(shared_fvps / legacy_fvps,
                                              1),
        },
    }


def bench_flows(names: list[str]) -> dict:
    flows = {}
    for name in names:
        if name == "tiny":
            net = tiny_benchmark()
        else:
            net = load_benchmark(name, table=2)
        t0 = time.perf_counter()
        result = run_ced_flow(net)
        flows[name] = {
            "seconds": round(time.perf_counter() - t0, 3),
            "ced_coverage_pct": round(result.coverage.coverage, 2),
        }
        print(f"  flow {name:8s} {flows[name]['seconds']:8.2f}s  "
              f"coverage {flows[name]['ced_coverage_pct']:.1f}%")
    return flows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small circuits only (CI smoke run)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--words", type=int, default=8,
                        help="words per vector block (x64 vectors)")
    parser.add_argument("--legacy-cap", type=int, default=300,
                        help="max faults timed with the seed engine")
    parser.add_argument("--no-flow", action="store_true",
                        help="skip end-to-end flow timing")
    args = parser.parse_args(argv)

    if args.quick:
        circuit_names = ["cmb", "cordic"]
        flow_names = ["tiny"]
    else:
        circuit_names = sorted(TABLE2_SPECS)
        flow_names = ["cmb", "cordic", "term1"]

    report = {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "quick": args.quick,
            "n_words": args.words,
        },
        "circuits": {},
    }
    for name in circuit_names:
        circuit = (tiny_benchmark() if name == "tiny"
                   else load_benchmark(name, table=2))
        entry = bench_circuit(name, circuit, args.words, args.legacy_cap)
        report["circuits"][name] = entry
        camp = entry["campaign"]
        print(f"{name:8s} {entry['gates']:5d} gates  "
              f"golden x{entry['golden']['speedup']:.1f}  "
              f"campaign {camp['shared_batched']['fault_vectors_per_sec']:>12,} fv/s  "
              f"x{camp['speedup_shared_vs_legacy']:.1f} vs legacy")

    if not args.no_flow:
        print("end-to-end run_ced_flow:")
        report["flows"] = bench_flows(flow_names)

    largest = max(report["circuits"],
                  key=lambda n: report["circuits"][n]["gates"])
    achieved = report["circuits"][largest]["campaign"][
        "speedup_shared_vs_legacy"]
    report["target"] = {
        "metric": "campaign fault_vectors_per_sec, shared vs legacy",
        "largest_circuit": largest,
        "required_speedup": 5.0,
        "achieved_speedup": achieved,
        "met": achieved >= 5.0,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"largest circuit {largest}: x{achieved} "
          f"({'PASS' if achieved >= 5.0 else 'FAIL'} vs required 5x)")
    print(f"wrote {args.out}")
    return 0 if achieved >= 5.0 else 1


if __name__ == "__main__":
    sys.exit(main())
