"""Error-constrained ALS benchmark: area saved vs error budget.

Runs every suite circuit through the CED flow under both registered
synthesis engines:

* **cube** — the paper's implication-exact iterative flow (the
  baseline; its area overhead is the number to beat);
* **resub** — the error-constrained resubstitution engine, swept over
  a ladder of ``er`` bounds.  Each run records the measured error, the
  evaluator tier that attested it (exhaustive / bdd / mc), and the
  area overhead of the resulting CED circuit, so the output shows how
  much area a given error budget buys.

Every resub error report must be *within* its bound — the run aborts
otherwise, making this script double as a regression gate for the
two-tier evaluator.

Run as a script (no PYTHONPATH needed)::

    python benchmarks/bench_als.py            # full suite
    python benchmarks/bench_als.py --quick    # CI smoke run
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.approx import ApproxConfig
from repro.bdd import bdd_engine
from repro.bench.suite import TABLE2_SPECS, load_benchmark, tiny_benchmark
from repro.ced.flow import run_ced_flow
from repro.flow import AnalysisContext

DEFAULT_OUT = ROOT / "BENCH_als.json"

FLOW_KW = dict(reliability_words=2, coverage_words=2, seed=2008)

#: The er budget ladder each circuit is swept over.
ER_BOUNDS = (0.01, 0.05, 0.10)


def _load(name: str):
    return tiny_benchmark() if name == "tiny" else load_benchmark(name)


def _flow(name: str, config: ApproxConfig):
    t0 = time.perf_counter()
    flow = run_ced_flow(_load(name), config=config,
                        ctx=AnalysisContext(enabled=False), **FLOW_KW)
    return time.perf_counter() - t0, flow


def bench_circuit(name: str, bounds) -> dict:
    network = _load(name)
    cube_seconds, cube_flow = _flow(
        name, ApproxConfig(seed=FLOW_KW["seed"]))
    cube_area = cube_flow.summary()["area_overhead_pct"]

    entry = {
        "inputs": len(network.inputs),
        "outputs": len(network.outputs),
        "nodes": network.num_nodes,
        "cube": {
            "area_overhead_pct": round(cube_area, 2),
            "seconds": round(cube_seconds, 3),
        },
        "resub": [],
    }
    for bound in bounds:
        config = ApproxConfig(engine="resub",
                              seed=FLOW_KW["seed"],
                              error={"metric": "er", "bound": bound})
        seconds, flow = _flow(name, config)
        report = flow.approx_result.error_report
        if not report["within"]:
            raise AssertionError(
                f"{name} @ er<={bound}: measured {report['value']} "
                f"exceeds the bound — evaluator regression")
        area = flow.summary()["area_overhead_pct"]
        entry["resub"].append({
            "error_bound": bound,
            "error_value": report["value"],
            "error_method": report["method"],
            "error_exact": report["exact"],
            "area_overhead_pct": round(area, 2),
            "area_saved_vs_cube_pct": round(cube_area - area, 2),
            "commits": report["commits"],
            "seconds": round(seconds, 3),
        })
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small circuits only (CI smoke run)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--circuits", nargs="*", default=None,
                        help="explicit circuit list (default: suite)")
    parser.add_argument("--bounds", nargs="*", type=float, default=None,
                        help=f"er bound ladder (default {ER_BOUNDS})")
    args = parser.parse_args(argv)

    if args.circuits:
        names = args.circuits
    elif args.quick:
        names = ["tiny", "cmb", "x1"]
    else:
        names = ["tiny"] + sorted(
            TABLE2_SPECS, key=lambda n: TABLE2_SPECS[n].target_gates)
    bounds = tuple(args.bounds) if args.bounds else ER_BOUNDS

    report = {
        "meta": {
            "python": platform.python_version(),
            "bdd_engine": bdd_engine(),
            "quick": bool(args.quick),
            "flow_kw": dict(FLOW_KW),
            "er_bounds": list(bounds),
        },
        "circuits": {},
    }
    for name in names:
        entry = bench_circuit(name, bounds)
        report["circuits"][name] = entry
        line = "  ".join(
            f"er<={r['error_bound']:g}: {r['area_overhead_pct']:6.1f}% "
            f"({r['error_method']})" for r in entry["resub"])
        print(f"{name:8s} cube {entry['cube']['area_overhead_pct']:6.1f}%"
              f"  {line}")

    args.out.write_text(json.dumps(report, indent=1, sort_keys=True)
                        + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
