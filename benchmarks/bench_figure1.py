"""Figure 1: the exact vs ODC cube-selection example.

Regenerates the three published selection outcomes on the reconstructed
example circuit and times the two cube-selection procedures.
"""

from repro.approx import NodeType, exact_select, odc_select
from repro.bench import figure1_network, figure1_selections

from _tables import TableWriter

_writer = TableWriter("figure1",
                      "Figure 1 — cube selection on the example circuit")


def test_figure1_selection_outcomes(benchmark):
    selections = benchmark.pedantic(figure1_selections, rounds=5,
                                    iterations=1)
    _writer.row(f"solution1 (exact, n2/n5 type 1): "
                f"{selections['solution1'].to_strings()}")
    _writer.row(f"solution2 (exact, +n4 type 1)  : "
                f"{sorted(selections['solution2'].to_strings())}")
    _writer.row(f"odc (same types as solution 1) : "
                f"{sorted(selections['odc'].to_strings())}")
    _writer.flush()

    assert selections["solution1"].to_strings() == ["1--"]
    assert sorted(selections["solution2"].to_strings()) == \
        ["--1", "1--"]
    assert "-11" in selections["odc"].to_strings()


def test_figure1_odc_strictly_richer(benchmark):
    net = figure1_network()
    sop = net.nodes["n5"].cover
    types = [NodeType.ONE, NodeType.DC, NodeType.DC]

    def both():
        return exact_select(sop, types), odc_select(sop, types)

    exact, odc = benchmark.pedantic(both, rounds=5, iterations=1)
    assert exact.implies(odc)
    assert not odc.implies(exact)
    # The ODC space covers strictly more minterm mass.
    assert odc.count_minterms() > exact.count_minterms()
