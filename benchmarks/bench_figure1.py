"""Figure 1: the exact vs ODC cube-selection example.

Regenerates the three published selection outcomes on the reconstructed
example circuit, as a single cached ``repro.lab`` job (manifest under
``results/runs/bench-figure1/``).
"""

import pytest

from repro.lab import Job
from repro.lab.tasks import figure1_task

from _tables import TableWriter, run_bench_jobs

_writer = TableWriter("figure1",
                      "Figure 1 — cube selection on the example circuit")


@pytest.fixture(scope="module")
def figure1_run():
    return run_bench_jobs([Job("figure1", figure1_task)],
                          "bench-figure1")


def test_figure1_selection_outcomes(figure1_run):
    record = figure1_run.value("figure1")
    _writer.row(f"solution1 (exact, n2/n5 type 1): "
                f"{record['solution1']}", key="0-solution1")
    _writer.row(f"solution2 (exact, +n4 type 1)  : "
                f"{record['solution2']}", key="1-solution2")
    _writer.row(f"odc (same types as solution 1) : "
                f"{sorted(record['odc'])}", key="2-odc")
    _writer.flush()

    assert record["solution1"] == ["1--"]
    assert record["solution2"] == ["--1", "1--"]
    assert "-11" in record["odc"]


def test_figure1_odc_strictly_richer(figure1_run):
    record = figure1_run.value("figure1")
    assert record["exact_implies_odc"]
    assert not record["odc_implies_exact"]
    # The ODC space covers strictly more minterm mass.
    assert record["odc_minterms"] > record["exact_minterms"]
