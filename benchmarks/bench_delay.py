"""Delay claims: zero performance penalty & slow parity predictors.

The paper reports the approximate logic circuit's critical path 38%
shorter than the original on average (hence non-intrusive CED with no
performance penalty), while single-bit parity prediction circuits are
51% slower.  This bench measures both deltas on the suite.
"""

import pytest

from repro.bench import load_benchmark
from repro.ced import run_ced_flow
from repro.ced.baselines.parity import build_parity_predictor
from repro.synth import quick_map

from _tables import (PAPER_TABLE2, TableWriter, campaign_words,
                     selected_suite)

_writer = TableWriter(
    "delay", "Delay vs original (paper: approx -38%, parity +51% avg)")

_deltas: dict[str, tuple[float, float]] = {}


@pytest.mark.parametrize("name", selected_suite())
def test_delay_row(benchmark, name):
    def run():
        net = load_benchmark(name)
        words = campaign_words(PAPER_TABLE2[name][0])
        flow = run_ced_flow(net, reliability_words=words,
                            coverage_words=1)
        predictor = quick_map(build_parity_predictor(net))
        return flow, predictor

    flow, predictor = benchmark.pedantic(run, rounds=1, iterations=1)
    base = flow.original_mapped.delay()
    approx_delta = 100.0 * (flow.approx_mapped.delay() - base) / base
    parity_delta = 100.0 * (predictor.delay() - base) / base
    _deltas[name] = (approx_delta, parity_delta)
    _writer.row(f"{name:<6} original {base:6.1f}  "
                f"approx {approx_delta:+6.1f}%  "
                f"parity predictor {parity_delta:+6.1f}%")
    _writer.flush()

    # Non-intrusive CED must not slow the circuit down: the check
    # symbol generator is never slower than the original.
    assert approx_delta <= 5.0
    # The parity predictor re-computes everything plus an XOR tree.
    assert parity_delta > approx_delta


def test_delay_averages(benchmark):
    def averages():
        approx = sum(d[0] for d in _deltas.values()) / len(_deltas)
        parity = sum(d[1] for d in _deltas.values()) / len(_deltas)
        return approx, parity

    if not _deltas:
        pytest.skip("per-circuit rows did not run")
    approx_avg, parity_avg = benchmark.pedantic(averages, rounds=1,
                                                iterations=1)
    _writer.row(f"AVERAGE approx {approx_avg:+.1f}% (paper -38%), "
                f"parity {parity_avg:+.1f}% (paper +51%)")
    _writer.flush()
    assert approx_avg < 0.0
    assert parity_avg > 0.0
