"""Ablations over the design choices DESIGN.md calls out.

* stage-1 strategy: conformance / significance / both (Sec 2.1.2 vs
  the free reduction of Sec 2.2);
* ODC-based repair on/off (the richer selection space);
* phase-aware request tiebreak on/off (paper-literal rule iii);
* correctness checking backend: BDD vs simulation;
* logic sharing on/off (Sec 3.1).
"""

import pytest

from repro.approx import ApproxConfig
from repro.bench import load_benchmark
from repro.ced import run_ced_flow

from _tables import TableWriter, campaign_words

_writer = TableWriter("ablation",
                      "Ablations on term1 (area% / approx% / cov%)")

CONFIGS = {
    "default(both)": ApproxConfig(),
    "stage1=conformance": ApproxConfig(stage1="conformance"),
    "stage1=significance": ApproxConfig(stage1="significance"),
    "no-odc-repair": ApproxConfig(odc_in_repair=False),
    "paper-literal-ruleiii": ApproxConfig(phase_aware_requests=False),
    "conservative-ex": ApproxConfig(conservative_ex=True),
    "no-dc-collapse": ApproxConfig(collapse_dc=False),
    "check=sim": ApproxConfig(check="sim"),
    "check=sat": ApproxConfig(check="sat"),
}

_results: dict[str, dict] = {}


@pytest.fixture(scope="module")
def circuit():
    return load_benchmark("term1")


@pytest.mark.parametrize("label", list(CONFIGS))
def test_ablation_point(benchmark, circuit, label):
    words = campaign_words(260)

    def run():
        return run_ced_flow(circuit, config=CONFIGS[label],
                            reliability_words=words,
                            coverage_words=words)

    flow = benchmark.pedantic(run, rounds=1, iterations=1)
    s = flow.summary()
    _results[label] = s
    _writer.row(f"{label:<22} area {s['area_overhead_pct']:5.1f}  "
                f"approx {s['approximation_pct']:5.1f}  "
                f"cov {s['ced_coverage_pct']:5.1f}  "
                f"(max {s['max_ced_coverage_pct']:.1f})")
    _writer.flush()
    assert 0.0 <= s["ced_coverage_pct"] <= 100.0


def test_sharing_ablation(benchmark, circuit):
    words = campaign_words(260)

    def run():
        plain = run_ced_flow(circuit, reliability_words=words,
                             coverage_words=words)
        shared = run_ced_flow(circuit, share_logic=True,
                              reliability_words=words,
                              coverage_words=words)
        return plain, shared

    plain, shared = benchmark.pedantic(run, rounds=1, iterations=1)
    ps, ss = plain.summary(), shared.summary()
    _writer.row(f"{'sharing=off':<22} area {ps['area_overhead_pct']:5.1f}"
                f"  cov {ps['ced_coverage_pct']:5.1f}")
    _writer.row(f"{'sharing=on':<22} area {ss['area_overhead_pct']:5.1f}"
                f"  cov {ss['ced_coverage_pct']:5.1f}  "
                f"(shared {int(ss['shared_gates'])} gates)")
    _writer.flush()
    assert ss["area_overhead_pct"] <= ps["area_overhead_pct"] + 1e-6


def test_ablation_relationships(benchmark):
    if len(_results) < len(CONFIGS):
        pytest.skip("ablation points did not all run")

    def analyze():
        default = _results["default(both)"]
        literal = _results["paper-literal-ruleiii"]
        conservative = _results["conservative-ex"]
        return default, literal, conservative

    default, literal, conservative = benchmark.pedantic(
        analyze, rounds=1, iterations=1)
    # Paper-literal rule (iii) types far more of the circuit EX: its
    # approximation is more faithful but the circuit is bigger.
    assert literal["approximation_pct"] >= \
        default["approximation_pct"] - 1.0
    assert literal["area_overhead_pct"] >= \
        default["area_overhead_pct"] - 1.0
    # Conservative EX likewise trades area for fidelity.
    assert conservative["approximation_pct"] >= \
        default["approximation_pct"] - 1.0
