"""Ablations over the design choices DESIGN.md calls out.

* stage-1 strategy: conformance / significance / both (Sec 2.1.2 vs
  the free reduction of Sec 2.2);
* ODC-based repair on/off (the richer selection space);
* phase-aware request tiebreak on/off (paper-literal rule iii);
* correctness checking backend: BDD vs simulation;
* logic sharing on/off (Sec 3.1).

The whole ablation grid runs as one ``repro.lab`` job graph — configs
are plain keyword-override dicts so every point is cacheable — with a
manifest under ``results/runs/bench-ablation/``.
"""

import pytest

from repro.lab import Job
from repro.lab.tasks import ced_flow_task

from _tables import TableWriter, campaign_words, run_bench_jobs

_writer = TableWriter("ablation",
                      "Ablations on term1 (area% / approx% / cov%)")

#: ApproxConfig keyword overrides per ablation point.
CONFIGS = {
    "default(both)": {},
    "stage1=conformance": {"stage1": "conformance"},
    "stage1=significance": {"stage1": "significance"},
    "no-odc-repair": {"odc_in_repair": False},
    "paper-literal-ruleiii": {"phase_aware_requests": False},
    "conservative-ex": {"conservative_ex": True},
    "no-dc-collapse": {"collapse_dc": False},
    "check=sim": {"check": "sim"},
    "check=sat": {"check": "sat"},
}

WORDS = campaign_words(260)


@pytest.fixture(scope="module")
def ablation_run():
    jobs = [Job(f"ablation/{label}", ced_flow_task,
                params={"circuit": "term1", "words": WORDS,
                        "seed": 2008,
                        "config": overrides or None})
            for label, overrides in CONFIGS.items()]
    jobs.append(Job("ablation/share-on", ced_flow_task,
                    params={"circuit": "term1", "words": WORDS,
                            "seed": 2008, "share_logic": True}))
    return run_bench_jobs(jobs, "bench-ablation")


@pytest.mark.parametrize("label", list(CONFIGS))
def test_ablation_point(ablation_run, label):
    s = ablation_run.value(f"ablation/{label}")["summary"]
    order = list(CONFIGS).index(label)
    _writer.row(f"{label:<22} area {s['area_overhead_pct']:5.1f}  "
                f"approx {s['approximation_pct']:5.1f}  "
                f"cov {s['ced_coverage_pct']:5.1f}  "
                f"(max {s['max_ced_coverage_pct']:.1f})",
                key=f"{order:02d}-{label}")
    _writer.flush()
    assert 0.0 <= s["ced_coverage_pct"] <= 100.0


def test_sharing_ablation(ablation_run):
    ps = ablation_run.value("ablation/default(both)")["summary"]
    shared = ablation_run.value("ablation/share-on")
    ss = shared["summary"]
    _writer.row(f"{'sharing=off':<22} area {ps['area_overhead_pct']:5.1f}"
                f"  cov {ps['ced_coverage_pct']:5.1f}",
                key="90-sharing")
    _writer.row(f"{'sharing=on':<22} area {ss['area_overhead_pct']:5.1f}"
                f"  cov {ss['ced_coverage_pct']:5.1f}  "
                f"(shared {int(ss['shared_gates'])} gates)",
                key="90-sharing")
    _writer.flush()
    assert ss["area_overhead_pct"] <= ps["area_overhead_pct"] + 1e-6


def test_ablation_relationships(ablation_run):
    default = ablation_run.value("ablation/default(both)")["summary"]
    literal = ablation_run.value(
        "ablation/paper-literal-ruleiii")["summary"]
    conservative = ablation_run.value(
        "ablation/conservative-ex")["summary"]
    # Paper-literal rule (iii) types far more of the circuit EX: its
    # approximation is more faithful but the circuit is bigger.
    assert literal["approximation_pct"] >= \
        default["approximation_pct"] - 1.0
    assert literal["area_overhead_pct"] >= \
        default["area_overhead_pct"] - 1.0
    # Conservative EX likewise trades area for fidelity.
    assert conservative["approximation_pct"] >= \
        default["approximation_pct"] - 1.0
