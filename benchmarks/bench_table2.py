"""Table 2: area-power overhead and CED coverage, all four schemes.

For every suite circuit this bench runs the proposed CED flow without
and with logic sharing, partial duplication [10] at a matched area
budget, and single-bit parity prediction, reporting the paper's columns
side by side.  The per-circuit scheme bundles run as one ``repro.lab``
job grid (parallel, cached, manifest under
``results/runs/bench-table2/``).  The headline shapes asserted here:

* parity prediction costs ~an order more area/power than approximate
  logic (paper: ~3x) while approximate logic stays below duplication
  for comparable coverage;
* logic sharing reduces area at <= tiny coverage cost;
* achieved coverage <= max coverage.

Set ``REPRO_BENCH_FULL=1`` to include frg2 and i10 (long).
"""

import pytest

from repro.lab import Job
from repro.lab.tasks import table2_schemes_task

from _tables import (PAPER_TABLE2, TableWriter, campaign_words,
                     run_bench_jobs, selected_suite)

_writer = TableWriter(
    "table2",
    "Table 2 — full circuits: measured (paper) per scheme")


@pytest.fixture(scope="module")
def table2_run():
    jobs = [Job(f"table2/{name}", table2_schemes_task,
                params={"circuit": name,
                        "words": campaign_words(PAPER_TABLE2[name][0])})
            for name in selected_suite()]
    return run_bench_jobs(jobs, "bench-table2")


@pytest.mark.parametrize("name", selected_suite())
def test_table2_row(table2_run, name):
    r = table2_run.value(f"table2/{name}")
    plain_s = r["plain"]["summary"]
    shared_s = r["shared"]["summary"]
    paper = PAPER_TABLE2[name]
    key = f"{selected_suite().index(name):02d}-{name}"
    _writer.row(
        f"{name:<6} gates {int(plain_s['gates']):>5}  "
        f"max {plain_s['max_ced_coverage_pct']:5.1f} ({paper[1]})",
        key=key)
    _writer.row(
        f"   no-share : area {plain_s['area_overhead_pct']:5.1f} "
        f"({paper[2]})  power {plain_s['power_overhead_pct']:5.1f} "
        f"({paper[3]})  cov {plain_s['ced_coverage_pct']:5.1f} "
        f"({paper[4]})", key=key)
    _writer.row(
        f"   sharing  : area {shared_s['area_overhead_pct']:5.1f} "
        f"({paper[5]})  cov {shared_s['ced_coverage_pct']:5.1f} "
        f"({paper[6]})", key=key)
    _writer.row(
        f"   pdup[10] : area {r['pdup_area']:5.1f} ({paper[7]})  "
        f"cov {r['pdup_cov']:5.1f} ({paper[8]})", key=key)
    _writer.row(
        f"   parity   : area {r['parity_area']:5.1f} ({paper[9]})  "
        f"power {r['parity_power']:5.1f} ({paper[10]})  "
        f"cov {r['parity_cov']:5.1f} ({paper[11]})", key=key)
    _writer.flush()

    # --- Shape assertions -------------------------------------------
    assert plain_s["ced_coverage_pct"] <= \
        plain_s["max_ced_coverage_pct"] + 8.0
    # Parity re-implements the circuit: far more area than the
    # approximate check symbol generator.
    assert r["parity_area"] > plain_s["area_overhead_pct"]
    # Sharing lowers area overhead and costs at most a little coverage.
    assert shared_s["area_overhead_pct"] <= \
        plain_s["area_overhead_pct"] + 1e-6
    assert shared_s["ced_coverage_pct"] >= \
        plain_s["ced_coverage_pct"] - 12.0
    # At a matched area budget, partial duplication does not beat the
    # proposed technique's coverage (the paper's headline comparison).
    assert r["pdup_cov"] <= plain_s["ced_coverage_pct"] + 10.0
