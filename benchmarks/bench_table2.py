"""Table 2: area-power overhead and CED coverage, all four schemes.

For every suite circuit this bench runs the proposed CED flow without
and with logic sharing, partial duplication [10] at a matched area
budget, and single-bit parity prediction, reporting the paper's columns
side by side.  The headline shapes asserted here:

* parity prediction costs ~an order more area/power than approximate
  logic (paper: ~3x) while approximate logic stays below duplication
  for comparable coverage;
* logic sharing reduces area at <= tiny coverage cost;
* achieved coverage <= max coverage.

Set ``REPRO_BENCH_FULL=1`` to include frg2 and i10 (long).
"""

import pytest

from repro.bench import load_benchmark
from repro.ced import (build_parity_ced, build_partial_duplication,
                       evaluate_ced, run_ced_flow)
from repro.sim import switching_activity

from _tables import (PAPER_TABLE2, TableWriter, campaign_words,
                     selected_suite)

_writer = TableWriter(
    "table2",
    "Table 2 — full circuits: measured (paper) per scheme")


def _run_circuit(name):
    net = load_benchmark(name)
    words = campaign_words(PAPER_TABLE2[name][0])
    plain = run_ced_flow(net, reliability_words=words,
                         coverage_words=words)
    shared = run_ced_flow(net, share_logic=True,
                          reliability_words=words, coverage_words=words)
    original = plain.original_mapped

    budget = max(plain.summary()["area_overhead_pct"], 5.0)
    pdup = build_partial_duplication(original, budget, n_words=words)
    pdup_cov = evaluate_ced(pdup, n_words=words, seed=11)
    pdup_gates = sum(1 for g in pdup.netlist.gates
                     if g.startswith("dup_"))

    parity = build_parity_ced(original, net)
    parity_cov = evaluate_ced(parity, n_words=words, seed=11)
    parity_gates = sum(1 for g in parity.netlist.gates
                       if g.startswith("pp_"))
    base_power = switching_activity(original, n_words=8)
    parity_power = switching_activity(parity.netlist, n_words=8)

    return {
        "plain": plain, "shared": shared,
        "pdup_area": 100 * pdup_gates / original.gate_count,
        "pdup_cov": pdup_cov.coverage,
        "parity_area": 100 * parity_gates / original.gate_count,
        "parity_power": 100 * (parity_power - base_power) / base_power,
        "parity_cov": parity_cov.coverage,
    }


@pytest.mark.parametrize("name", selected_suite())
def test_table2_row(benchmark, name):
    r = benchmark.pedantic(lambda: _run_circuit(name), rounds=1,
                           iterations=1)
    plain_s = r["plain"].summary()
    shared_s = r["shared"].summary()
    paper = PAPER_TABLE2[name]
    _writer.row(
        f"{name:<6} gates {int(plain_s['gates']):>5}  "
        f"max {plain_s['max_ced_coverage_pct']:5.1f} ({paper[1]})")
    _writer.row(
        f"   no-share : area {plain_s['area_overhead_pct']:5.1f} "
        f"({paper[2]})  power {plain_s['power_overhead_pct']:5.1f} "
        f"({paper[3]})  cov {plain_s['ced_coverage_pct']:5.1f} "
        f"({paper[4]})")
    _writer.row(
        f"   sharing  : area {shared_s['area_overhead_pct']:5.1f} "
        f"({paper[5]})  cov {shared_s['ced_coverage_pct']:5.1f} "
        f"({paper[6]})")
    _writer.row(
        f"   pdup[10] : area {r['pdup_area']:5.1f} ({paper[7]})  "
        f"cov {r['pdup_cov']:5.1f} ({paper[8]})")
    _writer.row(
        f"   parity   : area {r['parity_area']:5.1f} ({paper[9]})  "
        f"power {r['parity_power']:5.1f} ({paper[10]})  "
        f"cov {r['parity_cov']:5.1f} ({paper[11]})")
    _writer.flush()

    # --- Shape assertions -------------------------------------------
    assert plain_s["ced_coverage_pct"] <= \
        plain_s["max_ced_coverage_pct"] + 8.0
    # Parity re-implements the circuit: far more area than the
    # approximate check symbol generator.
    assert r["parity_area"] > plain_s["area_overhead_pct"]
    # Sharing lowers area overhead and costs at most a little coverage.
    assert shared_s["area_overhead_pct"] <= \
        plain_s["area_overhead_pct"] + 1e-6
    assert shared_s["ced_coverage_pct"] >= \
        plain_s["ced_coverage_pct"] - 12.0
    # At a matched area budget, partial duplication does not beat the
    # proposed technique's coverage (the paper's headline comparison).
    assert r["pdup_cov"] <= plain_s["ced_coverage_pct"] + 10.0
