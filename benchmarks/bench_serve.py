"""Load-test harness for the serve subsystem (``repro.serve``).

Spins up a real :class:`~repro.serve.CedService` (own event loop in a
background thread, port 0, sharded workers) and measures four things
through the actual HTTP wire format:

* **identity** — every Table 1/2 circuit plus ``tiny`` submitted
  through the server produces a flow summary bit-identical to a direct
  ``run_ced_flow`` call with the same parameters.  The service is a
  transport, never a different computation.
* **warm** — the largest circuit submitted twice: the repeat must be
  served from warm worker state (resumed passes / checkpoint hits) at
  least 10x faster than the cold run.
* **throughput** — sustained concurrent submissions of a warm small
  circuit; reports requests/s and p50/p99 end-to-end latency.
* **overload** — a burst at 2x queue capacity against a single-worker
  service: the excess must degrade via structured 429 backpressure
  (bounded queue, responsive health endpoint), never by queueing
  without bound or falling over.

Run as a script (no PYTHONPATH needed; must be a real file — spawned
workers re-import ``__main__``)::

    python benchmarks/bench_serve.py            # full suite
    python benchmarks/bench_serve.py --quick    # CI smoke run
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.approx import ApproxConfig
from repro.bench.suite import TABLE2_SPECS
from repro.ced.flow import run_ced_flow
from repro.lab.tasks import load_circuit
from repro.network import parse_blif, write_blif
from repro.serve import CedService, ServeClient, ServeConfig, ServeError

DEFAULT_OUT = ROOT / "BENCH_serve.json"

#: Parameters every submission (and its direct twin) uses.
WORDS = 1
SEED = 2008


class ServiceHandle:
    """One CedService on a private event loop in a daemon thread."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.service: CedService | None = None
        self.error: Exception | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main():
            self.service = CedService(self.config)
            try:
                await self.service.start()
            finally:
                self._ready.set()
            await self.service.stopped.wait()
        try:
            asyncio.run(main())
        except Exception as exc:
            self.error = exc
            self._ready.set()

    def start(self) -> ServeClient:
        self._thread.start()
        if not self._ready.wait(60) or self.error is not None:
            raise RuntimeError(f"service failed to start: {self.error}")
        return ServeClient(port=self.service.port, timeout=600.0)

    def stop(self) -> None:
        if self.service is not None and self._thread.is_alive():
            self.service.request_drain()
        self._thread.join(120)
        if self._thread.is_alive():
            raise RuntimeError("service did not drain")


def percentile(values: list[float], pct: float) -> float:
    ranked = sorted(values)
    index = min(len(ranked) - 1,
                max(0, round(pct / 100 * (len(ranked) - 1))))
    return ranked[index]


def bench_identity(client: ServeClient, names: list[str]) -> dict:
    """Submit every circuit; assert bit-identity with the direct flow."""
    report = {}
    for name in names:
        blif = write_blif(load_circuit(name, 2))
        t0 = time.perf_counter()
        doc = client.run(blif, words=WORDS, seed=SEED)
        wall = time.perf_counter() - t0
        # The direct twin parses the *same submitted text* — the
        # contract is that the service is a pure transport around
        # ``run_ced_flow`` on what the client sent.
        direct = run_ced_flow(parse_blif(blif),
                              config=ApproxConfig(seed=SEED),
                              reliability_words=WORDS,
                              coverage_words=WORDS, seed=SEED)
        if doc["result"]["summary"] != direct.summary():
            raise AssertionError(
                f"{name}: served flow diverged from the direct flow — "
                f"the service must be bit-identical")
        report[name] = {
            "gates": direct.summary()["gates"],
            "identical": True,
            "cold_flow_seconds": doc["stats"]["flow_seconds"],
            "request_seconds": round(wall, 3),
        }
        print(f"identity {name:8s} ok  "
              f"({report[name]['cold_flow_seconds']:.2f}s flow)")
    return report


def bench_warm(client: ServeClient, name: str, cold_seconds: float,
               floor: float | None = 10.0) -> dict:
    """Repeat the largest circuit: the warm rep must be >=``floor``x
    faster (``None`` skips the floor — quick mode's largest circuit is
    too small for a meaningful ratio)."""
    blif = write_blif(load_circuit(name, 2))
    doc = client.run(blif, words=WORDS, seed=SEED)
    stats = doc["stats"]
    if not stats["warm"]:
        raise AssertionError(
            f"{name}: repeat submission was not served warm")
    speedup = cold_seconds / max(stats["flow_seconds"], 1e-9)
    print(f"warm     {name:8s} {cold_seconds:.2f}s -> "
          f"{stats['flow_seconds']:.3f}s  x{speedup:.1f}  "
          f"({stats['resumed_passes']} passes resumed)")
    if floor is not None and speedup < floor:
        raise AssertionError(
            f"{name}: warm speedup x{speedup:.1f} below the "
            f"{floor:g}x floor")
    return {
        "circuit": name,
        "cold_flow_seconds": cold_seconds,
        "warm_flow_seconds": stats["flow_seconds"],
        "speedup": round(speedup, 1),
        "resumed_passes": stats["resumed_passes"],
        "warm": True,
    }


def bench_throughput(client: ServeClient, name: str, requests: int,
                     concurrency: int) -> dict:
    """Concurrent warm submissions; p50/p99 latency and requests/s."""
    blif = write_blif(load_circuit(name, 2))
    client.run(blif, words=WORDS, seed=SEED)     # ensure warm
    latencies: list[float] = []
    errors: list[str] = []
    lock = threading.Lock()
    per_thread = max(1, requests // concurrency)

    def storm():
        worker = ServeClient(port=client.port, timeout=600.0)
        for _ in range(per_thread):
            t0 = time.perf_counter()
            try:
                worker.run(blif, words=WORDS, seed=SEED)
            except Exception as exc:
                with lock:
                    errors.append(f"{type(exc).__name__}: {exc}")
                return
            with lock:
                latencies.append(time.perf_counter() - t0)

    threads = [threading.Thread(target=storm)
               for _ in range(concurrency)]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(600)
    elapsed = time.perf_counter() - t0
    if errors:
        raise AssertionError(f"throughput storm failed: {errors[:3]}")
    result = {
        "circuit": name,
        "requests": len(latencies),
        "concurrency": concurrency,
        "total_seconds": round(elapsed, 3),
        "throughput_rps": round(len(latencies) / elapsed, 2),
        "p50_ms": round(percentile(latencies, 50) * 1000, 1),
        "p99_ms": round(percentile(latencies, 99) * 1000, 1),
    }
    print(f"throughput {result['requests']} reqs x{concurrency}  "
          f"{result['throughput_rps']:.1f} req/s  "
          f"p50 {result['p50_ms']:.0f}ms  p99 {result['p99_ms']:.0f}ms")
    return result


def bench_overload(backend: str, state_dir: Path) -> dict:
    """Burst at 2x capacity: excess rejected via 429, health stays up."""
    capacity = 4
    handle = ServiceHandle(ServeConfig(
        port=0, workers=1, backend=backend,
        state_dir=str(state_dir), default_words=WORDS,
        max_queue=capacity, tenant_rate=10_000.0,
        tenant_burst=10_000.0))
    client = handle.start()
    blif = write_blif(load_circuit("tiny", 2))
    accepted, rejected = [], 0
    try:
        # words=4 keeps the single worker busy so the burst races the
        # queue bound, not the flow.
        for _ in range(2 * capacity + 1):
            try:
                accepted.append(client.submit(blif, words=4))
            except ServeError as err:
                if err.status != 429 \
                        or err.doc["error"] != "queue_full":
                    raise
                rejected += 1
        health = client.health()
        if health.get("status") != "ok":
            raise AssertionError(f"health degraded under load: {health}")
        for doc in accepted:
            state = client.wait(doc["job_id"], timeout=600)
            if state["state"] != "done":
                raise AssertionError(
                    f"accepted job ended {state['state']}")
        stats = client.stats()
    finally:
        handle.stop()
    if rejected == 0:
        raise AssertionError(
            "overload burst was never rejected — queue is unbounded")
    result = {
        "capacity": capacity,
        "submitted": 2 * capacity + 1,
        "accepted": len(accepted),
        "rejected_queue_full": rejected,
        "max_queue_depth": stats["queue"]["max_depth"],
        "healthz_under_load": "ok",
    }
    print(f"overload  {result['submitted']} submitted, "
          f"{result['accepted']} accepted, {rejected} rejected (429), "
          f"queue depth <= {result['max_queue_depth']}")
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small circuits only (CI smoke run)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--backend", choices=("process", "thread"),
                        default="process",
                        help="worker backend (default process)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--requests", type=int, default=40,
                        help="throughput-phase request count")
    parser.add_argument("--concurrency", type=int, default=4)
    args = parser.parse_args(argv)

    if args.quick:
        names = ["tiny", "cmb", "cordic"]
    else:
        names = ["tiny"] + sorted(
            TABLE2_SPECS, key=lambda n: TABLE2_SPECS[n].target_gates)
    warm_target = names[-1]

    with tempfile.TemporaryDirectory(prefix="bench_serve_") as tmp:
        tmp_path = Path(tmp)
        handle = ServiceHandle(ServeConfig(
            port=0, workers=args.workers, backend=args.backend,
            state_dir=str(tmp_path / "state"), default_words=WORDS,
            max_queue=64, tenant_rate=10_000.0,
            tenant_burst=10_000.0))
        client = handle.start()
        try:
            backend = handle.service.pool.backend
            identity = bench_identity(client, names)
            warm = bench_warm(
                client, warm_target,
                identity[warm_target]["cold_flow_seconds"],
                floor=None if args.quick else 10.0)
            throughput = bench_throughput(
                client, "tiny", args.requests, args.concurrency)
        finally:
            handle.stop()
        overload = bench_overload(args.backend,
                                  tmp_path / "overload_state")

    report = {
        "meta": {
            "python": platform.python_version(),
            "backend": backend,
            "workers": int(args.workers),
            "quick": bool(args.quick),
            "words": WORDS,
            "seed": SEED,
        },
        "identity": identity,
        "warm": warm,
        "throughput": throughput,
        "overload": overload,
    }
    args.out.write_text(json.dumps(report, indent=1, sort_keys=True)
                        + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
