"""Perf-regression gate over BENCH_flow.json.

Re-times the warm (cached) flow for the gate circuits on the current
machine and fails if any regressed more than ``--tolerance`` (default
20%) against the committed baseline.  Raw seconds are not comparable
across machines, so the allowance is scaled by a machine-speed factor
measured from the *uncached* runs::

    allowed = baseline_cached * (fresh_uncached / baseline_uncached)
                              * (1 + tolerance)

A machine twice as slow as the baseline box gets twice the budget; a
genuinely regressed warm path fails on both.

The gate also enforces a *static-discharge coverage floor* on the
fresh uncached run (see ``MIN_STATIC_DISCHARGE``): the static rung of
the proof ladder must keep resolving at least its floored share of PO
implication checks, so silently disabling or weakening the analyzer
fails CI even when timings look fine.

Run as a script (CI invokes it after the quick bench)::

    python benchmarks/bench_flowperf.py --circuits i10 --out /tmp/f.json
    python benchmarks/check_flow_regression.py --fresh /tmp/f.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
BASELINE = ROOT / "BENCH_flow.json"

#: Circuits the gate watches (the acceptance-critical warm paths).
GATE_CIRCUITS = ("i10",)

#: Minimum fraction of PO implication checks the static-discharge rung
#: must resolve in the *uncached* flow, per gated circuit.  This is a
#: coverage floor, not a perf number: if a change quietly disables the
#: static rung (or weakens its relational pass), the rate collapses and
#: the gate catches it even though wall-clock barely moves.
MIN_STATIC_DISCHARGE = {"i10": 0.15}


def check(baseline: dict, fresh: dict, tolerance: float,
          circuits=GATE_CIRCUITS) -> list[str]:
    """Return a list of failure messages (empty = gate passes)."""
    failures = []
    for name in circuits:
        base = baseline["circuits"].get(name)
        now = fresh["circuits"].get(name)
        if base is None:
            failures.append(f"{name}: missing from baseline")
            continue
        if now is None:
            failures.append(f"{name}: missing from fresh report")
            continue
        scale = now["uncached_seconds"] / base["uncached_seconds"]
        allowed = base["cached_seconds"] * scale * (1.0 + tolerance)
        if now["cached_seconds"] > allowed:
            failures.append(
                f"{name}: cached {now['cached_seconds']:.3f}s exceeds "
                f"allowed {allowed:.3f}s (baseline "
                f"{base['cached_seconds']:.3f}s, machine scale "
                f"x{scale:.2f}, tolerance {tolerance:.0%})")
        floor = MIN_STATIC_DISCHARGE.get(name)
        if floor is not None:
            static = now.get("static_discharge")
            if static is None:
                failures.append(
                    f"{name}: fresh report has no static_discharge "
                    f"record (regenerate with current "
                    f"bench_flowperf.py)")
            elif static["rate"] < floor:
                failures.append(
                    f"{name}: static discharge rate "
                    f"{static['rate']:.1%} "
                    f"({static['discharged']}/{static['attempts']} PO "
                    f"implications) below the {floor:.0%} floor")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, default=BASELINE,
                        help=f"committed baseline (default {BASELINE})")
    parser.add_argument("--fresh", type=Path, required=True,
                        help="freshly generated BENCH_flow.json")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed relative slowdown (default 0.20)")
    parser.add_argument("--circuits", nargs="*",
                        default=list(GATE_CIRCUITS),
                        help="circuits to gate on")
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())
    failures = check(baseline, fresh, args.tolerance, args.circuits)
    for message in failures:
        print(f"REGRESSION {message}", file=sys.stderr)
    if not failures:
        names = ", ".join(args.circuits)
        print(f"perf gate passed for {names} "
              f"(tolerance {args.tolerance:.0%})")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
