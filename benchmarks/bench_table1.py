"""Table 1: approximation percentage and CED coverage for output cones.

For each of the four single-output cones (i8, des, dalu, i10) the paper
reports area overhead, approximation percentage, and the maximum /
achieved CED coverage.  This bench regenerates those rows on the
generated stand-in cones and prints them next to the paper's values.
"""

import pytest

from repro.bench import load_benchmark
from repro.ced import run_ced_flow

from _tables import PAPER_TABLE1, TableWriter, campaign_words

CONES = ["i8", "des", "dalu", "i10"]

_writer = TableWriter(
    "table1", "Table 1 — single-output cones "
    "(measured | paper: area%, approx%, max cov%, achieved cov%)")


def _run_cone(name):
    net = load_benchmark(name, table=1)
    words = campaign_words(PAPER_TABLE1[name][0])
    return net, run_ced_flow(net, reliability_words=words,
                             coverage_words=words)


@pytest.mark.parametrize("name", CONES)
def test_table1_row(benchmark, name):
    net, flow = benchmark.pedantic(
        lambda: _run_cone(name), rounds=1, iterations=1)
    s = flow.summary()
    gates, p_area, p_apx, p_max, p_cov = PAPER_TABLE1[name]
    _writer.row(
        f"{name:<6} gates {int(s['gates']):>5} | measured: "
        f"area {s['area_overhead_pct']:5.1f}%  "
        f"approx {s['approximation_pct']:5.1f}%  "
        f"max {s['max_ced_coverage_pct']:5.1f}%  "
        f"cov {s['ced_coverage_pct']:5.1f}%"
        f"   | paper: area {p_area}%  approx {p_apx}%  "
        f"max {p_max}%  cov {p_cov}%")
    _writer.flush()

    # Shape assertions: the qualitative Table 1 relationships.
    assert s["ced_coverage_pct"] <= s["max_ced_coverage_pct"] + 8.0, \
        "achieved coverage cannot beat the direction-protection bound"
    assert s["approximation_pct"] > 50.0
    assert flow.approx_result.all_correct or \
        flow.approx_result.check_method == "sim"
    # Single-output cone: one checker, no TRC tree beyond it.
    assert len(flow.assembly.checker_pairs) == 1
