"""Table 1: approximation percentage and CED coverage for output cones.

For each of the four single-output cones (i8, des, dalu, i10) the paper
reports area overhead, approximation percentage, and the maximum /
achieved CED coverage.  The four rows run as one ``repro.lab`` job
grid — in parallel across worker processes, cached under
``.lab_cache/``, with a manifest at ``results/runs/bench-table1/`` —
and each test asserts on its row of the shared run.
"""

import pytest

from repro.lab import Job
from repro.lab.tasks import ced_flow_task

from _tables import (PAPER_TABLE1, TableWriter, campaign_words,
                     run_bench_jobs)

CONES = ["i8", "des", "dalu", "i10"]

_writer = TableWriter(
    "table1", "Table 1 — single-output cones "
    "(measured | paper: area%, approx%, max cov%, achieved cov%)")


def _cone_words(name: str) -> int:
    # Single-output cones are cheap to simulate; keep at least 4 words
    # so the shared-vector max/achieved coverage estimates are stable
    # enough for the bound assertion on the large cones.
    return max(campaign_words(PAPER_TABLE1[name][0]), 4)


@pytest.fixture(scope="module")
def table1_run():
    jobs = [Job(f"table1/{name}", ced_flow_task,
                params={"circuit": name, "table": 1,
                        "words": _cone_words(name),
                        "seed": 2008})
            for name in CONES]
    return run_bench_jobs(jobs, "bench-table1")


@pytest.mark.parametrize("name", CONES)
def test_table1_row(table1_run, name):
    record = table1_run.value(f"table1/{name}")
    s = record["summary"]
    gates, p_area, p_apx, p_max, p_cov = PAPER_TABLE1[name]
    _writer.row(
        f"{name:<6} gates {int(s['gates']):>5} | measured: "
        f"area {s['area_overhead_pct']:5.1f}%  "
        f"approx {s['approximation_pct']:5.1f}%  "
        f"max {s['max_ced_coverage_pct']:5.1f}%  "
        f"cov {s['ced_coverage_pct']:5.1f}%"
        f"   | paper: area {p_area}%  approx {p_apx}%  "
        f"max {p_max}%  cov {p_cov}%",
        key=f"{CONES.index(name):02d}-{name}")
    _writer.flush()

    # Shape assertions: the qualitative Table 1 relationships.
    assert s["ced_coverage_pct"] <= s["max_ced_coverage_pct"] + 8.0, \
        "achieved coverage cannot beat the direction-protection bound"
    assert s["approximation_pct"] > 50.0
    assert record["all_correct"] or record["check_method"] == "sim"
    # Single-output cone: one checker, no TRC tree beyond it.
    assert record["checker_pairs"] == 1
