"""Regenerate the committed lint SARIF baseline.

Runs the structural linter over every bundled benchmark circuit and
merges the per-circuit SARIF logs into one multi-run document at
``benchmarks/lint_baseline.sarif``.  CI's analyze-smoke job lints the
same circuits against this file and fails on any finding whose stable
fingerprint is not already recorded here — so the baseline freezes the
*known* findings (bundled benchmarks ship with dead cones, unread
fanins, and the like) while letting regressions surface as ``new``.

Regenerate after intentionally changing a lint rule or a benchmark::

    python benchmarks/make_lint_baseline.py
    git add benchmarks/lint_baseline.sarif
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.bench.suite import load_benchmark, tiny_benchmark
from repro.lint import lint_network, to_sarif, validate_sarif

DEFAULT_OUT = ROOT / "benchmarks" / "lint_baseline.sarif"

CIRCUITS = ("tiny", "cmb", "cordic", "term1", "x1", "i2", "frg2",
            "dalu", "i10")


def build_baseline(circuits=CIRCUITS) -> dict:
    runs = []
    for name in circuits:
        network = tiny_benchmark() if name == "tiny" \
            else load_benchmark(name)
        report = lint_network(network, circuit=name)
        doc = to_sarif(report)
        runs.extend(doc["runs"])
        print(f"{name:8s} {len(report.diagnostics):4d} finding(s)")
    merged = {
        "$schema": doc["$schema"],
        "version": doc["version"],
        "runs": runs,
    }
    problems = validate_sarif(merged)
    if problems:
        raise AssertionError(f"generated baseline invalid: {problems}")
    return merged


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)
    doc = build_baseline()
    args.out.write_text(json.dumps(doc, indent=2, sort_keys=True)
                        + "\n")
    total = sum(len(run["results"]) for run in doc["runs"])
    print(f"wrote {args.out} ({total} baselined findings, "
          f"{len(doc['runs'])} runs)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
