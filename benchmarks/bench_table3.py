"""Table 3: technology independence of CED coverage.

The same approximate logic function protects five different
technology-mapped implementations of each circuit (different synthesis
scripts and libraries); the paper shows coverage stays nearly constant.
This bench synthesizes the approximation once per circuit, re-maps the
original with each of the five scripts, and measures coverage spread.
"""

import pytest

from repro.approx import synthesize_approximation
from repro.bench import load_benchmark
from repro.ced import build_ced, evaluate_ced
from repro.reliability import analyze_reliability
from repro.synth import TABLE3_SCRIPTS, quick_map

from _tables import (PAPER_TABLE2, PAPER_TABLE3, TableWriter,
                     campaign_words, selected_suite)

_writer = TableWriter(
    "table3",
    "Table 3 — CED coverage across five mapped implementations "
    "(measured; paper row in parentheses)")

#: Keep Table 3 to mid-sized circuits unless the full suite is on.
CIRCUITS = [n for n in selected_suite() if n not in ("dalu",)] \
    + (["dalu"] if "dalu" in selected_suite() else [])


def _run_circuit(name):
    net = load_benchmark(name)
    words = campaign_words(PAPER_TABLE2[name][0])
    reliability = analyze_reliability(quick_map(net), n_words=words)
    approx = synthesize_approximation(net, reliability.approximations)
    coverages = []
    for script in TABLE3_SCRIPTS:
        original = script.run(net)
        approx_mapped = script.run(approx.approx)
        assembly = build_ced(original, approx_mapped,
                             reliability.approximations)
        result = evaluate_ced(assembly, n_words=words, seed=31)
        coverages.append(result.coverage)
    return coverages


@pytest.mark.parametrize("name", CIRCUITS)
def test_table3_row(benchmark, name):
    coverages = benchmark.pedantic(lambda: _run_circuit(name),
                                   rounds=1, iterations=1)
    paper = PAPER_TABLE3[name]
    measured = "  ".join(f"{c:5.1f}" for c in coverages)
    expected = "  ".join(f"{p:5.1f}" for p in paper)
    _writer.row(f"{name:<6} measured: {measured}")
    _writer.row(f"{'':<6} paper   : {expected}")
    spread = max(coverages) - min(coverages)
    _writer.row(f"{'':<6} spread  : {spread:.1f} points")
    _writer.flush()

    # Technology independence: coverage varies only a few points
    # across implementations (paper's spreads are <= ~10 points).
    assert spread <= 15.0, \
        f"coverage should be technology-independent, spread={spread:.1f}"
    assert all(c > 10.0 for c in coverages)
