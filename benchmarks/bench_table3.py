"""Table 3: technology independence of CED coverage.

The same approximate logic function protects five different
technology-mapped implementations of each circuit (different synthesis
scripts and libraries); the paper shows coverage stays nearly constant.
Each circuit's synthesize-once/re-map-five-ways bundle runs as one
``repro.lab`` job (parallel across circuits, cached, manifest under
``results/runs/bench-table3/``).
"""

import pytest

from repro.lab import Job
from repro.lab.tasks import table3_task

from _tables import (PAPER_TABLE2, PAPER_TABLE3, TableWriter,
                     campaign_words, run_bench_jobs, selected_suite)

_writer = TableWriter(
    "table3",
    "Table 3 — CED coverage across five mapped implementations "
    "(measured; paper row in parentheses)")

#: Keep Table 3 to mid-sized circuits unless the full suite is on.
CIRCUITS = [n for n in selected_suite() if n not in ("dalu",)] \
    + (["dalu"] if "dalu" in selected_suite() else [])


@pytest.fixture(scope="module")
def table3_run():
    jobs = [Job(f"table3/{name}", table3_task,
                params={"circuit": name,
                        "words": campaign_words(PAPER_TABLE2[name][0])})
            for name in CIRCUITS]
    return run_bench_jobs(jobs, "bench-table3")


@pytest.mark.parametrize("name", CIRCUITS)
def test_table3_row(table3_run, name):
    record = table3_run.value(f"table3/{name}")
    coverages = record["coverages"]
    paper = PAPER_TABLE3[name]
    measured = "  ".join(f"{c:5.1f}" for c in coverages)
    expected = "  ".join(f"{p:5.1f}" for p in paper)
    key = f"{CIRCUITS.index(name):02d}-{name}"
    _writer.row(f"{name:<6} measured: {measured}", key=key)
    _writer.row(f"{'':<6} paper   : {expected}", key=key)
    spread = record["spread"]
    _writer.row(f"{'':<6} spread  : {spread:.1f} points", key=key)
    _writer.flush()

    # Technology independence: coverage varies only a few points
    # across implementations (paper's spreads are <= ~10 points).
    assert spread <= 15.0, \
        f"coverage should be technology-independent, spread={spread:.1f}"
    assert all(c > 10.0 for c in coverages)
