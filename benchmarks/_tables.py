"""Shared plumbing for the reproduction benchmarks.

Every bench regenerates one table or figure of the paper.  Since PR 2
the grid of rows behind each table runs through ``repro.lab``: rows
execute as parallel jobs on a process pool (``REPRO_LAB_WORKERS``
selects the worker count, ``serial`` debugs inline), completed rows
land in the content-addressed ``.lab_cache/`` so re-runs are
incremental, and every bench invocation writes a structured manifest
under ``results/runs/bench-<name>/``.  Campaign sizes adapt to circuit
size to keep the full ``pytest benchmarks/`` run tractable.
"""

from __future__ import annotations

import itertools
import os
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "results"
CACHE_DIR = REPO_ROOT / ".lab_cache"

#: Paper numbers for side-by-side reporting (Table 1).
PAPER_TABLE1 = {
    # name: (gates, area %, approx %, max cov %, achieved cov %)
    "i8": (106, 28.0, 80.0, 65.0, 50.0),
    "des": (191, 2.7, 95.6, 56.0, 48.0),
    "dalu": (862, 25.0, 93.8, 85.0, 71.0),
    "i10": (1141, 1.5, 91.0, 76.0, 64.0),
}

#: Paper numbers for Table 2 (subset of columns).
PAPER_TABLE2 = {
    # name: (gates, max cov, area no-share, power no-share, cov no-share,
    #        area share, cov share, area pdup, cov pdup,
    #        area parity, power parity, cov parity)
    "cmb": (57, 99.7, 32, 26, 98, 29, 98, 48, 98, 87, 43, 66),
    "cordic": (116, 88, 28, 37, 82, 24, 82, 26, 82, 29, 33, 71),
    "term1": (260, 82, 15, 25, 71, 13, 70, 17, 70, 100, 101, 92),
    "x1": (442, 78, 36, 45, 68, 26, 65, 30, 68, 125, 120, 86),
    "i2": (440, 89, 5, 6, 84, 3, 83, 6, 82, 100, 100, 100),
    "frg2": (1089, 90, 30, 47, 80, 22, 75, 46, 79, 161, 133, 91),
    "dalu": (1166, 92, 21, 35, 80, 15, 77, 44, 77, 110, 109, 94),
    "i10": (2866, 85, 36, 56, 81, 30, 77, 54, 81, 139, 135, 64),
}

#: Paper Table 3: CED coverage across five implementations.
PAPER_TABLE3 = {
    "cmb": (95.8, 96, 96.6, 95.1, 96.7),
    "cordic": (74, 74.5, 74.1, 74.6, 73),
    "term1": (70, 73, 75, 80, 71),
    "x1": (67.8, 68.6, 64.1, 64.5, 68),
    "i2": (79, 84, 82, 85, 83),
    "frg2": (70, 69, 71.3, 76.1, 75.2),
    "dalu": (71.2, 72.1, 73, 72.4, 75),
    "i10": (70, 71.2, 70.5, 71.7, 72.2),
}

#: Circuits exercised by default.  Set REPRO_BENCH_FULL=1 to run the
#: complete Table 2/3 suites including frg2 and i10 (tens of minutes).
SMALL_SUITE = ["cmb", "cordic", "term1", "x1", "i2", "dalu"]
FULL_SUITE = SMALL_SUITE + ["frg2", "i10"]


def selected_suite() -> list[str]:
    if os.environ.get("REPRO_BENCH_FULL"):
        return list(FULL_SUITE)
    return list(SMALL_SUITE)


def campaign_words(gate_count: int) -> int:
    """64-vector words per fault, scaled down for large circuits."""
    if gate_count <= 150:
        return 8
    if gate_count <= 600:
        return 4
    if gate_count <= 1500:
        return 2
    return 1


def run_bench_jobs(jobs, run_name: str, root_seed: int = 2008):
    """Run one bench's job grid through the lab.

    Workers come from ``REPRO_LAB_WORKERS`` (default
    ``os.cpu_count() - 1``; ``serial`` runs inline for debugging).
    Artifacts land in the repo-level ``.lab_cache/`` so repeated bench
    invocations — and a re-run after a kill — skip finished rows; the
    manifest is written to ``results/runs/<run_name>/manifest.json``.
    """
    from repro.lab import ArtifactStore, run_jobs
    return run_jobs(jobs, root_seed=root_seed, run_id=run_name,
                    cache=ArtifactStore(CACHE_DIR),
                    results_dir=RESULTS_DIR)


class TableWriter:
    """Accumulates keyed table rows; flushes them atomically, in order.

    Rows may complete out of order (grid points run on worker
    processes), so each row carries a sort key — rows without one keep
    insertion order, after all keyed rows.  ``flush`` writes the whole
    table to a temp file and ``os.replace``s it into
    ``results/<name>.txt``: a concurrent reader or a killed run can
    never observe an interleaved or truncated table.
    """

    def __init__(self, name: str, title: str):
        self.name = name
        self.title = title
        self._rows: dict[str, list[str]] = {}
        self._counter = itertools.count()
        self._lock = threading.Lock()

    def row(self, text: str, key: "str | None" = None) -> None:
        print(text)
        with self._lock:
            index = next(self._counter)
            sort_key = key if key is not None else f"~{index:06d}"
            self._rows.setdefault(sort_key, []).append(text)

    def flush(self) -> Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.name}.txt"
        with self._lock:
            lines = [self.title, "=" * len(self.title)]
            for sort_key in sorted(self._rows):
                lines.extend(self._rows[sort_key])
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text("\n".join(lines) + "\n")
        os.replace(tmp, path)
        return path
