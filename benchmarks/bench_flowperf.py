"""Flow-architecture performance harness.

Times ``run_ced_flow`` on the Table 1/2 circuits twice — once with the
shared :class:`~repro.flow.AnalysisContext` disabled (every stage
recomputes its BDDs/simulators/probabilities, the pre-pass-manager
behavior) and once enabled — and emits ``BENCH_flow.json`` with the
wall-clock contrast plus the per-kind cache hit rates the enabled run
achieved.  The enabled and disabled runs are asserted bit-identical
(same ``summary()``), so the speedup is pure bookkeeping, not a change
in what gets computed.

Run as a script (no PYTHONPATH needed)::

    python benchmarks/bench_flowperf.py            # full suite
    python benchmarks/bench_flowperf.py --quick    # CI smoke run
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.bench.suite import TABLE2_SPECS, load_benchmark, tiny_benchmark
from repro.ced.flow import run_ced_flow
from repro.flow import AnalysisContext

DEFAULT_OUT = ROOT / "BENCH_flow.json"

#: Flow parameters shared by both runs (the identity-check settings).
FLOW_KW = dict(reliability_words=2, coverage_words=2, seed=2008)


def _load(name: str):
    return tiny_benchmark() if name == "tiny" else load_benchmark(name)


def _run(name: str, enabled: bool, reps: int) -> tuple[float, object]:
    """Best-of-``reps`` wall clock (each rep is a fully fresh flow)."""
    best, flow = None, None
    for _ in range(max(1, reps)):
        net = _load(name)
        ctx = AnalysisContext(enabled=enabled)
        t0 = time.perf_counter()
        flow = run_ced_flow(net, ctx=ctx, **FLOW_KW)
        t = time.perf_counter() - t0
        best = t if best is None else min(best, t)
    return best, flow


def bench_circuit(name: str, reps: int) -> dict:
    t_off, flow_off = _run(name, enabled=False, reps=reps)
    t_on, flow_on = _run(name, enabled=True, reps=reps)
    if flow_on.summary() != flow_off.summary():
        raise AssertionError(
            f"{name}: context-enabled flow diverged from the uncached "
            f"flow — caching must be bit-identical")
    totals = flow_on.trace.cache_totals()
    rates = {}
    for kind, counters in sorted(totals.items()):
        seen = counters.get("hits", 0) + counters.get("misses", 0)
        if seen:
            rates[kind] = {
                **counters,
                "hit_rate": round(counters.get("hits", 0) / seen, 3)}
    return {
        "gates": int(flow_on.original_mapped.gate_count),
        "uncached_seconds": round(t_off, 3),
        "cached_seconds": round(t_on, 3),
        "speedup": round(t_off / t_on, 2),
        "cache": rates,
        "pass_seconds": {
            rec.name: round(rec.wall_time_s, 3)
            for rec in flow_on.trace.passes},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small circuits only (CI smoke run)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--circuits", nargs="*", default=None,
                        help="explicit circuit list (default: suite)")
    parser.add_argument("--reps", type=int, default=2,
                        help="repetitions per measurement (best-of)")
    args = parser.parse_args(argv)

    if args.circuits:
        names = args.circuits
    elif args.quick:
        names = ["tiny", "cmb", "cordic"]
    else:
        names = ["tiny"] + sorted(
            TABLE2_SPECS, key=lambda n: TABLE2_SPECS[n].target_gates)

    report = {
        "meta": {
            "python": platform.python_version(),
            "quick": bool(args.quick),
            "reps": int(args.reps),
            "flow_kw": dict(FLOW_KW),
        },
        "circuits": {},
    }
    for name in names:
        entry = bench_circuit(name, args.reps)
        report["circuits"][name] = entry
        bdds = entry["cache"].get("global_bdds", {})
        print(f"{name:8s} {entry['gates']:5d} gates  "
              f"{entry['uncached_seconds']:8.2f}s -> "
              f"{entry['cached_seconds']:7.2f}s  "
              f"x{entry['speedup']:.2f}  "
              f"bdd hits {bdds.get('hits', 0)}/{bdds.get('hits', 0) + bdds.get('misses', 0)}")

    args.out.write_text(json.dumps(report, indent=1, sort_keys=True)
                        + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
