"""Flow performance harness: cold runs vs warm serve-style runs.

Times ``run_ced_flow`` on the Table 1/2 circuits in two modes:

* **uncached** — every rep is a fully fresh flow: new circuit object,
  fresh :class:`~repro.flow.AnalysisContext`, no persistent stores.
* **cached** — the warm serve-style configuration: one persistent
  context plus an on-disk checkpoint store and the cross-process proof
  cache (``repro.lab.proofs``), shared across reps.  Each rep still
  re-loads the circuit from scratch, so every hit is earned through
  content addressing, not object identity.
* **proof-serve** — the same persistent context and proof cache but
  *no* checkpoint store: every pass re-runs, yet the synthesis checker
  is never built because all PO implications (and percentages) are
  served from the proof cache.  This isolates what the proof cache
  alone buys, and its trace carries the reported ``proofs`` hit
  counters.  Circuits whose implication check degrades to statistical
  simulation (dalu, i10 at default node budgets) legitimately report
  zero hits: statistical verdicts are never cached.

Both modes run ``--warmup`` throwaway reps first (interpreter/OS cache
warm-up — unwarmed first reps used to make small circuits report
nonsense speedups like 0.96x on cmb) and report the **minimum** of the
timed reps.  The cached and uncached flows are asserted bit-identical
(same ``summary()``), so the speedup is pure reuse, never a change in
what gets computed.

Run as a script (no PYTHONPATH needed)::

    python benchmarks/bench_flowperf.py            # full suite
    python benchmarks/bench_flowperf.py --quick    # CI smoke run
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.bdd import bdd_engine
from repro.bench.suite import TABLE2_SPECS, load_benchmark, tiny_benchmark
from repro.ced.flow import run_ced_flow
from repro.flow import AnalysisContext

DEFAULT_OUT = ROOT / "BENCH_flow.json"

#: Flow parameters shared by all modes (the identity-check settings).
FLOW_KW = dict(reliability_words=2, coverage_words=2, seed=2008)


def _load(name: str):
    return tiny_benchmark() if name == "tiny" else load_benchmark(name)


def _time_reps(run_once, reps: int, warmup: int):
    """min-of-``reps`` wall clock after ``warmup`` throwaway reps."""
    times, flow = [], None
    for i in range(warmup + max(1, reps)):
        t0 = time.perf_counter()
        flow = run_once()
        elapsed = time.perf_counter() - t0
        if i >= warmup:
            times.append(elapsed)
    return min(times), flow


def _run_uncached(name: str, reps: int, warmup: int):
    def once():
        return run_ced_flow(_load(name),
                            ctx=AnalysisContext(enabled=False),
                            **FLOW_KW)
    return _time_reps(once, reps, warmup)


def _run_cached(name: str, reps: int, warmup: int, state_dir: Path,
                ctx: AnalysisContext):
    def once():
        return run_ced_flow(_load(name), ctx=ctx,
                            checkpoint_dir=state_dir / "checkpoints",
                            proof_cache_dir=state_dir / "proofs",
                            **FLOW_KW)
    return _time_reps(once, reps, warmup)


def _run_proof_serve(name: str, reps: int, state_dir: Path,
                     ctx: AnalysisContext):
    def once():
        return run_ced_flow(_load(name), ctx=ctx,
                            proof_cache_dir=state_dir / "proofs",
                            **FLOW_KW)
    return _time_reps(once, reps, warmup=0)


def _cache_rates(flow) -> dict:
    rates = {}
    for kind, counters in sorted(flow.trace.cache_totals().items()):
        seen = counters.get("hits", 0) + counters.get("misses", 0)
        if seen:
            rates[kind] = {
                **counters,
                "hit_rate": round(counters.get("hits", 0) / seen, 3)}
    return rates


def bench_circuit(name: str, reps: int, warmup: int) -> dict:
    t_off, flow_off = _run_uncached(name, reps, warmup)
    state_dir = Path(tempfile.mkdtemp(prefix=f"bench_{name}_"))
    try:
        ctx = AnalysisContext()
        # The cached warm-up rep populates checkpoint + proof stores.
        t_on, flow_on = _run_cached(name, reps, max(warmup, 1),
                                    state_dir, ctx)
        t_serve, flow_serve = _run_proof_serve(name, reps, state_dir,
                                               ctx)
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)
    for label, flow in (("cached", flow_on), ("proof-serve",
                                              flow_serve)):
        if flow.summary() != flow_off.summary():
            raise AssertionError(
                f"{name}: warm {label} flow diverged from the fresh "
                f"flow — caching must be bit-identical")
    static = flow_off.trace.cache_totals().get("static", {})
    attempts = static.get("hits", 0) + static.get("misses", 0)
    return {
        "gates": int(flow_on.original_mapped.gate_count),
        "static_discharge": {
            "discharged": static.get("hits", 0),
            "attempts": attempts,
            "rate": round(static.get("hits", 0) / attempts, 3)
            if attempts else 0.0,
        },
        "uncached_seconds": round(t_off, 3),
        "cached_seconds": round(t_on, 3),
        "proof_serve_seconds": round(t_serve, 3),
        "speedup": round(t_off / t_on, 2),
        "proof_serve_speedup": round(t_off / t_serve, 2),
        "cache": _cache_rates(flow_serve),
        "pass_seconds": {
            rec.name: round(rec.wall_time_s, 3)
            for rec in flow_on.trace.passes},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small circuits only (CI smoke run)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--circuits", nargs="*", default=None,
                        help="explicit circuit list (default: suite)")
    parser.add_argument("--reps", type=int, default=2,
                        help="timed repetitions per mode (min-of)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="throwaway repetitions before timing")
    args = parser.parse_args(argv)

    if args.circuits:
        names = args.circuits
    elif args.quick:
        names = ["tiny", "cmb", "cordic"]
    else:
        names = ["tiny"] + sorted(
            TABLE2_SPECS, key=lambda n: TABLE2_SPECS[n].target_gates)

    report = {
        "meta": {
            "python": platform.python_version(),
            "bdd_engine": bdd_engine(),
            "quick": bool(args.quick),
            "reps": int(args.reps),
            "warmup": int(args.warmup),
            "flow_kw": dict(FLOW_KW),
            "modes": {
                "uncached": "fresh context per rep, no stores",
                "cached": "persistent context + checkpoint store "
                          "+ proof cache, min over warm reps",
                "proof_serve": "persistent context + proof cache "
                               "only (no checkpoints): passes re-run "
                               "but no checker is ever built",
            },
        },
        "circuits": {},
    }
    for name in names:
        entry = bench_circuit(name, args.reps, args.warmup)
        report["circuits"][name] = entry
        proofs = entry["cache"].get("proofs", {})
        print(f"{name:8s} {entry['gates']:5d} gates  "
              f"{entry['uncached_seconds']:8.2f}s -> "
              f"{entry['cached_seconds']:7.2f}s  "
              f"x{entry['speedup']:.2f}  "
              f"(proof-serve {entry['proof_serve_seconds']:.2f}s, "
              f"hits {proofs.get('hits', 0)}/"
              f"{proofs.get('hits', 0) + proofs.get('misses', 0)}, "
              f"static {entry['static_discharge']['rate']:.0%})")

    args.out.write_text(json.dumps(report, indent=1, sort_keys=True)
                        + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
