"""Static-analysis benchmark: fixpoint costs and discharge impact.

Measures, per bundled benchmark circuit:

* **analyze** — wall time of a cold :func:`repro.analyze.analyze_network`
  pass over the mapped original, plus the per-analysis fixpoint costs
  (iterations, transfer applications, seconds) the engine reports
  about itself, and the headline facts it found (constants, dead
  cones, SDC cubes, structural duplicates).
* **static_discharge** — the share of per-PO implication checks
  (paper Sec 2.2) the static rung resolves during a real *uncached*
  CED flow, before any BDD/SAT checker is built.  This is the same
  counter :mod:`benchmarks.check_flow_regression` gates on for i10.
* **flow_delta** — uncached flow wall time with the static rung on vs
  off.  The two results are asserted bit-identical (``summary()``
  equality): the rung must change *where proofs come from*, never
  what gets synthesized.

Run as a script (no PYTHONPATH needed)::

    python benchmarks/bench_analyze.py            # full suite
    python benchmarks/bench_analyze.py --quick    # CI smoke run
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.analyze import NetworkAnalyses, analyze_network
from repro.approx import ApproxConfig
from repro.bdd import bdd_engine
from repro.bench.suite import TABLE2_SPECS, load_benchmark, tiny_benchmark
from repro.ced.flow import run_ced_flow
from repro.flow import AnalysisContext

DEFAULT_OUT = ROOT / "BENCH_analyze.json"

#: Flow parameters matching bench_flowperf (the identity-check config).
FLOW_KW = dict(reliability_words=2, coverage_words=2, seed=2008)


def _load(name: str):
    return tiny_benchmark() if name == "tiny" else load_benchmark(name)


def _run_flow(name: str, static: bool):
    config = ApproxConfig(seed=FLOW_KW["seed"],
                          static_discharge=static)
    t0 = time.perf_counter()
    flow = run_ced_flow(_load(name), config=config,
                        ctx=AnalysisContext(enabled=False), **FLOW_KW)
    return time.perf_counter() - t0, flow


def bench_circuit(name: str) -> dict:
    network = _load(name)

    t0 = time.perf_counter()
    bundle = NetworkAnalyses(network)
    doc = analyze_network(network, bundle)
    analyze_seconds = time.perf_counter() - t0

    t_on, flow_on = _run_flow(name, static=True)
    t_off, flow_off = _run_flow(name, static=False)
    if flow_on.summary() != flow_off.summary():
        raise AssertionError(
            f"{name}: flow summary changed with static discharge off — "
            f"the static rung must be behavior-neutral")

    static = flow_on.trace.cache_totals().get("static", {})
    attempts = static.get("hits", 0) + static.get("misses", 0)
    return {
        "nodes": int(network.num_nodes),
        "analyze_seconds": round(analyze_seconds, 4),
        "fixpoint": doc["fixpoint"],
        "facts": {
            "constants": doc["constants"]["count"],
            "dead_cones": len(doc["dead_cones"]),
            "sdc_cubes": doc["sdc_cubes"]["cubes"],
            "structural_duplicates": len(doc["structural_duplicates"]),
            "unread_fanin_positions": doc["unread_fanins"]["positions"],
        },
        "static_discharge": {
            "discharged": static.get("hits", 0),
            "attempts": attempts,
            "rate": round(static.get("hits", 0) / attempts, 3)
            if attempts else 0.0,
        },
        "flow_delta": {
            "static_on_seconds": round(t_on, 3),
            "static_off_seconds": round(t_off, 3),
            "speedup": round(t_off / t_on, 2) if t_on else 0.0,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small circuits only (CI smoke run)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--circuits", nargs="*", default=None,
                        help="explicit circuit list (default: suite)")
    args = parser.parse_args(argv)

    if args.circuits:
        names = args.circuits
    elif args.quick:
        names = ["tiny", "cmb", "cordic"]
    else:
        names = ["tiny"] + sorted(
            TABLE2_SPECS, key=lambda n: TABLE2_SPECS[n].target_gates)

    report = {
        "meta": {
            "python": platform.python_version(),
            "bdd_engine": bdd_engine(),
            "quick": bool(args.quick),
            "flow_kw": dict(FLOW_KW),
        },
        "circuits": {},
    }
    for name in names:
        entry = bench_circuit(name)
        report["circuits"][name] = entry
        disch = entry["static_discharge"]
        delta = entry["flow_delta"]
        print(f"{name:8s} {entry['nodes']:5d} nodes  "
              f"analyze {entry['analyze_seconds']:7.3f}s  "
              f"discharge {disch['discharged']:5d}/{disch['attempts']:5d} "
              f"({disch['rate']:.0%})  "
              f"flow {delta['static_off_seconds']:.2f}s -> "
              f"{delta['static_on_seconds']:.2f}s")

    args.out.write_text(json.dumps(report, indent=1, sort_keys=True)
                        + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
