"""Scalability: synthesis runtime vs circuit size.

The paper claims the algorithm "scales with circuit size" — cube
selection is linear in the network, and the largest benchmark (i10,
2866 gates) synthesized in 5m28s on 2007 hardware.  This bench times
approximate synthesis over a size sweep and checks growth stays
near-linear (no blow-up), plus records the i10-class runtime.
"""

import time

import pytest

from repro.approx import ApproxConfig, synthesize_approximation
from repro.bench import random_network
from repro.reliability import analyze_reliability
from repro.synth import quick_map

from _tables import TableWriter

_writer = TableWriter(
    "scalability", "Synthesis runtime vs size (paper: i10 in 5m28s)")

SIZES = [100, 200, 400, 800, 1600]

_samples: list[tuple[int, float]] = []


def _synthesize(n_nodes):
    net = random_network(4242 + n_nodes, n_nodes, 48, 12,
                         name=f"scale{n_nodes}")
    reliability = analyze_reliability(quick_map(net), n_words=1)
    # Simulation checking: the scaling claim is about the synthesis
    # algorithm, not about BDD construction.
    config = ApproxConfig(check="sim", sim_check_words=16)
    start = time.perf_counter()
    result = synthesize_approximation(net, reliability.approximations,
                                      config)
    elapsed = time.perf_counter() - start
    return net.num_nodes, elapsed, result


@pytest.mark.parametrize("n_nodes", SIZES)
def test_scaling_point(benchmark, n_nodes):
    nodes, elapsed, result = benchmark.pedantic(
        lambda: _synthesize(n_nodes), rounds=1, iterations=1)
    _samples.append((nodes, elapsed))
    _writer.row(f"{nodes:>6} nodes: {elapsed:7.2f}s  "
                f"(repair rounds {result.repair_rounds})")
    _writer.flush()
    assert result is not None


def test_growth_is_subquadratic(benchmark):
    if len(_samples) < 3:
        pytest.skip("size sweep did not run")

    def exponent():
        import math
        xs = [math.log(n) for n, _ in _samples]
        ys = [math.log(max(t, 1e-3)) for _, t in _samples]
        n = len(xs)
        mean_x, mean_y = sum(xs) / n, sum(ys) / n
        slope = sum((x - mean_x) * (y - mean_y)
                    for x, y in zip(xs, ys)) \
            / sum((x - mean_x) ** 2 for x in xs)
        return slope

    slope = benchmark.pedantic(exponent, rounds=1, iterations=1)
    _writer.row(f"fitted runtime exponent: {slope:.2f} "
                f"(1.0 = linear, <2 required)")
    _writer.flush()
    assert slope < 2.0, f"runtime grows as n^{slope:.2f}"
