"""Scalability: synthesis runtime vs circuit size.

The paper claims the algorithm "scales with circuit size" — cube
selection is linear in the network, and the largest benchmark (i10,
2866 gates) synthesized in 5m28s on 2007 hardware.  This bench times
approximate synthesis over a size sweep (each size one ``repro.lab``
job; the per-point wall time is measured inside the job so worker
contention does not distort it) and checks growth stays near-linear
(no blow-up), plus records the i10-class runtime.
"""

import math

import pytest

from repro.lab import Job
from repro.lab.tasks import scalability_task

from _tables import TableWriter, run_bench_jobs

_writer = TableWriter(
    "scalability", "Synthesis runtime vs size (paper: i10 in 5m28s)")

SIZES = [100, 200, 400, 800, 1600]


@pytest.fixture(scope="module")
def scaling_run():
    jobs = [Job(f"scale/{n_nodes}", scalability_task,
                params={"n_nodes": n_nodes})
            for n_nodes in SIZES]
    return run_bench_jobs(jobs, "bench-scalability")


@pytest.mark.parametrize("n_nodes", SIZES)
def test_scaling_point(scaling_run, n_nodes):
    record = scaling_run.value(f"scale/{n_nodes}")
    _writer.row(f"{record['nodes']:>6} nodes: "
                f"{record['elapsed_s']:7.2f}s  "
                f"(repair rounds {record['repair_rounds']})",
                key=f"{n_nodes:06d}")
    _writer.flush()
    assert record["nodes"] > 0


def test_growth_is_subquadratic(scaling_run):
    samples = [scaling_run.value(f"scale/{n}") for n in SIZES]
    if len(samples) < 3:
        pytest.skip("size sweep did not run")
    xs = [math.log(s["nodes"]) for s in samples]
    ys = [math.log(max(s["elapsed_s"], 1e-3)) for s in samples]
    n = len(xs)
    mean_x, mean_y = sum(xs) / n, sum(ys) / n
    slope = sum((x - mean_x) * (y - mean_y)
                for x, y in zip(xs, ys)) \
        / sum((x - mean_x) ** 2 for x in xs)
    _writer.row(f"fitted runtime exponent: {slope:.2f} "
                f"(1.0 = linear, <2 required)", key="999999-fit")
    _writer.flush()
    assert slope < 2.0, f"runtime grows as n^{slope:.2f}"
