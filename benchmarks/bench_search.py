"""Benchmark the evolutionary checker search (``repro.search``).

For each circuit this runs the paper flow once (the baseline checker)
and then an evolutionary search seeded with it, recording whether the
search finds a candidate with coverage >= the paper-flow checker at
<= its area — elitism guarantees "no worse"; the interesting number is
how often (and by how much) the search does strictly better — plus
per-generation trajectory and wall time.  Results land in
``BENCH_search.json``.

Run as a script::

    python benchmarks/bench_search.py            # full suite
    python benchmarks/bench_search.py --quick    # CI smoke run
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.search import SearchConfig, run_search

DEFAULT_OUT = ROOT / "BENCH_search.json"

#: (circuit, generations, offspring, words) per mode.
FULL_PLAN = [("tiny", 6, 8, 2), ("cmb", 4, 8, 2), ("x1", 3, 6, 1)]
QUICK_PLAN = [("tiny", 3, 6, 2), ("cmb", 2, 4, 1)]


def run_one(circuit: str, generations: int, offspring: int,
            words: int, seed: int, scratch: Path, backend: "str | None",
            quiet: bool) -> dict:
    config = SearchConfig(
        circuit=circuit, words=words, seed=seed,
        generations=generations, population=max(2, offspring // 2),
        offspring=offspring,
        state_dir=scratch / "state", cache_dir=scratch / "cache",
        results_dir=scratch / "results", backend=backend)
    start = time.perf_counter()
    result = run_search(config, log=None if quiet else (
        lambda line: print(f"  {line}", flush=True)))
    wall = time.perf_counter() - start
    base, best = result.baseline, result.best
    meets_bar = (best.coverage >= base.coverage
                 and best.area <= base.area
                 and best.false_alarms == 0
                 and best.golden_invalid == 0)
    return {
        "circuit": circuit,
        "generations": result.generations_run,
        "offspring_per_generation": offspring,
        "baseline_coverage_pct": round(base.coverage, 4),
        "baseline_area": base.area,
        "best_coverage_pct": round(best.coverage, 4),
        "best_area": best.area,
        "best_origin": best.origin,
        "improved": result.improved,
        "meets_paper_bar": meets_bar,
        "coverage_gain_pct": round(best.coverage - base.coverage, 4),
        "wall_time_s": round(wall, 3),
        "history": result.history,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small plan for CI smoke runs")
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument("--backend", default=None,
                        help="lab execution backend for the "
                             "generation grids")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    plan = QUICK_PLAN if args.quick else FULL_PLAN
    rows = []
    with tempfile.TemporaryDirectory(prefix="bench-search-") as tmp:
        scratch = Path(tmp)
        for circuit, generations, offspring, words in plan:
            if not args.quiet:
                print(f"[search] {circuit}: {generations} generations "
                      f"x {offspring} offspring", flush=True)
            rows.append(run_one(circuit, generations, offspring,
                                words, args.seed, scratch / circuit,
                                args.backend, args.quiet))

    doc = {
        "bench": "search",
        "mode": "quick" if args.quick else "full",
        "seed": args.seed,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": rows,
        "all_meet_paper_bar": all(r["meets_paper_bar"] for r in rows),
        "any_strict_improvement": any(r["improved"] for r in rows),
    }
    args.out.write_text(json.dumps(doc, indent=2, sort_keys=True)
                        + "\n")
    if not args.quiet:
        for row in rows:
            print(f"{row['circuit']:>6}: baseline "
                  f"{row['baseline_coverage_pct']:.2f}% "
                  f"@ {row['baseline_area']} gates -> best "
                  f"{row['best_coverage_pct']:.2f}% "
                  f"@ {row['best_area']} gates "
                  f"({'improved' if row['improved'] else 'held'}, "
                  f"{row['wall_time_s']:.1f}s)")
        print(f"wrote {args.out}")
    if not doc["all_meet_paper_bar"]:
        print("FAIL: a search returned a candidate below the "
              "paper-flow bar (elitism violated?)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
