"""Cross-engine conformance sweep: numpy engine vs dict oracle.

Runs the full CED flow (lint strict, certificates emitted) on every
bundled benchmark under ``REPRO_BDD_ENGINE=python`` and ``=numpy`` and
asserts the two :class:`CedFlowResult` summaries are bit-identical,
lint-clean, and that every emitted implication certificate re-checks
offline.  The engine knob is read at manager construction, so one
process can flip it between fresh flows.

    python benchmarks/verify_engines.py            # all nine circuits
    python benchmarks/verify_engines.py tiny cmb   # subset
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.bench.suite import TABLE2_SPECS, load_benchmark, tiny_benchmark
from repro.ced.flow import run_ced_flow

FLOW_KW = dict(reliability_words=2, coverage_words=2, seed=2008,
               lint_level="strict")


def run_engine(name: str, engine: str) -> dict:
    from repro.lint import check_certificate

    os.environ["REPRO_BDD_ENGINE"] = engine
    net = tiny_benchmark() if name == "tiny" else load_benchmark(name)
    cert_dir = Path(tempfile.mkdtemp(prefix=f"certs_{name}_"))
    try:
        flow = run_ced_flow(net, certificate_dir=cert_dir, **FLOW_KW)
        assert flow.lint is not None and flow.lint.ok, \
            f"{name}/{engine}: lint strict not clean"
        for path in sorted(cert_dir.glob("*.cert.json")):
            problems = check_certificate(json.loads(path.read_text()))
            assert not problems, f"{name}/{engine}: {path.name}: " \
                                 f"{problems}"
    finally:
        shutil.rmtree(cert_dir, ignore_errors=True)
    return json.loads(flow.summary_json())


def main(argv=None) -> int:
    names = (argv or sys.argv[1:]) or ["tiny"] + sorted(
        TABLE2_SPECS, key=lambda n: TABLE2_SPECS[n].target_gates)
    bad = 0
    for name in names:
        t0 = time.perf_counter()
        summaries = {engine: run_engine(name, engine)
                     for engine in ("python", "numpy")}
        same = summaries["python"] == summaries["numpy"]
        bad += not same
        verdict = "identical" if same else "DIVERGED"
        print(f"{name:8s} {verdict}  lint=ok  "
              f"({time.perf_counter() - t0:.1f}s)")
        if not same:
            print(json.dumps({k: summaries[k] for k in summaries},
                             indent=1))
    print(f"{len(names) - bad}/{len(names)} circuits bit-identical "
          f"across engines")
    return 1 if bad else 0


if __name__ == "__main__":
    raise SystemExit(main())
