"""Figure 3: the totally self-checking checker.

Exhaustively regenerates the checker's code space (code-disjointness of
Fig. 3a), probes every single stuck-at fault in the gate-level checker
on the valid codeword space (fault-secure + self-testing when CED is
active), and confirms the documented exceptions (Y/sa0 and X/sa1
untestable for a 0-approximation).
"""

import itertools

import numpy as np

from repro.ced import (checker_reference, emit_approximate_checker,
                       is_two_rail, valid_codeword)
from repro.sim import BitSimulator, fault_list
from repro.synth import Emitter, LIB_GENERIC, MappedNetlist

from _tables import TableWriter

_writer = TableWriter("figure3", "Figure 3 — TSC checker properties")


def _build_checker(direction):
    netlist = MappedNetlist("chk", LIB_GENERIC)
    netlist.add_input("x")
    netlist.add_input("y")
    pair = emit_approximate_checker(Emitter(netlist), "x", "y",
                                    direction, "c")
    netlist.set_output("c1", pair[0])
    netlist.set_output("c2", pair[1])
    return netlist


def _fault_survey(direction):
    """Classify every checker fault on the valid codeword space."""
    netlist = _build_checker(direction)
    sim = BitSimulator(netlist)
    valid = [(x, y) for x in (0, 1) for y in (0, 1)
             if valid_codeword(bool(x), bool(y), direction)]
    xs = np.array([sum(v[0] << i for i, v in enumerate(valid))],
                  dtype=np.uint64)
    ys = np.array([sum(v[1] << i for i, v in enumerate(valid))],
                  dtype=np.uint64)
    golden = sim.run(np.stack([xs, ys]))
    gold_out = sim.outputs_of(golden)
    secure = testable = total = 0
    for fault in fault_list(netlist):
        total += 1
        overlay = sim.run_fault(golden, fault.signal, fault.stuck)
        out = sim.faulty_outputs(golden, overlay)
        fault_secure = True
        fault_testable = False
        for i in range(len(valid)):
            shift, one = np.uint64(i), np.uint64(1)
            faulty = (bool(out[0][0] >> shift & one),
                      bool(out[1][0] >> shift & one))
            correct = (bool(gold_out[0][0] >> shift & one),
                       bool(gold_out[1][0] >> shift & one))
            if faulty != correct:
                fault_testable = True
                if is_two_rail(faulty):
                    fault_secure = False
        secure += fault_secure
        testable += fault_testable
    return total, secure, testable


def test_code_disjointness(benchmark):
    def survey():
        rows = []
        for direction in (0, 1):
            for x, y in itertools.product((False, True), repeat=2):
                out = checker_reference(x, y, direction)
                rows.append((direction, x, y,
                             valid_codeword(x, y, direction),
                             is_two_rail(out)))
        return rows

    rows = benchmark.pedantic(survey, rounds=10, iterations=1)
    for direction, x, y, valid, two_rail in rows:
        assert valid == two_rail, (direction, x, y)
    _writer.row("code-disjoint: valid codewords -> two-rail outputs, "
                "invalid -> non-two-rail (both directions): OK")
    _writer.flush()


def test_tsc_fault_properties(benchmark):
    results = benchmark.pedantic(
        lambda: {d: _fault_survey(d) for d in (0, 1)},
        rounds=3, iterations=1)
    for direction, (total, secure, testable) in results.items():
        _writer.row(
            f"{direction}-approx checker: {total} stuck-at faults, "
            f"fault-secure on valid space: {secure}/{total}, "
            f"testable by a valid codeword: {testable}/{total}")
        assert secure == total
        assert testable == total
    _writer.flush()


def test_documented_exceptions(benchmark):
    def check():
        # Y/sa0 for a 0-approximation presents only valid codewords.
        for x in (False, True):
            assert valid_codeword(x, False, 0)
            assert is_two_rail(checker_reference(x, False, 0))
        # X/sa1 likewise.
        for y in (False, True):
            assert valid_codeword(True, y, 0)
            assert is_two_rail(checker_reference(True, y, 0))
        return True

    assert benchmark.pedantic(check, rounds=10, iterations=1)
    _writer.row("documented exceptions hold: Y/sa0 and X/sa1 are "
                "untestable under a 0-approximation (paper Sec 3.2)")
    _writer.flush()
