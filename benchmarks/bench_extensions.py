"""Extension benches: error masking and delay-fault CED (paper Sec 5).

Not tables of the paper — these regenerate the future-work directions
the conclusion proposes, quantifying (a) the residual output error rate
after approximate-logic masking and (b) CED coverage under the
transition-fault model.
"""

import pytest

from repro.bench import load_benchmark
from repro.ced import (build_masked_circuit, evaluate_delay_fault_ced,
                       evaluate_masking, run_ced_flow)

from _tables import PAPER_TABLE2, TableWriter, campaign_words

CIRCUITS = ["cmb", "cordic", "term1"]

_writer = TableWriter(
    "extensions",
    "Sec 5 extensions — masking + delay-fault CED")


@pytest.fixture(scope="module")
def flows():
    result = {}
    for name in CIRCUITS:
        net = load_benchmark(name)
        words = campaign_words(PAPER_TABLE2[name][0])
        result[name] = (run_ced_flow(net, reliability_words=words,
                                     coverage_words=words), words)
    return result


@pytest.mark.parametrize("name", CIRCUITS)
def test_masking_row(benchmark, flows, name):
    flow, words = flows[name]

    def run():
        masked = build_masked_circuit(flow.original_mapped,
                                      flow.approx_mapped,
                                      flow.assembly.directions)
        return evaluate_masking(masked, n_words=words)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _writer.row(f"{name:<7} masking: raw err "
                f"{result.raw_error_rate:.4f} -> masked "
                f"{result.masked_error_rate:.4f}  "
                f"({result.reduction_pct:.1f}% masked)")
    _writer.flush()
    # Masking never increases the error rate, and with a sound
    # approximation it strictly helps on these circuits.
    assert result.masked_error_runs <= result.raw_error_runs
    assert result.reduction_pct > 10.0


@pytest.mark.parametrize("name", CIRCUITS)
def test_delay_fault_row(benchmark, flows, name):
    flow, words = flows[name]
    result = benchmark.pedantic(
        lambda: evaluate_delay_fault_ced(flow.assembly, n_words=words),
        rounds=1, iterations=1)
    margin = -flow.metrics["delay_change_pct"]
    _writer.row(f"{name:<7} delay-fault CED: coverage "
                f"{result.coverage:5.1f}%  (timing margin "
                f"{margin:+.1f}%)")
    _writer.flush()
    assert result.error_runs > 0
    assert result.coverage > 10.0
    # The check side must be faster than the protected circuit for the
    # delay-fault argument to hold.
    assert margin > 0.0
