"""Proof cache: content addressing, corruption recovery, flow reuse."""

import json

import pytest

from repro.lab.proofs import (ConeFingerprinter, ProofCache,
                              cone_payload, implication_key,
                              prove_implications)
from repro.lab.tasks import load_circuit


@pytest.fixture()
def tiny_pair():
    from repro.approx import synthesize_approximation
    from repro.reliability import analyze_reliability
    from repro.synth import quick_map

    net = load_circuit("tiny")
    reliability = analyze_reliability(quick_map(net), n_words=4)
    result = synthesize_approximation(net, reliability.approximations)
    return net, result.approx, reliability.approximations


def test_keys_are_content_addressed(tiny_pair):
    original, approx, directions = tiny_pair
    fp = ConeFingerprinter()
    po = original.outputs[0]
    k1 = implication_key(fp, original, approx, po, 1)
    # Same content, different objects -> same key.
    k2 = implication_key(ConeFingerprinter(), original.copy(),
                         approx.copy(), po, 1)
    assert k1 == k2
    # Direction and cone content both separate the key space.
    assert implication_key(fp, original, approx, po, 0) != k1
    assert implication_key(fp, original, original, po, 1) != k1


def test_put_get_roundtrip_and_stats(tmp_path):
    cache = ProofCache(tmp_path / "proofs")
    key = "ab" + "0" * 62
    assert cache.get(key) is None
    cache.put(key, {"kind": "implication", "holds": True,
                    "engine": "bdd", "po": "f", "direction": 1})
    entry = cache.get(key)
    assert entry["holds"] is True and entry["engine"] == "bdd"
    stats = cache.stats()
    assert stats["entries"] == 1 and stats["bytes"] > 0
    assert stats["hits"] == 1 and stats["misses"] == 1


def test_corrupted_entry_detected_evicted_reproved(tmp_path):
    cache = ProofCache(tmp_path / "proofs")
    key = "cd" + "1" * 62
    cache.put(key, {"kind": "implication", "holds": True,
                    "engine": "bdd", "po": "g", "direction": 0})
    path = cache._path(key)
    doc = json.loads(path.read_text())
    doc["holds"] = False                      # tamper: digest mismatch
    path.write_text(json.dumps(doc))
    assert cache.get(key) is None             # detected + treated as miss
    assert not path.exists()                  # evicted
    assert cache.evictions == 1
    # Transparent re-prove: the caller just stores the fresh verdict.
    cache.put(key, {"kind": "implication", "holds": True,
                    "engine": "bdd", "po": "g", "direction": 0})
    assert cache.get(key)["holds"] is True
    # Truncated JSON is handled the same way.
    path.write_text("{not json")
    assert cache.get(key) is None
    assert not path.exists()


def test_prune_evicts_oldest_first(tmp_path):
    import os
    cache = ProofCache(tmp_path / "proofs")
    keys = [f"{i:02x}" + "2" * 62 for i in range(4)]
    for i, key in enumerate(keys):
        cache.put(key, {"kind": "implication", "holds": True,
                        "engine": "bdd", "po": f"p{i}", "direction": 1})
        os.utime(cache._path(key), (1000 + i, 1000 + i))
    sizes = [cache._path(k).stat().st_size for k in keys]
    report = cache.prune(max_bytes=sum(sizes[2:]))
    assert report["removed"] == 2
    assert cache.get(keys[0]) is None and cache.get(keys[1]) is None
    assert cache.get(keys[2]) is not None and cache.get(keys[3]) is not None


def test_prove_implications_in_process(tiny_pair):
    original, approx, directions = tiny_pair
    fp = ConeFingerprinter()
    jobs = []
    for po, direction in directions.items():
        if original.is_input(po):
            continue
        d = 1 if direction == 1 else 0
        jobs.append({
            "key": implication_key(fp, original, approx, po, d),
            "original": cone_payload(original, po),
            "approx": cone_payload(approx, po),
            "po": po, "direction": d,
            "node_cap": 100_000, "deadline_s": None})
    verdicts = prove_implications(jobs, workers=0)
    assert len(verdicts) == len(jobs)
    # The synthesis result claims correctness; independent cone proofs
    # must agree.
    assert all(v["ok"] and v["holds"] for v in verdicts)
    assert all(v["engine"] == "bdd" for v in verdicts)


def test_worker_reports_undecided_on_tiny_cap(tiny_pair):
    original, approx, _ = tiny_pair
    fp = ConeFingerprinter()
    po = next(p for p in original.outputs if not original.is_input(p))
    job = {"key": implication_key(fp, original, approx, po, 1),
           "original": cone_payload(original, po),
           "approx": cone_payload(approx, po),
           "po": po, "direction": 1, "node_cap": 2, "deadline_s": None}
    verdict = prove_implications([job], workers=0)[0]
    assert verdict["ok"] is False
    assert verdict["why"] == "BddOverflowError"


def test_flow_serves_proofs_on_warm_run(tmp_path):
    """Second identical flow run proves nothing: every PO implication
    (and pct) comes from the proof cache, surfaced in the flow trace."""
    from repro.ced import run_ced_flow

    proof_dir = tmp_path / "proofs"
    cold = run_ced_flow(load_circuit("tiny"), lint_level="warn",
                        proof_cache_dir=proof_dir)
    cold_summary = cold.summary()
    cold_hits = cold.trace.cache_totals().get("proofs", {})

    warm = run_ced_flow(load_circuit("tiny"), lint_level="warn",
                        proof_cache_dir=proof_dir)
    assert warm.summary() == cold_summary
    warm_hits = warm.trace.cache_totals().get("proofs", {})
    total = warm_hits.get("hits", 0) + warm_hits.get("misses", 0)
    assert total > 0
    # >= 90% of implication lookups served from the cross-run cache.
    assert warm_hits.get("hits", 0) >= 0.9 * total
    assert warm_hits.get("hits", 0) > cold_hits.get("hits", 0)
