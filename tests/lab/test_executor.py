"""Executor semantics: determinism, caching/resume, retry, timeout."""

import signal

import pytest

from repro.lab import (ArtifactStore, Job, JobGraph, LabRunner,
                       resolve_workers, run_jobs)
from repro.lab.executor import JobTimeout, _execute_payload

from .helpers import (always_fail, combine, fail_until, spin, square,
                      tiny_flow, touch_and_square)


def quiet_runner(**kwargs):
    kwargs.setdefault("log", None)
    kwargs.setdefault("results_dir", None)
    kwargs.setdefault("cache", None)
    return LabRunner(**kwargs)


class TestResolveWorkers:
    def test_explicit_serial(self):
        assert resolve_workers("serial") == "serial"

    def test_zero_and_one_map_to_serial(self):
        assert resolve_workers(0) == "serial"
        assert resolve_workers(1) == "serial"
        assert resolve_workers("1") == "serial"

    def test_integer_string(self):
        assert resolve_workers("4") == 4

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_LAB_WORKERS", "3")
        assert resolve_workers() == 3
        monkeypatch.setenv("REPRO_LAB_WORKERS", "serial")
        assert resolve_workers() == "serial"

    def test_default_is_cpu_count_minus_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_LAB_WORKERS", raising=False)
        workers = resolve_workers()
        assert workers == "serial" or workers >= 2

    def test_garbage_argument_is_config_error(self):
        from repro.approx import ConfigError
        with pytest.raises(ConfigError) as excinfo:
            resolve_workers("bogus")
        doc = excinfo.value.to_dict()
        assert doc["error"] == "config"
        assert doc["field"] == "workers"
        assert "bogus" in doc["value"]
        assert "integer or 'serial'" in doc["message"]

    def test_garbage_env_names_the_env_var(self, monkeypatch):
        from repro.approx import ConfigError
        monkeypatch.setenv("REPRO_LAB_WORKERS", "many")
        with pytest.raises(ConfigError) as excinfo:
            resolve_workers()
        assert excinfo.value.to_dict()["field"] == "REPRO_LAB_WORKERS"


class TestDeterminism:
    GRID = [("sq/3", {"x": 3}), ("sq/5", {"x": 5}), ("sq/9", {"x": 9})]

    def _run(self, workers):
        jobs = [Job(name, square, dict(params))
                for name, params in self.GRID]
        run = quiet_runner(workers=workers).run(JobGraph(jobs))
        assert run.ok
        return {n: r.value for n, r in sorted(run.results.items())}

    def test_serial_vs_pool_identical(self):
        assert self._run("serial") == self._run(4)

    def test_ced_flow_identical_across_worker_counts(self):
        def grid(workers):
            jobs = [Job(f"tiny/w{w}", tiny_flow,
                        {"words": w, "seed": 2008}) for w in (1, 2)]
            run = quiet_runner(workers=workers).run(JobGraph(jobs))
            assert run.ok
            return {n: r.value["summary"]
                    for n, r in run.results.items()}

        serial = grid("serial")
        parallel = grid(4)
        # Bit-identical summaries regardless of scheduling.
        assert serial == parallel


class TestCacheAndResume:
    def test_second_run_hits_cache_without_recompute(self, tmp_path):
        cache = ArtifactStore(tmp_path / "cache")
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        jobs = [Job(f"t/{x}", touch_and_square,
                    {"x": x, "marker_dir": str(marker_dir)})
                for x in (2, 3)]
        first = quiet_runner(workers="serial", cache=cache).run(
            JobGraph(jobs))
        assert first.counts() == {"ok": 2}
        second = quiet_runner(workers="serial", cache=cache).run(
            JobGraph(jobs))
        assert second.counts() == {"cached": 2}
        assert second.values() == first.values()
        # The task bodies ran exactly once per job.
        for x in (2, 3):
            assert (marker_dir / f"ran-{x}").read_text() == "1"

    def test_resume_after_partial_run(self, tmp_path):
        """A killed run's finished jobs are skipped on re-invocation."""
        cache = ArtifactStore(tmp_path / "cache")
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()

        def job(x):
            return Job(f"t/{x}", touch_and_square,
                       {"x": x, "marker_dir": str(marker_dir)})

        # "Killed" run: only half the grid completed before the kill.
        partial = quiet_runner(workers="serial", cache=cache).run(
            JobGraph([job(1), job(2)]))
        assert partial.ok
        # Re-invocation with the full grid resumes from the cache.
        full = quiet_runner(workers=2, cache=cache).run(
            JobGraph([job(1), job(2), job(3), job(4)]))
        statuses = {n: r.status for n, r in full.results.items()}
        assert statuses == {"t/1": "cached", "t/2": "cached",
                            "t/3": "ok", "t/4": "ok"}
        for x in (1, 2, 3, 4):
            assert (marker_dir / f"ran-{x}").read_text() == "1"

    def test_param_change_misses_cache(self, tmp_path):
        cache = ArtifactStore(tmp_path / "cache")
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        runner = quiet_runner(workers="serial", cache=cache)
        runner.run(JobGraph([
            Job("t", touch_and_square,
                {"x": 5, "marker_dir": str(marker_dir)})]))
        rerun = runner.run(JobGraph([
            Job("t", touch_and_square,
                {"x": 6, "marker_dir": str(marker_dir)})]))
        assert rerun.counts() == {"ok": 1}


class TestFailureHandling:
    @pytest.mark.parametrize("workers", ["serial", 2])
    def test_retry_then_succeed(self, tmp_path, workers):
        marker_dir = tmp_path / f"m-{workers}"
        marker_dir.mkdir()
        run = quiet_runner(workers=workers).run(JobGraph([
            Job("flaky", fail_until,
                {"marker_dir": str(marker_dir), "succeed_at": 2},
                retries=3)]))
        result = run.results["flaky"]
        assert result.status == "ok"
        assert result.attempts == 2
        assert result.value == "succeeded on attempt 2"

    @pytest.mark.parametrize("workers", ["serial", 2])
    def test_retry_then_fail_surfaces_error(self, workers):
        run = quiet_runner(workers=workers).run(JobGraph([
            Job("doomed", always_fail, retries=1),
            Job("bystander", square, {"x": 4}),
            Job("downstream", square, {"x": 5}, deps=("doomed",)),
        ]))
        doomed = run.results["doomed"]
        assert doomed.status == "failed"
        assert doomed.attempts == 2
        assert "ValueError" in doomed.error
        assert "always fails" in doomed.error
        # Partial failure: independents complete, dependents skip.
        assert run.results["bystander"].status == "ok"
        assert run.results["downstream"].status == "skipped"
        assert not run.ok
        with pytest.raises(RuntimeError, match="always fails"):
            run.value("doomed")

    def test_timeout_fails_the_job(self):
        run = quiet_runner(workers="serial").run(JobGraph([
            Job("slow", spin, {"seconds": 30.0}, timeout=0.2)]))
        result = run.results["slow"]
        assert result.status == "failed"
        assert "timed out" in result.error
        assert result.wall_time_s < 5.0

    def test_failed_jobs_are_not_cached(self, tmp_path):
        cache = ArtifactStore(tmp_path / "cache")
        runner = quiet_runner(workers="serial", cache=cache)
        first = runner.run(JobGraph([Job("doomed", always_fail)]))
        assert first.results["doomed"].status == "failed"
        second = runner.run(JobGraph([Job("doomed", always_fail)]))
        assert second.results["doomed"].status == "failed"


@pytest.mark.skipif(not hasattr(signal, "SIGALRM"),
                    reason="needs SIGALRM")
class TestAlarmHygiene:
    """The worker borrows SIGALRM; it must give it back intact."""

    @pytest.fixture(autouse=True)
    def _clean_alarm(self):
        old_handler = signal.getsignal(signal.SIGALRM)
        yield
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old_handler)

    def test_preexisting_timer_and_handler_restored(self):
        fired = []
        outer = lambda signum, frame: fired.append(signum)  # noqa: E731
        signal.signal(signal.SIGALRM, outer)
        signal.setitimer(signal.ITIMER_REAL, 60.0)
        status, payload, _, _ = _execute_payload(
            square, {"x": 3}, 0.5, None)
        assert (status, payload) == ("ok", 9)
        # The outer harness's handler is back...
        assert signal.getsignal(signal.SIGALRM) is outer
        # ...and so is its timer, net of the job's wall time.
        remaining = signal.getitimer(signal.ITIMER_REAL)[0]
        assert 0.0 < remaining <= 60.0

    def test_no_preexisting_timer_stays_disarmed(self):
        status, _, _, _ = _execute_payload(square, {"x": 2}, 0.5, None)
        assert status == "ok"
        assert signal.getitimer(signal.ITIMER_REAL)[0] == 0.0

    def test_alarm_racing_job_completion_reports_ok(self, monkeypatch):
        """A job finishing within epsilon of its deadline must not be
        reported as a timeout when the alarm wins the race to the
        disarm call."""
        import repro.lab.executor as executor

        real_disarm = executor._disarm_alarm
        calls = []

        def racy_disarm():
            real_disarm()
            calls.append(1)
            if len(calls) == 1:
                raise JobTimeout()   # the alarm squeaked in first

        monkeypatch.setattr(executor, "_disarm_alarm", racy_disarm)
        status, payload, _, _ = _execute_payload(
            square, {"x": 4}, 5.0, None)
        assert (status, payload) == ("ok", 16)

    def test_job_finishing_near_deadline_is_ok(self):
        status, payload, _, _ = _execute_payload(
            spin, {"seconds": 0.25}, 0.4, None)
        assert (status, payload) == ("ok", "spun")


class TestDependencies:
    @pytest.mark.parametrize("workers", ["serial", 2])
    def test_dep_results_are_passed(self, workers):
        run = quiet_runner(workers=workers).run(JobGraph([
            Job("a", square, {"x": 2}),
            Job("b", square, {"x": 3}),
            Job("sum", combine, {"scale": 10}, deps=("a", "b"),
                pass_deps=True),
        ]))
        assert run.ok
        assert run.value("sum") == 10 * (4 + 9)

    def test_run_jobs_convenience(self):
        run = run_jobs([Job("a", square, {"x": 7})], workers="serial",
                       cache=None, results_dir=None, log=None)
        assert run.value("a") == 49
