"""Versioned, engine-scoped proof-cache keys and stale-entry pruning."""

import json

from repro.bench.suite import tiny_benchmark
from repro.lab.proofs import (CHECK_KIND_VERSIONS, PROOF_SCHEMA,
                              ConeFingerprinter, ProofCache, error_key,
                              implication_key, pct_key)


def nets():
    original = tiny_benchmark()
    approx = original.copy()
    return original, approx


class TestKeys:
    def test_engine_scopes_the_key(self):
        original, approx = nets()
        fp = ConeFingerprinter()
        po = original.outputs[0]
        cube = implication_key(fp, original, approx, po, 1,
                               engine="cube")
        other = implication_key(fp, original, approx, po, 1,
                                engine="resub")
        assert cube != other
        assert pct_key(fp, original, approx, po, 1, engine="cube") != \
            pct_key(fp, original, approx, po, 1, engine="resub")

    def test_kinds_cannot_collide(self):
        original, approx = nets()
        fp = ConeFingerprinter()
        po = original.outputs[0]
        keys = {implication_key(fp, original, approx, po, 1),
                pct_key(fp, original, approx, po, 1),
                error_key(fp, original, approx, po, "diff-rate")}
        assert len(keys) == 3

    def test_kind_version_bump_changes_the_key(self, monkeypatch):
        original, approx = nets()
        fp = ConeFingerprinter()
        po = original.outputs[0]
        before = implication_key(fp, original, approx, po, 1)
        monkeypatch.setitem(CHECK_KIND_VERSIONS, "implication",
                            CHECK_KIND_VERSIONS["implication"] + 1)
        after = implication_key(fp, original, approx, po, 1)
        assert before != after

    def test_error_key_carries_the_metric(self):
        original, approx = nets()
        fp = ConeFingerprinter()
        po = original.outputs[0]
        assert error_key(fp, original, approx, po, "diff-rate") != \
            error_key(fp, original, approx, po, "er")


class TestPruneStale:
    def test_old_schema_entries_are_swept(self, tmp_path):
        cache = ProofCache(tmp_path)
        cache.put("aa" + "0" * 62, {"kind": "implication", "holds": True})
        # A pre-bump entry written under the previous schema version.
        stale_dir = tmp_path / "bb"
        stale_dir.mkdir()
        stale = {"kind": "implication", "holds": True,
                 "schema": PROOF_SCHEMA - 1, "digest": "x"}
        (stale_dir / ("bb" + "0" * 62 + ".json")).write_text(
            json.dumps(stale))
        # And one plain corrupt file.
        (stale_dir / ("bb" + "1" * 62 + ".json")).write_text("{oops")
        report = cache.prune_stale()
        assert report["removed_stale"] == 2
        assert report["kept_entries"] == 1
        assert cache.get("aa" + "0" * 62) is not None

    def test_get_evicts_stale_schema_on_read(self, tmp_path):
        cache = ProofCache(tmp_path)
        key = "cc" + "0" * 62
        cache.put(key, {"kind": "implication", "holds": True})
        path = cache._path(key)
        doc = json.loads(path.read_text())
        doc["schema"] = PROOF_SCHEMA - 1
        path.write_text(json.dumps(doc))
        assert cache.get(key) is None
        assert cache.evictions == 1
        assert not path.exists()
