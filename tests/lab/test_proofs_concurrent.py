"""Concurrent-writer safety of the proof cache (repro.lab.proofs).

The contract under test: a reader racing any number of writers on the
same keys either misses or sees a *complete, digest-valid* entry —
never a torn JSON document — and failed writes leave no temp litter
behind.
"""

import json
import os
import subprocess
import sys
import threading

import pytest

from repro.lab.proofs import ProofCache

KEYS = [f"{i:02x}" + "ab" * 31 for i in range(5)]


def hammer(root, worker, iterations, failures):
    """Writer+reader loop sharing ``KEYS`` with its siblings."""
    cache = ProofCache(root)
    for i in range(iterations):
        key = KEYS[i % len(KEYS)]
        cache.put(key, {"holds": True, "worker": worker, "i": i,
                        "payload": "x" * 500})
        entry = cache.get(key)
        if entry is not None and entry.get("holds") is not True:
            failures.append((worker, i, "bad value"))
    if cache.evictions:
        failures.append((worker, "evictions", cache.evictions))


class TestConcurrentWriters:
    def test_threaded_hammer_never_reads_torn_entries(self, tmp_path):
        root = tmp_path / "proofs"
        failures = []
        threads = [threading.Thread(target=hammer,
                                    args=(root, w, 100, failures))
                   for w in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert failures == []
        # No temp litter; every surviving entry digest-valid.
        assert not list(root.rglob("*.tmp"))
        checker = ProofCache(root)
        for key in KEYS:
            assert checker.get(key) is not None
        assert checker.evictions == 0

    def test_multiprocess_hammer(self, tmp_path):
        root = tmp_path / "proofs"
        script = (
            "import sys; sys.path.insert(0, {src!r})\n"
            "from repro.lab.proofs import ProofCache\n"
            "keys = [f'{{i:02x}}' + 'ab' * 31 for i in range(5)]\n"
            "cache = ProofCache({root!r})\n"
            "for i in range(150):\n"
            "    key = keys[i % len(keys)]\n"
            "    cache.put(key, {{'holds': True, 'i': i}})\n"
            "    entry = cache.get(key)\n"
            "    assert entry is None or entry['holds'] is True\n"
            "assert cache.evictions == 0, cache.evictions\n"
        ).format(src=str((os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))) + "/src"),
            root=str(root))
        procs = [subprocess.Popen([sys.executable, "-c", script])
                 for _ in range(4)]
        for proc in procs:
            assert proc.wait(120) == 0
        assert not list(root.rglob("*.tmp"))
        checker = ProofCache(root)
        for key in KEYS:
            entry = checker.get(key)
            assert entry is not None and entry["holds"] is True
        assert checker.evictions == 0


class TestCorruptionAndCleanup:
    def test_torn_entry_is_evicted_and_reproved(self, tmp_path):
        cache = ProofCache(tmp_path / "proofs")
        key = KEYS[0]
        cache.put(key, {"holds": True})
        path = cache._path(key)
        # Simulate a torn write from a non-atomic writer.
        full = path.read_text()
        path.write_text(full[: len(full) // 2])
        assert cache.get(key) is None
        assert cache.evictions == 1
        assert not path.exists()
        cache.put(key, {"holds": False})
        assert cache.get(key)["holds"] is False

    def test_digest_mismatch_is_evicted(self, tmp_path):
        cache = ProofCache(tmp_path / "proofs")
        key = KEYS[1]
        cache.put(key, {"holds": True})
        path = cache._path(key)
        doc = json.loads(path.read_text())
        doc["holds"] = False            # hand-edited, digest now stale
        path.write_text(json.dumps(doc))
        assert cache.get(key) is None
        assert cache.evictions == 1

    def test_failed_write_leaves_no_temp_file(self, tmp_path,
                                              monkeypatch):
        cache = ProofCache(tmp_path / "proofs")

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            cache.put(KEYS[2], {"holds": True})
        monkeypatch.undo()
        assert not list((tmp_path / "proofs").rglob("*.tmp"))
        assert cache.get(KEYS[2]) is None
        cache.put(KEYS[2], {"holds": True})     # cache still usable
        assert cache.get(KEYS[2])["holds"] is True
