"""Run manifests: content, schema validation, atomic writes."""

import json

from repro.lab import (ArtifactStore, Job, JobGraph, LabRunner,
                       MANIFEST_SCHEMA_VERSION, load_manifest,
                       new_run_id, validate_manifest)

from .helpers import always_fail, square


def test_new_run_id_format():
    run_id = new_run_id("sweep")
    assert run_id.startswith("sweep-")
    assert run_id != new_run_id("sweep") or True  # same-second ok


def test_run_writes_valid_manifest(tmp_path):
    runner = LabRunner(workers="serial",
                       cache=ArtifactStore(tmp_path / "cache"),
                       results_dir=tmp_path / "results", log=None)
    graph = JobGraph([
        Job("good", square, {"x": 4}),
        Job("bad", always_fail),
        Job("child", square, {"x": 5}, deps=("bad",)),
    ], root_seed=77)
    run = runner.run(graph, run_id="manifest-test")

    assert run.manifest_path == \
        tmp_path / "results" / "runs" / "manifest-test" / \
        "manifest.json"
    doc = load_manifest(run.manifest_path)
    assert validate_manifest(doc) == []

    assert doc["schema_version"] == MANIFEST_SCHEMA_VERSION
    assert doc["run_id"] == "manifest-test"
    assert doc["root_seed"] == 77
    assert doc["counts"] == {"ok": 1, "cached": 0, "failed": 1,
                             "skipped": 1, "cancelled": 0}
    jobs = doc["jobs"]
    assert jobs["good"]["status"] == "ok"
    assert jobs["good"]["params"] == {"x": 4}
    assert jobs["good"]["wall_time_s"] >= 0.0
    assert jobs["good"]["artifact_digest"]
    assert jobs["good"]["seed"] == graph.seed_for("good")
    assert jobs["bad"]["status"] == "failed"
    assert "ValueError" in jobs["bad"]["error"]
    assert jobs["child"]["status"] == "skipped"
    assert jobs["child"]["deps"] == ["bad"]
    # Linux exposes peak RSS; record it when available.
    assert jobs["good"]["peak_rss_kb"] is None \
        or jobs["good"]["peak_rss_kb"] > 0


def test_cached_rerun_manifest(tmp_path):
    runner = LabRunner(workers="serial",
                       cache=ArtifactStore(tmp_path / "cache"),
                       results_dir=tmp_path / "results", log=None)
    graph = JobGraph([Job("good", square, {"x": 4})])
    runner.run(graph, run_id="first")
    rerun = runner.run(JobGraph([Job("good", square, {"x": 4})]),
                       run_id="second")
    doc = load_manifest(rerun.manifest_path)
    assert validate_manifest(doc) == []
    assert doc["jobs"]["good"]["status"] == "cached"
    assert doc["counts"]["cached"] == 1


def test_manifest_is_json_round_trippable(tmp_path):
    runner = LabRunner(workers="serial", cache=None,
                       results_dir=tmp_path / "results", log=None)
    run = runner.run(JobGraph([Job("good", square, {"x": 2})]),
                     run_id="rt")
    text = run.manifest_path.read_text()
    assert json.loads(text) == load_manifest(run.manifest_path)


class TestValidateManifest:
    def _valid(self):
        return {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "run_id": "r", "created": "2026-01-01T00:00:00+00:00",
            "root_seed": 2008, "workers": 2, "wall_time_s": 1.0,
            "counts": {"ok": 1, "cached": 0, "failed": 0,
                       "skipped": 0},
            "jobs": {"j": {"params": {}, "seed": 1, "status": "ok",
                           "attempts": 1, "wall_time_s": 0.5}},
        }

    def test_valid_passes(self):
        assert validate_manifest(self._valid()) == []

    def test_missing_run_key(self):
        doc = self._valid()
        del doc["root_seed"]
        assert any("root_seed" in e for e in validate_manifest(doc))

    def test_bad_schema_version(self):
        doc = self._valid()
        doc["schema_version"] = 999
        assert any("schema_version" in e
                   for e in validate_manifest(doc))

    def test_bad_status(self):
        doc = self._valid()
        doc["jobs"]["j"]["status"] = "exploded"
        assert any("bad status" in e for e in validate_manifest(doc))

    def test_failed_without_error(self):
        doc = self._valid()
        doc["jobs"]["j"]["status"] = "failed"
        doc["counts"] = {"ok": 0, "cached": 0, "failed": 1,
                         "skipped": 0}
        assert any("records no error" in e
                   for e in validate_manifest(doc))

    def test_counts_mismatch(self):
        doc = self._valid()
        doc["counts"]["ok"] = 5
        assert any("counts" in e for e in validate_manifest(doc))

    def test_missing_job_key(self):
        doc = self._valid()
        del doc["jobs"]["j"]["seed"]
        assert any("missing key 'seed'" in e
                   for e in validate_manifest(doc))
