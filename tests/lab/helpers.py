"""Picklable task functions for the lab tests.

They must live in an importable module (not a test body) so worker
processes can unpickle them by reference.
"""

from __future__ import annotations

from pathlib import Path


def square(x: int) -> int:
    return x * x


def add_seeded(x: int, seed: int = 0) -> dict:
    return {"x": x, "seed": seed, "value": x + seed}


def combine(dep_results: dict | None = None, scale: int = 1) -> int:
    """Sums its dependency values (a pass_deps consumer)."""
    return scale * sum(dep_results.values())


def touch_and_square(x: int, marker_dir: str) -> int:
    """Counts executions via files, so tests can see cache hits."""
    path = Path(marker_dir) / f"ran-{x}"
    count = int(path.read_text()) if path.exists() else 0
    path.write_text(str(count + 1))
    return x * x


def fail_until(marker_dir: str, succeed_at: int = 3) -> str:
    """Fails until the attempt counter reaches ``succeed_at``."""
    path = Path(marker_dir) / "attempts"
    count = int(path.read_text()) if path.exists() else 0
    count += 1
    path.write_text(str(count))
    if count < succeed_at:
        raise RuntimeError(f"transient failure #{count}")
    return f"succeeded on attempt {count}"


def always_fail() -> None:
    raise ValueError("this job always fails")


def raise_keyboard_interrupt() -> None:
    """Simulates Ctrl-C landing inside a job (pool teardown)."""
    raise KeyboardInterrupt()


def spin(seconds: float) -> str:
    import time
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        pass
    return "spun"


def kill_worker() -> None:
    """Hard-kills the hosting worker process (no cleanup, no excuses).

    Simulates a worker death mid-job for the process-hosted backends;
    ``os._exit`` skips every handler so nothing gets reported back.
    """
    import os
    os._exit(17)


def tiny_flow(words: int = 1, seed: int = 2008) -> dict:
    from repro.lab.tasks import ced_flow_task
    return ced_flow_task("tiny", words=words, seed=seed)
