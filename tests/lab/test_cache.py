"""Content-addressed artifact store: keys, round-trips, corruption."""

from repro.lab import (MISS, ArtifactStore, Job, cache_key,
                       code_fingerprint)

from .helpers import add_seeded, square


class TestCacheKey:
    def test_param_order_irrelevant(self):
        j1 = Job("j", add_seeded, {"x": 1, "seed": 5})
        j2 = Job("j", add_seeded, {"seed": 5, "x": 1})
        assert cache_key(j1) == cache_key(j2)

    def test_params_change_key(self):
        assert cache_key(Job("j", square, {"x": 1})) != \
            cache_key(Job("j", square, {"x": 2}))

    def test_name_change_key(self):
        assert cache_key(Job("a", square, {"x": 1})) != \
            cache_key(Job("b", square, {"x": 1}))

    def test_function_change_key(self):
        assert cache_key(Job("j", square, {"x": 1})) != \
            cache_key(Job("j", add_seeded, {"x": 1}))

    def test_dep_digests_change_key(self):
        job = Job("j", square, {"x": 1}, deps=("d",), pass_deps=True)
        base = cache_key(job, {"d": "digest-1"})
        assert base != cache_key(job, {"d": "digest-2"})
        # Non-consuming jobs ignore dependency digests entirely.
        plain = Job("j", square, {"x": 1}, deps=("d",))
        assert cache_key(plain, {"d": "digest-1"}) == \
            cache_key(plain, {"d": "digest-2"})

    def test_fingerprint_is_stable(self):
        assert code_fingerprint(square) == code_fingerprint(square)
        assert code_fingerprint(square) != code_fingerprint(add_seeded)


class TestArtifactStore:
    def test_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        key = cache_key(Job("j", square, {"x": 3}))
        assert not store.has(key)
        assert store.get(key) is MISS
        digest = store.put(key, {"answer": 9}, meta={"job": "j"})
        assert store.has(key)
        assert store.get(key) == {"answer": 9}
        assert store.digest(key) == digest
        meta = store.meta(key)
        assert meta["job"] == "j"
        assert meta["artifact_digest"] == digest

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        key = cache_key(Job("j", square, {"x": 3}))
        store.put(key, list(range(100)))
        leftovers = [p for p in (tmp_path / "cache").rglob("*")
                     if p.name.endswith(".tmp")]
        assert leftovers == []

    def test_corrupt_artifact_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        key = cache_key(Job("j", square, {"x": 3}))
        store.put(key, "value")
        # Truncate the pickle: a killed writer can never cause this
        # (writes are atomic), but disk corruption can.
        path = store._paths(key)[0]
        path.write_bytes(path.read_bytes()[:3])
        assert store.get(key) is MISS

    def test_corrupt_artifact_is_evicted_then_writable(self, tmp_path):
        # Regression: corruption used to leave the bad bytes in place,
        # so has() stayed True and every subsequent get() re-parsed the
        # garbage.  Now the entry is evicted on first detection and the
        # slot is immediately reusable.
        store = ArtifactStore(tmp_path / "cache")
        key = cache_key(Job("j", square, {"x": 3}))
        store.put(key, "value")
        path = store._paths(key)[0]
        path.write_bytes(path.read_bytes()[:3])
        assert store.get(key) is MISS
        assert not store.has(key)
        store.put(key, "rewritten")
        assert store.get(key) == "rewritten"

    def test_corruption_beyond_the_usual_suspects(self, tmp_path):
        # pickle.loads on garbage raises far more than UnpicklingError/
        # EOFError: a bogus length prefix raises ValueError or
        # MemoryError, truncated opcodes raise KeyError.  Any of these
        # must read as a miss and evict, not crash the grid.
        store = ArtifactStore(tmp_path / "cache")
        for i, garbage in enumerate([
            b"\x80\x05\x95\xff\xff\xff\xff\xff\xff\xff\xff",  # huge frame
            b"\x80\x05\x8c\xff",                              # bad length
            b"\xfe\xfd\xfc",                                  # junk opcodes
        ]):
            key = cache_key(Job(f"g{i}", square, {"x": i}))
            store.put(key, i)
            store._paths(key)[0].write_bytes(garbage)
            assert store.get(key) is MISS
            assert not store.has(key)

    def test_evict(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        key = cache_key(Job("j", square, {"x": 3}))
        store.put(key, "value")
        store.evict(key)
        assert not store.has(key)
        assert store.get(key) is MISS
