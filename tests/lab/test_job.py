"""Job model: graph validation, ordering, and seed derivation."""

import pytest

from repro.lab import (Job, JobGraph, canonical_params, derive_seed)

from .helpers import square


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(2008, "a/b") == derive_seed(2008, "a/b")

    def test_distinct_names_distinct_seeds(self):
        seeds = {derive_seed(2008, f"job{i}") for i in range(200)}
        assert len(seeds) == 200

    def test_distinct_roots_distinct_seeds(self):
        assert derive_seed(1, "job") != derive_seed(2, "job")

    def test_in_numpy_seed_range(self):
        for i in range(50):
            seed = derive_seed(7, f"j{i}")
            assert 0 <= seed < 2 ** 31 - 1


class TestCanonicalParams:
    def test_order_independent(self):
        assert canonical_params({"a": 1, "b": 2.5}) == \
            canonical_params({"b": 2.5, "a": 1})

    def test_rejects_non_json(self):
        with pytest.raises(TypeError):
            canonical_params({"net": object()})

    def test_job_rejects_non_json_params(self):
        with pytest.raises(TypeError):
            Job("bad", square, params={"x": {1, 2}})


class TestJobGraph:
    def test_duplicate_name_rejected(self):
        graph = JobGraph([Job("a", square, {"x": 1})])
        with pytest.raises(ValueError, match="duplicate"):
            graph.add(Job("a", square, {"x": 2}))

    def test_unknown_dep_rejected(self):
        graph = JobGraph([Job("a", square, {"x": 1},
                              deps=("missing",))])
        with pytest.raises(ValueError, match="unknown"):
            graph.validate()

    def test_cycle_rejected(self):
        graph = JobGraph([
            Job("a", square, {"x": 1}, deps=("b",)),
            Job("b", square, {"x": 2}, deps=("a",)),
        ])
        with pytest.raises(ValueError, match="cycle"):
            graph.validate()

    def test_topological_order_respects_deps(self):
        graph = JobGraph([
            Job("c", square, {"x": 3}, deps=("a", "b")),
            Job("b", square, {"x": 2}, deps=("a",)),
            Job("a", square, {"x": 1}),
            Job("d", square, {"x": 4}),
        ])
        order = graph.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")
        assert sorted(order) == ["a", "b", "c", "d"]
        # Deterministic tie-break by name.
        assert order == graph.topological_order()

    def test_dependents_of_is_transitive(self):
        graph = JobGraph([
            Job("a", square, {"x": 1}),
            Job("b", square, {"x": 2}, deps=("a",)),
            Job("c", square, {"x": 3}, deps=("b",)),
            Job("d", square, {"x": 4}),
        ])
        assert graph.dependents_of("a") == ["b", "c"]
        assert graph.dependents_of("d") == []

    def test_seed_for_matches_derive_seed(self):
        graph = JobGraph([Job("a", square, {"x": 1})], root_seed=99)
        assert graph.seed_for("a") == derive_seed(99, "a")
        with pytest.raises(KeyError):
            graph.seed_for("nope")
