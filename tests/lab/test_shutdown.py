"""Pool-teardown semantics: interrupted jobs are ``cancelled``.

Regression tests for the executor shutdown path: a job in flight when
the runner is torn down (Ctrl-C, or a programmatic
``request_shutdown``) must be recorded as ``cancelled`` in the
manifest — not as a spurious ``failed`` with a pickling traceback —
and the manifest must still be written.  A worker dying on its own
(BrokenProcessPool) stays ``failed``; that contract is pinned by
tests/guard/test_chaos.py.
"""

import json
import threading
import time

import pytest

from repro.lab import Job, JobGraph, LabRunner
from repro.lab.manifest import validate_manifest

from .helpers import raise_keyboard_interrupt, spin, square


def quiet_runner(**kwargs):
    kwargs.setdefault("log", None)
    kwargs.setdefault("cache", None)
    return LabRunner(**kwargs)


def read_manifest(results_dir, run_id):
    path = results_dir / "runs" / run_id / "manifest.json"
    assert path.exists(), "manifest missing after teardown"
    return json.loads(path.read_text())


class TestInterruptPool:
    def test_interrupted_job_recorded_cancelled(self, tmp_path):
        graph = JobGraph([
            Job("boom", raise_keyboard_interrupt),
            Job("slow", spin, params={"seconds": 3.0}),
        ])
        runner = quiet_runner(workers=2,
                              results_dir=tmp_path / "results")
        with pytest.raises(KeyboardInterrupt):
            runner.run(graph, run_id="interrupted")
        doc = read_manifest(tmp_path / "results", "interrupted")
        assert validate_manifest(doc) == []
        statuses = {name: entry["status"]
                    for name, entry in doc["jobs"].items()}
        assert statuses["boom"] == "cancelled"
        # The sibling in flight was a teardown victim, not a failure.
        assert statuses.get("slow") in ("cancelled", None) \
            or statuses["slow"] == "ok"
        for entry in doc["jobs"].values():
            if entry["status"] == "cancelled":
                assert "teardown" in entry["error"]
                assert "pickl" not in (entry["error"] or "").lower()
        assert doc["counts"]["cancelled"] >= 1
        assert doc["counts"]["failed"] == 0

    def test_interrupt_in_serial_mode(self, tmp_path):
        graph = JobGraph([
            Job("ok", square, params={"x": 3}),
            Job("boom", raise_keyboard_interrupt),
            Job("never", square, params={"x": 4}),
        ])
        runner = quiet_runner(workers="serial",
                              results_dir=tmp_path / "results")
        with pytest.raises(KeyboardInterrupt):
            runner.run(graph, run_id="serial-int")
        doc = read_manifest(tmp_path / "results", "serial-int")
        assert validate_manifest(doc) == []
        statuses = {name: entry["status"]
                    for name, entry in doc["jobs"].items()}
        assert statuses["boom"] == "cancelled"
        # Jobs finished before the interrupt keep their real status;
        # never-started jobs are simply absent (order within the
        # graph's topological order is not promised for peers).
        assert statuses.get("ok") in ("ok", "cancelled", None)
        assert statuses.get("never") in ("cancelled", None)
        assert doc["counts"]["failed"] == 0


class TestRequestShutdown:
    def test_pool_run_stops_and_writes_manifest(self, tmp_path):
        graph = JobGraph([
            Job(f"spin{i}", spin, params={"seconds": 1.0})
            for i in range(4)])
        runner = quiet_runner(workers=2,
                              results_dir=tmp_path / "results")
        box = {}

        def target():
            box["run"] = runner.run(graph, run_id="shutdown")

        thread = threading.Thread(target=target)
        thread.start()
        time.sleep(0.4)
        runner.request_shutdown()
        thread.join(30)
        assert not thread.is_alive(), "run() did not return"
        run = box["run"]
        assert run.manifest_path is not None
        doc = read_manifest(tmp_path / "results", "shutdown")
        assert validate_manifest(doc) == []
        counts = run.counts()
        assert counts.get("cancelled", 0) >= 1
        assert counts.get("failed", 0) == 0
        for result in run.results.values():
            if result.status == "cancelled":
                assert result.error == "interrupted by pool teardown"
                assert not result.ok

    def test_serial_run_stops_between_jobs(self, tmp_path):
        graph = JobGraph([
            Job("a", square, params={"x": 2}),
            Job("b", square, params={"x": 3}),
        ])
        runner = quiet_runner(workers="serial",
                              results_dir=tmp_path / "results")
        runner.request_shutdown()        # set before the run starts
        run = runner.run(graph, run_id="serial-stop")
        assert run.results == {}         # nothing ran, nothing failed
        doc = read_manifest(tmp_path / "results", "serial-stop")
        assert validate_manifest(doc) == []
        assert doc["jobs"] == {}
