"""Prune-vs-writer races in the proof cache (repro.lab.proofs).

The contract under test: ``prune``/``prune_stale`` running while other
threads keep writing never crashes on a vanished file and never
deletes an entry written after the prune's scan started — concurrent
hygiene may under-collect, but it must not eat fresh proofs.
"""

import json
import threading
import time

from repro.lab.proofs import PROOF_SCHEMA, ProofCache

KEYS = [f"{i:02x}" + "cd" * 31 for i in range(8)]


def writer(root, worker, iterations, stop, failures):
    cache = ProofCache(root)
    i = 0
    while i < iterations and not stop.is_set():
        key = KEYS[i % len(KEYS)]
        try:
            cache.put(key, {"holds": True, "worker": worker, "i": i,
                            "payload": "y" * 300})
        except Exception as exc:       # any crash is a failure
            failures.append((worker, i, repr(exc)))
            return
        i += 1


class TestPruneRaces:
    def test_prune_hammer_against_concurrent_writers(self, tmp_path):
        root = tmp_path / "proofs"
        stop = threading.Event()
        failures: list = []
        threads = [threading.Thread(target=writer,
                                    args=(root, w, 4000, stop,
                                          failures))
                   for w in range(3)]
        for thread in threads:
            thread.start()
        cache = ProofCache(root)
        deadline = time.monotonic() + 5.0
        prunes = 0
        try:
            while any(t.is_alive() for t in threads) \
                    and time.monotonic() < deadline:
                # Alternate both hygiene paths under fire.
                cache.prune(max_bytes=1)
                cache.prune_stale()
                prunes += 2
        except Exception as exc:
            failures.append(("pruner", prunes, repr(exc)))
        finally:
            stop.set()
            for thread in threads:
                thread.join(10)
        assert failures == []
        assert prunes > 0
        # Whatever survived must be complete, current-schema entries.
        reader = ProofCache(root)
        for key in KEYS:
            entry = reader.get(key)
            if entry is not None:
                assert entry["schema"] == PROOF_SCHEMA
                assert entry["holds"] is True
        assert reader.evictions == 0

    def test_prune_spares_entries_written_after_scan_start(
            self, tmp_path, monkeypatch):
        cache = ProofCache(tmp_path / "proofs")
        cache.put(KEYS[0], {"holds": True, "age": "old"})
        path = cache._path(KEYS[0])
        # Simulate the race deterministically: the instant after the
        # scan snapshot, a writer replaces the entry the scan judged.
        real_unlink = ProofCache._unlink_if_older

        def racing_unlink(target, scan_start):
            cache.put(KEYS[0], {"holds": True, "age": "fresh"})
            return real_unlink(target, scan_start)

        monkeypatch.setattr(ProofCache, "_unlink_if_older",
                            staticmethod(racing_unlink))
        time.sleep(0.01)               # ensure mtime >= scan_start
        doc = cache.prune(max_bytes=0)
        assert doc["removed"] == 0
        entry = json.loads(path.read_text())
        assert entry["age"] == "fresh"

    def test_prune_stale_tolerates_vanishing_entries(
            self, tmp_path, monkeypatch):
        cache = ProofCache(tmp_path / "proofs")
        for key in KEYS[:3]:
            cache.put(key, {"holds": True})
        # Stale bytes on disk (old schema) that vanish between the
        # directory walk and the unlink.
        victim = cache._path(KEYS[0])
        victim.write_text(json.dumps({"schema": PROOF_SCHEMA - 1}))

        original_read = ProofCache._entries

        def entries_then_evict(self):
            found = original_read(self)
            victim.unlink(missing_ok=True)
            return found

        monkeypatch.setattr(ProofCache, "_entries", entries_then_evict)
        doc = cache.prune_stale()
        assert doc["kept_entries"] == 2
