"""Backend parity: local, tcp (loopback), workqueue run the same grids.

The contract: the backend changes *where* jobs execute, never *what*
they compute or how the runner accounts for them.  Every backend must
produce bit-identical job results for the same graph, schema-valid
manifests naming the backend, and the same failure taxonomy — plus the
tcp-specific resilience properties (worker death -> structured
``failed``, grid completes).
"""

import threading
import time

import pytest

from repro.lab import (BACKEND_ENV, ArtifactStore, Job, JobGraph,
                       LabRunner, load_manifest, merge_manifests,
                       resolve_backend, validate_manifest)
from repro.approx import ConfigError

from .helpers import (add_seeded, always_fail, combine, kill_worker,
                      spin, square)

BACKENDS = ("local", "tcp", "workqueue")


def runner_for(backend, tmp_path, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("log", None)
    kwargs.setdefault("cache",
                      ArtifactStore(tmp_path / backend / "cache"))
    kwargs.setdefault("results_dir", tmp_path / backend / "results")
    return LabRunner(backend=backend, **kwargs)


def demo_graph():
    jobs = [Job(name=f"sq-{i}", fn=square, params={"x": i})
            for i in range(5)]
    jobs.append(Job(name="seeded", fn=add_seeded, params={"x": 10}))
    jobs.append(Job(name="sum", fn=combine, params={},
                    deps=("sq-2", "sq-3"), pass_deps=True))
    return JobGraph(jobs, root_seed=77)


class TestBackendParity:
    def test_all_backends_bit_identical(self, tmp_path):
        records = {}
        for backend in BACKENDS:
            run = runner_for(backend, tmp_path).run(demo_graph())
            assert run.backend == backend
            records[backend] = {
                name: (result.status, result.value, result.seed)
                for name, result in run.results.items()}
            doc = load_manifest(run.manifest_path)
            assert validate_manifest(doc) == []
            assert doc["backend"] == backend
        reference = records["local"]
        assert reference["sum"] == ("ok", 4 + 9, reference["sum"][2])
        for backend in BACKENDS[1:]:
            assert records[backend] == reference

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_failure_taxonomy(self, backend, tmp_path):
        graph = JobGraph([
            Job(name="good", fn=square, params={"x": 4}),
            Job(name="bad", fn=always_fail, params={}),
            Job(name="downstream", fn=square, params={"x": 5},
                deps=("bad",)),
        ], root_seed=3)
        run = runner_for(backend, tmp_path).run(graph)
        statuses = {n: r.status for n, r in run.results.items()}
        assert statuses == {"good": "ok", "bad": "failed",
                            "downstream": "skipped"}
        assert "always fails" in run.results["bad"].error
        doc = load_manifest(run.manifest_path)
        assert validate_manifest(doc) == []
        assert doc["counts"]["failed"] == 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cancelled_taxonomy_on_shutdown(self, backend, tmp_path):
        graph = JobGraph([
            Job(name=f"spin-{i}", fn=spin, params={"seconds": 5.0})
            for i in range(3)
        ], root_seed=3)
        runner = runner_for(backend, tmp_path, cache=None)
        timer = threading.Timer(0.5, runner.request_shutdown)
        timer.start()
        try:
            run = runner.run(graph)
        finally:
            timer.cancel()
        statuses = {r.status for r in run.results.values()}
        assert "cancelled" in statuses
        assert statuses <= {"cancelled", "ok"}
        doc = load_manifest(run.manifest_path)
        assert validate_manifest(doc) == []

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_caching_resumes_across_backends(self, backend, tmp_path):
        # A cache written by one backend serves any other: results are
        # content-addressed, not backend-addressed.
        cache = ArtifactStore(tmp_path / "shared-cache")
        first = LabRunner(backend="local", workers=2, cache=cache,
                          results_dir=None, log=None).run(demo_graph())
        again = LabRunner(backend=backend, workers=2, cache=cache,
                          results_dir=None, log=None).run(demo_graph())
        assert all(r.status == "cached"
                   for r in again.results.values())
        assert again.values() == first.values()


class TestTcpResilience:
    def test_worker_death_fails_job_and_grid_completes(self, tmp_path):
        graph = JobGraph(
            [Job(name=f"sq-{i}", fn=square, params={"x": i})
             for i in range(4)]
            + [Job(name="killer", fn=kill_worker, params={})],
            root_seed=5)
        run = runner_for("tcp", tmp_path).run(graph)
        assert run.results["killer"].status == "failed"
        assert "died" in run.results["killer"].error
        for i in range(4):
            assert run.results[f"sq-{i}"].status == "ok"
        doc = load_manifest(run.manifest_path)
        assert validate_manifest(doc) == []
        assert doc["counts"] == {"ok": 4, "cached": 0, "failed": 1,
                                 "skipped": 0, "cancelled": 0}

    def test_unshippable_fn_is_failed_submit(self, tmp_path):
        graph = JobGraph([
            Job(name="lambda", fn=lambda: 1, params={}),
            Job(name="fine", fn=square, params={"x": 2}),
        ], root_seed=5)
        run = runner_for("tcp", tmp_path).run(graph)
        assert run.results["lambda"].status == "failed"
        assert "submit failed" in run.results["lambda"].error
        assert run.results["fine"].status == "ok"


class TestMergeManifests:
    def test_split_sweep_merges_into_one_valid_manifest(self, tmp_path):
        slices = []
        for half, names in enumerate((range(0, 3), range(3, 6))):
            graph = JobGraph(
                [Job(name=f"sq-{i}", fn=square, params={"x": i})
                 for i in names], root_seed=9)
            run = runner_for("local", tmp_path / f"h{half}").run(graph)
            slices.append(load_manifest(run.manifest_path))
        merged = merge_manifests(slices, run_id="merged-test")
        assert validate_manifest(merged) == []
        assert merged["run_id"] == "merged-test"
        assert sorted(merged["jobs"]) == [f"sq-{i}" for i in range(6)]
        assert merged["counts"]["ok"] == 6
        assert merged["workers"] == 4          # 2 + 2
        assert merged["backend"] == "local"
        assert len(merged["merged_from"]) == 2

    def test_overlapping_slices_are_rejected(self, tmp_path):
        graph = JobGraph([Job(name="sq-0", fn=square,
                              params={"x": 0})], root_seed=9)
        run = runner_for("local", tmp_path).run(graph)
        doc = load_manifest(run.manifest_path)
        with pytest.raises(ValueError, match="more than one manifest"):
            merge_manifests([doc, doc])

    def test_merge_needs_input(self):
        with pytest.raises(ValueError):
            merge_manifests([])


class TestBackendSelection:
    def test_unknown_backend_is_config_error(self):
        with pytest.raises(ConfigError) as excinfo:
            resolve_backend("carrier-pigeon")
        doc = excinfo.value.to_dict()
        assert doc["error"] == "config"
        assert doc["field"] == "backend"
        assert "carrier-pigeon" in doc["message"]

    def test_env_selects_and_is_named_on_error(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "workqueue")
        assert resolve_backend() == "workqueue"
        monkeypatch.setenv(BACKEND_ENV, "bogus")
        with pytest.raises(ConfigError) as excinfo:
            resolve_backend()
        assert excinfo.value.to_dict()["field"] == BACKEND_ENV

    def test_default_is_local(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend() == "local"
        assert resolve_backend("TCP") == "tcp"
