"""Chaos harness: spec parsing, budget rigging, and executor victims."""

import pytest

from repro.guard import (BDD_OVERFLOW_CAP, Budget, apply_chaos,
                         parse_chaos)
from repro.guard.chaos import broken_pool_victim, sigalrm_victim
from repro.lab import Job, JobGraph, LabRunner


class TestParseChaos:
    def test_none_and_empty(self):
        assert parse_chaos(None) == ()
        assert parse_chaos("") == ()
        assert parse_chaos(()) == ()

    def test_comma_string_and_iterable(self):
        assert parse_chaos("bdd-overflow, sat-exhausted") \
            == ("bdd-overflow", "sat-exhausted")
        assert parse_chaos(["worker-sigalrm"]) == ("worker-sigalrm",)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            parse_chaos("bdd-overflow,entropy-storm")


class TestApplyChaos:
    def test_no_kinds_passes_budget_through(self):
        assert apply_chaos(None, ()) is None
        budget = Budget(deadline_s=5.0)
        assert apply_chaos(budget, ()) is budget

    def test_creates_budget_and_clamps_caps(self):
        budget = apply_chaos(None, "bdd-overflow,sat-exhausted")
        assert budget is not None
        assert budget.bdd_node_cap == BDD_OVERFLOW_CAP
        assert budget.sat_conflict_cap == 0
        assert budget.report.chaos == ["bdd-overflow", "sat-exhausted"]

    def test_existing_smaller_cap_is_kept(self):
        budget = Budget(bdd_node_cap=8)
        rigged = apply_chaos(budget, "bdd-overflow")
        assert rigged is budget
        assert rigged.bdd_node_cap == 8

    def test_lab_kinds_change_no_caps(self):
        budget = apply_chaos(None, "worker-sigalrm,broken-pool")
        assert budget.bdd_node_cap is None
        assert budget.sat_conflict_cap is None
        assert budget.report.chaos == ["worker-sigalrm", "broken-pool"]


def quiet_runner(**kwargs):
    kwargs.setdefault("log", None)
    kwargs.setdefault("results_dir", None)
    kwargs.setdefault("cache", None)
    return LabRunner(**kwargs)


class TestExecutorVictims:
    def test_sigalrm_victim_times_out_cleanly(self):
        """``worker-sigalrm``: the job outlives its timeout and the
        executor reports a structured failure, not a hang or crash."""
        run = quiet_runner(workers="serial").run(JobGraph([
            Job("victim", sigalrm_victim, {"duration": 30.0},
                timeout=0.3),
            Job("downstream", sigalrm_victim, {"duration": 0.01},
                deps=("victim",)),
        ]))
        victim = run.results["victim"]
        assert victim.status == "failed"
        assert "timed out" in victim.error
        assert victim.wall_time_s < 5.0
        assert run.results["downstream"].status == "skipped"

    def test_broken_pool_victim_fails_job_and_skips_dependents(self):
        """``broken-pool``: a worker dying mid-job surfaces as a failed
        job with the pool error recorded, and dependents are skipped —
        the run itself completes."""
        run = quiet_runner(workers=2).run(JobGraph([
            Job("bomb", broken_pool_victim, {"exit_code": 13}),
            Job("downstream", sigalrm_victim, {"duration": 0.01},
                deps=("bomb",)),
        ]))
        bomb = run.results["bomb"]
        assert bomb.status == "failed"
        assert "BrokenProcessPool" in bomb.error
        assert run.results["downstream"].status == "skipped"
        assert not run.ok
