"""Budget semantics, cap merging, and BudgetReport validation."""

import json

import pytest

from repro.guard import (BUDGET_REPORT_SCHEMA, Budget, BudgetExceeded,
                         BudgetReport, DeadlineExceeded,
                         validate_budget_report)


class TestBudget:
    def test_unlimited_by_default(self):
        budget = Budget()
        assert budget.remaining_s() is None
        assert budget.deadline() is None
        assert not budget.expired
        budget.check_deadline("anywhere")   # no-op

    def test_deadline_zero_is_expired_immediately(self):
        budget = Budget(deadline_s=0.0)
        assert budget.expired
        with pytest.raises(DeadlineExceeded, match="flow entry"):
            budget.check_deadline("flow entry")

    def test_generous_deadline_not_expired(self):
        budget = Budget(deadline_s=3600.0).start()
        assert not budget.expired
        remaining = budget.remaining_s()
        assert 0 < remaining <= 3600.0
        assert budget.deadline() > budget._started

    def test_start_is_idempotent(self):
        budget = Budget(deadline_s=10.0)
        budget.start()
        first = budget._started
        budget.start()
        assert budget._started == first

    def test_cap_merging_takes_the_minimum(self):
        budget = Budget(bdd_node_cap=100, sat_conflict_cap=None,
                        repair_round_cap=7)
        assert budget.bdd_cap(500) == 100
        assert budget.bdd_cap(50) == 50
        assert budget.bdd_cap(None) == 100
        assert budget.sat_cap(123) == 123
        assert budget.sat_cap(None) is None
        assert budget.repair_cap(3) == 3
        assert budget.repair_cap(20) == 7

    def test_describe_is_json_safe(self):
        budget = Budget(deadline_s=1.5, bdd_node_cap=10)
        doc = json.loads(json.dumps(budget.describe()))
        assert doc == {"deadline_s": 1.5, "bdd_node_cap": 10,
                       "sat_conflict_cap": None,
                       "repair_round_cap": None}

    def test_exceeded_error_carries_structured_record(self):
        budget = Budget(deadline_s=0.0)
        budget.report.rung("bdd", "overflow", node_cap=64)
        with pytest.raises(DeadlineExceeded) as info:
            budget.check_deadline("repair round")
        doc = info.value.to_dict()
        assert doc["error"] == "DeadlineExceeded"
        assert "repair round" in doc["message"]
        assert doc["budget"]["deadline_s"] == 0.0
        assert validate_budget_report(doc["budget_report"]) == []
        assert isinstance(info.value, BudgetExceeded)

    def test_exceeded_without_budget_omits_report(self):
        doc = BudgetExceeded("out of luck").to_dict()
        assert doc == {"error": "BudgetExceeded",
                       "message": "out of luck"}


class TestBudgetReport:
    def test_selected_rung_sets_engine(self):
        report = BudgetReport()
        report.rung("bdd", "overflow", node_cap=64)
        report.rung("sat", "selected", max_conflicts=None)
        assert report.engine == "sat"
        assert report.degraded

    def test_clean_report_is_not_degraded(self):
        report = BudgetReport()
        report.rung("bdd", "selected", node_cap=500_000)
        assert not report.degraded
        doc = report.to_dict()
        assert doc["schema"] == BUDGET_REPORT_SCHEMA
        assert doc["engine"] == "bdd"
        assert validate_budget_report(doc) == []

    def test_exhaust_and_skip_mark_degraded(self):
        report = BudgetReport()
        report.exhaust("bdd_nodes", cap=64)
        assert report.degraded
        report = BudgetReport()
        report.skip("eliminate", "deadline expired")
        assert report.degraded

    def test_round_trips_through_json(self):
        report = BudgetReport()
        report.rung("bdd", "overflow", node_cap=64)
        report.rung("conformance", "selected")
        report.exhaust("bdd_nodes", cap=64)
        doc = json.loads(json.dumps(report.to_dict()))
        assert validate_budget_report(doc) == []
        assert doc["ladder"][1]["engine"] == "conformance"


class TestValidateBudgetReport:
    def test_rejects_non_dict(self):
        assert validate_budget_report(None)
        assert validate_budget_report([1, 2])

    def test_rejects_bad_schema_engine_and_rungs(self):
        doc = BudgetReport().to_dict()
        doc["schema"] = 99
        assert any("schema" in p for p in validate_budget_report(doc))
        doc = BudgetReport().to_dict()
        doc["engine"] = "quantum"
        assert any("engine" in p for p in validate_budget_report(doc))
        doc = BudgetReport().to_dict()
        doc["ladder"] = [{"engine": "bdd", "outcome": "meh"}]
        assert any("outcome" in p for p in validate_budget_report(doc))
        doc = BudgetReport().to_dict()
        del doc["degraded"]
        assert any("degraded" in p for p in validate_budget_report(doc))

    def test_rejects_unnamed_exhausted_resource(self):
        doc = BudgetReport().to_dict()
        doc["exhausted"] = [{"cap": 64}]
        assert any("resource" in p for p in validate_budget_report(doc))
