"""Degradation-ladder behavior across the benchmark suite.

Three contracts (the resource-governance acceptance criteria):

(a) a budget that never binds leaves synthesis bit-identical to the
    ungoverned run on every benchmark (where the ungoverned run itself
    stays on an exact engine);
(b) every injected chaos rung still yields a lint-clean flow result
    with a populated, schema-valid budget report;
(c) an already-expired deadline fails fast with a structured error.
"""

import time

import pytest

from repro.approx import ApproxConfig, synthesize_approximation
from repro.bench import TABLE2_SPECS
from repro.ced import run_ced_flow
from repro.flow.trace import validate_trace
from repro.guard import Budget, DeadlineExceeded, validate_budget_report
from repro.lab.tasks import load_circuit
from repro.network import write_blif

ALL_BENCHMARKS = ["tiny"] + list(TABLE2_SPECS)


def _directions(network):
    return {po: i % 2 for i, po in enumerate(network.outputs)}


class TestUnboundBudgetIsBitIdentical:
    @pytest.mark.parametrize("circuit", ALL_BENCHMARKS)
    def test_generous_budget_matches_ungoverned(self, circuit):
        network = load_circuit(circuit)
        directions = _directions(network)
        config = ApproxConfig(seed=2008)
        plain = synthesize_approximation(network, directions, config)
        # Where the ungoverned run stayed on an exact engine, a huge
        # deadline never binds; where it fell back to the statistical
        # checker (dalu, i10), the governed SAT rung would grind for a
        # long time, so a short deadline drives it down the ladder.
        deadline = 3600.0 if plain.check_method != "sim" else 15.0
        governed = synthesize_approximation(
            load_circuit(circuit), directions, config,
            budget=Budget(deadline_s=deadline))
        if plain.check_method == "sim":
            # The governed ladder never uses the statistical checker:
            # it falls from BDD to SAT and, at the deadline, to the
            # correct-by-construction conformance rung.
            assert governed.check_method in ("sat", "conformance")
            assert governed.all_correct
            return
        assert write_blif(governed.approx) == write_blif(plain.approx)
        assert governed.check_method == plain.check_method
        assert governed.all_correct == plain.all_correct
        assert governed.repair_rounds == plain.repair_rounds
        assert governed.dropped_cubes == plain.dropped_cubes


CHAOS_CASES = ["bdd-overflow", "sat-exhausted",
               "bdd-overflow,sat-exhausted"]


class TestChaosRungsStayLintClean:
    @pytest.mark.parametrize("circuit", ["tiny", "cmb"])
    @pytest.mark.parametrize("chaos", CHAOS_CASES)
    def test_injected_fault_degrades_gracefully(self, circuit, chaos):
        network = load_circuit(circuit)
        # strict lint raises on any error diagnostic: a degraded flow
        # must still produce a fully verifiable result.
        result = run_ced_flow(network, reliability_words=1,
                              coverage_words=1, power_words=1,
                              lint_level="strict", chaos=chaos,
                              budget=Budget(deadline_s=600.0))
        report = result.budget_report
        assert report is not None
        assert validate_budget_report(report) == []
        assert report["degraded"]
        assert report["chaos"] == chaos.split(",")
        assert report["ladder"], "ladder rungs must be recorded"
        if "sat-exhausted" in chaos:
            assert result.approx_result.check_method == "conformance"
            assert report["engine"] == "conformance"
        else:
            assert result.approx_result.check_method in (
                "sat", "conformance")
        assert result.approx_result.all_correct
        # The report also rides in the trace document and validates.
        doc = result.to_dict()
        assert doc["budget_report"] == report
        assert validate_trace(doc["trace"]) == []
        assert doc["trace"]["budget"] == report


class TestDeadlineZeroFailsFast:
    @pytest.mark.parametrize("circuit", ["tiny", "x1"])
    def test_expired_deadline_is_structured_and_fast(self, circuit):
        network = load_circuit(circuit)
        start = time.perf_counter()
        with pytest.raises(DeadlineExceeded) as info:
            run_ced_flow(network, budget=Budget(deadline_s=0.0))
        assert time.perf_counter() - start < 5.0
        doc = info.value.to_dict()
        assert doc["error"] == "DeadlineExceeded"
        assert "flow entry" in doc["message"]
        assert validate_budget_report(doc["budget_report"]) == []
