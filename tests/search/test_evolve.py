"""Evolutionary search: determinism, elitism, resume, budget, CLI."""

import json

from repro.search import Candidate, SearchConfig, run_search
from repro.search.evolve import _fitness, _state_path


def config_for(tmp_path, **kwargs):
    kwargs.setdefault("circuit", "tiny")
    kwargs.setdefault("words", 1)
    kwargs.setdefault("seed", 2008)
    kwargs.setdefault("generations", 2)
    kwargs.setdefault("population", 2)
    kwargs.setdefault("offspring", 3)
    kwargs.setdefault("workers", "serial")
    kwargs.setdefault("state_dir", tmp_path / "state")
    kwargs.setdefault("cache_dir", tmp_path / "cache")
    kwargs.setdefault("results_dir", None)
    return SearchConfig(**kwargs)


class TestFitness:
    BASE_AREA = 30

    def rank(self, *candidates):
        return sorted(candidates,
                      key=lambda c: _fitness(c, self.BASE_AREA, 0),
                      reverse=True)

    def test_false_alarms_disqualify(self):
        clean = Candidate(blif="", origin="a", area=30, coverage=50.0)
        noisy = Candidate(blif="", origin="b", area=20, coverage=99.0,
                          false_alarms=3)
        assert self.rank(noisy, clean)[0] is clean

    def test_golden_invalid_disqualifies(self):
        clean = Candidate(blif="", origin="a", area=30, coverage=50.0)
        broken = Candidate(blif="", origin="b", area=20, coverage=99.0,
                           golden_invalid=1)
        assert self.rank(broken, clean)[0] is clean

    def test_area_budget_disqualifies(self):
        fits = Candidate(blif="", origin="a", area=30, coverage=50.0)
        bloated = Candidate(blif="", origin="b", area=31,
                            coverage=99.0)
        assert self.rank(bloated, fits)[0] is fits
        # ...unless slack admits it.
        assert sorted([bloated, fits],
                      key=lambda c: _fitness(c, 30, 1),
                      reverse=True)[0] is bloated

    def test_qualified_rank_by_coverage_then_area(self):
        small = Candidate(blif="", origin="a", area=10, coverage=60.0)
        big = Candidate(blif="", origin="b", area=20, coverage=60.0)
        better = Candidate(blif="", origin="c", area=30, coverage=70.0)
        assert self.rank(big, small, better) == [better, small, big]

    def test_misfits_still_rank_among_themselves(self):
        worse = Candidate(blif="", origin="a", area=99, coverage=10.0,
                          false_alarms=1)
        less_bad = Candidate(blif="", origin="b", area=99,
                             coverage=40.0, false_alarms=1)
        assert self.rank(worse, less_bad)[0] is less_bad


class TestRunSearch:
    def test_deterministic_and_never_below_baseline(self, tmp_path):
        first = run_search(config_for(tmp_path / "a"))
        second = run_search(config_for(tmp_path / "b"))
        assert first.best.record() == second.best.record()
        assert first.history == second.history
        assert first.generations_run == 2
        # Elitism: the paper-flow baseline is a floor.
        assert (first.best.coverage, -first.best.area) >= \
            (first.baseline.coverage, -first.baseline.area)
        assert first.best.false_alarms == 0
        assert first.best.golden_invalid == 0

    def test_resume_continues_where_it_stopped(self, tmp_path):
        # Generation 1 now; ask for 2 later: the second call must
        # resume from saved state, not restart, and land exactly where
        # an uninterrupted 2-generation run lands.
        shared = dict(state_dir=tmp_path / "state",
                      cache_dir=tmp_path / "cache")
        partial = run_search(config_for(tmp_path, generations=1,
                                        **shared))
        assert partial.generations_run == 1
        resumed = run_search(config_for(tmp_path, generations=2,
                                        **shared))
        assert resumed.generations_run == 2
        oneshot = run_search(config_for(tmp_path / "fresh",
                                        generations=2))
        assert resumed.best.record() == oneshot.best.record()
        assert resumed.history[-1] == oneshot.history[-1]

    def test_state_file_written_per_generation(self, tmp_path):
        config = config_for(tmp_path, generations=1)
        result = run_search(config)
        path = _state_path(config)
        assert result.state_path == path
        doc = json.loads(path.read_text())
        assert doc["digest"] == config.digest()
        assert doc["generation"] == 1
        assert len(doc["population"]) <= config.population
        assert doc["baseline"]["origin"] == "baseline"

    def test_zero_budget_stops_before_first_generation(self, tmp_path):
        result = run_search(config_for(tmp_path, budget_s=0.0))
        assert result.generations_run == 0
        assert result.best.origin == "baseline"
        # State survives, so a budgetless rerun picks up the search.
        resumed = run_search(config_for(tmp_path))
        assert resumed.generations_run == 2

    def test_digest_ignores_execution_knobs(self, tmp_path):
        a = config_for(tmp_path, workers="serial")
        b = config_for(tmp_path, workers=2, backend="workqueue",
                       budget_s=9.0, state_dir=tmp_path / "elsewhere")
        assert a.digest() == b.digest()
        c = config_for(tmp_path, seed=999)
        assert a.digest() != c.digest()


class TestSearchCli:
    def test_search_json_smoke(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "best.blif"
        code = main([
            "search", "--circuit", "tiny", "--words", "1",
            "--generations", "1", "--population", "2",
            "--offspring", "2", "--workers", "serial",
            "--state-dir", str(tmp_path / "state"),
            "--cache-dir", str(tmp_path / "cache"),
            "--results-dir", str(tmp_path / "results"),
            "--out", str(out), "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["circuit"] == "tiny"
        assert doc["generations_run"] == 1
        assert doc["best"]["false_alarms"] == 0
        assert doc["best"]["coverage"] >= doc["baseline"]["coverage"]
        assert out.read_text().startswith(".model")

    def test_search_bogus_backend_exits_2(self, tmp_path, capsys):
        from repro.cli import main
        code = main([
            "search", "--circuit", "tiny", "--generations", "1",
            "--backend", "telegraph", "--workers", "serial",
            "--state-dir", str(tmp_path / "state"), "--no-cache",
            "--results-dir", str(tmp_path / "results"), "--quiet"])
        assert code == 2
        doc = json.loads(capsys.readouterr().err)
        assert doc["error"] == "config"
        assert doc["field"] == "backend"
