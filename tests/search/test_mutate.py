"""Mutation operators: determinism, validity, reachability."""

import random

import numpy as np

from repro.lab.tasks import load_circuit
from repro.network import parse_blif, write_blif
from repro.search import MUTATION_OPS, mutate_network
from repro.search.mutate import mutable_nodes
from repro.sim import BitSimulator

TINY = load_circuit("tiny", 2)


class TestMutate:
    def test_same_seed_same_mutant(self):
        a, log_a = mutate_network(TINY, random.Random(7), moves=3)
        b, log_b = mutate_network(TINY, random.Random(7), moves=3)
        assert log_a == log_b
        assert write_blif(a) == write_blif(b)

    def test_different_seeds_diverge(self):
        seen = {write_blif(mutate_network(TINY,
                                          random.Random(seed))[0])
                for seed in range(20)}
        assert len(seen) > 1

    def test_original_is_untouched(self):
        before = write_blif(TINY)
        mutate_network(TINY, random.Random(1), moves=5)
        assert write_blif(TINY) == before

    def test_mutant_stays_simulable_and_parsable(self):
        for seed in range(15):
            mutant, log = mutate_network(TINY, random.Random(seed),
                                         moves=2)
            assert len(log) == 2
            for entry in log:
                op, _, node = entry.partition("@")
                assert op in MUTATION_OPS
                assert node in mutable_nodes(mutant)
            reparsed = parse_blif(write_blif(mutant))
            sim = BitSimulator(reparsed)
            pi_words = np.full((len(reparsed.inputs), 1), 0xA5A5,
                               dtype=np.uint64)
            values = sim.run(pi_words)
            assert values.shape[1] == 1

    def test_all_ops_reachable(self):
        ops = set()
        for seed in range(60):
            _, log = mutate_network(TINY, random.Random(seed))
            ops.update(entry.split("@")[0] for entry in log)
        assert ops == set(MUTATION_OPS)

    def test_constant_node_only_grows(self):
        net = TINY.copy()
        name = mutable_nodes(net)[0]
        from repro.cubes import Cover
        net.replace_cover(name, Cover.zero(
            len(net.nodes[name].fanins)))
        for seed in range(10):
            mutant, log = mutate_network(net, random.Random(seed),
                                         moves=1)
            if log and log[0].startswith(("cube_drop", "literal_flip")):
                op, _, node = log[0].partition("@")
                assert node != name, \
                    "shrinking op chosen on a constant-0 cover"
