"""Tests for trim_unread_fanins and the eliminate support squeeze."""

from repro.cubes import Cover
from repro.network import Network, eliminate, sweep, trim_unread_fanins


def exhaustive_outputs(net):
    table = []
    for m in range(1 << len(net.inputs)):
        values = {pi: bool(m >> i & 1) for i, pi in enumerate(net.inputs)}
        table.append(tuple(net.evaluate_outputs(values)[o]
                           for o in net.outputs))
    return table


class TestTrimUnreadFanins:
    def test_trims_and_preserves_function(self):
        net = Network()
        for pi in "abc":
            net.add_input(pi)
        net.add_node("t", ["c"], Cover.from_strings(["1"]))
        # y lists t as a fanin but never reads it.
        net.add_node("y", ["a", "b", "t"], Cover.from_strings(["11-"]))
        net.add_output("y")
        before = exhaustive_outputs(net)
        trimmed = trim_unread_fanins(net)
        assert trimmed == 1
        assert net.nodes["y"].fanins == ["a", "b"]
        assert exhaustive_outputs(net) == before

    def test_trim_then_sweep_removes_cone(self):
        net = Network()
        for pi in "abcd":
            net.add_input(pi)
        net.add_node("deep", ["c", "d"], Cover.from_strings(["11"]))
        net.add_node("mid", ["deep"], Cover.from_strings(["0"]))
        net.add_node("y", ["a", "b", "mid"], Cover.from_strings(["11-"]))
        net.add_output("y")
        trim_unread_fanins(net)
        removed = sweep(net)
        assert removed == 2
        assert set(net.nodes) == {"y"}

    def test_noop_when_all_read(self):
        net = Network()
        for pi in "ab":
            net.add_input(pi)
        net.add_node("y", ["a", "b"], Cover.from_strings(["1-", "-1"]))
        net.add_output("y")
        assert trim_unread_fanins(net) == 0

    def test_middle_variable_trim_remaps_masks(self):
        net = Network()
        for pi in "abc":
            net.add_input(pi)
        # Reads a (index 0) and c (index 2); b unread.
        net.add_node("y", ["a", "b", "c"], Cover.from_strings(["1-0"]))
        net.add_output("y")
        before = exhaustive_outputs(net)
        trim_unread_fanins(net)
        assert net.nodes["y"].fanins == ["a", "c"]
        assert net.nodes["y"].cover.to_strings() == ["10"]
        assert exhaustive_outputs(net) == before


class TestEliminateSupportSqueeze:
    def test_composition_dropping_support(self):
        net = Network()
        for pi in "abc":
            net.add_input(pi)
        # t = a | !a  == 1 in disguise; y = t & b.
        net.add_node("t", ["a"], Cover.from_strings(["1", "0"]))
        net.add_node("y", ["t", "b"], Cover.from_strings(["11"]))
        net.add_output("y")
        before = exhaustive_outputs(net)
        eliminate(net)
        assert exhaustive_outputs(net) == before
        # After elimination y must not list 'a' (support vanished).
        assert "a" not in net.nodes["y"].fanins
