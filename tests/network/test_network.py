"""Tests for the Network data structure."""

import pytest

from repro.cubes import Cover
from repro.network import Network, NetworkError, embed


def small_network():
    """y = (a & b) | !c, with an intermediate AND node."""
    net = Network("small")
    for pi in "abc":
        net.add_input(pi)
    net.add_node("t1", ["a", "b"], Cover.from_strings(["11"]))
    net.add_node("y", ["t1", "c"], Cover.from_strings(["1-", "-0"]))
    net.add_output("y")
    return net


class TestConstruction:
    def test_duplicate_signal_rejected(self):
        net = Network()
        net.add_input("a")
        with pytest.raises(NetworkError):
            net.add_input("a")
        with pytest.raises(NetworkError):
            net.add_node("a", [], Cover.zero(0))

    def test_unknown_fanin_rejected(self):
        net = Network()
        with pytest.raises(NetworkError):
            net.add_node("x", ["ghost"], Cover.from_strings(["1"]))

    def test_unknown_output_rejected(self):
        net = Network()
        with pytest.raises(NetworkError):
            net.add_output("ghost")

    def test_const_nodes(self):
        net = Network()
        net.add_const("k1", True)
        net.add_const("k0", False)
        net.add_output("k1")
        net.add_output("k0")
        values = net.evaluate_outputs({})
        assert values == {"k1": True, "k0": False}

    def test_output_can_be_input(self):
        net = Network()
        net.add_input("a")
        net.add_output("a")
        assert net.evaluate_outputs({"a": True}) == {"a": True}


class TestTopology:
    def test_topological_order(self):
        net = small_network()
        order = net.topological_order()
        assert order.index("t1") < order.index("y")

    def test_diamond_is_not_a_cycle(self):
        net = Network()
        net.add_input("a")
        net.add_node("l", ["a"], Cover.from_strings(["1"]))
        net.add_node("r", ["a"], Cover.from_strings(["0"]))
        net.add_node("top", ["l", "r"], Cover.from_strings(["11"]))
        net.add_output("top")
        order = net.topological_order()
        assert order.index("top") == 2

    def test_cycle_detected(self):
        net = small_network()
        with pytest.raises(NetworkError):
            net.replace_node("t1", ["a", "y"], Cover.from_strings(["11"]))

    def test_cycle_rejection_restores_node(self):
        net = small_network()
        try:
            net.replace_node("t1", ["a", "y"], Cover.from_strings(["11"]))
        except NetworkError:
            pass
        assert net.nodes["t1"].fanins == ["a", "b"]
        net.topological_order()  # still valid

    def test_transitive_fanin(self):
        net = small_network()
        tfi = net.transitive_fanin(["t1"])
        assert tfi == {"t1", "a", "b"}

    def test_levels_and_depth(self):
        net = small_network()
        levels = net.level_map()
        assert levels["a"] == 0
        assert levels["t1"] == 1
        assert levels["y"] == 2
        assert net.depth() == 2

    def test_fanouts(self):
        net = small_network()
        fo = net.fanouts()
        assert fo["a"] == ["t1"]
        assert fo["t1"] == ["y"]
        assert fo["y"] == []


class TestEvaluation:
    @pytest.mark.parametrize("a,b,c", [(x, y, z) for x in (0, 1)
                                       for y in (0, 1) for z in (0, 1)])
    def test_matches_reference(self, a, b, c):
        net = small_network()
        out = net.evaluate_outputs({"a": a, "b": b, "c": c})
        assert out["y"] == ((a and b) or not c)


class TestMutation:
    def test_replace_cover(self):
        net = small_network()
        net.replace_cover("t1", Cover.from_strings(["1-", "-1"]))  # OR now
        out = net.evaluate_outputs({"a": True, "b": False, "c": True})
        assert out["y"] is True

    def test_replace_cover_wrong_width(self):
        net = small_network()
        with pytest.raises(NetworkError):
            net.replace_cover("t1", Cover.from_strings(["1"]))

    def test_remove_node_with_fanout_rejected(self):
        net = small_network()
        with pytest.raises(NetworkError):
            net.remove_node("t1")

    def test_remove_free_node(self):
        net = small_network()
        net.add_node("dangling", ["a"], Cover.from_strings(["1"]))
        net.remove_node("dangling")
        assert "dangling" not in net.nodes


class TestCopies:
    def test_copy_is_deep(self):
        net = small_network()
        dup = net.copy()
        dup.replace_cover("t1", Cover.from_strings(["--"]))
        assert net.nodes["t1"].cover.to_strings() == ["11"]

    def test_renamed(self):
        net = small_network()
        dup = net.renamed(lambda s: "x_" + s)
        assert dup.inputs == ["x_a", "x_b", "x_c"]
        assert dup.outputs == ["x_y"]
        out = dup.evaluate_outputs({"x_a": 1, "x_b": 1, "x_c": 1})
        assert out["x_y"] is True

    def test_renamed_keep_inputs(self):
        net = small_network()
        dup = net.renamed(lambda s: "x_" + s, rename_inputs=False)
        assert dup.inputs == ["a", "b", "c"]
        assert dup.outputs == ["x_y"]


class TestEmbed:
    def test_embed_wires_inputs(self):
        host = Network("host")
        for pi in "ab":
            host.add_input(pi)
        host.add_node("inv", ["a"], Cover.from_strings(["0"]))
        guest = Network("guest")
        guest.add_input("p")
        guest.add_input("q")
        guest.add_node("g", ["p", "q"], Cover.from_strings(["11"]))
        guest.add_output("g")
        mapping = embed(host, guest, {"p": "inv", "q": "b"}, "u0_")
        host.add_output(mapping["g"])
        out = host.evaluate_outputs({"a": False, "b": True})
        assert out[mapping["g"]] is True  # !a & b

    def test_embed_unbound_input_rejected(self):
        host = Network()
        guest = Network()
        guest.add_input("p")
        with pytest.raises(NetworkError):
            embed(host, guest, {}, "u_")

    def test_embed_name_collision_avoided(self):
        host = Network()
        host.add_input("a")
        host.add_node("u_g", ["a"], Cover.from_strings(["1"]))
        guest = Network()
        guest.add_input("p")
        guest.add_node("g", ["p"], Cover.from_strings(["0"]))
        mapping = embed(host, guest, {"p": "a"}, "u_")
        assert mapping["g"] != "u_g"
        assert mapping["g"] in host.nodes
