"""Property tests: network transforms preserve circuit function.

Uses the benchmark generator as a source of structurally diverse
networks and bit-parallel simulation as the equivalence oracle.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.bench import random_network
from repro.network import (cleanup, eliminate, propagate_constants,
                           strash, sweep, trim_unread_fanins)
from repro.sim import BitSimulator


def outputs_signature(net, seed=99, n_words=4):
    """Simulation fingerprint of the network's output functions."""
    sim = BitSimulator(net)
    rng = np.random.default_rng(seed)
    pi = sim.random_inputs(rng, n_words)
    values = sim.run(pi)
    return [tuple(values[idx]) for idx in sim.output_indices]


def nets():
    return st.builds(
        lambda seed, nodes: random_network(seed, nodes, 8, 3,
                                           name=f"p{seed}"),
        st.integers(0, 5000), st.integers(8, 40))


class TestTransformEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(nets())
    def test_cleanup_preserves_outputs(self, net):
        before = outputs_signature(net)
        cleanup(net)
        assert outputs_signature(net) == before

    @settings(max_examples=25, deadline=None)
    @given(nets())
    def test_eliminate_preserves_outputs(self, net):
        before = outputs_signature(net)
        eliminate(net, max_support=8)
        assert outputs_signature(net) == before

    @settings(max_examples=25, deadline=None)
    @given(nets())
    def test_strash_preserves_outputs_and_po_names(self, net):
        before = outputs_signature(net)
        pos = list(net.outputs)
        strash(net)
        assert net.outputs == pos, "strash must not rename outputs"
        assert outputs_signature(net) == before

    @settings(max_examples=25, deadline=None)
    @given(nets())
    def test_trim_and_sweep_preserve_outputs(self, net):
        before = outputs_signature(net)
        trim_unread_fanins(net)
        sweep(net)
        assert outputs_signature(net) == before

    @settings(max_examples=25, deadline=None)
    @given(nets())
    def test_propagate_constants_preserves_outputs(self, net):
        before = outputs_signature(net)
        propagate_constants(net)
        assert outputs_signature(net) == before

    @settings(max_examples=15, deadline=None)
    @given(nets())
    def test_transform_pipeline_idempotent_on_size(self, net):
        cleanup(net)
        eliminate(net, max_support=8)
        cleanup(net)
        size_once = net.num_nodes
        cleanup(net)
        assert net.num_nodes == size_once
