"""Regression tests: every mutator invalidates the topo-order cache."""

from repro.cubes import Cover, Cube
from repro.network import Network


def _and2() -> Cover:
    return Cover(2, [Cube.from_string("11")])


def _buf() -> Cover:
    return Cover(1, [Cube.from_string("1")])


def _chain() -> Network:
    net = Network("chain")
    net.add_input("a")
    net.add_input("b")
    net.add_node("n1", ["a", "b"], _and2())
    net.add_node("n2", ["n1"], _buf())
    net.add_output("n2")
    return net


def test_add_node_after_topo_query():
    net = _chain()
    first = net.topological_order()
    assert first == ["n1", "n2"]
    net.add_node("n3", ["n2"], _buf())
    assert net.topological_order() == ["n1", "n2", "n3"]


def test_replace_node_rewires_and_reorders():
    net = _chain()
    net.add_node("n3", ["a"], _buf())
    order = net.topological_order()
    assert order.index("n1") < order.index("n2")
    # Rewire n1 to read n3: n3 must now precede n1.
    net.replace_node("n1", ["n3", "b"], _and2())
    order = net.topological_order()
    assert order.index("n3") < order.index("n1") < order.index("n2")


def test_remove_node_after_topo_query():
    net = _chain()
    net.add_node("n3", ["a"], _buf())
    assert "n3" in net.topological_order()
    net.remove_node("n3")
    assert net.topological_order() == ["n1", "n2"]


def test_failed_replace_restores_cache_consistency():
    net = _chain()
    net.topological_order()
    import pytest
    from repro.network import NetworkError
    with pytest.raises(NetworkError):
        net.replace_node("n1", ["n2", "b"], _and2())  # would be a cycle
    # The rollback must leave a usable (recomputed) order behind.
    assert net.topological_order() == ["n1", "n2"]


def test_add_input_after_topo_query():
    net = _chain()
    net.topological_order()
    net.add_input("c")
    net.add_node("n3", ["c"], _buf())
    assert set(net.topological_order()) == {"n1", "n2", "n3"}


def test_cached_order_is_defensive_copy():
    net = _chain()
    order = net.topological_order()
    order.reverse()
    assert net.topological_order() == ["n1", "n2"]
