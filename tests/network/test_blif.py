"""Tests for BLIF parsing and writing."""

import pytest

from repro.network import BlifError, parse_blif, read_blif, write_blif

EXAMPLE = """
# a comment
.model demo
.inputs a b c
.outputs y
.names a b t1
11 1
.names t1 c y
1- 1
-0 1
.end
"""


class TestParse:
    def test_basic(self):
        net = parse_blif(EXAMPLE)
        assert net.name == "demo"
        assert net.inputs == ["a", "b", "c"]
        assert net.outputs == ["y"]
        out = net.evaluate_outputs({"a": 1, "b": 1, "c": 1})
        assert out["y"] is True

    def test_offset_rows(self):
        text = """
.model offset
.inputs a b
.outputs y
.names a b y
11 0
.end
"""
        net = parse_blif(text)
        # Off-set row 11 means y = !(a & b)
        assert net.evaluate_outputs({"a": 1, "b": 1})["y"] is False
        assert net.evaluate_outputs({"a": 0, "b": 1})["y"] is True

    def test_constant_one(self):
        text = ".model k\n.inputs a\n.outputs y\n.names y\n1\n.end\n"
        net = parse_blif(text)
        assert net.evaluate_outputs({"a": 0})["y"] is True

    def test_constant_zero(self):
        text = ".model k\n.inputs a\n.outputs y\n.names y\n.end\n"
        net = parse_blif(text)
        assert net.evaluate_outputs({"a": 0})["y"] is False

    def test_continuation_lines(self):
        text = (".model c\n.inputs a b\n.outputs y\n"
                ".names a \\\nb y\n11 1\n.end\n")
        net = parse_blif(text)
        assert net.evaluate_outputs({"a": 1, "b": 1})["y"] is True

    def test_mixed_phases_rejected(self):
        text = ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n0 0\n.end\n"
        with pytest.raises(BlifError):
            parse_blif(text)

    def test_bad_row_width_rejected(self):
        text = ".model m\n.inputs a\n.outputs y\n.names a y\n11 1\n.end\n"
        with pytest.raises(BlifError):
            parse_blif(text)

    def test_undefined_output_rejected(self):
        text = ".model m\n.inputs a\n.outputs ghost\n.end\n"
        with pytest.raises(BlifError):
            parse_blif(text)

    def test_unsupported_construct_rejected(self):
        text = ".model m\n.inputs a\n.outputs a\n.latch a b 0\n.end\n"
        with pytest.raises(BlifError):
            parse_blif(text)


class TestRoundtrip:
    def test_write_then_parse_preserves_function(self):
        net = parse_blif(EXAMPLE)
        text = write_blif(net)
        again = parse_blif(text)
        for m in range(8):
            values = {"a": m & 1, "b": m >> 1 & 1, "c": m >> 2 & 1}
            assert (net.evaluate_outputs(values)
                    == again.evaluate_outputs(values))

    def test_write_constants(self):
        text = (".model k\n.inputs a\n.outputs y z\n"
                ".names y\n1\n.names z\n.end\n")
        net = parse_blif(text)
        again = parse_blif(write_blif(net))
        out = again.evaluate_outputs({"a": 0})
        assert out == {"y": True, "z": False}

    def test_file_roundtrip(self, tmp_path):
        net = parse_blif(EXAMPLE)
        path = tmp_path / "demo.blif"
        write_blif(net, path)
        again = read_blif(path)
        assert again.inputs == net.inputs
        assert again.outputs == net.outputs
