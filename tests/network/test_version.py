"""Mutation-version tests: every structural mutator bumps ``version``
and ``changed_signals`` reports sound (never stale) cone information."""

from repro.cubes import Cover, Cube
from repro.network import Network
from repro.network.network import MUTATION_LOG_CAP
from repro.network.transform import (eliminate, propagate_constants,
                                     strash, sweep, trim_unread_fanins)
from repro.synth import QUICK_SCRIPT


def _and2() -> Cover:
    return Cover(2, [Cube.from_string("11")])


def _or2() -> Cover:
    return Cover(2, [Cube.from_string("1-"), Cube.from_string("-1")])


def _buf() -> Cover:
    return Cover(1, [Cube.from_string("1")])


def _net() -> Network:
    net = Network("v")
    net.add_input("a")
    net.add_input("b")
    net.add_node("n1", ["a", "b"], _and2())
    net.add_node("n2", ["n1"], _buf())
    net.add_output("n2")
    return net


# ----------------------------------------------------------------------
# Every structural mutator bumps the version
# ----------------------------------------------------------------------
def test_add_input_bumps_version():
    net = _net()
    v = net.version
    net.add_input("c")
    assert net.version > v


def test_add_output_bumps_version():
    net = _net()
    v = net.version
    net.add_output("n1")
    assert net.version > v


def test_add_node_bumps_version():
    net = _net()
    v = net.version
    net.add_node("n3", ["a"], _buf())
    assert net.version > v


def test_replace_cover_bumps_version():
    net = _net()
    v = net.version
    net.replace_cover("n1", _or2())
    assert net.version > v


def test_replace_node_bumps_version():
    net = _net()
    v = net.version
    net.replace_node("n2", ["a"], _buf())
    assert net.version > v


def test_remove_node_bumps_version():
    net = _net()
    net.add_node("dead", ["a"], _buf())
    v = net.version
    net.remove_node("dead")
    assert net.version > v


def test_transform_mutators_bump_version():
    # Each in-place transform that changes the network must be visible
    # through the version, or downstream caches would serve stale data.
    net = _net()
    net.add_node("dead", ["a"], _buf())
    v = net.version
    assert sweep(net) == 1
    assert net.version > v

    net = _net()
    net.add_input("c")
    net.add_node("k0", ["c"], Cover(1, []))        # constant 0
    net.add_node("n3", ["n1", "k0"], _or2())
    net.add_output("n3")
    v = net.version
    assert propagate_constants(net) > 0
    assert net.version > v

    net = _net()
    v = net.version
    # n1 has a single reader (the buffer n2) and is not an output:
    # eliminate collapses it, so the version must move.
    assert eliminate(net) > 0
    assert net.version > v

    net = _net()
    # Duplicate structure for strash to merge.
    net.add_node("n1b", ["a", "b"], _and2())
    net.add_node("n2b", ["n1b"], _buf())
    net.add_output("n2b")
    v = net.version
    assert strash(net) > 0
    assert net.version > v


def test_trim_unread_fanins_bumps_version():
    net = Network("t")
    net.add_input("a")
    net.add_input("b")
    # n reads b but its cover never uses column 1.
    net.add_node("n", ["a", "b"], Cover(2, [Cube.from_string("1-")]))
    net.add_output("n")
    v = net.version
    assert trim_unread_fanins(net) == 1
    assert net.version > v


def test_mapped_netlist_mutators_bump_version():
    netlist = QUICK_SCRIPT.run(_net())
    v = netlist.version
    netlist.add_input("extra")
    assert netlist.version > v
    v = netlist.version
    netlist.add_gate("g_extra", "INV", ["extra"])
    assert netlist.version > v
    v = netlist.version
    netlist.sweep()
    assert netlist.version > v


# ----------------------------------------------------------------------
# changed_signals semantics
# ----------------------------------------------------------------------
def test_changed_signals_up_to_date_is_empty():
    net = _net()
    assert net.changed_signals(net.version) == frozenset()


def test_changed_signals_accumulates_touched_names():
    net = _net()
    since = net.version
    net.replace_cover("n1", _or2())
    net.replace_node("n2", ["a"], _buf())
    changed = net.changed_signals(since)
    assert changed == frozenset({"n1", "n2"})


def test_changed_signals_none_after_global_invalidate():
    net = _net()
    since = net.version
    net.add_input("c")            # global (no touched set recorded)
    assert net.changed_signals(since) is None


def test_changed_signals_none_when_log_truncated():
    net = _net()
    since = net.version
    for i in range(MUTATION_LOG_CAP + 8):
        cover = _or2() if i % 2 else _and2()
        net.replace_cover("n1", cover)
    # The log no longer reaches back to `since`: the only sound answer
    # is "unknown", never a partial (stale) set.
    assert net.changed_signals(since) is None


def test_changed_signals_at_or_past_current_is_empty():
    net = _net()
    assert net.changed_signals(net.version) == frozenset()
    assert net.changed_signals(net.version + 5) == frozenset()
