"""Tests for DFS input ordering of global BDDs."""

import pytest

from repro.bench import random_network, tiny_benchmark
from repro.cubes import Cover
from repro.network import GlobalBdds, Network, dfs_input_order


class TestDfsOrder:
    def test_all_inputs_present_once(self):
        net = tiny_benchmark(seed=3)
        order = dfs_input_order(net)
        assert sorted(order) == sorted(net.inputs)
        assert len(set(order)) == len(order)

    def test_cone_inputs_adjacent(self):
        """Two disjoint cones: each cone's inputs are contiguous."""
        net = Network()
        for pi in ("a1", "a2", "b1", "b2"):
            net.add_input(pi)
        net.add_node("ya", ["a1", "a2"], Cover.from_strings(["11"]))
        net.add_node("yb", ["b1", "b2"], Cover.from_strings(["1-", "-1"]))
        net.add_output("ya")
        net.add_output("yb")
        order = dfs_input_order(net)
        pos = {pi: i for i, pi in enumerate(order)}
        assert abs(pos["a1"] - pos["a2"]) == 1
        assert abs(pos["b1"] - pos["b2"]) == 1

    def test_unused_inputs_kept_at_end(self):
        net = Network()
        net.add_input("used")
        net.add_input("unused")
        net.add_node("y", ["used"], Cover.from_strings(["1"]))
        net.add_output("y")
        order = dfs_input_order(net)
        assert order == ["used", "unused"]

    def test_build_orders_agree_functionally(self):
        net = random_network(77, 24, 8, 2, name="order")
        dfs = GlobalBdds.build(net, order="dfs")
        natural = GlobalBdds.build(net, order="natural")
        for po in net.outputs:
            # Same probability regardless of variable order.
            assert dfs.minterm_fraction(po) == pytest.approx(
                natural.minterm_fraction(po))

    def test_unknown_order_rejected(self):
        net = tiny_benchmark(seed=3)
        with pytest.raises(ValueError):
            GlobalBdds.build(net, order="sideways")
