"""BLIF round-trips over every bundled benchmark, plus malformed input.

Round-trip criterion: parse(write(net)) is *isomorphic* to net — same
inputs, outputs, node names, fanin lists, and the same set of cubes per
node (cube order may differ; it never does today, but the test should
not depend on that).
"""

import pytest

from repro.bench.suite import (TABLE1_CONE_SPECS, TABLE2_SPECS,
                               load_benchmark, tiny_benchmark)
from repro.network import Network, NetworkError
from repro.network.blif import BlifError, parse_blif, write_blif


def assert_isomorphic(a: Network, b: Network) -> None:
    assert a.inputs == b.inputs
    assert a.outputs == b.outputs
    assert set(a.nodes) == set(b.nodes)
    for name, node in a.nodes.items():
        other = b.nodes[name]
        assert node.fanins == other.fanins, name
        assert node.cover.n == other.cover.n, name
        mine = {(c.ones, c.zeros) for c in node.cover.cubes}
        theirs = {(c.ones, c.zeros) for c in other.cover.cubes}
        assert mine == theirs, name


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(TABLE2_SPECS))
    def test_table2_benchmarks(self, name):
        net = load_benchmark(name, table=2)
        assert_isomorphic(net, parse_blif(write_blif(net)))

    @pytest.mark.parametrize("name", sorted(TABLE1_CONE_SPECS))
    def test_table1_cones(self, name):
        net = load_benchmark(name, table=1)
        assert_isomorphic(net, parse_blif(write_blif(net)))

    def test_tiny(self):
        net = tiny_benchmark()
        assert_isomorphic(net, parse_blif(write_blif(net)))

    def test_double_round_trip(self):
        net = tiny_benchmark()
        again = parse_blif(write_blif(parse_blif(write_blif(net))))
        assert_isomorphic(net, again)

    def test_forward_references_parse(self):
        net = parse_blif(
            ".model fwd\n.inputs a b\n.outputs y\n"
            ".names m y\n1 1\n"        # y reads m, defined below
            ".names a b m\n11 1\n.end\n")
        assert net.topological_order() == ["m", "y"]
        assert net.evaluate_outputs({"a": True, "b": True}) == {"y": True}


MALFORMED = [
    (".model x\n.inputs a\n.outputs y\n.names a y\n1\n.end\n",
     "line 5"),                             # row narrower than fanins
    (".model x\n.inputs a\n.outputs y\n.names a y\n11 1\n.end\n",
     "row width 2"),                        # row wider than fanins
    (".model x\n.inputs a\n.outputs y\n.names a y\n2 1\n.end\n",
     "invalid SOP row character"),
    (".model x\n.inputs a\n.outputs y\n.names a y\n1 x\n.end\n",
     "value must be 0 or 1"),
    (".model x\n.inputs a\n.outputs y\n1 1\n.end\n",
     "outside a .names block"),
    (".model x\n.inputs a a\n.outputs y\n.names a y\n1 1\n.end\n",
     "already declared at line 2"),
    (".model x\n.inputs a\n.outputs y\n.names a\n.names b a\n.end\n",
     "redefines the primary input"),
    (".model x\n.inputs a\n.outputs y\n.names a y\n1 1\n"
     ".names a y\n0 1\n.end\n",
     "already defined at line 4"),
    (".model x\n.inputs a\n.outputs y\n.names a a y\n11 1\n.end\n",
     "repeats a fanin"),
    (".model x\n.inputs a\n.outputs y\n.names\n.end\n",
     "at least an output"),
    (".model x\n.inputs a\n.outputs y\n.names q y\n1 1\n.end\n",
     "fanin 'q' is never defined"),
    (".model x\n.inputs a\n.outputs y\n.names a y\n1 1\n0 0\n.end\n",
     "mixes on-set and off-set"),
    (".model x\n.inputs a\n.outputs y z\n.names a y\n1 1\n.end\n",
     "output 'z' never defined"),
    (".model x\n.inputs a\n.outputs y\n.latch a y\n.end\n",
     "unsupported BLIF construct"),
    (".model x\n.inputs a\n.outputs y\n"
     ".names z y\n1 1\n.names y z\n1 1\n.end\n",
     "combinational cycle"),
]


class TestMalformed:
    @pytest.mark.parametrize("text,fragment", MALFORMED)
    def test_raises_with_location(self, text, fragment):
        with pytest.raises(BlifError) as err:
            parse_blif(text)
        message = str(err.value)
        assert fragment in message, message
        assert message.startswith("<blif>, line "), message

    def test_source_name_appears_in_message(self, tmp_path):
        from repro.network.blif import read_blif
        path = tmp_path / "broken.blif"
        path.write_text(".model x\n.inputs a\n.outputs y\n"
                        ".names a y\n3 1\n.end\n")
        with pytest.raises(BlifError, match="broken.blif, line 5"):
            read_blif(path)

    def test_blif_error_is_network_error(self):
        assert issubclass(BlifError, NetworkError)
