"""Property test: BLIF write/parse round-trips preserve functions."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.bench import random_network
from repro.network import parse_blif, write_blif
from repro.sim import BitSimulator, exhaustive_inputs


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 3000), st.integers(6, 30))
def test_blif_roundtrip_equivalence(seed, nodes):
    net = random_network(seed, nodes, 7, 3, name=f"rt{seed}")
    again = parse_blif(write_blif(net))
    assert again.inputs == net.inputs
    assert again.outputs == net.outputs
    sim_a = BitSimulator(net)
    sim_b = BitSimulator(again)
    rows = exhaustive_inputs(len(net.inputs))
    out_a = sim_a.outputs_of(sim_a.run(rows))
    out_b = sim_b.outputs_of(sim_b.run(rows))
    assert np.array_equal(out_a, out_b)
