"""Tests for network transformations."""

import pytest

from repro.cubes import Cover
from repro.network import (Network, cleanup, eliminate,
                           propagate_constants, strash, sweep)


def exhaustive_outputs(net):
    table = []
    for m in range(1 << len(net.inputs)):
        values = {pi: bool(m >> i & 1) for i, pi in enumerate(net.inputs)}
        table.append(tuple(net.evaluate_outputs(values)[o]
                           for o in net.outputs))
    return table


def build_net_with_dead_logic():
    net = Network()
    for pi in "abc":
        net.add_input(pi)
    net.add_node("live", ["a", "b"], Cover.from_strings(["11"]))
    net.add_node("dead", ["c"], Cover.from_strings(["0"]))
    net.add_node("dead2", ["dead"], Cover.from_strings(["1"]))
    net.add_output("live")
    return net


class TestSweep:
    def test_removes_dead_cone(self):
        net = build_net_with_dead_logic()
        removed = sweep(net)
        assert removed == 2
        assert set(net.nodes) == {"live"}

    def test_noop_on_clean_network(self):
        net = build_net_with_dead_logic()
        sweep(net)
        assert sweep(net) == 0


class TestPropagateConstants:
    def test_constant_and_input(self):
        net = Network()
        net.add_input("a")
        net.add_const("k1", True)
        net.add_node("y", ["a", "k1"], Cover.from_strings(["11"]))
        net.add_output("y")
        before = exhaustive_outputs(net)
        propagate_constants(net)
        assert exhaustive_outputs(net) == before
        assert net.nodes["y"].fanins == ["a"]

    def test_node_that_becomes_constant(self):
        net = Network()
        net.add_input("a")
        net.add_const("k0", False)
        # y = a & 0 == 0; z reads y.
        net.add_node("y", ["a", "k0"], Cover.from_strings(["11"]))
        net.add_node("z", ["y"], Cover.from_strings(["0"]))
        net.add_output("z")
        before = exhaustive_outputs(net)
        propagate_constants(net)
        assert exhaustive_outputs(net) == before
        assert net.nodes["z"].is_constant

    def test_tautology_cover_folds(self):
        net = Network()
        net.add_input("a")
        net.add_node("t", ["a"], Cover.from_strings(["1", "0"]))
        net.add_node("y", ["t", "a"], Cover.from_strings(["11"]))
        net.add_output("y")
        before = exhaustive_outputs(net)
        propagate_constants(net)
        assert exhaustive_outputs(net) == before


class TestEliminate:
    def test_single_fanout_collapse(self):
        net = Network()
        for pi in "abc":
            net.add_input(pi)
        net.add_node("t", ["a", "b"], Cover.from_strings(["11"]))
        net.add_node("y", ["t", "c"], Cover.from_strings(["1-", "-1"]))
        net.add_output("y")
        before = exhaustive_outputs(net)
        count = eliminate(net)
        assert count == 1
        assert "t" not in net.nodes
        assert exhaustive_outputs(net) == before

    def test_multi_fanout_not_collapsed(self):
        net = Network()
        for pi in "ab":
            net.add_input(pi)
        net.add_node("t", ["a", "b"], Cover.from_strings(["11"]))
        net.add_node("u", ["t"], Cover.from_strings(["0"]))
        net.add_node("v", ["t"], Cover.from_strings(["1"]))
        net.add_output("u")
        net.add_output("v")
        assert eliminate(net) == 0
        assert "t" in net.nodes

    def test_support_budget_respected(self):
        net = Network()
        for i in range(6):
            net.add_input(f"i{i}")
        net.add_node("t", [f"i{i}" for i in range(3)],
                     Cover.from_strings(["111"]))
        net.add_node("y", ["t"] + [f"i{i}" for i in range(3, 6)],
                     Cover.from_strings(["1---", "-111"]))
        net.add_output("y")
        assert eliminate(net, max_support=2) == 0


class TestStrash:
    def test_merges_identical_nodes(self):
        net = Network()
        for pi in "ab":
            net.add_input(pi)
        net.add_node("t1", ["a", "b"], Cover.from_strings(["11"]))
        net.add_node("t2", ["a", "b"], Cover.from_strings(["11"]))
        net.add_node("y", ["t1", "t2"], Cover.from_strings(["1-", "-1"]))
        net.add_output("y")
        before = exhaustive_outputs(net)
        merged = strash(net)
        assert merged == 1
        assert exhaustive_outputs(net) == before

    def test_cascaded_merge(self):
        net = Network()
        for pi in "ab":
            net.add_input(pi)
        net.add_node("t1", ["a", "b"], Cover.from_strings(["11"]))
        net.add_node("t2", ["a", "b"], Cover.from_strings(["11"]))
        net.add_node("u1", ["t1"], Cover.from_strings(["0"]))
        net.add_node("u2", ["t2"], Cover.from_strings(["0"]))
        net.add_node("y", ["u1", "u2"], Cover.from_strings(["1-", "-1"]))
        net.add_output("y")
        before = exhaustive_outputs(net)
        merged = strash(net)
        assert merged == 2
        assert exhaustive_outputs(net) == before

    def test_output_rename(self):
        net = Network()
        net.add_input("a")
        net.add_node("t1", ["a"], Cover.from_strings(["0"]))
        net.add_node("t2", ["a"], Cover.from_strings(["0"]))
        net.add_output("t2")
        strash(net)
        assert len(net.nodes) == 1
        survivor = next(iter(net.nodes))
        assert net.outputs == [survivor]


class TestCleanup:
    def test_pipeline_preserves_function(self):
        net = Network()
        for pi in "abc":
            net.add_input(pi)
        net.add_const("k1", True)
        net.add_node("t1", ["a", "k1"], Cover.from_strings(["11"]))
        net.add_node("t2", ["a"], Cover.from_strings(["1"]))
        net.add_node("dead", ["c"], Cover.from_strings(["0"]))
        net.add_node("y", ["t1", "t2", "b"],
                     Cover.from_strings(["11-", "--1"]))
        net.add_output("y")
        before = exhaustive_outputs(net)
        cleanup(net)
        assert exhaustive_outputs(net) == before
        assert "dead" not in net.nodes
