"""Tests for global BDD construction over networks."""

import pytest

from repro.bdd import BddOverflowError
from repro.cubes import Cover
from repro.network import GlobalBdds, Network


def xor_chain(width):
    net = Network("xorchain")
    for i in range(width):
        net.add_input(f"i{i}")
    prev = "i0"
    for i in range(1, width):
        name = f"x{i}"
        net.add_node(name, [prev, f"i{i}"], Cover.from_strings(["10", "01"]))
        prev = name
    net.add_output(prev)
    return net


class TestGlobalBdds:
    def test_matches_evaluation(self):
        net = xor_chain(4)
        bdds = GlobalBdds.build(net)
        f = bdds.function(net.outputs[0])
        for m in range(16):
            values = {f"i{i}": bool(m >> i & 1) for i in range(4)}
            expected = net.evaluate_outputs(values)[net.outputs[0]]
            assert bdds.manager.evaluate(f, m) == expected

    def test_minterm_fraction(self):
        net = xor_chain(3)
        bdds = GlobalBdds.build(net)
        assert bdds.minterm_fraction(net.outputs[0]) == pytest.approx(0.5)

    def test_two_networks_shared_pi_space(self):
        net = xor_chain(3)
        approx = net.copy("approx")
        # Approximate final XOR by AND: strictly fewer minterms.
        approx.replace_cover("x2", Cover.from_strings(["11"]))
        bdds = GlobalBdds.build(net)
        bdds.add_network(approx, prefix="apx_")
        po = net.outputs[0]
        # AND(x1, i2) => XOR(x1, i2) does not hold globally; check the
        # machinery reports implications truthfully in both directions.
        forward = bdds.implies("apx_" + po, po)
        assert forward is False
        assert bdds.equal(po, po)

    def test_const_node(self):
        net = Network()
        net.add_input("a")
        net.add_const("k", True)
        net.add_output("k")
        bdds = GlobalBdds.build(net)
        assert bdds.function("k") == bdds.manager.one

    def test_overflow_budget(self):
        # A multiplier-like function is exponential for interleaved
        # orders; instead just set an absurdly low budget.
        net = xor_chain(12)
        with pytest.raises(BddOverflowError):
            GlobalBdds.build(net, max_nodes=10)

    def test_mismatched_pi_space_rejected(self):
        net = xor_chain(3)
        other = Network()
        other.add_input("zz")
        other.add_node("n", ["zz"], Cover.from_strings(["1"]))
        bdds = GlobalBdds.build(net)
        with pytest.raises(ValueError):
            bdds.add_network(other)
