"""End-to-end tests of the serve application over real sockets.

The service runs in a background thread with its own event loop, on
port 0, with the ``thread`` worker backend (no multiprocessing inside
pytest) and a per-test state directory.  The client is the real
:class:`repro.serve.ServeClient` over :mod:`http.client`, so the whole
wire format is exercised.
"""

import asyncio
import threading

import pytest

from repro.ced import run_ced_flow
from repro.lab.tasks import load_circuit
from repro.network import write_blif
from repro.serve import CedService, ServeClient, ServeConfig, ServeError

TINY = write_blif(load_circuit("tiny", 2))


class ServiceThread:
    """Run one CedService on a private event loop in a thread."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.service = None
        self.error = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            self.service = CedService(self.config)
            try:
                await self.service.start()
            finally:
                self._ready.set()
            await self.service.stopped.wait()
        try:
            asyncio.run(main())
        except Exception as exc:       # surfaced by stop()
            self.error = exc
            self._ready.set()

    def start(self) -> ServeClient:
        self._thread.start()
        assert self._ready.wait(30), "service did not start"
        if self.error is not None:
            raise self.error
        return ServeClient(port=self.service.port, timeout=60.0)

    def stop(self, timeout: float = 60.0) -> None:
        if self.service is not None and self._thread.is_alive():
            self.service.request_drain()
        self._thread.join(timeout)
        assert not self._thread.is_alive(), "service did not drain"
        if self.error is not None:
            raise self.error


@pytest.fixture
def service(tmp_path):
    """A started service; yields (thread-handle, client)."""
    handle = ServiceThread(ServeConfig(
        port=0, workers=2, backend="thread",
        state_dir=str(tmp_path / "state"), default_words=1,
        max_queue=8, tenant_rate=1000.0, tenant_burst=1000.0))
    client = handle.start()
    yield handle, client
    handle.stop()


class TestSubmitAndResult:
    def test_flow_matches_direct_run_bit_identically(self, service):
        _, client = service
        doc = client.run(TINY, words=1, seed=2008)
        direct = run_ced_flow(load_circuit("tiny", 2),
                              reliability_words=1, coverage_words=1,
                              seed=2008)
        assert doc["result"]["summary"] == direct.summary()

    def test_second_submission_is_warm(self, service):
        _, client = service
        first = client.run(TINY, words=1)
        second = client.run(TINY, words=1)
        assert first["stats"]["warm"] is False
        assert second["stats"]["warm"] is True
        assert second["stats"]["resumed_passes"] > 0
        assert first["result"]["summary"] == \
            second["result"]["summary"]
        # Same content routes to the same warm shard.
        assert first["shard"] == second["shard"]

    def test_result_endpoint_before_completion_conflicts(self, service):
        _, client = service
        accepted = client.submit(TINY, words=1)
        try:
            client.result(accepted["job_id"])
        except ServeError as err:
            assert err.status == 409
        else:          # the flow may already be done — equally fine
            pass
        client.wait(accepted["job_id"])

    def test_unknown_job_is_404(self, service):
        _, client = service
        with pytest.raises(ServeError) as err:
            client.job("j999999-deadbeef")
        assert err.value.status == 404

    def test_invalid_blif_is_400(self, service):
        _, client = service
        with pytest.raises(ServeError) as err:
            client.submit("this is not a circuit")
        assert err.value.status == 400
        assert "blif" in err.value.doc["message"].lower()

    def test_raw_blif_body_with_query_params(self, service):
        _, client = service
        status, doc = client._request(
            "POST", "/v1/jobs?words=1&tenant=raw", TINY.encode(),
            content_type="text/plain")
        assert status == 202
        assert doc["tenant"] == "raw"
        state = client.wait(doc["job_id"])
        assert state["state"] == "done"
        assert state["params"]["words"] == 1

    def test_budget_deadline_zero_fails_structured(self, service):
        _, client = service
        accepted = client.submit(TINY, words=1,
                                 budget={"deadline_s": 0})
        state = client.wait(accepted["job_id"])
        assert state["state"] == "failed"
        assert state["error_type"] == "DeadlineExceeded"
        with pytest.raises(ServeError) as err:
            client.result(accepted["job_id"])
        assert err.value.status == 409


class TestEventsStream:
    def test_stream_has_passes_and_terminal_state(self, service):
        _, client = service
        accepted = client.submit(TINY, words=1)
        events = list(client.events(accepted["job_id"]))
        kinds = [e["kind"] for e in events]
        assert kinds.count("pass") >= 6       # the 7 flow passes
        assert kinds[-1] == "state"
        assert events[-1]["state"] == "done"
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
        passes = [e["pass"] for e in events if e["kind"] == "pass"]
        assert "map-original" in passes and "metrics" in passes

    def test_since_filters_already_seen_events(self, service):
        _, client = service
        accepted = client.submit(TINY, words=1)
        client.wait(accepted["job_id"])
        all_events = list(client.events(accepted["job_id"]))
        tail = list(client.events(accepted["job_id"],
                                  since=all_events[2]["seq"]))
        assert [e["seq"] for e in tail] == \
            [e["seq"] for e in all_events[2:]]


class TestBackpressureAndQuota:
    def test_saturated_queue_rejects_with_429(self, tmp_path):
        handle = ServiceThread(ServeConfig(
            port=0, workers=1, backend="thread",
            state_dir=str(tmp_path / "state"), default_words=1,
            max_queue=1, tenant_rate=1000.0, tenant_burst=1000.0))
        client = handle.start()
        try:
            # words=4 keeps the single worker busy long enough for
            # the queue (bound 1) to fill deterministically.
            client.submit(TINY, words=4)
            client.submit(TINY, words=4)
            with pytest.raises(ServeError) as err:
                client.submit(TINY, words=4)
            assert err.value.status == 429
            assert err.value.doc["error"] == "queue_full"
            assert "retry_after_s" in err.value.doc
            stats = client.stats()
            assert stats["counters"]["rejected_queue_full"] >= 1
        finally:
            handle.stop()

    def test_tenant_quota_rejects_and_peers_unaffected(self, tmp_path):
        handle = ServiceThread(ServeConfig(
            port=0, workers=1, backend="thread",
            state_dir=str(tmp_path / "state"), default_words=1,
            max_queue=64, tenant_rate=0.001, tenant_burst=2.0))
        client = handle.start()
        try:
            client.submit(TINY, words=1, tenant="hog")
            client.submit(TINY, words=1, tenant="hog")
            with pytest.raises(ServeError) as err:
                client.submit(TINY, words=1, tenant="hog")
            assert err.value.status == 429
            assert err.value.doc["error"] == "quota_exceeded"
            assert err.value.doc["retry_after_s"] > 0
            # A different tenant is not punished for the hog's storm.
            accepted = client.submit(TINY, words=1, tenant="other")
            assert client.wait(accepted["job_id"])["state"] == "done"
        finally:
            handle.stop()


class TestCancelAndDrain:
    def test_cancel_queued_job(self, tmp_path):
        handle = ServiceThread(ServeConfig(
            port=0, workers=1, backend="thread",
            state_dir=str(tmp_path / "state"), default_words=1,
            max_queue=8, tenant_rate=1000.0, tenant_burst=1000.0))
        client = handle.start()
        try:
            client.submit(TINY, words=4)       # occupies the worker
            queued = client.submit(TINY, words=4)
            doc = client.cancel(queued["job_id"])
            assert doc["state"] == "cancelled"
            state = client.job(queued["job_id"])
            assert state["state"] == "cancelled"
        finally:
            handle.stop()

    def test_drain_finishes_in_flight_work_then_stops(self, service):
        handle, client = service
        accepted = client.submit(TINY, words=2)
        handle.service.request_drain()
        # While draining: health reports it, submissions get 503.
        deadline_doc = None
        try:
            deadline_doc = client.submit(TINY, words=1)
        except ServeError as err:
            assert err.status == 503
            assert err.doc["error"] == "draining"
        except (ConnectionError, OSError):
            pass      # drain already completed and closed the socket
        else:
            pytest.fail(f"draining server accepted {deadline_doc}")
        handle.stop()
        # The in-flight job was finished, not killed.
        job = handle.service.registry.get(accepted["job_id"])
        assert job is not None and job.state == "done"

    def test_stats_document_shape(self, service):
        _, client = service
        client.run(TINY, words=1)
        stats = client.stats()
        assert stats["status"] == "ok"
        assert stats["workers"] == 2
        assert stats["backend"] == "thread"
        assert stats["counters"]["completed"] == 1
        assert stats["queue"]["capacity"] == 8
        assert "proof_cache" in stats
        assert stats["registry"]["done"] == 1
