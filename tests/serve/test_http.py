"""Tests for the hand-rolled HTTP layer (repro.serve.protocol)."""

import asyncio
import json

import pytest

from repro.serve.protocol import (HttpError, end_chunked,
                                  error_response, json_response,
                                  read_request, start_chunked,
                                  write_chunk, write_response)


def parse(raw: bytes, **kwargs):
    """Feed raw bytes to the request parser and return the result."""
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)
    return asyncio.run(go())


class FakeWriter:
    """Collects everything the response helpers write."""

    def __init__(self):
        self.data = bytearray()

    def write(self, chunk: bytes) -> None:
        self.data += chunk

    def head_and_body(self):
        head, _, body = bytes(self.data).partition(b"\r\n\r\n")
        return head.decode("latin-1"), body


class TestReadRequest:
    def test_get_with_query(self):
        req = parse(b"GET /v1/jobs?limit=3&x=#frag HTTP/1.1\r\n"
                    b"Host: h\r\n\r\n")
        assert req.method == "GET"
        assert req.path == "/v1/jobs"
        assert req.query == {"limit": "3", "x": ""}
        assert req.headers["host"] == "h"
        assert req.body == b""

    def test_post_with_body(self):
        body = json.dumps({"blif": ".model m"}).encode()
        req = parse(b"POST /v1/jobs HTTP/1.1\r\n"
                    b"Content-Type: application/json\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body)
        assert req.method == "POST"
        assert req.json() == {"blif": ".model m"}

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_keep_alive_default_and_close(self):
        assert parse(b"GET / HTTP/1.1\r\n\r\n").keep_alive
        req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not req.keep_alive

    def test_percent_decoded_path(self):
        req = parse(b"GET /v1/jobs/j%2D1 HTTP/1.1\r\n\r\n")
        assert req.path == "/v1/jobs/j-1"

    def test_bad_request_line(self):
        with pytest.raises(HttpError) as err:
            parse(b"NONSENSE\r\n\r\n")
        assert err.value.status == 400

    def test_truncated_body(self):
        with pytest.raises(HttpError) as err:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\nhi")
        assert err.value.status == 400

    def test_oversized_body_is_413(self):
        with pytest.raises(HttpError) as err:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\n"
                  + b"x" * 50, max_body=10)
        assert err.value.status == 413

    def test_negative_and_garbage_content_length(self):
        for value in (b"-5", b"ten"):
            with pytest.raises(HttpError):
                parse(b"POST / HTTP/1.1\r\nContent-Length: "
                      + value + b"\r\n\r\n")

    def test_chunked_request_body_rejected(self):
        with pytest.raises(HttpError) as err:
            parse(b"POST / HTTP/1.1\r\n"
                  b"Transfer-Encoding: chunked\r\n\r\n"
                  b"2\r\nhi\r\n0\r\n\r\n")
        assert err.value.status == 400

    def test_too_many_headers(self):
        headers = b"".join(f"H{i}: v\r\n".encode() for i in range(80))
        with pytest.raises(HttpError):
            parse(b"GET / HTTP/1.1\r\n" + headers + b"\r\n")

    def test_bad_json_body(self):
        req = parse(b"POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\n{x}")
        with pytest.raises(HttpError) as err:
            req.json()
        assert err.value.status == 400


class TestResponses:
    def test_plain_response_framing(self):
        writer = FakeWriter()
        write_response(writer, 200, b"hello",
                       content_type="text/plain")
        head, body = writer.head_and_body()
        assert head.startswith("HTTP/1.1 200 OK")
        assert "Content-Length: 5" in head
        assert "Connection: keep-alive" in head
        assert body == b"hello"

    def test_json_response_sorted_and_newline(self):
        writer = FakeWriter()
        json_response(writer, 202, {"b": 1, "a": 2})
        _, body = writer.head_and_body()
        assert body == b'{"a": 2, "b": 1}\n'

    def test_error_response_structure(self):
        writer = FakeWriter()
        error_response(writer, 429, "queue_full", "try later",
                       retry_after_s=1.5)
        head, body = writer.head_and_body()
        assert head.startswith("HTTP/1.1 429 Too Many Requests")
        doc = json.loads(body)
        assert doc == {"error": "queue_full", "status": 429,
                       "message": "try later", "retry_after_s": 1.5}

    def test_chunked_stream_roundtrip(self):
        writer = FakeWriter()
        start_chunked(writer)
        write_chunk(writer, b'{"seq": 0}\n')
        write_chunk(writer, b"")          # dropped, not a terminator
        write_chunk(writer, b'{"seq": 1}\n')
        end_chunked(writer)
        head, body = writer.head_and_body()
        assert "Transfer-Encoding: chunked" in head
        assert "Connection: close" in head
        # Decode the chunked framing by hand.
        decoded, rest = b"", body
        while rest:
            size_hex, _, rest = rest.partition(b"\r\n")
            size = int(size_hex, 16)
            if size == 0:
                break
            decoded, rest = decoded + rest[:size], rest[size + 2:]
        lines = [json.loads(line)
                 for line in decoded.splitlines() if line]
        assert [line["seq"] for line in lines] == [0, 1]
