"""Tests for the serve job model (repro.serve.jobs)."""

from repro.serve.jobs import JobRegistry, ServeJob


def make_job(job_id="j1", **kwargs):
    defaults = dict(job_id=job_id, tenant="t", priority=10,
                    blif=".model m", params={}, shard=0)
    defaults.update(kwargs)
    return ServeJob(**defaults)


class TestServeJob:
    def test_lifecycle_and_events(self):
        job = make_job()
        job.transition("running")
        job.add_event("pass", **{"pass": "map-original"})
        job.transition("done")
        kinds = [e["kind"] for e in job.events]
        assert kinds == ["state", "pass", "state"]
        seqs = [e["seq"] for e in job.events]
        assert seqs == sorted(seqs) == list(range(len(seqs)))
        assert job.terminal
        assert job.finished.is_set()
        assert job.wall_time_s() is not None

    def test_terminal_states_are_final(self):
        job = make_job()
        job.transition("cancelled")
        job.transition("running")      # late event must not resurrect
        job.transition("done")
        assert job.state == "cancelled"

    def test_to_dict_shape(self):
        job = make_job()
        doc = job.to_dict()
        assert doc["state"] == "queued"
        assert doc["queue_time_s"] is None
        assert "result" not in doc
        job.transition("running")
        job.result = {"summary": {"gates": 5}}
        job.transition("done")
        doc = job.to_dict(with_result=True)
        assert doc["result"]["summary"]["gates"] == 5
        assert doc["queue_time_s"] >= 0


class TestJobRegistry:
    def test_ids_are_unique_and_content_tagged(self):
        registry = JobRegistry()
        a = registry.create(tenant="t", priority=1, blif="x",
                            params={}, shard=0)
        b = registry.create(tenant="t", priority=1, blif="x",
                            params={}, shard=0)
        assert a.job_id != b.job_id
        assert a.job_id.split("-")[1] == b.job_id.split("-")[1]
        assert registry.get(a.job_id) is a

    def test_initial_event_present(self):
        registry = JobRegistry()
        job = registry.create(tenant="t", priority=1, blif="x",
                              params={}, shard=0)
        assert job.events[0]["kind"] == "state"
        assert job.events[0]["state"] == "queued"

    def test_retention_evicts_oldest_finished(self):
        registry = JobRegistry(retention=2)
        jobs = []
        for i in range(4):
            job = registry.create(tenant="t", priority=1,
                                  blif=str(i), params={}, shard=0)
            job.transition("done")
            registry.note_finished(job)
            jobs.append(job)
        assert registry.get(jobs[0].job_id) is None
        assert registry.get(jobs[1].job_id) is None
        assert registry.get(jobs[2].job_id) is not None
        assert registry.get(jobs[3].job_id) is not None

    def test_counts_and_recent(self):
        registry = JobRegistry()
        first = registry.create(tenant="t", priority=1, blif="a",
                                params={}, shard=0)
        second = registry.create(tenant="t", priority=1, blif="b",
                                 params={}, shard=0)
        second.submitted_at = first.submitted_at + 1
        first.transition("done")
        counts = registry.counts()
        assert counts["done"] == 1 and counts["queued"] == 1
        assert registry.recent(1)[0] is second
