"""Engine / error-spec submission fields are validated at the door."""

import json

import pytest

from repro.serve import CedService, ServeConfig
from repro.serve.protocol import HttpError, HttpRequest


@pytest.fixture
def service(tmp_path):
    return CedService(ServeConfig(state_dir=str(tmp_path)),
                      log=lambda line: None)


BLIF = ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n"


def json_request(doc):
    return HttpRequest(method="POST", path="/v1/jobs",
                       headers={"content-type": "application/json"},
                       body=json.dumps(doc).encode())


def query_request(query):
    return HttpRequest(method="POST", path="/v1/jobs", query=query,
                       headers={}, body=BLIF.encode())


class TestJsonSubmissions:
    def test_engine_and_error_fold_into_config(self, service):
        _, params = service._parse_submission(json_request(
            {"blif": BLIF, "engine": "resub",
             "error": {"metric": "er", "bound": 0.05}}))
        assert params["config"]["engine"] == "resub"
        assert params["config"]["error"] == {"metric": "er",
                                             "bound": 0.05}

    def test_plain_submission_has_no_config(self, service):
        _, params = service._parse_submission(json_request(
            {"blif": BLIF}))
        assert "config" not in params

    def test_unknown_engine_is_structured_400(self, service):
        with pytest.raises(HttpError) as excinfo:
            service._parse_submission(json_request(
                {"blif": BLIF, "engine": "nope"}))
        assert excinfo.value.status == 400
        assert excinfo.value.detail.get("field") == "engine"

    def test_resub_without_error_is_400(self, service):
        with pytest.raises(HttpError) as excinfo:
            service._parse_submission(json_request(
                {"blif": BLIF, "engine": "resub"}))
        assert excinfo.value.status == 400
        assert excinfo.value.detail.get("field") == "error"

    def test_malformed_error_object_is_400(self, service):
        with pytest.raises(HttpError) as excinfo:
            service._parse_submission(json_request(
                {"blif": BLIF, "engine": "resub", "error": "0.05"}))
        assert excinfo.value.status == 400

    def test_unknown_error_field_is_400(self, service):
        with pytest.raises(HttpError) as excinfo:
            service._parse_submission(json_request(
                {"blif": BLIF, "engine": "resub",
                 "error": {"metric": "er", "bound": 0.05,
                           "confidence": 0.9}}))
        assert excinfo.value.status == 400

    def test_bad_config_object_is_400_not_failed_job(self, service):
        with pytest.raises(HttpError) as excinfo:
            service._parse_submission(json_request(
                {"blif": BLIF, "config": {"sead": 7}}))
        assert excinfo.value.status == 400
        assert "sead" in str(excinfo.value)

    def test_engine_field_overrides_config_engine(self, service):
        _, params = service._parse_submission(json_request(
            {"blif": BLIF, "engine": "resub",
             "config": {"engine": "cube"},
             "error": {"metric": "er", "bound": 0.05}}))
        assert params["config"]["engine"] == "resub"


class TestQuerySubmissions:
    def test_raw_blif_error_flags(self, service):
        blif, params = service._parse_submission(query_request(
            {"engine": "resub", "error_metric": "er",
             "error_bound": "0.05", "error_exact_threshold": "10"}))
        assert blif == BLIF
        assert params["config"]["engine"] == "resub"
        assert params["config"]["error"] == {
            "metric": "er", "bound": 0.05, "exact_threshold": 10}

    def test_raw_blif_bad_bound_is_400(self, service):
        with pytest.raises(HttpError) as excinfo:
            service._parse_submission(query_request(
                {"engine": "resub", "error_metric": "er",
                 "error_bound": "lots"}))
        assert excinfo.value.status == 400
