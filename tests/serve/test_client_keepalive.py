"""ServeClient keep-alive: one socket per thread, not per request.

Regression suite for the reconnect rework: sequential requests reuse
one persistent connection, a dropped socket is replayed transparently
exactly once, and the NDJSON event stream rides its own connection
without disturbing the persistent one.
"""

import threading

import pytest

from repro.serve import ServeClient, ServeError

from .test_service import TINY, service  # noqa: F401  (fixture reuse)


class TestKeepAlive:
    def test_sequential_requests_reuse_one_connection(self, service):
        _, client = service
        for _ in range(6):
            assert client.health()["status"] in ("ok", "draining")
        client.stats()
        client.jobs()
        assert client.connections_opened == 1

    def test_full_flow_on_one_connection(self, service):
        _, client = service
        doc = client.run(TINY, words=1, seed=2008)
        assert doc["state"] == "done"
        # submit + every wait() poll + result: still one socket.
        assert client.connections_opened == 1

    def test_close_then_request_reconnects_once(self, service):
        _, client = service
        client.health()
        assert client.connections_opened == 1
        client.close()
        client.close()                       # idempotent
        client.health()
        assert client.connections_opened == 2
        client.health()
        assert client.connections_opened == 2

    def test_stale_socket_is_replayed_transparently(self, service):
        _, client = service
        client.health()
        # Kill the kept-alive socket out from under the client: the
        # next request hits a dead connection mid-reuse and must be
        # retried once on a fresh one, invisibly to the caller.
        client._local.conn.sock.close()
        assert client.health()["status"] in ("ok", "draining")
        assert client.connections_opened == 2

    def test_fresh_connection_failure_propagates(self):
        client = ServeClient(port=1, timeout=2.0)  # nothing listens
        with pytest.raises(OSError):
            client.health()

    def test_event_stream_leaves_persistent_connection_alone(
            self, service):
        _, client = service
        accepted = client.submit(TINY, words=1, seed=2008)
        opened_before_stream = client.connections_opened
        events = list(client.events(accepted["job_id"]))
        assert events, "expected at least one progress event"
        # events() uses its own throwaway socket, which is not counted
        # and must not invalidate the persistent one.
        assert client.connections_opened == opened_before_stream
        assert client.wait(accepted["job_id"])["state"] == "done"
        assert client.connections_opened == opened_before_stream

    def test_connections_are_per_thread(self, service):
        _, client = service
        client.health()
        seen = []

        def probe():
            seen.append(client.health()["status"])

        threads = [threading.Thread(target=probe) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert len(seen) == 3
        # One socket for the main thread plus one per worker thread.
        assert client.connections_opened == 4

    def test_error_responses_do_not_burn_the_connection(self, service):
        _, client = service
        with pytest.raises(ServeError):
            client.job("no-such-job")
        assert client.health()["status"] in ("ok", "draining")
        assert client.connections_opened == 1
