"""Property-style tests for admission control (repro.serve.quota).

The controller is pure and clock-injected, so these tests drive it
through seeded random interleavings and assert invariants rather than
single scripted scenarios: the queue bound always holds, rejections are
always structured, token buckets never go negative, and two competing
tenants of equal rate are admitted fairly.
"""

import random

import pytest

from repro.serve.quota import Admission, AdmissionController, TokenBucket


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestTokenBucket:
    def test_burst_then_starve_then_refill(self):
        bucket = TokenBucket(rate=1.0, burst=3.0, now=0.0)
        assert [bucket.try_take(0.0) for _ in range(3)] == [True] * 3
        assert not bucket.try_take(0.0)
        assert bucket.retry_after(0.0) == pytest.approx(1.0)
        assert bucket.try_take(1.0)          # one second: one token
        assert not bucket.try_take(1.0)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0, now=0.0)
        bucket.try_take(0.0)
        bucket._refill(100.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_tokens_never_negative(self):
        rng = random.Random(2008)
        bucket = TokenBucket(rate=2.0, burst=4.0, now=0.0)
        now = 0.0
        for _ in range(2000):
            now += rng.random() * 0.1
            bucket.try_take(now, amount=rng.choice([0.5, 1.0, 2.0]))
            assert bucket.tokens >= -1e-9

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)


class TestAdmissionController:
    def test_queue_full_checked_before_quota(self):
        """A saturated queue must never burn the tenant's tokens."""
        clock = FakeClock()
        controller = AdmissionController(capacity=1, tenant_rate=1.0,
                                         tenant_burst=1.0, clock=clock)
        verdict = controller.admit("t", queued=1)
        assert not verdict and verdict.reason == "queue_full"
        # The single burst token must still be there.
        assert controller.admit("t", queued=0).admitted

    def test_quota_rejection_is_structured(self):
        clock = FakeClock()
        controller = AdmissionController(capacity=10, tenant_rate=0.5,
                                         tenant_burst=1.0, clock=clock)
        assert controller.admit("t", queued=0).admitted
        verdict = controller.admit("t", queued=0)
        assert isinstance(verdict, Admission)
        assert verdict.reason == "quota_exceeded"
        assert verdict.retry_after_s == pytest.approx(2.0, abs=0.01)
        assert controller.rejections["quota_exceeded"] == 1

    def test_tenants_do_not_share_buckets(self):
        clock = FakeClock()
        controller = AdmissionController(capacity=10, tenant_rate=0.01,
                                         tenant_burst=1.0, clock=clock)
        assert controller.admit("a", queued=0).admitted
        assert not controller.admit("a", queued=0)
        assert controller.admit("b", queued=0).admitted

    def test_queue_bound_invariant_under_random_load(self):
        """Simulated open-loop load: depth never exceeds capacity."""
        rng = random.Random(7)
        clock = FakeClock()
        controller = AdmissionController(capacity=5, tenant_rate=50.0,
                                         tenant_burst=50.0, clock=clock)
        queued = 0
        max_seen = 0
        for _ in range(5000):
            clock.advance(rng.random() * 0.01)
            if rng.random() < 0.6:           # a submission arrives
                tenant = rng.choice("abc")
                if controller.admit(tenant, queued):
                    queued += 1
            elif queued:                     # the scheduler drains one
                queued -= 1
            max_seen = max(max_seen, queued)
            assert queued <= controller.capacity
        assert max_seen == controller.capacity  # the bound was exercised

    def test_equal_tenants_admitted_fairly(self):
        """Two tenants at equal rates get near-equal admissions even
        when one submits far more aggressively."""
        rng = random.Random(11)
        clock = FakeClock()
        controller = AdmissionController(capacity=1000, tenant_rate=5.0,
                                         tenant_burst=5.0, clock=clock)
        admitted = {"greedy": 0, "polite": 0}
        for _ in range(4000):
            clock.advance(0.01)
            # greedy hammers every tick, polite submits sporadically
            # but well above its refill rate.
            if controller.admit("greedy", queued=0):
                admitted["greedy"] += 1
            if rng.random() < 0.25:
                if controller.admit("polite", queued=0):
                    admitted["polite"] += 1
        # Both are rate-limited to ~ rate * elapsed admissions: the
        # greedy tenant cannot starve the polite one.
        assert admitted["greedy"] == pytest.approx(
            admitted["polite"], rel=0.15)
        assert admitted["greedy"] <= 5.0 * 40 + 5 + 1

    def test_never_deadlocks_when_drained(self):
        """After any rejection storm, a drained queue admits again."""
        rng = random.Random(13)
        clock = FakeClock()
        controller = AdmissionController(capacity=2, tenant_rate=100.0,
                                         tenant_burst=100.0,
                                         clock=clock)
        for _ in range(500):
            controller.admit(rng.choice("ab"), queued=2)
        clock.advance(1.0)
        assert controller.admit("a", queued=0).admitted

    def test_snapshot_is_json_safe(self):
        import json
        clock = FakeClock()
        controller = AdmissionController(capacity=4, clock=clock)
        controller.admit("t", queued=0)
        controller.admit("t", queued=4)
        doc = controller.snapshot()
        json.dumps(doc)
        assert doc["capacity"] == 4
        assert doc["rejections"]["queue_full"] == 1
        assert "t" in doc["tenants"]
