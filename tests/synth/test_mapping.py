"""Tests for technology mapping."""

import pytest

from repro.cubes import Cover
from repro.network import Network
from repro.synth import (Emitter, LIB_GENERIC, LIB_NAND_NOR, LIB_LOWPOWER,
                         MappedNetlist, MappingOptions, technology_map)


def demo_network():
    """y = (a & b) | (!c & d), z = a ^ c."""
    net = Network("demo")
    for pi in "abcd":
        net.add_input(pi)
    net.add_node("y", ["a", "b", "c", "d"],
                 Cover.from_strings(["11--", "--01"]))
    net.add_node("z", ["a", "c"], Cover.from_strings(["10", "01"]))
    net.add_output("y")
    net.add_output("z")
    return net


def equivalent(net, mapped):
    for m in range(1 << len(net.inputs)):
        values = {pi: bool(m >> i & 1) for i, pi in enumerate(net.inputs)}
        if net.evaluate_outputs(values) != mapped.evaluate_outputs(values):
            return False
    return True


class TestTechnologyMap:
    @pytest.mark.parametrize("library", [LIB_GENERIC, LIB_NAND_NOR,
                                         LIB_LOWPOWER])
    def test_equivalence_across_libraries(self, library):
        net = demo_network()
        use_xor = "XOR2" in library
        mapped = technology_map(net, library,
                                MappingOptions(use_xor=use_xor))
        assert equivalent(net, mapped)

    @pytest.mark.parametrize("balanced", [True, False])
    @pytest.mark.parametrize("prefer_wide", [True, False])
    def test_equivalence_across_styles(self, balanced, prefer_wide):
        net = demo_network()
        mapped = technology_map(
            net, LIB_GENERIC,
            MappingOptions(balanced=balanced, prefer_wide=prefer_wide))
        assert equivalent(net, mapped)

    def test_xor_cell_used_when_enabled(self):
        net = demo_network()
        mapped = technology_map(net, LIB_GENERIC,
                                MappingOptions(use_xor=True))
        cells = {g.cell.name for g in mapped.gates.values()}
        assert "XOR2" in cells

    def test_xor_expanded_when_disabled(self):
        net = demo_network()
        mapped = technology_map(net, LIB_GENERIC,
                                MappingOptions(use_xor=False))
        cells = {g.cell.name for g in mapped.gates.values()}
        assert "XOR2" not in cells
        assert equivalent(net, mapped)

    def test_constant_output(self):
        net = Network()
        net.add_input("a")
        net.add_const("k", True)
        net.add_output("k")
        mapped = technology_map(net, LIB_GENERIC)
        assert mapped.evaluate_outputs({"a": False})["k"] is True

    def test_wide_packing_reduces_gates(self):
        net = Network()
        for i in range(8):
            net.add_input(f"i{i}")
        net.add_node("y", [f"i{i}" for i in range(8)],
                     Cover.from_strings(["1" * 8]))
        net.add_output("y")
        narrow = technology_map(net, LIB_GENERIC,
                                MappingOptions(prefer_wide=False))
        wide = technology_map(net, LIB_GENERIC,
                              MappingOptions(prefer_wide=True))
        assert wide.gate_count < narrow.gate_count
        assert equivalent(net, wide)

    def test_po_named_after_logical_output(self):
        net = demo_network()
        mapped = technology_map(net, LIB_GENERIC)
        assert mapped.outputs == ["y", "z"]

    def test_delay_positive_and_area_positive(self):
        mapped = technology_map(demo_network(), LIB_GENERIC)
        assert mapped.delay() > 0
        assert mapped.area() > 0
        assert mapped.gate_count > 0


class TestEmitter:
    def test_inverter_sharing(self):
        netlist = MappedNetlist("t", LIB_GENERIC)
        netlist.add_input("a")
        emitter = Emitter(netlist)
        first = emitter.emit_inv("a")
        second = emitter.emit_inv("a")
        assert first == second
        assert netlist.gate_count == 1

    def test_double_inversion_cancels(self):
        netlist = MappedNetlist("t", LIB_GENERIC)
        netlist.add_input("a")
        emitter = Emitter(netlist)
        inv = emitter.emit_inv("a")
        back = emitter.emit_inv(inv)
        assert back == "a"

    def test_nand_fallback_in_inverting_library(self):
        netlist = MappedNetlist("t", LIB_NAND_NOR)
        for pi in "ab":
            netlist.add_input(pi)
        emitter = Emitter(netlist)
        out = emitter.emit_and(["a", "b"], "g")
        netlist.set_output("o", out)
        assert netlist.evaluate_outputs({"a": 1, "b": 1})["o"] is True
        assert netlist.evaluate_outputs({"a": 1, "b": 0})["o"] is False

    def test_xor_fallback(self):
        netlist = MappedNetlist("t", LIB_NAND_NOR)
        for pi in "ab":
            netlist.add_input(pi)
        out = Emitter(netlist).emit_xor("a", "b")
        netlist.set_output("o", out)
        for a in (0, 1):
            for b in (0, 1):
                got = netlist.evaluate_outputs({"a": a, "b": b})["o"]
                assert got == (a != b)

    def test_tree_of_many_inputs(self):
        netlist = MappedNetlist("t", LIB_GENERIC)
        sigs = [netlist.add_input(f"i{i}") for i in range(9)]
        out = Emitter(netlist).emit_or(sigs, "big")
        netlist.set_output("o", out)
        assert netlist.evaluate_outputs(
            {f"i{i}": 0 for i in range(9)})["o"] is False
        one_hot = {f"i{i}": (i == 7) for i in range(9)}
        assert netlist.evaluate_outputs(one_hot)["o"] is True


class TestNetlistStructure:
    def test_to_network_equivalence(self):
        net = demo_network()
        mapped = technology_map(net, LIB_GENERIC)
        back = mapped.to_network()
        for m in range(16):
            values = {pi: bool(m >> i & 1)
                      for i, pi in enumerate(net.inputs)}
            assert (back.evaluate_outputs(values)
                    == net.evaluate_outputs(values))

    def test_transitive_fanout(self):
        net = demo_network()
        mapped = technology_map(net, LIB_GENERIC)
        tfo = mapped.transitive_fanout("a")
        assert mapped.po_signals["y"] in tfo or \
            mapped.po_signals["z"] in tfo

    def test_merge_from(self):
        host = technology_map(demo_network(), LIB_GENERIC)
        guest = MappedNetlist("g", LIB_GENERIC)
        guest.add_input("p")
        guest.add_gate("q", "INV", ["p"])
        guest.set_output("q", "q")
        mapping = host.merge_from(guest, "u_", {"p": host.po_signals["y"]})
        host.set_output("ny", mapping["q"])
        values = {"a": 1, "b": 1, "c": 0, "d": 0}
        out = host.evaluate_outputs(values)
        assert out["ny"] == (not out["y"])
