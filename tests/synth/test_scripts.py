"""Tests for the named synthesis scripts (the Table 3 machinery)."""

import numpy as np
import pytest

from repro.bench import tiny_benchmark
from repro.sim import BitSimulator, exhaustive_inputs
from repro.synth import (QUICK_SCRIPT, TABLE3_SCRIPTS, SynthesisScript,
                         quick_map)


@pytest.fixture(scope="module")
def net():
    return tiny_benchmark(seed=61)


class TestScripts:
    def test_five_distinct_scripts(self):
        names = [s.name for s in TABLE3_SCRIPTS]
        assert len(set(names)) == 5

    def test_scripts_use_multiple_libraries(self):
        libs = {s.library.name for s in TABLE3_SCRIPTS}
        assert len(libs) >= 2

    @pytest.mark.parametrize("script", TABLE3_SCRIPTS,
                             ids=lambda s: s.name)
    def test_all_scripts_preserve_function(self, net, script):
        mapped = script.run(net)
        sim_net = BitSimulator(net)
        sim_map = BitSimulator(mapped)
        rows = exhaustive_inputs(len(net.inputs))
        out_net = sim_net.outputs_of(sim_net.run(rows))
        out_map = sim_map.outputs_of(sim_map.run(rows))
        assert np.array_equal(out_net, out_map), script.name

    def test_scripts_produce_different_netlists(self, net):
        counts = {s.name: s.run(net).gate_count for s in TABLE3_SCRIPTS}
        assert len(set(counts.values())) >= 2, counts

    def test_script_does_not_mutate_input(self, net):
        before = net.num_nodes
        QUICK_SCRIPT.run(net)
        assert net.num_nodes == before

    def test_quick_map_alias(self, net):
        assert quick_map(net).library.name == \
            QUICK_SCRIPT.library.name

    def test_po_names_preserved(self, net):
        for script in TABLE3_SCRIPTS:
            mapped = script.run(net)
            assert mapped.outputs == net.outputs, script.name
