"""Tests for gate libraries."""

import pytest

from repro.synth import Gate, GateLibrary, LIBRARIES, LIB_GENERIC, \
    LIB_NAND_NOR
from repro.cubes import Cover


class TestGate:
    def test_evaluate_and2(self):
        gate = LIB_GENERIC.get("AND2")
        assert gate.evaluate((True, True))
        assert not gate.evaluate((True, False))

    def test_evaluate_nand3(self):
        gate = LIB_GENERIC.get("NAND3")
        assert gate.evaluate((True, False, True))
        assert not gate.evaluate((True, True, True))

    def test_evaluate_xor(self):
        gate = LIB_GENERIC.get("XOR2")
        assert gate.evaluate((True, False))
        assert not gate.evaluate((True, True))

    def test_num_inputs(self):
        assert LIB_GENERIC.get("INV").num_inputs == 1
        assert LIB_GENERIC.get("OR4").num_inputs == 4
        assert LIB_GENERIC.get("TIE1").num_inputs == 0


class TestLibrary:
    def test_contains(self):
        assert "NAND2" in LIB_GENERIC
        assert "XOR2" not in LIB_NAND_NOR

    def test_get_unknown_cell(self):
        with pytest.raises(KeyError):
            LIB_NAND_NOR.get("AND2")

    def test_duplicate_cell_rejected(self):
        inv = Gate("INV", Cover.from_strings(["0"]), 1, 1)
        with pytest.raises(ValueError):
            GateLibrary("dup", [inv, inv])

    def test_all_libraries_have_tie_and_inv(self):
        for lib in LIBRARIES.values():
            assert "TIE0" in lib and "TIE1" in lib and "INV" in lib

    def test_gate_semantics_sanity(self):
        """Every cell's cover must match its name's semantics."""
        for lib in LIBRARIES.values():
            for cell_name in lib.cells():
                gate = lib.get(cell_name)
                n = gate.num_inputs
                for m in range(1 << n):
                    bits = tuple(bool(m >> i & 1) for i in range(n))
                    expected = _reference(cell_name, bits)
                    if expected is not None:
                        assert gate.evaluate(bits) == expected, \
                            f"{lib.name}:{cell_name} @ {bits}"


def _reference(cell: str, bits):
    if cell == "INV":
        return not bits[0]
    if cell == "BUF":
        return bits[0]
    if cell == "TIE0":
        return False
    if cell == "TIE1":
        return True
    if cell.startswith("NAND"):
        return not all(bits)
    if cell.startswith("NOR"):
        return not any(bits)
    if cell.startswith("AND"):
        return all(bits)
    if cell.startswith("OR"):
        return any(bits)
    if cell == "XOR2":
        return bits[0] != bits[1]
    if cell == "XNOR2":
        return bits[0] == bits[1]
    return None
