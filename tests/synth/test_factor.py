"""Tests for algebraic factoring."""

from hypothesis import given, settings, strategies as st

from repro.cubes import Cover, Cube
from repro.synth import (AndExpr, ConstExpr, Lit, OrExpr, evaluate_expr,
                         factor, literal_count)


def covers(n=4, max_cubes=6):
    def cube_strategy(draw):
        ones = draw(st.integers(0, (1 << n) - 1))
        zeros = draw(st.integers(0, (1 << n) - 1)) & ~ones
        return Cube(n, ones, zeros)
    cube = st.composite(cube_strategy)()
    return st.lists(cube, max_size=max_cubes).map(lambda cs: Cover(n, cs))


class TestFactor:
    def test_constants(self):
        assert factor(Cover.zero(3)) == ConstExpr(False)
        assert factor(Cover.one(3)) == ConstExpr(True)

    def test_single_literal(self):
        expr = factor(Cover.from_strings(["1--"]))
        assert expr == Lit(0, True)

    def test_single_cube(self):
        expr = factor(Cover.from_strings(["10-"]))
        assert isinstance(expr, AndExpr)
        assert set(expr.terms) == {Lit(0, True), Lit(1, False)}

    def test_shared_literal_factored(self):
        # ab + ac should factor to a(b + c): 3 literals, not 4.
        cover = Cover.from_strings(["11-", "1-1"])
        expr = factor(cover)
        assert literal_count(expr) == 3

    def test_factored_form_is_equivalent(self):
        cover = Cover.from_strings(["11-0", "1-10", "--11"])
        expr = factor(cover)
        for m in range(16):
            assert evaluate_expr(expr, m) == cover.evaluate(m)

    def test_or_of_literals(self):
        cover = Cover.from_strings(["1--", "-1-", "--1"])
        expr = factor(cover)
        assert isinstance(expr, OrExpr)
        assert literal_count(expr) == 3


class TestFactorProperties:
    @settings(max_examples=80, deadline=None)
    @given(covers())
    def test_equivalence(self, cover):
        expr = factor(cover)
        for m in range(16):
            assert evaluate_expr(expr, m) == cover.evaluate(m)

    @settings(max_examples=80, deadline=None)
    @given(covers())
    def test_literal_count_never_worse_than_flat(self, cover):
        expr = factor(cover)
        assert literal_count(expr) <= max(cover.num_literals, 1)
