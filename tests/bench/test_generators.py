"""Tests for benchmark generation, the suite, cones, and Figure 1."""

import pytest

from repro.bench import (TABLE1_CONE_SPECS, TABLE2_SPECS, extract_cone,
                         figure1_network, figure1_selections,
                         largest_cone, load_benchmark, random_network,
                         sized_network, tiny_benchmark)
from repro.synth import quick_map


class TestRandomNetwork:
    def test_deterministic(self):
        a = random_network(42, 30, 8, 3)
        b = random_network(42, 30, 8, 3)
        assert list(a.nodes) == list(b.nodes)
        for name in a.nodes:
            assert a.nodes[name].cover.to_strings() == \
                b.nodes[name].cover.to_strings()

    def test_different_seeds_differ(self):
        a = random_network(1, 30, 8, 3)
        b = random_network(2, 30, 8, 3)
        covers_a = [a.nodes[n].cover.to_strings() for n in a.nodes]
        covers_b = [b.nodes[n].cover.to_strings() for n in b.nodes]
        assert covers_a != covers_b

    def test_shape(self):
        net = random_network(7, 50, 10, 4)
        assert len(net.inputs) == 10
        assert len(net.outputs) == 4
        assert net.num_nodes <= 50
        net.topological_order()  # acyclic

    def test_evaluable(self):
        net = random_network(3, 20, 6, 2)
        values = {pi: False for pi in net.inputs}
        out = net.evaluate_outputs(values)
        assert set(out) == set(net.outputs)

    def test_and_bias_skews_probabilities(self):
        from repro.sim import signal_probabilities
        andish = random_network(5, 60, 10, 4, and_bias=0.95,
                                xor_fraction=0.0)
        p = signal_probabilities(andish, n_words=16)
        mean_p = sum(p[o] for o in andish.outputs) / len(andish.outputs)
        assert mean_p < 0.5  # AND-dominated logic is mostly 0


class TestSizedNetwork:
    def test_hits_target_within_tolerance(self):
        target = 200
        net = sized_network(11, target, 20, 5,
                            lambda n: quick_map(n).gate_count)
        gates = quick_map(net).gate_count
        assert abs(gates - target) / target <= 0.25


class TestSuite:
    def test_specs_match_paper_rows(self):
        assert set(TABLE2_SPECS) == {"cmb", "cordic", "term1", "x1", "i2",
                                     "frg2", "dalu", "i10"}
        assert set(TABLE1_CONE_SPECS) == {"i8", "des", "dalu", "i10"}

    def test_load_small_benchmark(self):
        net = load_benchmark("cmb")
        assert len(net.inputs) == 16
        assert len(net.outputs) == 4
        gates = quick_map(net).gate_count
        assert abs(gates - 57) / 57 <= 0.30

    def test_load_cone_benchmark(self):
        net = load_benchmark("i8", table=1)
        assert len(net.outputs) == 1

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            load_benchmark("nosuch")

    def test_cache_returns_same_object(self):
        assert load_benchmark("cmb") is load_benchmark("cmb")


class TestCones:
    def test_extract_cone_function_preserved(self):
        net = tiny_benchmark(seed=9)
        po = net.outputs[0]
        cone = extract_cone(net, po)
        assert cone.outputs == [po]
        for trial in range(16):
            values = {pi: bool(trial >> i & 1)
                      for i, pi in enumerate(net.inputs)}
            cone_values = {pi: values[pi] for pi in cone.inputs}
            assert (cone.evaluate_outputs(cone_values)[po]
                    == net.evaluate_outputs(values)[po])

    def test_extract_cone_drops_unrelated_inputs(self):
        net = tiny_benchmark(seed=9)
        cone = largest_cone(net)
        assert set(cone.inputs) <= set(net.inputs)

    def test_non_output_rejected(self):
        net = tiny_benchmark(seed=9)
        with pytest.raises(ValueError):
            extract_cone(net, "definitely_not_a_po")


class TestFigure1:
    def test_selection_outcomes_match_paper(self):
        sel = figure1_selections()
        # Solution 1: exactly one cube, reading only n2.
        assert sel["solution1"].to_strings() == ["1--"]
        # Solution 2: two conforming cubes.
        assert sorted(sel["solution2"].to_strings()) == ["--1", "1--"]
        # ODC selection discovers the additional cube -11.
        odc_cubes = set(sel["odc"].to_strings())
        assert "-11" in odc_cubes
        assert "1--" in odc_cubes

    def test_odc_richer_than_exact(self):
        sel = figure1_selections()
        assert sel["solution1"].implies(sel["odc"])
        assert not sel["odc"].implies(sel["solution1"])

    def test_network_is_well_formed(self):
        net = figure1_network()
        assert net.outputs == ["n5"]
        out = net.evaluate_outputs(
            {"a": 1, "b": 1, "c": 0, "d": 0})
        assert out["n5"] is True  # n1=ab=1 -> n2=1 -> n5=1
