"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.network import read_blif


@pytest.fixture
def blif_path(tmp_path):
    path = tmp_path / "demo.blif"
    path.write_text("""
.model demo
.inputs a b c
.outputs y z
.names a b t1
11 1
.names t1 c y
1- 1
-0 1
.names a c z
11 1
.end
""")
    return path


class TestInfo:
    def test_prints_structure(self, blif_path, capsys):
        assert main(["info", "--blif", str(blif_path)]) == 0
        out = capsys.readouterr().out
        assert "inputs   : 3" in out
        assert "outputs  : 2" in out
        assert "mapped" in out


class TestSynth:
    def test_writes_correct_approximation(self, blif_path, tmp_path,
                                          capsys):
        out_path = tmp_path / "approx.blif"
        code = main(["synth", "--blif", str(blif_path),
                     "--out", str(out_path),
                     "--cube-drop-threshold", "0.3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "correct       : True" in out
        approx = read_blif(out_path)
        assert set(approx.outputs) == {"y", "z"}

    def test_forced_direction(self, blif_path, tmp_path, capsys):
        out_path = tmp_path / "approx.blif"
        assert main(["synth", "--blif", str(blif_path),
                     "--out", str(out_path), "--direction", "1"]) == 0
        out = capsys.readouterr().out
        assert "1-approximation" in out

    def test_synthesized_blif_is_an_implication(self, blif_path,
                                                tmp_path):
        out_path = tmp_path / "approx.blif"
        main(["synth", "--blif", str(blif_path), "--out", str(out_path),
              "--direction", "1", "--cube-drop-threshold", "0.3"])
        original = read_blif(blif_path)
        approx = read_blif(out_path)
        for m in range(8):
            values = {pi: bool(m >> i & 1)
                      for i, pi in enumerate(original.inputs)}
            o = original.evaluate_outputs(values)
            a = approx.evaluate_outputs(
                {pi: values[pi] for pi in approx.inputs})
            for po in original.outputs:
                assert (not a[po]) or o[po], (po, values)


class TestCed:
    def test_report(self, blif_path, capsys):
        assert main(["ced", "--blif", str(blif_path),
                     "--words", "2"]) == 0
        out = capsys.readouterr().out
        assert "achieved CED coverage" in out
        assert "area overhead" in out

    def test_share_logic_flag(self, blif_path, capsys):
        assert main(["ced", "--blif", str(blif_path), "--words", "2",
                     "--share-logic"]) == 0
        assert "shared gates" in capsys.readouterr().out

    def test_writes_generator(self, blif_path, tmp_path, capsys):
        out_path = tmp_path / "gen.blif"
        assert main(["ced", "--blif", str(blif_path), "--words", "2",
                     "--out", str(out_path)]) == 0
        assert out_path.exists()


class TestCedJson:
    def test_machine_readable_report(self, blif_path, capsys):
        assert main(["ced", "--blif", str(blif_path), "--words", "2",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["circuit"] == "demo"
        summary = doc["summary"]
        for key in ("gates", "area_overhead_pct", "ced_coverage_pct",
                    "max_ced_coverage_pct", "approximation_pct"):
            assert key in summary
        # The summary round-trips losslessly through JSON.
        assert json.loads(json.dumps(summary)) == summary
        assert doc["coverage"]["runs"] > 0
        assert set(doc["directions"]) == {"y", "z"}

    def test_json_matches_summary_json(self, blif_path, capsys):
        from repro.approx import ApproxConfig
        from repro.ced import run_ced_flow
        assert main(["ced", "--blif", str(blif_path), "--words", "2",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        flow = run_ced_flow(read_blif(blif_path),
                            config=ApproxConfig(seed=2008),
                            reliability_words=2, coverage_words=2,
                            seed=2008)
        assert json.loads(flow.summary_json()) == doc["summary"]


class TestCedBudget:
    def test_chaos_run_reports_budget_and_exits_zero(self, blif_path,
                                                     capsys):
        assert main(["ced", "--blif", str(blif_path), "--words", "1",
                     "--chaos", "bdd-overflow,sat-exhausted",
                     "--budget-deadline", "600", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        report = doc["budget_report"]
        assert report["chaos"] == ["bdd-overflow", "sat-exhausted"]
        assert report["degraded"] is True
        assert doc["trace"]["budget"] == report

    def test_text_report_mentions_budget(self, blif_path, capsys):
        assert main(["ced", "--blif", str(blif_path), "--words", "1",
                     "--chaos", "sat-exhausted"]) == 0
        out = capsys.readouterr().out
        assert "budget                : engine=conformance" in out

    def test_deadline_zero_exits_with_budget_status(self, blif_path,
                                                    capsys):
        from repro.cli import EXIT_BUDGET_EXCEEDED
        code = main(["ced", "--blif", str(blif_path), "--words", "1",
                     "--budget-deadline", "0"])
        assert code == EXIT_BUDGET_EXCEEDED == 3
        err = json.loads(capsys.readouterr().err)
        assert err["error"] == "DeadlineExceeded"
        assert "flow entry" in err["message"]

    def test_no_budget_flags_mean_no_budget(self, blif_path, capsys):
        assert main(["ced", "--blif", str(blif_path), "--words", "1",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "budget_report" not in doc


class TestSweep:
    def _sweep(self, tmp_path, *extra):
        return ["sweep", "--circuits", "tiny", "--words", "1",
                "--results-dir", str(tmp_path / "results"),
                "--cache-dir", str(tmp_path / "cache"),
                "--quiet", *extra]

    def test_grid_runs_and_writes_manifest(self, tmp_path, capsys):
        from repro.lab import load_manifest, validate_manifest
        code = main(self._sweep(
            tmp_path, "--workers", "2", "--run-id", "s1",
            "--dc-thresholds", "0.25,0.5"))
        assert code == 0
        out = capsys.readouterr().out
        assert "tiny/dc0.25/drop0.02" in out
        assert "manifest:" in out
        doc = load_manifest(
            tmp_path / "results" / "runs" / "s1" / "manifest.json")
        assert validate_manifest(doc) == []
        assert len(doc["jobs"]) == 2
        assert all(j["status"] == "ok" for j in doc["jobs"].values())

    def test_rerun_resumes_from_cache(self, tmp_path, capsys):
        from repro.lab import load_manifest
        assert main(self._sweep(tmp_path, "--workers", "serial",
                                "--run-id", "first")) == 0
        capsys.readouterr()
        assert main(self._sweep(tmp_path, "--workers", "serial",
                                "--run-id", "second")) == 0
        capsys.readouterr()
        doc = load_manifest(tmp_path / "results" / "runs" / "second"
                            / "manifest.json")
        statuses = [j["status"] for j in doc["jobs"].values()]
        assert statuses == ["cached"]

    def test_serial_and_parallel_identical(self, tmp_path, capsys):
        summaries = {}
        for label, workers in (("serial", "serial"), ("pool", "2")):
            code = main(self._sweep(
                tmp_path, "--workers", workers, "--json", "--no-cache",
                "--run-id", label, "--dc-thresholds", "0.25,0.5"))
            assert code == 0
            doc = json.loads(capsys.readouterr().out)
            summaries[label] = {name: job["summary"]
                                for name, job in doc["jobs"].items()}
        assert summaries["serial"] == summaries["pool"]

    def test_failed_job_reported_not_fatal(self, tmp_path, capsys):
        code = main(["sweep", "--circuits", "tiny,doesnotexist",
                     "--words", "1", "--workers", "serial",
                     "--results-dir", str(tmp_path / "results"),
                     "--cache-dir", str(tmp_path / "cache"),
                     "--quiet", "--json", "--run-id", "partial"])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["jobs"]["tiny"]["status"] == "ok"
        assert doc["jobs"]["doesnotexist"]["status"] == "failed"
        assert "KeyError" in doc["jobs"]["doesnotexist"]["error"]

    def test_per_job_seeds(self, tmp_path, capsys):
        from repro.lab import derive_seed, load_manifest
        assert main(self._sweep(
            tmp_path, "--workers", "serial", "--per-job-seeds",
            "--run-id", "seeded", "--seed", "42")) == 0
        doc = load_manifest(tmp_path / "results" / "runs" / "seeded"
                            / "manifest.json")
        entry = doc["jobs"]["tiny"]
        assert entry["params"]["seed"] == derive_seed(42, "tiny")


class TestGen:
    def test_exports_benchmark(self, tmp_path, capsys):
        out_path = tmp_path / "cmb.blif"
        assert main(["gen", "--name", "cmb",
                     "--out", str(out_path)]) == 0
        net = read_blif(out_path)
        assert len(net.inputs) == 16
        assert len(net.outputs) == 4

    def test_unknown_benchmark_raises(self, tmp_path):
        with pytest.raises(KeyError):
            main(["gen", "--name", "nope",
                  "--out", str(tmp_path / "x.blif")])


class TestParser:
    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_help_exits_cleanly(self):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0


class TestCache:
    def _populate(self, blif_path, proof_dir):
        assert main(["ced", "--blif", str(blif_path), "--words", "2",
                     "--proof-cache-dir", str(proof_dir)]) == 0

    def test_stats_and_prune(self, blif_path, tmp_path, capsys):
        proof_dir = tmp_path / "proofs"
        self._populate(blif_path, proof_dir)
        capsys.readouterr()
        assert main(["cache", "--dir", str(proof_dir), "--json",
                     "stats"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] > 0 and stats["bytes"] > 0
        assert main(["cache", "--dir", str(proof_dir), "--json",
                     "prune", "--max-size", "0"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["removed"] == stats["entries"]
        assert report["kept_entries"] == 0

    def test_json_flag_accepted_after_subcommand(self, blif_path,
                                                 tmp_path, capsys):
        # ``cache stats --json`` (flag trailing the subcommand) must
        # work exactly like ``cache --json stats``.
        proof_dir = tmp_path / "proofs"
        self._populate(blif_path, proof_dir)
        capsys.readouterr()
        assert main(["cache", "--dir", str(proof_dir), "stats",
                     "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] > 0
        assert main(["cache", "--dir", str(proof_dir), "prune",
                     "--max-size", "0", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["removed"] == stats["entries"]

    def test_stats_without_json_is_text(self, tmp_path, capsys):
        assert main(["cache", "--dir", str(tmp_path / "none"),
                     "stats"]) == 0
        out = capsys.readouterr().out
        assert "proof cache" in out and "0 entries" in out

    def test_bad_size_suffix_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "--dir", str(tmp_path), "prune",
                  "--max-size", "10Q"])

    def test_corrupted_entry_reproved_transparently(self, blif_path,
                                                    tmp_path, capsys):
        # A flipped verdict with a stale digest must be detected,
        # evicted, and re-proved — never served.
        proof_dir = tmp_path / "proofs"
        self._populate(blif_path, proof_dir)
        capsys.readouterr()
        entries = sorted(proof_dir.glob("*/*.json"))
        assert entries
        victim = next(p for p in entries
                      if "holds" in json.loads(p.read_text()))
        doc = json.loads(victim.read_text())
        doc["holds"] = not doc["holds"]     # digest now mismatches
        victim.write_text(json.dumps(doc))
        assert main(["ced", "--blif", str(blif_path), "--words", "2",
                     "--proof-cache-dir", str(proof_dir),
                     "--json"]) == 0
        rerun = json.loads(capsys.readouterr().out)
        assert rerun["summary"]["approximation_pct"] > 0
        # The tampered entry was replaced by a fresh, valid proof.
        fresh = json.loads(victim.read_text())
        from repro.lab import ProofCache
        assert fresh["digest"] == ProofCache._digest(fresh)


class TestServe:
    def test_parser_flags_and_defaults(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "3",
             "--backend", "thread", "--state-dir", "/tmp/x",
             "--budget-deadline", "30"])
        assert args.func.__name__ == "cmd_serve"
        assert args.port == 0 and args.workers == 3
        assert args.backend == "thread"
        assert args.budget_deadline == 30.0
        assert args.max_queue == 16
        assert args.tenant_rate == 8.0 and args.tenant_burst == 16.0
        assert args.drain_timeout == 60.0
        assert args.words == 2 and args.seed == 2008

    def test_config_construction_matches_flags(self):
        from repro.serve import ServeConfig
        config = ServeConfig(port=0, workers=4, backend="thread",
                             budget_deadline_s=10.0)
        assert config.budget_deadline_s == 10.0
        with pytest.raises(ValueError):
            ServeConfig(backend="fibers")
        with pytest.raises(ValueError):
            ServeConfig(workers=0)


class TestAnalyze:
    def test_text_report(self, blif_path, capsys):
        assert main(["analyze", "--blif", str(blif_path)]) == 0
        out = capsys.readouterr().out
        assert "circuit   : demo" in out
        assert "constants" in out
        assert "fixpoint" in out

    def test_json_report_shape(self, blif_path, capsys):
        assert main(["analyze", "--blif", str(blif_path),
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["circuit"] == "demo"
        for key in ("constants", "dead_cones", "sdc_cubes",
                    "structural_duplicates", "unateness",
                    "probability_intervals", "fixpoint"):
            assert key in doc

    def test_cache_round_trip(self, blif_path, tmp_path, capsys):
        cache = tmp_path / "acache"
        assert main(["analyze", "--blif", str(blif_path),
                     "--cache-dir", str(cache), "--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(["analyze", "--blif", str(blif_path),
                     "--cache-dir", str(cache)]) == 0
        assert "[cached]" in capsys.readouterr().out
        assert main(["analyze", "--blif", str(blif_path),
                     "--cache-dir", str(cache), "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == cold


class TestLintSarif:
    @pytest.fixture
    def dirty_path(self, tmp_path):
        # k is constant 0, so t is too: guaranteed lint findings.
        path = tmp_path / "dirty.blif"
        path.write_text("""
.model dirty
.inputs a b
.outputs y
.names k
.names a k t
11 1
.names t b y
1- 1
-1 1
.end
""")
        return path

    def test_sarif_log_is_written_and_valid(self, dirty_path,
                                            tmp_path, capsys):
        from repro.lint import validate_sarif
        log = tmp_path / "out.sarif"
        assert main(["lint", "--blif", str(dirty_path),
                     "--sarif", str(log)]) == 0
        doc = json.loads(log.read_text())
        assert validate_sarif(doc) == []
        assert doc["runs"][0]["results"]

    def test_baseline_suppresses_known_findings(self, dirty_path,
                                                tmp_path, capsys):
        from repro.lint import new_results
        base = tmp_path / "baseline.sarif"
        assert main(["lint", "--blif", str(dirty_path),
                     "--sarif", str(base)]) == 0
        capsys.readouterr()
        log = tmp_path / "rerun.sarif"
        assert main(["lint", "--blif", str(dirty_path),
                     "--sarif", str(log), "--baseline", str(base)]) == 0
        captured = capsys.readouterr()
        assert "suppressed by baseline" in captured.err
        assert new_results(json.loads(log.read_text())) == []

    def test_unreadable_baseline_exits_2(self, dirty_path, tmp_path,
                                         capsys):
        code = main(["lint", "--blif", str(dirty_path),
                     "--baseline", str(tmp_path / "missing.sarif")])
        assert code == 2
        assert "cannot read baseline" in capsys.readouterr().err

    def test_unwritable_sarif_path_exits_2(self, dirty_path, tmp_path,
                                           capsys):
        code = main(["lint", "--blif", str(dirty_path), "--sarif",
                     str(tmp_path / "no" / "such" / "dir.sarif")])
        assert code == 2
        assert "cannot write SARIF log" in capsys.readouterr().err


class TestSweepConfigErrors:
    """Bad runtime configuration exits 2 with a JSON document, not a
    traceback — scripts driving sweeps can parse the failure."""

    def test_bogus_workers_exits_2_with_json(self, tmp_path, capsys):
        code = main(["sweep", "--circuits", "tiny",
                     "--workers", "bogus", "--no-cache", "--quiet",
                     "--results-dir", str(tmp_path / "results")])
        assert code == 2
        doc = json.loads(capsys.readouterr().err)
        assert doc["error"] == "config"
        assert doc["field"] == "workers"
        assert "bogus" in doc["value"]

    def test_bogus_env_workers_exits_2(self, tmp_path, capsys,
                                       monkeypatch):
        monkeypatch.setenv("REPRO_LAB_WORKERS", "not-a-number")
        code = main(["sweep", "--circuits", "tiny", "--no-cache",
                     "--quiet",
                     "--results-dir", str(tmp_path / "results")])
        assert code == 2
        doc = json.loads(capsys.readouterr().err)
        assert doc["field"] == "REPRO_LAB_WORKERS"

    def test_bogus_backend_exits_2(self, tmp_path, capsys):
        code = main(["sweep", "--circuits", "tiny",
                     "--backend", "smoke-signals", "--workers",
                     "serial", "--no-cache", "--quiet",
                     "--results-dir", str(tmp_path / "results")])
        assert code == 2
        doc = json.loads(capsys.readouterr().err)
        assert doc["error"] == "config"
        assert doc["field"] == "backend"
