"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.network import read_blif


@pytest.fixture
def blif_path(tmp_path):
    path = tmp_path / "demo.blif"
    path.write_text("""
.model demo
.inputs a b c
.outputs y z
.names a b t1
11 1
.names t1 c y
1- 1
-0 1
.names a c z
11 1
.end
""")
    return path


class TestInfo:
    def test_prints_structure(self, blif_path, capsys):
        assert main(["info", "--blif", str(blif_path)]) == 0
        out = capsys.readouterr().out
        assert "inputs   : 3" in out
        assert "outputs  : 2" in out
        assert "mapped" in out


class TestSynth:
    def test_writes_correct_approximation(self, blif_path, tmp_path,
                                          capsys):
        out_path = tmp_path / "approx.blif"
        code = main(["synth", "--blif", str(blif_path),
                     "--out", str(out_path),
                     "--cube-drop-threshold", "0.3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "correct       : True" in out
        approx = read_blif(out_path)
        assert set(approx.outputs) == {"y", "z"}

    def test_forced_direction(self, blif_path, tmp_path, capsys):
        out_path = tmp_path / "approx.blif"
        assert main(["synth", "--blif", str(blif_path),
                     "--out", str(out_path), "--direction", "1"]) == 0
        out = capsys.readouterr().out
        assert "1-approximation" in out

    def test_synthesized_blif_is_an_implication(self, blif_path,
                                                tmp_path):
        out_path = tmp_path / "approx.blif"
        main(["synth", "--blif", str(blif_path), "--out", str(out_path),
              "--direction", "1", "--cube-drop-threshold", "0.3"])
        original = read_blif(blif_path)
        approx = read_blif(out_path)
        for m in range(8):
            values = {pi: bool(m >> i & 1)
                      for i, pi in enumerate(original.inputs)}
            o = original.evaluate_outputs(values)
            a = approx.evaluate_outputs(
                {pi: values[pi] for pi in approx.inputs})
            for po in original.outputs:
                assert (not a[po]) or o[po], (po, values)


class TestCed:
    def test_report(self, blif_path, capsys):
        assert main(["ced", "--blif", str(blif_path),
                     "--words", "2"]) == 0
        out = capsys.readouterr().out
        assert "achieved CED coverage" in out
        assert "area overhead" in out

    def test_share_logic_flag(self, blif_path, capsys):
        assert main(["ced", "--blif", str(blif_path), "--words", "2",
                     "--share-logic"]) == 0
        assert "shared gates" in capsys.readouterr().out

    def test_writes_generator(self, blif_path, tmp_path, capsys):
        out_path = tmp_path / "gen.blif"
        assert main(["ced", "--blif", str(blif_path), "--words", "2",
                     "--out", str(out_path)]) == 0
        assert out_path.exists()


class TestGen:
    def test_exports_benchmark(self, tmp_path, capsys):
        out_path = tmp_path / "cmb.blif"
        assert main(["gen", "--name", "cmb",
                     "--out", str(out_path)]) == 0
        net = read_blif(out_path)
        assert len(net.inputs) == 16
        assert len(net.outputs) == 4

    def test_unknown_benchmark_raises(self, tmp_path):
        with pytest.raises(KeyError):
            main(["gen", "--name", "nope",
                  "--out", str(tmp_path / "x.blif")])


class TestParser:
    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_help_exits_cleanly(self):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
