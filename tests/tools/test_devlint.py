"""Devlint self-checks: each rule fires on a seeded violation and
stays quiet on the idiomatic fix."""

import textwrap

from tools.devlint import check_paths, check_source, main


def _rules(source, path="src/repro/serve/app.py"):
    return [f.rule for f in check_source(textwrap.dedent(source),
                                         path)]


# ----------------------------------------------------------------------
# async-blocking
# ----------------------------------------------------------------------

def test_blocking_sleep_in_async_serve_code():
    src = """
    import time
    async def handler():
        time.sleep(1)
    """
    assert _rules(src) == ["async-blocking"]


def test_blocking_subprocess_and_open():
    src = """
    import subprocess
    async def handler():
        subprocess.run(["ls"])
        open("/tmp/x")
    """
    assert _rules(src) == ["async-blocking", "async-blocking"]


def test_blocking_pathlib_attribute():
    src = """
    async def handler(path):
        return path.read_text()
    """
    assert _rules(src) == ["async-blocking"]


def test_sync_code_may_block():
    src = """
    import time
    def worker():
        time.sleep(1)
    """
    assert _rules(src) == []


def test_nested_sync_def_inside_async_may_block():
    # The nested def doesn't run in the event-loop turn; it is handed
    # to an executor/thread by whoever calls it.
    src = """
    import time
    async def handler(loop):
        def blocking():
            time.sleep(1)
        await loop.run_in_executor(None, blocking)
    """
    assert _rules(src) == []


def test_async_blocking_only_applies_to_serve_modules():
    src = """
    import time
    async def helper():
        time.sleep(1)
    """
    assert _rules(src, path="src/repro/flow/analysis.py") == []


# ----------------------------------------------------------------------
# lock-across-await
# ----------------------------------------------------------------------

def test_lock_held_across_await():
    src = """
    async def handler(self):
        with self._lock:
            await self.flush()
    """
    assert _rules(src, path="src/repro/lab/executor.py") \
        == ["lock-across-await"]


def test_async_with_lock_is_fine():
    src = """
    async def handler(self):
        async with self._lock:
            await self.flush()
    """
    assert _rules(src, path="src/repro/lab/executor.py") == []


def test_lock_without_await_is_fine():
    src = """
    async def handler(self):
        with self._lock:
            self.count += 1
        await self.flush()
    """
    assert _rules(src, path="src/repro/lab/executor.py") == []


def test_lock_await_in_nested_def_is_fine():
    src = """
    async def handler(self):
        with self._lock:
            async def later():
                await self.flush()
            self.cb = later
    """
    assert _rules(src, path="src/repro/lab/executor.py") == []


# ----------------------------------------------------------------------
# bare-except
# ----------------------------------------------------------------------

def test_bare_except_fires_anywhere():
    src = """
    def load():
        try:
            return 1
        except:
            return None
    """
    assert _rules(src, path="src/repro/flow/analysis.py") \
        == ["bare-except"]


def test_typed_except_is_fine():
    src = """
    def load():
        try:
            return 1
        except Exception:
            return None
    """
    assert _rules(src, path="src/repro/flow/analysis.py") == []


# ----------------------------------------------------------------------
# suppression, syntax errors, CLI
# ----------------------------------------------------------------------

def test_targeted_suppression():
    src = """
    import time
    async def handler():
        time.sleep(1)  # devlint: ignore[async-blocking]
    """
    assert _rules(src) == []


def test_suppression_of_other_rule_does_not_apply():
    src = """
    import time
    async def handler():
        time.sleep(1)  # devlint: ignore[bare-except]
    """
    assert _rules(src) == ["async-blocking"]


def test_blanket_suppression():
    src = """
    def load():
        try:
            return 1
        except:  # devlint: ignore
            return None
    """
    assert _rules(src, path="src/repro/x.py") == []


def test_syntax_error_is_reported_not_raised():
    findings = check_source("def broken(:\n", "src/repro/x.py")
    assert [f.rule for f in findings] == ["syntax-error"]


def test_repo_tree_is_clean():
    assert check_paths(["src/repro"]) == []


def test_main_exit_status(tmp_path, capsys):
    bad = tmp_path / "serve" / "mod.py"
    bad.parent.mkdir()
    bad.write_text("import time\n"
                   "async def f():\n"
                   "    time.sleep(1)\n")
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "async-blocking" in out and "1 finding(s)" in out
    assert main(["src/repro"]) == 0
