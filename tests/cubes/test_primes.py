"""Tests for prime implicant generation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cubes import (Cover, Cube, essential_primes, is_prime,
                         minimize, prime_implicants)


def covers(n=4, max_cubes=5):
    def cube_strategy(draw):
        ones = draw(st.integers(0, (1 << n) - 1))
        zeros = draw(st.integers(0, (1 << n) - 1)) & ~ones
        return Cube(n, ones, zeros)
    cube = st.composite(cube_strategy)()
    return st.lists(cube, max_size=max_cubes).map(lambda cs: Cover(n, cs))


class TestPrimeImplicants:
    def test_xor_primes(self):
        f = Cover.from_strings(["10", "01"])
        primes = prime_implicants(f)
        assert sorted(primes.to_strings()) == ["01", "10"]

    def test_consensus_discovered(self):
        # a!c + bc has consensus ab.
        f = Cover.from_strings(["1-0", "-11"])
        primes = prime_implicants(f)
        assert "11-" in primes.to_strings()

    def test_tautology(self):
        f = Cover.from_strings(["1-", "0-"])
        primes = prime_implicants(f)
        assert primes.to_strings() == ["--"]

    def test_empty(self):
        assert prime_implicants(Cover.zero(3)).is_zero()


class TestIsPrime:
    def test_prime_and_nonprime(self):
        f = Cover.from_strings(["1-", "-1"])
        assert is_prime(Cube.from_string("1-"), f)
        assert not is_prime(Cube.from_string("11"), f)  # expandable

    def test_non_implicant(self):
        f = Cover.from_strings(["11"])
        assert not is_prime(Cube.from_string("1-"), f)


class TestEssentialPrimes:
    def test_xor_all_essential(self):
        f = Cover.from_strings(["10", "01"])
        essentials = essential_primes(f)
        assert sorted(essentials.to_strings()) == ["01", "10"]

    def test_consensus_cube_not_essential(self):
        # Primes of a!c + bc + ab: the consensus ab is non-essential.
        f = Cover.from_strings(["1-0", "-11"])
        essentials = essential_primes(f)
        assert "11-" not in essentials.to_strings()
        assert len(essentials) == 2


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(covers())
    def test_all_primes_are_prime(self, f):
        primes = prime_implicants(f)
        for cube in primes.cubes:
            assert is_prime(cube, f)

    @settings(max_examples=40, deadline=None)
    @given(covers())
    def test_complete_sum_equals_function(self, f):
        primes = prime_implicants(f)
        for m in range(16):
            assert primes.evaluate(m) == f.evaluate(m)

    @settings(max_examples=30, deadline=None)
    @given(covers())
    def test_minimized_cubes_are_primes(self, f):
        """Espresso EXPAND must leave only prime implicants."""
        result = minimize(f)
        for cube in result.cubes:
            assert is_prime(cube, f)

    @settings(max_examples=30, deadline=None)
    @given(covers())
    def test_essential_primes_subset_of_primes(self, f):
        primes = set(prime_implicants(f).cubes)
        for cube in essential_primes(f).cubes:
            assert cube in primes
