"""Unit and property tests for SOP covers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cubes import Cover, Cube


def covers(n=4, max_cubes=5):
    """Strategy generating random covers over n variables."""
    def cube_strategy(draw):
        ones = draw(st.integers(0, (1 << n) - 1))
        zeros = draw(st.integers(0, (1 << n) - 1)) & ~ones
        return Cube(n, ones, zeros)
    cube = st.composite(cube_strategy)()
    return st.lists(cube, max_size=max_cubes).map(lambda cs: Cover(n, cs))


def truth_table(cover):
    return [cover.evaluate(m) for m in range(1 << cover.n)]


class TestConstruction:
    def test_zero_and_one(self):
        assert Cover.zero(3).is_zero()
        assert Cover.one(3).is_tautology()

    def test_from_strings(self):
        f = Cover.from_strings(["1--", "-1-"])
        assert f.evaluate(0b001)
        assert f.evaluate(0b010)
        assert not f.evaluate(0b100)

    def test_from_strings_empty_rejected(self):
        with pytest.raises(ValueError):
            Cover.from_strings([])

    def test_mismatched_cube_rejected(self):
        with pytest.raises(ValueError):
            Cover(3, [Cube.full(2)])

    def test_literal(self):
        f = Cover.literal(3, 1, 1)
        assert f.evaluate(0b010)
        assert not f.evaluate(0b000)


class TestTautologyAndContainment:
    def test_tautology_of_x_or_not_x(self):
        f = Cover.from_strings(["1--", "0--"])
        assert f.is_tautology()

    def test_non_tautology(self):
        assert not Cover.from_strings(["1--"]).is_tautology()

    def test_covers_cube(self):
        f = Cover.from_strings(["11-", "10-"])
        assert f.covers_cube(Cube.from_string("1--"))
        assert not f.covers_cube(Cube.from_string("0--"))

    def test_implies(self):
        small = Cover.from_strings(["11-"])
        big = Cover.from_strings(["1--"])
        assert small.implies(big)
        assert not big.implies(small)

    def test_semantic_equality(self):
        a = Cover.from_strings(["1--", "-1-"])
        b = Cover.from_strings(["-1-", "10-"])
        assert a == b


class TestBooleanOps:
    def test_union(self):
        a = Cover.from_strings(["1--"])
        b = Cover.from_strings(["-1-"])
        u = a.union(b)
        assert u.evaluate(0b001) and u.evaluate(0b010)

    def test_intersection(self):
        a = Cover.from_strings(["1--"])
        b = Cover.from_strings(["-1-"])
        inter = a.intersection(b)
        assert inter.evaluate(0b011)
        assert not inter.evaluate(0b001)

    def test_complement_of_and(self):
        f = Cover.from_strings(["11"])
        comp = f.complement()
        for m in range(4):
            assert comp.evaluate(m) == (not f.evaluate(m))

    def test_sharp(self):
        a = Cover.from_strings(["1--"])
        b = Cover.from_strings(["11-"])
        diff = a.sharp(b)
        assert diff.evaluate(0b001)
        assert not diff.evaluate(0b011)


class TestCleanup:
    def test_sccc_removes_contained(self):
        f = Cover.from_strings(["1--", "11-"])
        assert f.sccc().to_strings() == ["1--"]

    def test_irredundant_collapses_to_single_cube(self):
        # --1 alone covers both other cubes.
        f = Cover.from_strings(["1-1", "0-1", "--1"])
        result = f.irredundant()
        assert len(result) == 1
        assert truth_table(result) == truth_table(f)

    def test_irredundant_removes_consensus_cube(self):
        # 1-1 and 0-1 jointly cover -11; none is singly contained.
        f = Cover.from_strings(["1-1", "0-1", "-11"])
        result = f.irredundant()
        assert len(result) == 2
        assert truth_table(result) == truth_table(f)

    def test_disjoint_preserves_function(self):
        f = Cover.from_strings(["1--", "-1-", "--1"])
        dis = f.disjoint()
        assert truth_table(f) == truth_table(dis)
        for i, a in enumerate(dis.cubes):
            for b in dis.cubes[i + 1:]:
                assert not a.intersects(b)


class TestCounting:
    def test_count_minterms(self):
        f = Cover.from_strings(["1--", "-1-"])
        assert f.count_minterms() == 6

    def test_paper_example_counts(self):
        # F = a + b + !c!d + cd over (a, b, c, d): 14 minterms;
        # G = a + b: 12 minterms (Sec 2 of the paper).
        f = Cover.from_strings(["1---", "-1--", "--00", "--11"])
        g = Cover.from_strings(["1---", "-1--"])
        assert f.count_minterms() == 14
        assert g.count_minterms() == 12

    def test_probability_uniform(self):
        f = Cover.from_strings(["1--", "-1-"])
        assert f.probability() == pytest.approx(6 / 8)

    def test_probability_biased(self):
        f = Cover.from_strings(["1-"])
        assert f.probability([0.9, 0.5]) == pytest.approx(0.9)

    def test_iter_minterms(self):
        f = Cover.from_strings(["11-", "--1"])
        ms = sorted(f.iter_minterms())
        assert ms == sorted(m for m in range(8) if f.evaluate(m))


class TestProperties:
    @settings(max_examples=60)
    @given(covers())
    def test_complement_is_semantic(self, f):
        comp = f.complement()
        for m in range(16):
            assert comp.evaluate(m) == (not f.evaluate(m))

    @settings(max_examples=60)
    @given(covers())
    def test_tautology_is_semantic(self, f):
        assert f.is_tautology() == all(truth_table(f))

    @settings(max_examples=60)
    @given(covers(), covers())
    def test_intersection_semantics(self, a, b):
        inter = a.intersection(b)
        for m in range(16):
            assert inter.evaluate(m) == (a.evaluate(m) and b.evaluate(m))

    @settings(max_examples=60)
    @given(covers())
    def test_count_matches_truth_table(self, f):
        assert f.count_minterms() == sum(truth_table(f))

    @settings(max_examples=60)
    @given(covers())
    def test_irredundant_preserves_function(self, f):
        assert truth_table(f.irredundant()) == truth_table(f)

    @settings(max_examples=60)
    @given(covers(), covers())
    def test_implies_is_semantic(self, a, b):
        claimed = a.implies(b)
        actual = all((not a.evaluate(m)) or b.evaluate(m) for m in range(16))
        assert claimed == actual
