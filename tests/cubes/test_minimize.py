"""Tests for the espresso-style minimizer."""

from hypothesis import given, settings, strategies as st

from repro.cubes import Cover, Cube, expand, irredundant, minimize, reduce_cover


def covers(n=4, max_cubes=5):
    def cube_strategy(draw):
        ones = draw(st.integers(0, (1 << n) - 1))
        zeros = draw(st.integers(0, (1 << n) - 1)) & ~ones
        return Cube(n, ones, zeros)
    cube = st.composite(cube_strategy)()
    return st.lists(cube, max_size=max_cubes).map(lambda cs: Cover(n, cs))


def truth_table(cover):
    return [cover.evaluate(m) for m in range(1 << cover.n)]


class TestExpand:
    def test_expand_merges_adjacent_minterms(self):
        f = Cover.from_strings(["11", "10"])
        result = expand(f)
        assert result.to_strings() == ["1-"]

    def test_expand_with_dc(self):
        f = Cover.from_strings(["11"])
        dc = Cover.from_strings(["10"])
        result = expand(f, dc)
        assert result.to_strings() == ["1-"]

    def test_expand_preserves_function_without_dc(self):
        f = Cover.from_strings(["110", "100", "001"])
        assert truth_table(expand(f)) == truth_table(f)


class TestReduce:
    def test_reduce_drops_fully_covered_cube(self):
        f = Cover.from_strings(["1--", "11-"])
        result = reduce_cover(f)
        assert truth_table(result) == truth_table(f)

    def test_reduce_shrinks_overlap(self):
        # Two overlapping cubes; reduce should shrink at least one.
        f = Cover.from_strings(["1-", "-1"])
        result = reduce_cover(f)
        assert truth_table(result) == truth_table(f)


class TestMinimize:
    def test_xor_cover_is_already_minimal(self):
        f = Cover.from_strings(["10", "01"])
        result = minimize(f)
        assert len(result) == 2
        assert truth_table(result) == truth_table(f)

    def test_redundant_cover_shrinks(self):
        f = Cover.from_strings(["1-1", "0-1", "--1", "11-"])
        result = minimize(f)
        assert truth_table(result) == truth_table(f)
        assert len(result) < len(f)

    def test_minimize_zero(self):
        assert minimize(Cover.zero(3)).is_zero()

    def test_minimize_tautology(self):
        f = Cover.from_strings(["1--", "0--"])
        result = minimize(f)
        assert result.is_tautology()
        assert len(result) == 1

    def test_minimize_with_dc_uses_dc(self):
        f = Cover.from_strings(["11"])
        dc = Cover.from_strings(["10", "01"])
        result = minimize(f, dc)
        # With those don't cares, a single one-literal cube suffices.
        assert result.num_literals == 1


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(covers())
    def test_minimize_preserves_function(self, f):
        assert truth_table(minimize(f)) == truth_table(f)

    @settings(max_examples=40, deadline=None)
    @given(covers())
    def test_minimize_never_increases_cost(self, f):
        result = minimize(f)
        assert len(result) <= len(f.sccc()) or \
            result.num_literals <= f.num_literals

    @settings(max_examples=40, deadline=None)
    @given(covers(), covers())
    def test_minimize_with_dc_stays_in_bounds(self, f, dc):
        result = minimize(f, dc)
        for m in range(16):
            if f.evaluate(m) and not dc.evaluate(m):
                assert result.evaluate(m)          # onset preserved
            if not f.evaluate(m) and not dc.evaluate(m):
                assert not result.evaluate(m)      # offset preserved
