"""Unit and property tests for the Cube primitive."""

import pytest
from hypothesis import given, strategies as st

from repro.cubes import Cube


def cubes(n=4):
    """Strategy generating valid cubes over n variables."""
    def build(draw):
        ones = draw(st.integers(0, (1 << n) - 1))
        zeros = draw(st.integers(0, (1 << n) - 1)) & ~ones
        return Cube(n, ones, zeros)
    return st.composite(build)()


class TestConstruction:
    def test_full_cube_has_no_literals(self):
        c = Cube.full(3)
        assert c.num_literals == 0
        assert c.minterm_count() == 8

    def test_from_string_roundtrip(self):
        for text in ["1-0", "---", "111", "000", "0-1-"]:
            assert Cube.from_string(text).to_string() == text

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            Cube.from_string("1x0")

    def test_contradictory_literals_rejected(self):
        with pytest.raises(ValueError):
            Cube(2, ones=0b01, zeros=0b01)

    def test_out_of_range_mask_rejected(self):
        with pytest.raises(ValueError):
            Cube(2, ones=0b100)

    def test_from_minterm(self):
        c = Cube.from_minterm(3, 0b101)
        assert c.to_string() == "101"
        assert c.minterm_count() == 1

    def test_from_minterm_out_of_range(self):
        with pytest.raises(ValueError):
            Cube.from_minterm(2, 0b100)

    def test_immutability(self):
        c = Cube.full(2)
        with pytest.raises(AttributeError):
            c.ones = 3


class TestLiterals:
    def test_literal_accessor(self):
        c = Cube.from_string("1-0")
        assert c.literal(0) == "1"
        assert c.literal(1) == "-"
        assert c.literal(2) == "0"

    def test_support_mask(self):
        assert Cube.from_string("1-0").support == 0b101

    def test_with_literal_then_without(self):
        c = Cube.full(3).with_literal(1, 1)
        assert c.literal(1) == "1"
        assert c.without_literal(1) == Cube.full(3)

    def test_with_literal_contradiction(self):
        c = Cube.from_string("0--")
        with pytest.raises(ValueError):
            c.with_literal(0, 1)


class TestAlgebra:
    def test_containment(self):
        big = Cube.from_string("1--")
        small = Cube.from_string("1-0")
        assert big.contains(small)
        assert not small.contains(big)

    def test_intersection_disjoint(self):
        a = Cube.from_string("1--")
        b = Cube.from_string("0--")
        assert a.intersection(b) is None
        assert a.distance(b) == 1

    def test_intersection_overlap(self):
        a = Cube.from_string("1--")
        b = Cube.from_string("-0-")
        assert a.intersection(b) == Cube.from_string("10-")

    def test_supercube(self):
        a = Cube.from_string("10-")
        b = Cube.from_string("11-")
        assert a.supercube(b) == Cube.from_string("1--")

    def test_consensus(self):
        a = Cube.from_string("1-1")
        b = Cube.from_string("0-1")
        assert a.consensus(b) == Cube.from_string("--1")

    def test_consensus_distance_two_is_none(self):
        a = Cube.from_string("11-")
        b = Cube.from_string("00-")
        assert a.consensus(b) is None

    def test_cofactor(self):
        c = Cube.from_string("1-0")
        assert c.cofactor(0, 1) == Cube.from_string("--0")
        assert c.cofactor(0, 0) is None

    def test_cofactor_cube(self):
        c = Cube.from_string("1-0")
        other = Cube.from_string("1--")
        assert c.cofactor_cube(other) == Cube.from_string("--0")
        assert c.cofactor_cube(Cube.from_string("0--")) is None


class TestEvaluation:
    def test_evaluate(self):
        c = Cube.from_string("1-0")
        assert c.evaluate(0b001)       # x0=1, x2=0
        assert c.evaluate(0b011)
        assert not c.evaluate(0b101)   # x2=1
        assert not c.evaluate(0b000)   # x0=0

    def test_iter_minterms_matches_count(self):
        c = Cube.from_string("1--0")
        minterms = list(c.iter_minterms())
        assert len(minterms) == c.minterm_count() == 4
        assert all(c.evaluate(m) for m in minterms)


class TestProperties:
    @given(cubes(), cubes())
    def test_containment_is_semantic(self, a, b):
        claimed = a.contains(b)
        actual = all(a.evaluate(m) for m in b.iter_minterms())
        assert claimed == actual

    @given(cubes(), cubes())
    def test_intersection_is_semantic(self, a, b):
        inter = a.intersection(b)
        for m in range(16):
            both = a.evaluate(m) and b.evaluate(m)
            assert both == (inter is not None and inter.evaluate(m))

    @given(cubes(), cubes())
    def test_supercube_contains_both(self, a, b):
        sup = a.supercube(b)
        assert sup.contains(a) and sup.contains(b)

    @given(cubes())
    def test_minterm_count_matches_enumeration(self, c):
        assert c.minterm_count() == sum(c.evaluate(m) for m in range(16))

    @given(cubes(), cubes())
    def test_consensus_covered_by_union(self, a, b):
        cons = a.consensus(b)
        if cons is not None:
            for m in cons.iter_minterms():
                assert a.evaluate(m) or b.evaluate(m)
