"""Tests for type assignment."""

import pytest

from repro.approx import (ApproxConfig, NodeType, assign_types,
                          fanin_requests, local_observabilities,
                          resolve_type, type_histogram)
from repro.cubes import Cover
from repro.network import Network


class TestResolveType:
    def test_rules_in_order(self):
        Z, O, E, D = (NodeType.ZERO, NodeType.ONE, NodeType.EX,
                      NodeType.DC)
        assert resolve_type({E, Z}) == E          # any EX -> EX
        assert resolve_type({D}) == D             # all DC -> DC
        assert resolve_type({Z, D}) == Z          # 0/DC -> 0
        assert resolve_type({Z}) == Z
        assert resolve_type({O, D}) == O          # 1/DC -> 1
        assert resolve_type({O, Z}) == E          # conflict -> EX
        assert resolve_type(set()) == D           # unread -> DC


class TestLocalObservability:
    def test_and_gate_observabilities(self):
        # F = ab: a observable iff b=1.  obs1(a)=P(a=1,b=1)=1/4,
        # obs0(a)=P(a=0,b=1)=1/4.
        obs = local_observabilities(Cover.from_strings(["11"]))
        assert obs[0].obs0 == pytest.approx(0.25)
        assert obs[0].obs1 == pytest.approx(0.25)

    def test_or_with_biased_probs(self):
        # F = a+b: a observable iff b=0.
        obs = local_observabilities(Cover.from_strings(["1-", "-1"]),
                                    [0.5, 0.9])
        assert obs[0].obs0 == pytest.approx(0.5 * 0.1)
        assert obs[0].obs1 == pytest.approx(0.5 * 0.1)

    def test_unread_variable_has_zero_observability(self):
        # F = a (b unread).
        obs = local_observabilities(Cover.from_strings(["1-"]))
        assert obs[1].total == 0.0

    def test_skewed_observability(self):
        # F = a & !b | a & b & c: flipping a matters often; direction of
        # a's observability skews with the cover structure.
        cover = Cover.from_strings(["10-", "111"])
        obs = local_observabilities(cover)
        assert obs[0].total > obs[2].total


class TestFaninRequests:
    def test_dc_node_requests_dc(self):
        reqs = fanin_requests(Cover.from_strings(["11"]), [0.5, 0.5],
                              NodeType.DC, ApproxConfig())
        assert reqs == [NodeType.DC, NodeType.DC]

    def test_unread_fanin_requested_dc(self):
        reqs = fanin_requests(Cover.from_strings(["1-"]), [0.5, 0.5],
                              NodeType.ONE, ApproxConfig())
        assert reqs[1] == NodeType.DC

    def test_balanced_observability_phase_tiebreak(self):
        # AND gate: obs0 == obs1 for both fanins; the phase-aware
        # tiebreak sees only positive literals and requests ONE.
        reqs = fanin_requests(Cover.from_strings(["11"]), [0.5, 0.5],
                              NodeType.ONE, ApproxConfig())
        assert reqs == [NodeType.ONE, NodeType.ONE]

    def test_balanced_observability_requests_ex_paper_literal(self):
        # With the phase tiebreak disabled (paper-literal rule iii),
        # comparable observabilities yield EX.
        reqs = fanin_requests(
            Cover.from_strings(["11"]), [0.5, 0.5], NodeType.ONE,
            ApproxConfig(phase_aware_requests=False))
        assert reqs == [NodeType.EX, NodeType.EX]

    def test_disparity_requests_direction(self):
        # F = a | b with P(b=1)=0.9: a observable iff b=0, and then a=0
        # w.p. 0.5 / a=1 w.p. 0.5 -> balanced.  Use biased a instead:
        # P(a=1)=0.9 makes obs1(a) >> obs0(a) -> request ONE.
        reqs = fanin_requests(Cover.from_strings(["1-", "-1"]),
                              [0.9, 0.5], NodeType.ONE,
                              ApproxConfig(disparity_ratio=2.0,
                                           dc_threshold=0.0))
        assert reqs[0] == NodeType.ONE

    def test_ex_node_conservative_mode(self):
        reqs = fanin_requests(
            Cover.from_strings(["11"]), [0.5, 0.5], NodeType.EX,
            ApproxConfig(conservative_ex=True))
        assert reqs == [NodeType.EX, NodeType.EX]

    def test_ex_node_uniform_rules_by_default(self):
        # Paper-uniform: EX nodes hand out requests like any other node.
        reqs = fanin_requests(Cover.from_strings(["11"]), [0.5, 0.5],
                              NodeType.EX, ApproxConfig())
        assert reqs == [NodeType.ONE, NodeType.ONE]


class TestAssignTypes:
    def build(self):
        net = Network()
        for pi in "abcd":
            net.add_input(pi)
        net.add_node("t1", ["a", "b"], Cover.from_strings(["11"]))
        net.add_node("t2", ["c", "d"], Cover.from_strings(["1-", "-1"]))
        net.add_node("y", ["t1", "t2"], Cover.from_strings(["1-", "-1"]))
        net.add_output("y")
        return net

    def test_po_driver_gets_output_direction(self):
        net = self.build()
        types = assign_types(net, {"y": 1})
        assert types["y"] == NodeType.ONE
        types0 = assign_types(net, {"y": 0})
        assert types0["y"] == NodeType.ZERO

    def test_all_nodes_typed(self):
        net = self.build()
        types = assign_types(net, {"y": 1})
        assert set(types) == {"t1", "t2", "y"}

    def test_missing_direction_rejected(self):
        net = self.build()
        with pytest.raises(ValueError):
            assign_types(net, {})

    def test_pi_output_skipped(self):
        net = Network()
        net.add_input("a")
        net.add_node("n", ["a"], Cover.from_strings(["1"]))
        net.add_output("n")
        net.add_output("a")
        types = assign_types(net, {"n": 1, "a": 0})
        assert "a" not in types

    def test_conflicting_outputs_make_ex(self):
        net = Network()
        for pi in "ab":
            net.add_input(pi)
        net.add_node("y", ["a", "b"], Cover.from_strings(["11"]))
        net.add_output("y")
        net.add_output("y")  # same driver, two outputs
        types = assign_types(net, {"y": 1})
        assert types["y"] == NodeType.ONE  # same direction merges

    def test_histogram(self):
        net = self.build()
        types = assign_types(net, {"y": 1})
        hist = type_histogram(types)
        assert sum(hist.values()) == 3
