"""Tests for the iterative approximate-synthesis algorithm.

The central invariant (the whole point of the paper): the synthesized
circuit is a correct 0/1-approximation at every primary output, verified
here with independent exhaustive or BDD checks.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.approx import (ApproxConfig, NodeType, approximation_percentage,
                          synthesize_approximation)
from repro.bench import random_network, tiny_benchmark
from repro.cubes import Cover
from repro.network import GlobalBdds, Network


def verify_approximation(original, approx, directions):
    """Independent BDD check of every output implication."""
    bdds = GlobalBdds(original.inputs)
    bdds.add_network(original, prefix="o_")
    bdds.add_network(approx, prefix="a_")
    for po, direction in directions.items():
        if original.is_input(po):
            continue
        f = bdds.function("o_" + po)
        g = bdds.function("a_" + po)
        if direction == 1:
            assert bdds.manager.implies(g, f), f"{po}: G does not imply F"
        else:
            assert bdds.manager.implies(f, g), f"{po}: F does not imply G"


class TestSmallCircuits:
    def test_and_or_tree(self):
        net = Network()
        for pi in "abcd":
            net.add_input(pi)
        net.add_node("t1", ["a", "b"], Cover.from_strings(["11"]))
        net.add_node("t2", ["c", "d"], Cover.from_strings(["1-", "-1"]))
        net.add_node("y", ["t1", "t2"], Cover.from_strings(["1-", "-1"]))
        net.add_output("y")
        result = synthesize_approximation(net, {"y": 1})
        assert result.all_correct
        verify_approximation(net, result.approx, {"y": 1})

    def test_zero_approximation_direction(self):
        net = Network()
        for pi in "abc":
            net.add_input(pi)
        net.add_node("y", ["a", "b", "c"],
                     Cover.from_strings(["11-", "1-1", "-11"]))
        net.add_output("y")
        result = synthesize_approximation(net, {"y": 0})
        assert result.all_correct
        verify_approximation(net, result.approx, {"y": 0})

    def test_pi_output_passthrough(self):
        net = Network()
        net.add_input("a")
        net.add_node("y", ["a"], Cover.from_strings(["0"]))
        net.add_output("y")
        net.add_output("a")
        result = synthesize_approximation(net, {"y": 1, "a": 0})
        assert result.correctness["a"] is True

    def test_mixed_output_directions(self):
        net = tiny_benchmark(seed=3)
        directions = {po: i % 2 for i, po in enumerate(net.outputs)}
        result = synthesize_approximation(net, directions)
        assert result.all_correct
        verify_approximation(net, result.approx, directions)

    def test_approx_never_larger_much(self):
        net = tiny_benchmark(seed=5)
        directions = {po: 0 for po in net.outputs}
        result = synthesize_approximation(net, directions)
        assert result.approx.total_literals() <= net.total_literals() * 2


class TestCheckMethods:
    def test_bdd_and_sim_agree_on_correctness(self):
        net = tiny_benchmark(seed=11)
        directions = {po: 1 for po in net.outputs}
        r_bdd = synthesize_approximation(
            net, directions, ApproxConfig(check="bdd"))
        r_sim = synthesize_approximation(
            net, directions, ApproxConfig(check="sim"))
        assert r_bdd.check_method == "bdd"
        assert r_sim.check_method == "sim"
        assert r_bdd.all_correct
        verify_approximation(net, r_bdd.approx, directions)
        # The sim-checked result must also verify exactly.
        verify_approximation(net, r_sim.approx, directions)

    def test_auto_falls_back_on_tiny_budget(self):
        net = tiny_benchmark(seed=11)
        directions = {po: 1 for po in net.outputs}
        config = ApproxConfig(check="auto", bdd_node_budget=16)
        result = synthesize_approximation(net, directions, config)
        assert result.check_method == "sim"
        verify_approximation(net, result.approx, directions)

    def test_bdd_budget_violation_raises(self):
        from repro.bdd import BddOverflowError
        net = tiny_benchmark(seed=11)
        directions = {po: 1 for po in net.outputs}
        with pytest.raises(BddOverflowError):
            synthesize_approximation(
                net, directions,
                ApproxConfig(check="bdd", bdd_node_budget=16))


class TestTradeoff:
    def test_threshold_trades_size_for_fidelity(self):
        net = tiny_benchmark(seed=21)
        directions = {po: 0 for po in net.outputs}
        gentle = synthesize_approximation(
            net, directions, ApproxConfig(cube_drop_threshold=0.01))
        aggressive = synthesize_approximation(
            net, directions, ApproxConfig(cube_drop_threshold=0.4))
        assert gentle.all_correct and aggressive.all_correct
        lits_gentle = gentle.approx.total_literals()
        lits_aggr = aggressive.approx.total_literals()
        assert lits_aggr <= lits_gentle

    def test_zero_threshold_significance_mode_keeps_exact(self):
        """With significance-only stage 1, no DC collapse, and a zero
        threshold, nothing is dropped and the approximation is the
        identity."""
        net = tiny_benchmark(seed=23)
        directions = {po: 1 for po in net.outputs}
        result = synthesize_approximation(
            net, directions,
            ApproxConfig(cube_drop_threshold=0.0, stage1="significance",
                         collapse_dc=False))
        assert result.dropped_cubes == 0
        for po in net.outputs:
            pct = approximation_percentage(net, result.approx, po, 1)
            assert pct == pytest.approx(100.0)

    def test_conformance_mode_shrinks_network(self):
        """Conformance selection with DC collapse produces a genuinely
        smaller approximate circuit."""
        net = tiny_benchmark(seed=23)
        directions = {po: 0 for po in net.outputs}
        result = synthesize_approximation(net, directions, ApproxConfig())
        assert result.approx.num_nodes < net.num_nodes
        assert result.all_correct


class TestPropertyCorrectness:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 10_000), st.sampled_from([0, 1]),
           st.sampled_from([0.02, 0.1, 0.3]))
    def test_random_networks_always_correct(self, seed, direction,
                                            threshold):
        net = random_network(seed, n_nodes=18, n_inputs=7, n_outputs=2,
                             name=f"rnd{seed}")
        directions = {po: direction for po in net.outputs}
        config = ApproxConfig(cube_drop_threshold=threshold)
        result = synthesize_approximation(net, directions, config)
        assert result.all_correct
        verify_approximation(net, result.approx, directions)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_sim_checked_results_verify_exactly(self, seed):
        net = random_network(seed, n_nodes=14, n_inputs=6, n_outputs=2,
                             name=f"rnd{seed}")
        directions = {po: 1 for po in net.outputs}
        result = synthesize_approximation(
            net, directions,
            ApproxConfig(check="sim", sim_check_words=64))
        verify_approximation(net, result.approx, directions)


class TestSatChecking:
    def test_sat_checked_synthesis_is_exactly_correct(self):
        net = tiny_benchmark(seed=47)
        directions = {po: i % 2 for i, po in enumerate(net.outputs)}
        result = synthesize_approximation(net, directions,
                                          ApproxConfig(check="sat"))
        assert result.check_method == "sat"
        assert result.all_correct
        verify_approximation(net, result.approx, directions)

    def test_sat_and_bdd_agree(self):
        net = tiny_benchmark(seed=49)
        directions = {po: 0 for po in net.outputs}
        r_sat = synthesize_approximation(net, directions,
                                         ApproxConfig(check="sat"))
        r_bdd = synthesize_approximation(net, directions,
                                         ApproxConfig(check="bdd"))
        assert r_sat.all_correct and r_bdd.all_correct
        # Both checkers are exact, so both must verify externally.
        verify_approximation(net, r_sat.approx, directions)
        verify_approximation(net, r_bdd.approx, directions)
