"""Two-tier error evaluator vs a brute-force truth-table oracle.

The oracle enumerates every input vector through
``Network.evaluate_outputs`` — a code path entirely disjoint from the
compiled simulator and the BDD engine — and computes ER / MED / WCE by
definition.  Exhaustive-tier results must match it exactly; BDD-tier ER
must match it exactly; BDD-tier MED/WCE and every Monte-Carlo result
must stay on the conservative side (bound >= truth).
"""

import pytest

from repro.approx.config import ErrorSpec
from repro.approx.metrics import (evaluate_error, exhaustive_inputs)
from repro.bench.suite import load_benchmark, tiny_benchmark
from repro.cubes import Cover, Cube
from repro.network import Network


from .helpers import oracle


def approx_of(network, const_nodes=()):
    """A doctored copy: some nodes forced to constant 0."""
    doctored = network.copy()
    for name in const_nodes:
        doctored.replace_node(name, [], Cover.zero(0))
    return doctored


def xor_pair():
    """3-input original vs an approx that ignores one input."""
    net = Network("xp")
    for pin in ("a", "b", "c"):
        net.add_input(pin)
    net.add_node("n1", ["a", "b"], Cover(2, [Cube.from_string("10"),
                                             Cube.from_string("01")]))
    net.add_node("o0", ["n1", "c"], Cover(2, [Cube.from_string("10"),
                                              Cube.from_string("01")]))
    net.add_node("o1", ["a", "c"], Cover(2, [Cube.from_string("11")]))
    net.add_output("o0")
    net.add_output("o1")

    apx = net.copy()
    apx.replace_node("n1", ["a"], Cover(1, [Cube.from_string("1")]))
    return net, apx


PAIRS = [
    xor_pair(),
    (tiny_benchmark(),
     approx_of(tiny_benchmark(), const_nodes=["n3"])),
]


@pytest.mark.parametrize("metric", ["er", "med", "wce"])
@pytest.mark.parametrize("pair_idx", range(len(PAIRS)))
def test_exhaustive_tier_matches_oracle(metric, pair_idx):
    original, approx = PAIRS[pair_idx]
    er, med, wce = oracle(original, approx)
    truth = {"er": er, "med": med, "wce": wce}[metric]
    spec = ErrorSpec(metric=metric, bound=1e18 if metric != "er"
                     else 1.0, exact_threshold=12)
    ev = evaluate_error(original, approx, spec)
    assert ev.method == "exhaustive"
    assert ev.exact and ev.sound
    assert ev.value == pytest.approx(truth, abs=1e-12)


@pytest.mark.parametrize("pair_idx", range(len(PAIRS)))
def test_bdd_tier_er_is_exact(pair_idx):
    original, approx = PAIRS[pair_idx]
    er, _, _ = oracle(original, approx)
    # exact_threshold=0 forces the BDD tier on a brute-forceable pair.
    spec = ErrorSpec(metric="er", bound=1.0, exact_threshold=0)
    ev = evaluate_error(original, approx, spec)
    assert ev.method == "bdd"
    assert ev.exact and ev.sound
    assert ev.value == pytest.approx(er, abs=1e-12)


@pytest.mark.parametrize("metric", ["med", "wce"])
@pytest.mark.parametrize("pair_idx", range(len(PAIRS)))
def test_bdd_tier_bounds_are_conservative(metric, pair_idx):
    original, approx = PAIRS[pair_idx]
    _, med, wce = oracle(original, approx)
    truth = {"med": med, "wce": wce}[metric]
    spec = ErrorSpec(metric=metric, bound=1e18, exact_threshold=0)
    ev = evaluate_error(original, approx, spec)
    assert ev.method == "bdd-bound"
    assert ev.sound and not ev.exact
    assert ev.value >= truth - 1e-12


@pytest.mark.parametrize("metric", ["er", "med", "wce"])
@pytest.mark.parametrize("pair_idx", range(len(PAIRS)))
def test_mc_tier_bound_covers_truth(metric, pair_idx):
    original, approx = PAIRS[pair_idx]
    er, med, wce = oracle(original, approx)
    truth = {"er": er, "med": med, "wce": wce}[metric]
    # exact_threshold=0 + a 1-node BDD budget forces the MC tier.
    spec = ErrorSpec(metric=metric, bound=1e18 if metric != "er"
                     else 1.0, exact_threshold=0)
    ev = evaluate_error(original, approx, spec, bdd_node_budget=1,
                        n_words=64, seed=7)
    assert ev.method == "mc"
    assert not ev.exact
    # The Hoeffding/structural slack keeps the estimate conservative
    # for the pinned seed (and for wce the bound is sound outright).
    assert ev.value >= truth - 1e-12
    if metric == "wce":
        assert ev.sound and ev.confidence == 1.0
    else:
        assert not ev.sound and 0 < ev.confidence < 1


def test_mc_structural_filter_gives_zero_for_identical_pair():
    original = load_benchmark("cmb")
    ev = evaluate_error(
        original, original.copy(),
        ErrorSpec(metric="er", bound=1.0, exact_threshold=0),
        bdd_node_budget=1)
    assert ev.method == "mc"
    assert ev.value == 0.0


def test_exhaustive_inputs_enumerate_every_vector():
    pi = exhaustive_inputs(4)
    assert pi.shape == (4, 1)
    seen = set()
    for v in range(16):
        word, bit = divmod(v, 64)
        seen.add(tuple((int(pi[i, word]) >> bit) & 1 for i in range(4)))
    assert len(seen) == 16


def test_output_mismatch_is_rejected():
    original, approx = PAIRS[0]
    broken = approx.copy()
    broken.outputs.pop()
    with pytest.raises(ValueError):
        evaluate_error(original, broken,
                       ErrorSpec(metric="er", bound=1.0))
