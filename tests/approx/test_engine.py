"""Engine registry, ErrorSpec validation, and strict config parsing."""

import pytest

from repro.approx import (ApproxConfig, ApproxEngine, ConfigError,
                          CubeSelectionEngine, ErrorSpec, engine_names,
                          get_engine, register_engine,
                          synthesize_approximation)
from repro.approx.engine import _REGISTRY
from repro.bench.suite import tiny_benchmark
from repro.network import write_blif


class TestRegistry:
    def test_builtin_engines_registered(self):
        assert engine_names() == ("cube", "resub")

    def test_get_engine_returns_named_instance(self):
        assert get_engine("cube").name == "cube"
        assert get_engine("resub").name == "resub"
        assert isinstance(get_engine("cube"), CubeSelectionEngine)

    def test_unknown_engine_raises(self):
        with pytest.raises(KeyError):
            get_engine("nope")

    def test_register_engine_roundtrip(self):
        class Dummy(ApproxEngine):
            name = "dummy-engine"

        register_engine(Dummy())
        try:
            assert "dummy-engine" in engine_names()
            assert isinstance(get_engine("dummy-engine"), Dummy)
            # And the config layer accepts it (no error spec needed).
            ApproxConfig(engine="dummy-engine")
        finally:
            _REGISTRY.pop("dummy-engine", None)

    def test_base_engine_synthesize_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ApproxEngine().synthesize(tiny_benchmark(), {}, ApproxConfig())


class TestCubeEngineIdentity:
    def test_cube_engine_matches_direct_synthesis(self):
        network = tiny_benchmark()
        directions = {po: 1 for po in network.outputs}
        config = ApproxConfig(seed=2008)
        via_engine = get_engine("cube").synthesize(network, directions,
                                                   config)
        direct = synthesize_approximation(network, directions, config)
        assert write_blif(via_engine.approx) == write_blif(direct.approx)
        assert via_engine.correctness == direct.correctness
        assert via_engine.check_method == direct.check_method
        assert via_engine.engine == "cube"
        assert via_engine.error_report is None


class TestErrorSpec:
    def test_valid_specs(self):
        spec = ErrorSpec(metric="er", bound=0.05)
        assert spec.exact_threshold == 12
        ErrorSpec(metric="med", bound=100.0, exact_threshold=0)
        ErrorSpec(metric="wce", bound=0.0)

    def test_from_value_passthrough_and_coercion(self):
        assert ErrorSpec.from_value(None) is None
        spec = ErrorSpec(metric="er", bound=0.1)
        assert ErrorSpec.from_value(spec) is spec
        coerced = ErrorSpec.from_value({"metric": "er", "bound": 0.1})
        assert coerced == spec

    @pytest.mark.parametrize("kwargs,field", [
        (dict(metric="", bound=0.1), "error.metric"),
        (dict(metric="", bound=-1.0), "error.metric"),
        (dict(metric="mse", bound=0.1), "error.metric"),
        (dict(metric="er", bound=-0.5), "error.bound"),
        (dict(metric="er", bound=1.5), "error.bound"),
        (dict(metric="er", bound="lots"), "error.bound"),
        (dict(metric="er", bound=True), "error.bound"),
        (dict(metric="er", bound=0.1, exact_threshold=-1),
         "error.exact_threshold"),
        (dict(metric="er", bound=0.1, exact_threshold=2.5),
         "error.exact_threshold"),
    ])
    def test_invalid_specs_carry_the_field(self, kwargs, field):
        with pytest.raises(ConfigError) as excinfo:
            ErrorSpec(**kwargs)
        assert excinfo.value.field == field
        doc = excinfo.value.to_dict()
        assert doc["error"] == "config"
        assert doc["field"] == field

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(ConfigError) as excinfo:
            ErrorSpec.from_value({"metric": "er", "bound": 0.1,
                                  "confidence": 0.9})
        assert "confidence" in excinfo.value.message

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigError):
            ErrorSpec.from_value(0.05)

    def test_to_dict_roundtrips(self):
        spec = ErrorSpec(metric="wce", bound=16.0, exact_threshold=10)
        assert ErrorSpec.from_value(spec.to_dict()) == spec


class TestConfigValidation:
    def test_engine_default_is_cube(self):
        assert ApproxConfig().engine == "cube"
        assert ApproxConfig().error is None

    def test_error_dict_coerced(self):
        config = ApproxConfig(engine="resub",
                              error={"metric": "er", "bound": 0.05})
        assert isinstance(config.error, ErrorSpec)
        assert config.error.bound == 0.05

    def test_unknown_engine(self):
        with pytest.raises(ConfigError) as excinfo:
            ApproxConfig(engine="nope")
        assert excinfo.value.field == "engine"

    def test_resub_requires_error(self):
        with pytest.raises(ConfigError) as excinfo:
            ApproxConfig(engine="resub")
        assert excinfo.value.field == "error"

    def test_cube_rejects_error(self):
        with pytest.raises(ConfigError) as excinfo:
            ApproxConfig(error={"metric": "er", "bound": 0.05})
        assert excinfo.value.field == "error"

    def test_from_dict_strict(self):
        config = ApproxConfig.from_dict(
            {"engine": "resub", "seed": 1,
             "error": {"metric": "er", "bound": 0.1}})
        assert config.engine == "resub"
        with pytest.raises(ConfigError) as excinfo:
            ApproxConfig.from_dict({"sead": 1})
        assert "sead" in excinfo.value.message
        with pytest.raises(ConfigError):
            ApproxConfig.from_dict(["not", "a", "mapping"])
