"""The resub engine honours its error budget — brute-force verified."""

import pytest

from repro.approx import ApproxConfig, get_engine
from repro.bench.suite import load_benchmark, tiny_benchmark
from repro.flow import AnalysisContext
from repro.guard import Budget

from .helpers import oracle


def run_resub(network, metric, bound, **spec_kw):
    config = ApproxConfig(engine="resub",
                          error={"metric": metric, "bound": bound,
                                 **spec_kw})
    directions = {po: 1 for po in network.outputs}
    return get_engine("resub").synthesize(network, directions, config,
                                          ctx=AnalysisContext())


class TestBoundRespected:
    @pytest.mark.parametrize("metric,bound", [
        ("er", 0.05),
        ("er", 0.0),
        ("med", 4.0),
        ("wce", 16.0),
    ])
    def test_measured_error_within_bound_tiny(self, metric, bound):
        network = tiny_benchmark()
        result = run_resub(network, metric, bound)
        er, med, wce = oracle(network, result.approx)
        truth = {"er": er, "med": med, "wce": wce}[metric]
        assert truth <= bound + 1e-12
        report = result.error_report
        assert report["within"] is True
        assert report["value"] <= bound + 1e-12
        # The attested value is itself an upper bound on the truth.
        assert report["value"] >= truth - 1e-12

    def test_zero_bound_keeps_exact_function(self):
        network = tiny_benchmark()
        result = run_resub(network, "er", 0.0)
        er, _, _ = oracle(network, result.approx)
        assert er == 0.0

    def test_bdd_tier_bound_respected_cmb(self):
        network = load_benchmark("cmb")     # 16 inputs: BDD tier
        result = run_resub(network, "er", 0.05)
        report = result.error_report
        assert report["method"] == "bdd"
        assert report["exact"] is True
        assert report["within"] is True
        er, _, _ = oracle(network, result.approx)
        assert er <= 0.05 + 1e-12
        assert er == pytest.approx(report["value"], abs=1e-12)


class TestResultShape:
    def test_result_fields(self):
        network = tiny_benchmark()
        result = run_resub(network, "er", 0.1)
        assert result.engine == "resub"
        assert result.check_method.startswith("error-")
        assert set(result.correctness) == set(network.outputs)
        report = result.error_report
        for key in ("metric", "bound", "value", "within", "method",
                    "exact", "sound", "commits", "candidates"):
            assert key in report, key
        assert report["metric"] == "er"
        assert report["sound"] is True

    def test_loose_bound_shrinks_the_network(self):
        network = tiny_benchmark()
        result = run_resub(network, "er", 0.5)
        assert result.approx.num_nodes < network.num_nodes
        assert result.error_report["commits"] > 0

    def test_budget_deadline_zero_still_sound(self):
        network = tiny_benchmark()
        config = ApproxConfig(engine="resub",
                              error={"metric": "er", "bound": 0.25})
        directions = {po: 1 for po in network.outputs}
        budget = Budget(deadline_s=1e9)
        result = get_engine("resub").synthesize(
            network, directions, config, ctx=AnalysisContext(),
            budget=budget)
        er, _, _ = oracle(network, result.approx)
        assert er <= 0.25 + 1e-12


class TestFlowIntegration:
    def test_flow_dispatch_and_to_dict(self):
        from repro.ced import run_ced_flow
        network = tiny_benchmark()
        flow = run_ced_flow(
            network,
            config=ApproxConfig(engine="resub",
                                error={"metric": "er", "bound": 0.1}),
            reliability_words=1, coverage_words=1, seed=2008)
        doc = flow.to_dict()
        assert doc["engine"] == "resub"
        assert doc["error_report"]["within"] is True
        er, _, _ = oracle(network, flow.approx_result.approx)
        assert er <= 0.1 + 1e-12

    def test_cube_flow_to_dict_has_engine_no_error(self):
        from repro.ced import run_ced_flow
        flow = run_ced_flow(tiny_benchmark(), config=ApproxConfig(),
                            reliability_words=1, coverage_words=1,
                            seed=2008)
        doc = flow.to_dict()
        assert doc["engine"] == "cube"
        assert "error_report" not in doc
