"""Tests for local ODC covers, observability BDDs, and mass shares."""

import pytest

from repro.approx import (local_odc_cover, local_observabilities,
                          observability_bdds)
from repro.approx.types import _read_mass_shares
from repro.bdd import BddManager
from repro.cubes import Cover


class TestLocalOdcCover:
    def test_odc_of_and_gate(self):
        # F = ab: a's ODC is b=0 (a invisible when b=0).
        odc = local_odc_cover(Cover.from_strings(["11"]), fanin=0)
        for m in range(4):
            b = bool(m >> 1 & 1)
            assert odc.evaluate(m) == (not b)

    def test_odc_of_or_gate(self):
        # F = a+b: a's ODC is b=1.
        odc = local_odc_cover(Cover.from_strings(["1-", "-1"]), fanin=0)
        for m in range(4):
            b = bool(m >> 1 & 1)
            assert odc.evaluate(m) == b

    def test_unread_fanin_always_odc(self):
        odc = local_odc_cover(Cover.from_strings(["1-"]), fanin=1)
        assert odc.is_tautology()

    def test_xor_never_odc(self):
        odc = local_odc_cover(Cover.from_strings(["10", "01"]), fanin=0)
        assert odc.is_zero()


class TestObservabilityBdds:
    def test_matches_boolean_difference(self):
        mgr = BddManager(3)
        f = mgr.from_cover(Cover.from_strings(["11-", "--1"]))
        diffs = observability_bdds(mgr, f)
        for i in range(3):
            assert diffs[i] == mgr.boolean_difference(f, i)


class TestMassShares:
    def test_shares_of_or_with_heavy_and_light_cube(self):
        # F = a + b&c&!d... over uniform probs: cube "1---" has mass
        # 0.5, cube "-110" mass 0.125.
        cover = Cover.from_strings(["1---", "-110"])
        shares = _read_mass_shares(cover, [0.5] * 4)
        total = 0.5 + 0.125
        assert shares[0] == pytest.approx(0.5 / total)
        assert shares[1] == pytest.approx(0.125 / total)
        assert shares[2] == pytest.approx(0.125 / total)

    def test_unread_fanin_zero_share(self):
        cover = Cover.from_strings(["1-"])
        shares = _read_mass_shares(cover, [0.5, 0.5])
        assert shares[1] == 0.0

    def test_empty_cover(self):
        shares = _read_mass_shares(Cover.zero(2), [0.5, 0.5])
        assert shares == [0.0, 0.0]


class TestObservabilityEdgeCases:
    def test_constant_function_unobservable(self):
        obs = local_observabilities(Cover.one(2))
        assert all(o.total == 0.0 for o in obs)

    def test_ratio_clipping(self):
        # Unread fanin: both observabilities zero; ratio defined (1.0).
        obs = local_observabilities(Cover.from_strings(["1-"]))
        assert obs[1].ratio == pytest.approx(1.0)
