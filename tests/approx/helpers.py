"""Shared helpers for the approx test suite."""


def oracle(original, approx):
    """(er, med, wce) by full truth-table enumeration.

    Evaluates both networks through ``Network.evaluate_outputs`` — a
    code path disjoint from the compiled simulator and the BDD engine —
    so it can serve as an independent ground truth for the evaluator
    and the error-constrained engines.
    """
    inputs = original.inputs
    n = len(inputs)
    diffs = 0
    total_dist = 0
    worst = 0
    for v in range(1 << n):
        pi = {name: bool((v >> i) & 1) for i, name in enumerate(inputs)}
        o = original.evaluate_outputs(pi)
        a = approx.evaluate_outputs(pi)
        word_o = sum(1 << i for i, po in enumerate(original.outputs)
                     if o[po])
        word_a = sum(1 << i for i, po in enumerate(original.outputs)
                     if a[po])
        if word_o != word_a:
            diffs += 1
        dist = abs(word_o - word_a)
        total_dist += dist
        worst = max(worst, dist)
    vectors = 1 << n
    return diffs / vectors, total_dist / vectors, float(worst)
