"""Tests for exact and ODC-based cube selection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.approx import (NodeType, conforms, exact_select,
                          feasible_subspace, implement_phase, odc_select,
                          odc_select_from_sop, phase_cover)
from repro.bdd import BddManager
from repro.cubes import Cover, Cube

Z, O, E, D = NodeType.ZERO, NodeType.ONE, NodeType.EX, NodeType.DC


class TestPhase:
    def test_one_phase_is_identity(self):
        cover = Cover.from_strings(["11"])
        assert phase_cover(cover, O).to_strings() == ["11"]

    def test_zero_phase_is_complement(self):
        cover = Cover.from_strings(["11"])
        zero_phase = phase_cover(cover, Z)
        for m in range(4):
            assert zero_phase.evaluate(m) == (not cover.evaluate(m))

    def test_implement_phase_roundtrip(self):
        cover = Cover.from_strings(["1-0", "-11"])
        phase = phase_cover(cover, Z)
        back = implement_phase(phase, Z)
        for m in range(8):
            assert back.evaluate(m) == cover.evaluate(m)


class TestConformance:
    def test_positive_literal_needs_type_one(self):
        cube = Cube.from_string("1-")
        assert conforms(cube, [O, D])
        assert conforms(cube, [E, D])
        assert not conforms(cube, [Z, D])
        assert not conforms(cube, [D, D])

    def test_negative_literal_needs_type_zero(self):
        cube = Cube.from_string("0-")
        assert conforms(cube, [Z, D])
        assert conforms(cube, [E, D])
        assert not conforms(cube, [O, D])

    def test_dash_conforms_to_everything(self):
        cube = Cube.from_string("--")
        for t1 in (Z, O, E, D):
            for t2 in (Z, O, E, D):
                assert conforms(cube, [t1, t2])

    def test_ex_fanin_accepts_any_literal(self):
        assert conforms(Cube.from_string("10"), [E, E])


class TestExactSelect:
    def test_keeps_only_conforming(self):
        sop = Cover.from_strings(["11", "0-"])
        selected = exact_select(sop, [O, O])
        assert selected.to_strings() == ["11"]

    def test_empty_selection_is_valid(self):
        sop = Cover.from_strings(["10"])
        selected = exact_select(sop, [Z, O])
        assert selected.is_zero()

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            exact_select(Cover.from_strings(["1"]), [O, O])

    def test_selection_implies_original(self):
        sop = Cover.from_strings(["11-", "-01", "1-1"])
        selected = exact_select(sop, [O, Z, E])
        assert selected.implies(sop)


class TestFeasibleSubspace:
    def test_ex_fanins_leave_function_unchanged(self):
        sop = Cover.from_strings(["11", "00"])
        mgr = BddManager(2)
        f = mgr.from_cover(sop)
        feasible = feasible_subspace(mgr, f, [E, E])
        assert feasible == f

    def test_dc_fanin_restricts_to_unobservable(self):
        # F = a | b; a's ODC is b=1.  With a of type DC the feasible
        # space is F & (b's side where a is invisible) = (b=1).
        sop = Cover.from_strings(["1-", "-1"])
        mgr = BddManager(2)
        f = mgr.from_cover(sop)
        feasible = feasible_subspace(mgr, f, [D, E])
        assert feasible == mgr.var(1)

    def test_type_one_term(self):
        # F = a & b, fanin a type ONE: feasible = F & (a | !Obs_a)
        # Obs_a = b, so feasible = ab & (a | !b) = ab.
        sop = Cover.from_strings(["11"])
        mgr = BddManager(2)
        f = mgr.from_cover(sop)
        feasible = feasible_subspace(mgr, f, [O, E])
        assert feasible == f


class TestOdcSelect:
    def test_richer_than_exact(self):
        """The paper's key claim: ODC selection explores a superset."""
        # F = a&b | !a&c with a type DC: exact selection keeps nothing
        # (every cube reads a), ODC keeps the subspace where a is not
        # observable: b&c.
        sop = Cover.from_strings(["11-", "0-1"])
        types = [D, E, E]
        exact = exact_select(sop, types)
        odc = odc_select(sop, types)
        assert exact.is_zero()
        assert not odc.is_zero()
        # b & c is in the ODC selection (a invisible there).
        assert odc.covers_minterm(0b110)
        assert odc.covers_minterm(0b111)

    def test_odc_subset_of_phase_function(self):
        sop = Cover.from_strings(["11-", "0-1"])
        odc = odc_select(sop, [D, E, E])
        assert odc.implies(sop)

    def test_exact_selection_within_feasible(self):
        sop = Cover.from_strings(["11-", "-01", "1-1"])
        types = [O, Z, E]
        exact = exact_select(sop, types)
        odc = odc_select(sop, types)
        assert exact.implies(odc)

    def test_restricted_variant_supseteq_exact(self):
        sop = Cover.from_strings(["11-", "-01", "1-1"])
        types = [O, Z, D]
        exact = exact_select(sop, types)
        restricted = odc_select_from_sop(sop, types)
        assert exact.implies(restricted)
        assert restricted.implies(sop)


class TestTheoremProperty:
    """The paper's theorem: composing per-node conforming selections
    yields a correct approximation at the composition's output."""

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2 ** 12 - 1), st.integers(0, 2 ** 12 - 1))
    def test_and_composition(self, m1, m2):
        # X1, X2 arbitrary functions of 2 vars each (truth tables m1, m2
        # restricted to 4 bits); X1', X2' arbitrary 1-approximations.
        t1 = [bool(m1 >> i & 1) for i in range(4)]
        t2 = [bool(m2 >> i & 1) for i in range(4)]
        a1 = [t1[i] and bool(m1 >> (i + 4) & 1) for i in range(4)]
        a2 = [t2[i] and bool(m2 >> (i + 4) & 1) for i in range(4)]
        for i in range(4):
            for j in range(4):
                f = t1[i] and t2[j]
                fa = a1[i] and a2[j]
                assert (not fa) or f      # F' => F
                g = t1[i] or t2[j]
                ga = a1[i] or a2[j]
                assert (not ga) or g
