"""Tests for approximation metrics, including the paper's Sec 2 example."""

import pytest

from repro.approx import (approximation_percentage, area_overhead,
                          delay_change_pct, mean_approximation_percentage,
                          power_overhead_pct)
from repro.cubes import Cover
from repro.network import Network
from repro.synth import LIB_GENERIC, technology_map


def paper_example_networks():
    """F = a + b + !c!d + cd, G = a + b (paper Sec 2)."""
    orig = Network("F")
    approx = Network("G")
    for net in (orig, approx):
        for pi in "abcd":
            net.add_input(pi)
    orig.add_node("y", ["a", "b", "c", "d"],
                  Cover.from_strings(["1---", "-1--", "--00", "--11"]))
    orig.add_output("y")
    approx.add_node("y", ["a", "b"], Cover.from_strings(["1-", "-1"]))
    approx.add_output("y")
    return orig, approx


class TestPaperExample:
    def test_approximation_percentage_is_85_72(self):
        orig, approx = paper_example_networks()
        pct = approximation_percentage(orig, approx, "y", 1, method="bdd")
        assert pct == pytest.approx(100 * 12 / 14, abs=0.01)  # 85.71%

    def test_sim_estimate_close_to_exact(self):
        orig, approx = paper_example_networks()
        exact = approximation_percentage(orig, approx, "y", 1,
                                         method="bdd")
        est = approximation_percentage(orig, approx, "y", 1, method="sim",
                                       n_words=512)
        assert est == pytest.approx(exact, abs=2.0)

    def test_g_is_a_valid_1_approximation(self):
        orig, approx = paper_example_networks()
        for m in range(16):
            values = {pi: bool(m >> i & 1)
                      for i, pi in enumerate("abcd")}
            g = approx.evaluate_outputs(values)["y"]
            f = orig.evaluate_outputs(values)["y"]
            assert (not g) or f


class TestDirections:
    def test_zero_direction_counts_off_set(self):
        orig = Network()
        approx = Network()
        for net in (orig, approx):
            net.add_input("a")
            net.add_input("b")
        orig.add_node("y", ["a", "b"], Cover.from_strings(["11"]))
        orig.add_output("y")
        # 0-approximation G = a covers F's on-set; its off-set {00,01}
        # covers 2 of F's 3 off-set minterms.
        approx.add_node("y", ["a"], Cover.from_strings(["1"]))
        approx.add_output("y")
        pct = approximation_percentage(orig, approx, "y", 0, method="bdd")
        assert pct == pytest.approx(100 * 2 / 3, abs=0.01)

    def test_constant_function_edge_case(self):
        orig = Network()
        approx = Network()
        for net in (orig, approx):
            net.add_input("a")
        orig.add_node("y", ["a"], Cover.zero(1))
        orig.add_output("y")
        approx.add_node("y", ["a"], Cover.zero(1))
        approx.add_output("y")
        # F has no 1-minterms: 1-approximation trivially 100%.
        assert approximation_percentage(orig, approx, "y", 1) == 100.0

    def test_mean_over_outputs(self):
        orig, approx = paper_example_networks()
        pct = mean_approximation_percentage(orig, approx, {"y": 1},
                                            method="bdd")
        assert pct == pytest.approx(100 * 12 / 14, abs=0.01)

    def test_unknown_method_rejected(self):
        orig, approx = paper_example_networks()
        with pytest.raises(ValueError):
            approximation_percentage(orig, approx, "y", 1,
                                     method="magic")


class TestOverheadMetrics:
    def test_paper_example_area_overhead(self):
        orig, approx = paper_example_networks()
        m_orig = technology_map(orig, LIB_GENERIC)
        m_approx = technology_map(approx, LIB_GENERIC)
        overhead = area_overhead(m_orig, m_approx)
        # G is far smaller than F.
        assert overhead < 50.0

    def test_area_overhead_gate_count(self):
        orig, approx = paper_example_networks()
        m_orig = technology_map(orig, LIB_GENERIC)
        assert area_overhead(m_orig, 0) == 0.0
        assert area_overhead(m_orig, m_orig.gate_count) == 100.0

    def test_delay_change_sign(self):
        orig, approx = paper_example_networks()
        m_orig = technology_map(orig, LIB_GENERIC)
        m_approx = technology_map(approx, LIB_GENERIC)
        assert delay_change_pct(m_orig, m_approx) < 0  # approx is faster

    def test_power_overhead_of_self_is_positiveish(self):
        orig, _ = paper_example_networks()
        m_orig = technology_map(orig, LIB_GENERIC)
        assert power_overhead_pct(m_orig, m_orig) == pytest.approx(0.0)
