"""Tests for the batched approximation-percentage computation."""

import pytest

from repro.approx import (approximation_percentage,
                          approximation_percentages)
from repro.bdd import BddOverflowError
from repro.bench import tiny_benchmark
from repro.cubes import Cover
from repro.network import Network


def example_pair():
    orig = Network("F")
    approx = Network("G")
    for net in (orig, approx):
        for pi in "abcd":
            net.add_input(pi)
    orig.add_node("y", ["a", "b", "c", "d"],
                  Cover.from_strings(["1---", "-1--", "--00", "--11"]))
    orig.add_node("z", ["a", "b"], Cover.from_strings(["11"]))
    orig.add_output("y")
    orig.add_output("z")
    approx.add_node("y", ["a", "b"], Cover.from_strings(["1-", "-1"]))
    approx.add_node("z", ["a", "b"], Cover.from_strings(["11"]))
    approx.add_output("y")
    approx.add_output("z")
    return orig, approx


class TestBatchedPercentages:
    def test_matches_single_output_api(self):
        orig, approx = example_pair()
        directions = {"y": 1, "z": 1}
        batched = approximation_percentages(orig, approx, directions,
                                            method="bdd")
        for po, direction in directions.items():
            single = approximation_percentage(orig, approx, po,
                                              direction, method="bdd")
            assert batched[po] == pytest.approx(single)

    def test_exact_output_is_100(self):
        orig, approx = example_pair()
        pct = approximation_percentages(orig, approx, {"z": 0})
        assert pct["z"] == pytest.approx(100.0)

    def test_sim_method_close_to_bdd(self):
        orig, approx = example_pair()
        directions = {"y": 1, "z": 1}
        exact = approximation_percentages(orig, approx, directions,
                                          method="bdd")
        est = approximation_percentages(orig, approx, directions,
                                        method="sim", n_words=512)
        for po in directions:
            assert est[po] == pytest.approx(exact[po], abs=2.0)

    def test_bdd_budget_fallback(self):
        net = tiny_benchmark(seed=2)
        directions = {po: 1 for po in net.outputs}
        # Tiny budget: auto falls back to simulation silently.
        pct = approximation_percentages(net, net.copy(), directions,
                                        bdd_node_budget=8)
        for po in directions:
            assert pct[po] == pytest.approx(100.0)

    def test_bdd_budget_strict_raises(self):
        net = tiny_benchmark(seed=2)
        directions = {po: 1 for po in net.outputs}
        with pytest.raises(BddOverflowError):
            approximation_percentages(net, net.copy(), directions,
                                      method="bdd", bdd_node_budget=8)

    def test_empty_directions(self):
        orig, approx = example_pair()
        assert approximation_percentages(orig, approx, {}) == {}
