"""Tests for the CDCL SAT solver."""

import random
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import SatBudgetExhausted, SatSolver, require_decided


def make_solver(n_vars):
    solver = SatSolver()
    for _ in range(n_vars):
        solver.new_var()
    return solver


def brute_force_sat(n_vars, clauses, assumptions=()):
    for m in range(1 << n_vars):
        def val(lit):
            bit = bool(m >> (abs(lit) - 1) & 1)
            return bit if lit > 0 else not bit
        if all(val(a) for a in assumptions) and \
                all(any(val(lit) for lit in clause)
                    for clause in clauses):
            return True
    return False


class TestBasics:
    def test_trivial_sat(self):
        solver = make_solver(1)
        solver.add_clause([1])
        assert solver.solve() is True
        assert solver.model()[1] is True

    def test_trivial_unsat(self):
        solver = make_solver(1)
        assert solver.add_clause([1])
        assert solver.add_clause([-1]) is False or \
            solver.solve() is False

    def test_unit_propagation_chain(self):
        solver = make_solver(3)
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        assert solver.solve() is True
        model = solver.model()
        assert model[1] and model[2] and model[3]

    def test_empty_clause_rejected(self):
        solver = make_solver(1)
        assert solver.add_clause([]) is False

    def test_tautological_clause_ignored(self):
        solver = make_solver(1)
        assert solver.add_clause([1, -1]) is True
        assert solver.solve() is True

    def test_unknown_variable(self):
        solver = make_solver(1)
        with pytest.raises(ValueError):
            solver.add_clause([5])

    def test_xor_chain_sat(self):
        # x1 ^ x2 = 1, x2 ^ x3 = 1, x1 = 1 -> forced model.
        solver = make_solver(3)
        for a, b in ((1, 2), (2, 3)):
            solver.add_clause([a, b])
            solver.add_clause([-a, -b])
        solver.add_clause([1])
        assert solver.solve() is True
        model = solver.model()
        assert model[1] and not model[2] and model[3]

    def test_pigeonhole_2_into_1_unsat(self):
        # Two pigeons, one hole.
        solver = make_solver(2)
        solver.add_clause([1])
        solver.add_clause([2])
        solver.add_clause([-1, -2])
        assert solver.solve() is False


class TestAssumptions:
    def test_sat_then_unsat_under_assumptions(self):
        solver = make_solver(2)
        solver.add_clause([-1, 2])
        assert solver.solve(assumptions=[1]) is True
        assert solver.model()[2] is True
        assert solver.solve(assumptions=[1, -2]) is False
        # The solver stays usable: no permanent damage from UNSAT.
        assert solver.solve(assumptions=[-1, -2]) is True

    def test_incremental_reuse(self):
        solver = make_solver(3)
        solver.add_clause([1, 2, 3])
        assert solver.solve(assumptions=[-1, -2]) is True
        assert solver.model()[3] is True
        assert solver.solve(assumptions=[-1, -2, -3]) is False
        assert solver.solve() is True

    def test_conflicting_assumptions(self):
        solver = make_solver(1)
        assert solver.solve(assumptions=[1, -1]) is False


def pigeonhole_3_into_2(solver):
    """PHP(3,2): UNSAT, and needs real decisions (no unit clauses)."""
    # Variables p_ij = pigeon i sits in hole j, numbered 1..6.
    var = {(i, j): 2 * i + j + 1 for i in range(3) for j in range(2)}
    for i in range(3):
        solver.add_clause([var[(i, 0)], var[(i, 1)]])
    for j in range(2):
        for a in range(3):
            for b in range(a + 1, 3):
                solver.add_clause([-var[(a, j)], -var[(b, j)]])


class TestBudget:
    def test_budget_returns_none_or_answer(self):
        solver = make_solver(6)
        random_state = random.Random(5)
        for _ in range(40):
            clause = [random_state.choice([1, -1])
                      * random_state.randint(1, 6) for _ in range(3)]
            solver.add_clause(clause)
        result = solver.solve(max_conflicts=1)
        assert result in (True, False, None)

    def test_zero_conflict_budget_returns_none(self):
        """Exhaustion is *unknown* (None), never False (UNSAT)."""
        solver = make_solver(6)
        pigeonhole_3_into_2(solver)
        assert solver.solve(max_conflicts=0) is None
        # With headroom the same solver decides the instance.
        assert solver.solve() is False

    def test_expired_deadline_returns_none(self):
        solver = make_solver(1)
        solver.add_clause([1])
        assert solver.solve(deadline=time.monotonic() - 1.0) is None
        # The solver stays usable after giving up.
        assert solver.solve() is True

    def test_require_decided_passes_verdicts_through(self):
        assert require_decided(True) is True
        assert require_decided(False) is False

    def test_require_decided_raises_on_unknown(self):
        with pytest.raises(SatBudgetExhausted,
                           match="equivalence query undecided"):
            require_decided(None, "equivalence query")


class TestRandomInstances:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 6),
           st.lists(st.lists(st.integers(1, 6).flatmap(
               lambda v: st.sampled_from([v, -v])),
               min_size=1, max_size=4), max_size=14),
           st.integers(0, 100))
    def test_agrees_with_brute_force(self, n_vars, clauses, seed):
        clauses = [[lit for lit in clause if abs(lit) <= n_vars]
                   or [1 if n_vars >= 1 else 1] for clause in clauses]
        clauses = [c for c in clauses if c]
        solver = make_solver(n_vars)
        ok = True
        for clause in clauses:
            if not solver.add_clause(clause):
                ok = False
                break
        expected = brute_force_sat(n_vars, clauses)
        if not ok:
            assert expected is False
            return
        assert solver.solve() is expected
        if expected:
            model = solver.model()
            for clause in clauses:
                assert any(
                    (model.get(abs(lit), False) if lit > 0
                     else not model.get(abs(lit), False))
                    for lit in clause)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 5),
           st.lists(st.lists(st.integers(1, 5).flatmap(
               lambda v: st.sampled_from([v, -v])),
               min_size=1, max_size=3), max_size=10),
           st.lists(st.integers(1, 5).flatmap(
               lambda v: st.sampled_from([v, -v])),
               max_size=3, unique_by=abs))
    def test_assumptions_agree_with_brute_force(self, n_vars, clauses,
                                                assumptions):
        clauses = [[lit for lit in clause if abs(lit) <= n_vars]
                   for clause in clauses]
        clauses = [c for c in clauses if c]
        assumptions = [a for a in assumptions if abs(a) <= n_vars]
        solver = make_solver(n_vars)
        ok = all(solver.add_clause(c) for c in clauses)
        expected = brute_force_sat(n_vars, clauses, assumptions)
        if not ok:
            assert not expected
            return
        assert solver.solve(assumptions=assumptions) is expected
