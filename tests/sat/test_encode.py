"""Tests for Tseitin encoding and SAT-based implication checks."""

import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench import random_network
from repro.cubes import Cover
from repro.network import Network
from repro.sat import NetworkEncoder, SatBudgetExhausted


def demo_network():
    net = Network("demo")
    for pi in "abc":
        net.add_input(pi)
    net.add_node("t", ["a", "b"], Cover.from_strings(["11"]))
    net.add_node("y", ["t", "c"], Cover.from_strings(["1-", "-0"]))
    net.add_output("y")
    return net


class TestEncoding:
    def test_encoded_function_matches_evaluation(self):
        net = demo_network()
        enc = NetworkEncoder(net.inputs)
        enc.add_network(net)
        solver = enc.solver
        for m in range(8):
            assumptions = []
            for i, pi in enumerate(net.inputs):
                var = enc.var(pi)
                assumptions.append(var if m >> i & 1 else -var)
            assert solver.solve(assumptions=assumptions) is True
            expected = net.evaluate_outputs(
                {pi: bool(m >> i & 1)
                 for i, pi in enumerate(net.inputs)})["y"]
            assert solver.value(enc.var("y")) == expected

    def test_constant_nodes(self):
        net = Network()
        net.add_input("a")
        net.add_const("k1", True)
        net.add_const("k0", False)
        net.add_output("k1")
        net.add_output("k0")
        enc = NetworkEncoder(net.inputs)
        enc.add_network(net)
        assert enc.solver.solve() is True
        assert enc.solver.value(enc.var("k1")) is True
        assert enc.solver.value(enc.var("k0")) is False

    def test_unknown_input_rejected(self):
        net = demo_network()
        enc = NetworkEncoder(["x", "y", "z"])
        with pytest.raises(ValueError):
            enc.add_network(net)


class TestImplicationQueries:
    def test_holding_implication(self):
        net = demo_network()
        enc = NetworkEncoder(net.inputs)
        enc.add_network(net)
        # t = a&b implies y = t | !c?  Not generally; t=1 -> y=1 holds.
        assert enc.implication_holds("t", "y") is True

    def test_violated_implication_with_counterexample(self):
        net = demo_network()
        enc = NetworkEncoder(net.inputs)
        enc.add_network(net)
        assert enc.implication_holds("y", "t") is False
        cex = enc.counterexample("y", "t")
        assert cex is not None
        values = net.evaluate(cex)
        assert values["y"] and not values["t"]

    def test_equivalence(self):
        net = demo_network()
        duplicate = net.copy()
        enc = NetworkEncoder(net.inputs)
        enc.add_network(net, prefix="a_")
        enc.add_network(duplicate, prefix="b_")
        assert enc.equivalent("a_y", "b_y") is True
        assert enc.equivalent("a_t", "b_y") is False

    def test_exhausted_implication_is_unknown_not_verdict(self):
        """Tri-state audit: an exhausted query must surface as None
        (implication_holds / equivalent) or raise (counterexample) —
        never collapse into 'holds' or 'no counterexample'."""
        net = demo_network()
        enc = NetworkEncoder(net.inputs)
        enc.add_network(net)
        past = time.monotonic() - 1.0
        assert enc.implication_holds("t", "y", deadline=past) is None
        assert enc.equivalent("t", "y", deadline=past) is None
        with pytest.raises(SatBudgetExhausted,
                           match="counterexample search"):
            enc.counterexample("y", "t", deadline=past)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 3000))
    def test_agrees_with_exhaustive_on_random_networks(self, seed):
        net = random_network(seed, 16, 6, 2, name=f"sat{seed}")
        approx = net.copy()
        # Perturb one node: drop its last cube (a 1-side shrink).
        name = next(iter(approx.nodes))
        cover = approx.nodes[name].cover
        if len(cover) > 1:
            approx.replace_cover(name, Cover(cover.n, cover.cubes[:-1]))
        enc = NetworkEncoder(net.inputs)
        enc.add_network(net, prefix="o_")
        enc.add_network(approx, prefix="a_")
        for po in net.outputs:
            expected = all(
                (not approx.evaluate_outputs(values)[po])
                or net.evaluate_outputs(values)[po]
                for values in (
                    {pi: bool(m >> i & 1)
                     for i, pi in enumerate(net.inputs)}
                    for m in range(1 << len(net.inputs))))
            got = enc.implication_holds("a_" + po, "o_" + po)
            assert got is expected
