"""Round-trips of ``"static"``-method certificates.

The AND-implies-OR fixture is decided by the static rung's relational
analysis, so the certificate it yields carries ``method: "static"`` —
cheap to re-audit offline.  Each required field is corrupted in turn
and must be rejected with a precise complaint, and a re-signed lie
must still fail the semantic recheck.
"""

import pytest

from repro.cubes import Cover
from repro.lint import (PairSemantics, build_certificate,
                        certificate_digest, check_certificate,
                        validate_certificate)
from repro.lint.certificates import _REQUIRED_KEYS
from repro.network import Network


def _net(cover_rows, name="statcert"):
    net = Network(name)
    net.add_input("a")
    net.add_input("b")
    net.add_node("f", ["a", "b"], Cover.from_strings(cover_rows))
    net.add_output("f")
    return net


@pytest.fixture
def static_cert():
    original, approx = _net(["1-", "-1"]), _net(["11"])
    proof = PairSemantics(original, approx).implication("f", 1)
    assert proof.holds is True
    assert proof.method == "static", \
        "fixture no longer discharges statically"
    return build_certificate(original, approx, "f", 1, proof)


def test_static_certificate_validates_and_rechecks(static_cert):
    assert static_cert["method"] == "static"
    assert static_cert["stats"].get("reason") == "relation"
    assert validate_certificate(static_cert) == []
    assert check_certificate(static_cert) == []


#: (corruption, substring the precise rejection must contain)
_CORRUPTIONS = {
    "schema_version": (99, "unknown schema_version"),
    "kind": ("certificate", "unknown kind"),
    "circuit": (7, "key 'circuit' is not str"),
    "po": (None, "key 'po' is not str"),
    "direction": (2, "direction must be 0 or 1"),
    "method": ("vibes", "unknown method"),
    "status": ("refuted", "unknown status"),
    "inputs": ("a,b", "key 'inputs' is not list"),
    "original_blif": (0, "key 'original_blif' is not str"),
    "approx_blif": ([], "key 'approx_blif' is not str"),
    "stats": ("none", "key 'stats' is not dict"),
    "digest": ("sha256:0000", "digest mismatch"),
}


def test_every_required_key_has_a_corruption_case():
    assert set(_CORRUPTIONS) == set(_REQUIRED_KEYS)


@pytest.mark.parametrize("key", sorted(_CORRUPTIONS))
def test_corrupting_each_field_is_precisely_rejected(static_cert, key):
    value, needle = _CORRUPTIONS[key]
    doc = dict(static_cert)
    doc[key] = value
    if key != "digest":
        # Re-sign so only the *semantic* validation can complain —
        # the digest must not be doing all the work.
        doc["digest"] = certificate_digest(doc)
    problems = validate_certificate(doc)
    assert problems, f"corrupt {key!r} accepted"
    assert any(needle in p for p in problems), (key, problems)


@pytest.mark.parametrize("key", sorted(_REQUIRED_KEYS))
def test_dropping_each_field_is_precisely_rejected(static_cert, key):
    doc = dict(static_cert)
    del doc[key]
    problems = validate_certificate(doc)
    assert any(f"missing key {key!r}" in p for p in problems), \
        (key, problems)


def test_unsigned_tamper_is_caught_by_digest(static_cert):
    doc = dict(static_cert)
    doc["po"] = "g"
    assert any("digest mismatch" in p
               for p in validate_certificate(doc))


def test_resigned_static_lie_fails_semantic_recheck(static_cert):
    # OR does not imply AND: flipping the direction and re-signing
    # passes the schema but the offline re-proof must refute it.
    doc = dict(static_cert)
    doc["direction"] = 0
    doc["digest"] = certificate_digest(doc)
    assert validate_certificate(doc) == []
    problems = check_certificate(doc)
    assert any("does NOT hold" in p for p in problems)
