"""One firing mutation per structural (net.*) lint rule."""

from repro.cubes import Cover, Cube
from repro.lint import Severity, lint_network
from repro.network import Network, Node

from .helpers import and2, buf, chain, fired


def test_clean_network_has_no_diagnostics():
    report = lint_network(chain())
    assert report.ok
    assert report.diagnostics == []


def test_undefined_fanin():
    net = chain()
    # Bypass add_node validation: wire n2 to a signal nobody defines.
    net.nodes["n2"] = Node("n2", ["ghost"], buf())
    report = lint_network(net)
    diags = fired(report, "net.undefined-fanin")
    assert len(diags) == 1
    assert diags[0].severity is Severity.ERROR
    assert "ghost" in diags[0].message
    assert diags[0].location == "node:n2"
    # The broken reference must NOT also masquerade as a cycle.
    assert fired(report, "net.cycle") == []


def test_cycle():
    net = chain()
    net.nodes["n1"] = Node("n1", ["n2", "b"], and2())
    report = lint_network(net)
    diags = fired(report, "net.cycle")
    assert len(diags) == 1
    assert diags[0].severity is Severity.ERROR
    assert "n1" in diags[0].message and "n2" in diags[0].message


def test_undefined_output():
    net = chain()
    net.outputs.append("ghost")
    diags = fired(lint_network(net), "net.undefined-output")
    assert len(diags) == 1
    assert diags[0].location == "output:ghost"


def test_duplicate_output():
    net = chain()
    net.outputs.append("n2")
    diags = fired(lint_network(net), "net.duplicate-output")
    assert len(diags) == 1
    assert diags[0].severity is Severity.WARNING


def test_cube_width_cover_vs_fanins():
    net = chain()
    net.nodes["n1"].cover = buf()  # 1-var cover on a 2-fanin node
    diags = fired(lint_network(net), "net.cube-width")
    assert len(diags) == 1
    assert diags[0].severity is Severity.ERROR
    assert "2 fanins" in diags[0].message


def test_cube_width_cube_vs_cover():
    net = chain()
    # Cover() validates widths, so smuggle the bad cube in directly.
    net.nodes["n1"].cover.cubes.append(Cube.from_string("1"))
    diags = fired(lint_network(net), "net.cube-width")
    assert len(diags) == 1
    assert diags[0].location == "node:n1/cube:1"


def test_duplicate_fanin():
    net = chain()
    net.nodes["n1"].fanins = ["a", "a"]  # Node.__init__ would reject
    diags = fired(lint_network(net), "net.duplicate-fanin")
    assert len(diags) == 1
    assert "'a'" in diags[0].message


def test_duplicate_cube():
    net = chain()
    net.nodes["n1"].cover = Cover.from_strings(["11", "11"])
    diags = fired(lint_network(net), "net.duplicate-cube")
    assert len(diags) == 1
    assert diags[0].location == "node:n1/cube:1"
    # The exact duplicate is not double-reported as containment.
    assert fired(lint_network(net), "net.contained-cube") == []


def test_contained_cube():
    net = chain()
    net.nodes["n1"].cover = Cover.from_strings(["1-", "11"])
    diags = fired(lint_network(net), "net.contained-cube")
    assert len(diags) == 1
    assert "11" in diags[0].message and "1-" in diags[0].message


def test_dangling_node():
    net = chain()
    net.add_node("n3", ["a"], buf())
    diags = fired(lint_network(net), "net.dangling-node")
    assert len(diags) == 1
    assert diags[0].location == "node:n3"


def test_unused_input():
    net = chain()
    net.add_input("c")
    diags = fired(lint_network(net), "net.unused-input")
    assert len(diags) == 1
    assert diags[0].severity is Severity.INFO
    assert diags[0].location == "input:c"


def test_no_outputs():
    net = Network("empty")
    net.add_input("a")
    net.add_node("n1", ["a"], buf())
    report = lint_network(net)
    assert len(fired(report, "net.no-outputs")) == 1


def test_report_renderers_mention_rule_and_counts():
    net = chain()
    net.outputs.append("ghost")
    report = lint_network(net)
    text = report.render_text()
    assert "net.undefined-output" in text
    assert "1 error(s)" in text
    doc = report.to_dict()
    assert doc["ok"] is False
    assert any(d["rule"] == "net.undefined-output"
               for d in doc["diagnostics"])
