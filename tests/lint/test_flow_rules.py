"""One firing mutation per CED-assembly (flow.*) rule.

A single tiny flow is built once; every test mutates a fresh deep copy
of its assembly and asserts exactly the intended rule fires.
"""

import pytest

from repro.bench import tiny_benchmark
from repro.ced import CedAssembly, clone_netlist, run_ced_flow
from repro.lint import Severity, lint_assembly

from .helpers import fired


@pytest.fixture(scope="module")
def flow():
    return run_ced_flow(tiny_benchmark(), reliability_words=1,
                        coverage_words=1, power_words=1, seed=7)


def fresh(flow):
    a = flow.assembly
    return CedAssembly(
        netlist=clone_netlist(a.netlist),
        original=a.original,
        error_pair=a.error_pair,
        fault_sites=list(a.fault_sites),
        directions=dict(a.directions),
        checker_pairs=dict(a.checker_pairs),
        shared_gates=a.shared_gates)


def test_real_assembly_is_clean(flow):
    report = lint_assembly(flow.assembly)
    assert report.ok
    assert report.diagnostics == []


def test_direction_values_missing(flow):
    asm = fresh(flow)
    po = next(iter(asm.directions))
    del asm.directions[po]
    diags = fired(lint_assembly(asm), "flow.direction-values")
    assert len(diags) == 1
    assert "no recorded direction" in diags[0].message


def test_direction_values_bad(flow):
    asm = fresh(flow)
    po = next(iter(asm.directions))
    asm.directions[po] = 3
    diags = fired(lint_assembly(asm), "flow.direction-values")
    assert len(diags) == 1
    assert "not 0/1" in diags[0].message


def test_fault_sites_phantom(flow):
    asm = fresh(flow)
    asm.fault_sites.append("ghost_gate")
    diags = fired(lint_assembly(asm), "flow.fault-sites")
    assert len(diags) == 1
    assert "ghost_gate" in diags[0].message


def test_fault_sites_uncovered_gate(flow):
    asm = fresh(flow)
    dropped = asm.fault_sites.pop()
    diags = fired(lint_assembly(asm), "flow.fault-sites")
    assert len(diags) == 1
    assert dropped in diags[0].message


def test_nonintrusive(flow):
    asm = fresh(flow)
    apx_signal = next(s for s in asm.netlist.gates
                      if s.startswith("apx_"))
    victim = next(s for s in asm.fault_sites
                  if asm.netlist.gates[s].fanins)
    asm.netlist.gates[victim].fanins[0] = apx_signal
    diags = fired(lint_assembly(asm), "flow.nonintrusive")
    assert len(diags) == 1
    assert diags[0].severity is Severity.ERROR
    assert victim in diags[0].message and apx_signal in diags[0].message


def test_nonintrusive_sharing_downgrades_to_info(flow):
    asm = fresh(flow)
    asm.shared_gates = 2
    diags = fired(lint_assembly(asm), "flow.nonintrusive")
    assert len(diags) == 1
    assert diags[0].severity is Severity.INFO


def test_output_preserved_rewired(flow):
    asm = fresh(flow)
    po = asm.original.outputs[0]
    asm.netlist.po_signals[po] = asm.error_pair[0]
    diags = fired(lint_assembly(asm), "flow.output-preserved")
    assert len(diags) == 1
    assert "instead of the original signal" in diags[0].message


def test_output_preserved_missing(flow):
    asm = fresh(flow)
    po = asm.original.outputs[0]
    del asm.netlist.po_signals[po]
    diags = fired(lint_assembly(asm), "flow.output-preserved")
    assert len(diags) == 1
    assert "missing" in diags[0].message


def test_checker_missing(flow):
    asm = fresh(flow)
    po = asm.original.outputs[0]
    del asm.checker_pairs[po]
    diags = fired(lint_assembly(asm), "flow.checker-missing")
    assert len(diags) == 1
    assert diags[0].location == f"po:{po}"


def test_checker_rail_not_a_signal(flow):
    asm = fresh(flow)
    po = asm.original.outputs[0]
    asm.checker_pairs[po] = ("nope0", "nope1")
    diags = fired(lint_assembly(asm), "flow.checker-missing")
    assert len(diags) == 2


def test_trc_tree_wrong_error_output(flow):
    asm = fresh(flow)
    asm.netlist.po_signals["__error0"] = asm.netlist.inputs[0]
    diags = fired(lint_assembly(asm), "flow.trc-tree")
    assert len(diags) == 1
    assert "__error0" in diags[0].message


def test_trc_tree_orphan_checker_rail(flow):
    asm = fresh(flow)
    po = asm.original.outputs[0]
    cell = next(iter(asm.netlist.gates.values())).cell
    orphan = asm.netlist.add_gate(
        asm.netlist.fresh_name("orphan"), cell.name,
        [asm.netlist.inputs[0]] * cell.num_inputs)
    asm.checker_pairs[po] = (orphan, orphan)
    diags = fired(lint_assembly(asm), "flow.trc-tree")
    assert len(diags) == 2
    assert all("does not reach" in d.message for d in diags)
