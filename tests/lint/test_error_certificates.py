"""Error-bound certificates and the pair.error-* rule family."""

import pytest

from repro.approx import ApproxConfig, evaluate_error, get_engine
from repro.approx.config import ErrorSpec
from repro.bench.suite import tiny_benchmark
from repro.flow import AnalysisContext
from repro.lint import (ERROR_CERT_KIND, build_error_certificate,
                        check_error_certificate, lint_approx_result,
                        validate_error_certificate)
from repro.lint.certificates import certificate_filename

from tests.lint.helpers import fired


def resub_result(bound=0.1, metric="er"):
    network = tiny_benchmark()
    config = ApproxConfig(engine="resub",
                          error={"metric": metric, "bound": bound})
    directions = {po: 1 for po in network.outputs}
    result = get_engine("resub").synthesize(network, directions, config,
                                            ctx=AnalysisContext())
    return network, result


@pytest.fixture(scope="module")
def pair():
    network, result = resub_result()
    return network, result


@pytest.fixture(scope="module")
def cert(pair):
    network, result = pair
    evaluation = evaluate_error(
        network, result.approx,
        ErrorSpec(metric="er", bound=0.1))
    return build_error_certificate(network, result.approx, evaluation)


class TestBuildValidateCheck:
    def test_schema_valid_and_rechecks_clean(self, cert):
        assert cert["kind"] == ERROR_CERT_KIND
        assert validate_error_certificate(cert) == []
        assert check_error_certificate(cert) == []
        assert cert["metric"] == "er"
        assert cert["value"] <= cert["bound"]
        assert ".model" in cert["original_blif"]
        assert ".model" in cert["approx_blif"]

    def test_filename_is_metric_scoped(self, cert):
        name = certificate_filename(cert)
        assert name.endswith("__er_bound.cert.json")

    def test_tampered_bound_is_detected(self, cert):
        doc = dict(cert)
        doc["bound"] = 1e-9          # claim far below the measurement
        problems = validate_error_certificate(doc)
        assert problems, "digest/bound tamper must be caught"

    def test_recheck_catches_wrong_value(self, cert):
        from repro.lint.certificates import certificate_digest
        doc = dict(cert)
        doc["value"] = 0.0           # forged measurement, re-signed
        doc["digest"] = certificate_digest(doc)
        assert validate_error_certificate(doc) == []
        assert check_error_certificate(doc), \
            "re-evaluation must expose the forged value"

    def test_build_refuses_unsound_or_exceeded(self, pair):
        network, result = pair
        good = evaluate_error(network, result.approx,
                              ErrorSpec(metric="er", bound=0.1))
        exceeded = evaluate_error(network, result.approx,
                                  ErrorSpec(metric="er", bound=0.0))
        if not exceeded.within:
            with pytest.raises(ValueError):
                build_error_certificate(network, result.approx, exceeded)
        # MC-tier er results are not sound; they must be refused too.
        mc = evaluate_error(network, result.approx,
                            ErrorSpec(metric="er", bound=1.0,
                                      exact_threshold=0),
                            bdd_node_budget=1)
        assert not mc.sound
        with pytest.raises(ValueError):
            build_error_certificate(network, result.approx, mc)
        assert good.within  # sanity: the good path really is sound


class TestErrorRules:
    def test_strict_lint_clean_and_certified(self, pair):
        network, result = pair
        report = lint_approx_result(network, result, certificates=True)
        assert not report.errors(), [d.message for d in
                                     report.errors()]
        error_certs = [c for c in report.certificates
                       if c.get("kind") == ERROR_CERT_KIND]
        assert len(error_certs) == 1
        assert check_error_certificate(error_certs[0]) == []

    def test_po_implication_stands_down(self, pair):
        network, result = pair
        report = lint_approx_result(network, result)
        assert fired(report, "pair.po-implication") == []

    def test_error_claim_cross_checks_report(self, pair):
        network, result = pair
        doctored = dict(result.error_report)
        doctored["metric"] = "wce"  # claim a different metric
        result_bad = type(result)(**{**result.__dict__,
                                     "error_report": doctored})
        report = lint_approx_result(network, result_bad)
        claims = fired(report, "pair.error-claim")
        assert claims, "metric mismatch must be reported"

    def test_exceeded_bound_is_an_error(self, pair):
        network, result = pair
        # Shrink the claimed bound below the measured value: the lint
        # re-measurement is sound and exceeds it -> ERROR severity.
        value = result.error_report["value"]
        if value == 0.0:
            pytest.skip("synthesis landed on a zero-error result")
        doctored = dict(result.error_report)
        doctored["bound"] = value / 2
        result_bad = type(result)(**{**result.__dict__,
                                     "error_report": doctored})
        report = lint_approx_result(network, result_bad)
        assert any(d.rule == "pair.error-bound"
                   for d in report.errors())
