"""Shared helpers for the lint test suite."""

from repro.cubes import Cover, Cube
from repro.network import Network


def fired(report, rule_id):
    """Diagnostics of one rule, in report order."""
    return [d for d in report.diagnostics if d.rule == rule_id]


def and2() -> Cover:
    return Cover(2, [Cube.from_string("11")])


def buf() -> Cover:
    return Cover(1, [Cube.from_string("1")])


def chain() -> Network:
    """a, b -> n1 = AND -> n2 = BUF -> output n2."""
    net = Network("chain")
    net.add_input("a")
    net.add_input("b")
    net.add_node("n1", ["a", "b"], and2())
    net.add_node("n2", ["n1"], buf())
    net.add_output("n2")
    return net
