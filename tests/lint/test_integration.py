"""Integration: lint levels in the flows, CLI, manifests, registry."""

import json

import pytest

from repro.approx import ApproxConfig, synthesize_approximation
from repro.bench import tiny_benchmark
from repro.ced import run_ced_flow
from repro.cli import main
from repro.lab.manifest import build_manifest, validate_manifest
from repro.lab.tasks import ced_flow_task
from repro.lint import (Diagnostic, LintError, LintReport, Severity,
                        all_rules, check_certificate)


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------

EXPECTED_RULES = {
    "net.undefined-fanin", "net.cycle", "net.undefined-output",
    "net.duplicate-output", "net.cube-width", "net.duplicate-fanin",
    "net.duplicate-cube", "net.contained-cube", "net.dangling-node",
    "net.unused-input", "net.no-outputs",
    "net.const-node", "net.const-redundant", "net.structural-dup",
    "net.dead-cone", "net.unread-fanin", "net.const-po",
    "pair.io-mismatch", "pair.direction-missing", "pair.direction-value",
    "pair.untyped-node", "pair.po-type", "pair.dc-read",
    "pair.ex-changed", "pair.direction-local", "pair.cube-unjustified",
    "pair.po-implication", "pair.statically-implied",
    "pair.static-conflict",
    "pair.error-bound", "pair.error-claim",
    "flow.direction-values", "flow.fault-sites", "flow.nonintrusive",
    "flow.output-preserved", "flow.checker-missing", "flow.trc-tree",
}


def test_registry_matches_the_documented_catalog():
    assert {r.rule_id for r in all_rules()} == EXPECTED_RULES


def test_every_rule_has_a_firing_test():
    # Keep the mutation-test files honest: each registered rule id must
    # be asserted on somewhere in this directory.
    from pathlib import Path
    here = Path(__file__).parent
    corpus = "".join(p.read_text() for p in here.glob("test_*.py"))
    untested = [r.rule_id for r in all_rules()
                if f'"{r.rule_id}"' not in corpus]
    assert untested == []


# ----------------------------------------------------------------------
# ApproxConfig.lint_level
# ----------------------------------------------------------------------

def test_approx_config_rejects_unknown_level():
    with pytest.raises(ValueError, match="lint level"):
        ApproxConfig(lint_level="pedantic")


def test_synthesis_attaches_report_at_warn():
    net = tiny_benchmark()
    directions = {po: 1 for po in net.outputs}
    result = synthesize_approximation(
        net, directions, ApproxConfig(lint_level="warn"))
    assert result.lint is not None
    assert result.lint.ok
    result = synthesize_approximation(net, directions, ApproxConfig())
    assert result.lint is None


def test_synthesis_strict_passes_on_clean_result():
    net = tiny_benchmark()
    directions = {po: 0 for po in net.outputs}
    result = synthesize_approximation(
        net, directions, ApproxConfig(lint_level="strict"))
    assert result.lint is not None and result.lint.ok


def test_lint_error_names_rules():
    report = LintReport(diagnostics=[
        Diagnostic("net.cycle", Severity.ERROR, "boom", "c", "", "", {}),
        Diagnostic("net.cycle", Severity.ERROR, "boom", "c", "", "", {}),
    ])
    err = LintError(report)
    assert err.report is report
    assert "2 error(s)" in str(err) and "net.cycle" in str(err)


# ----------------------------------------------------------------------
# run_ced_flow lint_level / certificate_dir
# ----------------------------------------------------------------------

def test_flow_lint_level_and_certificates(tmp_path):
    flow = run_ced_flow(tiny_benchmark(), reliability_words=1,
                        coverage_words=1, power_words=1,
                        lint_level="warn", certificate_dir=tmp_path)
    assert flow.lint is not None and flow.lint.ok
    assert flow.to_dict()["lint"]["ok"] is True
    paths = sorted(tmp_path.glob("*.cert.json"))
    assert paths, "flow emitted no certificate files"
    for path in paths:
        assert check_certificate(json.loads(path.read_text())) == []


def test_flow_rejects_unknown_lint_level():
    with pytest.raises(ValueError, match="lint level"):
        run_ced_flow(tiny_benchmark(), lint_level="loud")


def test_ced_flow_task_carries_diagnostics():
    record = ced_flow_task("tiny", words=1, lint_level="warn")
    assert record["lint"]["ok"] is True
    assert isinstance(record["lint"]["diagnostics"], list)


# ----------------------------------------------------------------------
# Manifest diagnostics entries
# ----------------------------------------------------------------------

def _manifest_with(diagnostics):
    job = {"params": {}, "seed": 1, "status": "ok", "attempts": 1,
           "wall_time_s": 0.0}
    if diagnostics is not None:
        job["diagnostics"] = diagnostics
    return build_manifest(run_id="r", root_seed=1, workers=1,
                          wall_time_s=0.0, jobs={"j": job})


def test_manifest_accepts_lint_reports():
    doc = _manifest_with({"ok": True, "diagnostics": []})
    assert validate_manifest(doc) == []
    assert validate_manifest(_manifest_with(None)) == []


def test_manifest_rejects_malformed_diagnostics():
    errors = validate_manifest(_manifest_with(["not", "a", "report"]))
    assert any("diagnostics" in e for e in errors)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_lint_text(capsys):
    assert main(["lint", "--circuit", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_cli_lint_json(capsys):
    assert main(["lint", "--circuit", "tiny", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is True
    assert doc["counts"]["error"] == 0


def test_cli_lint_strict_fails_on_warnings(tmp_path, capsys):
    path = tmp_path / "dup.blif"
    path.write_text(".model dup\n.inputs a b\n.outputs f\n"
                    ".names a b f\n11 1\n11 1\n.end\n")
    assert main(["lint", "--blif", str(path)]) == 0
    assert main(["lint", "--blif", str(path), "--strict"]) == 1
    out = capsys.readouterr().out
    assert "net.duplicate-cube" in out


def test_cli_lint_certificates_need_flow(tmp_path, capsys):
    code = main(["lint", "--circuit", "tiny",
                 "--certificates", str(tmp_path)])
    assert code == 2


def test_cli_lint_flow_writes_certificates(tmp_path, capsys):
    code = main(["lint", "--circuit", "tiny", "--flow", "--words", "1",
                 "--certificates", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "certificate" in out
    assert sorted(tmp_path.glob("*.cert.json"))
