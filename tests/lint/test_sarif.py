"""SARIF emission: shape, fingerprints, baselines, validation."""

import json

import pytest

from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.sarif import (FINGERPRINT_KEY, SARIF_VERSION,
                              finding_fingerprint, load_baseline,
                              new_results, to_sarif, validate_sarif,
                              write_sarif)


def _diag(rule="net.dead-cone", severity=Severity.WARNING,
          message="node proven unobservable", circuit="tiny",
          location="node:n1", hint=""):
    return Diagnostic(rule=rule, severity=severity, message=message,
                      circuit=circuit, location=location, hint=hint)


def _report():
    return LintReport(diagnostics=[
        _diag(),
        _diag(rule="net.const-node", severity=Severity.INFO,
              message="node is constant 0", location="node:n2",
              hint="fold it away"),
        _diag(rule="pair.unproven-po", severity=Severity.ERROR,
              message="implication not proved", location="po:y"),
    ])


def test_fingerprint_is_stable_and_content_sensitive():
    a = finding_fingerprint("r", "c", "node:n", "msg")
    assert a == finding_fingerprint("r", "c", "node:n", "msg")
    assert a != finding_fingerprint("r", "c", "node:n", "other msg")
    assert a != finding_fingerprint("r", "c", "node:m", "msg")
    assert len(a) == 32 and int(a, 16) >= 0


def test_to_sarif_shape_is_valid_and_complete():
    doc = to_sarif(_report())
    assert validate_sarif(doc) == []
    assert doc["version"] == SARIF_VERSION
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro.lint"
    results = run["results"]
    assert len(results) == 3
    rules = run["tool"]["driver"]["rules"]
    for result in results:
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
        assert result["partialFingerprints"][FINGERPRINT_KEY]
        fqn = result["locations"][0]["logicalLocations"][0][
            "fullyQualifiedName"]
        assert fqn.startswith("tiny:")
    # Severity mapping: info renders as SARIF "note".
    levels = {r["ruleId"]: r["level"] for r in results}
    assert levels["net.const-node"] == "note"
    assert levels["net.dead-cone"] == "warning"
    assert levels["pair.unproven-po"] == "error"
    # The hint rides along as markdown.
    noted = next(r for r in results
                 if r["ruleId"] == "net.const-node")
    assert "fold it away" in noted["message"]["markdown"]


def test_emission_order_is_independent_of_insertion_order():
    report = _report()
    shuffled = LintReport(diagnostics=list(reversed(
        report.diagnostics)))
    assert to_sarif(report) == to_sarif(shuffled)


def test_baseline_round_trip_suppresses_known_findings(tmp_path):
    path = tmp_path / "baseline.sarif"
    write_sarif(_report(), path)
    baseline = load_baseline(path)
    assert len(baseline) == 3

    unchanged = to_sarif(_report(), baseline=baseline)
    assert validate_sarif(unchanged) == []
    assert new_results(unchanged) == []
    assert all(r["baselineState"] == "unchanged"
               for r in unchanged["runs"][0]["results"])

    grown = _report()
    grown.diagnostics.append(_diag(message="a brand new finding"))
    doc = to_sarif(grown, baseline=baseline)
    fresh = new_results(doc)
    assert len(fresh) == 1
    assert fresh[0]["message"]["text"] == "a brand new finding"


def test_new_results_without_baseline_reports_everything():
    assert len(new_results(to_sarif(_report()))) == 3


def test_load_baseline_rejects_malformed_documents(tmp_path):
    bad_json = tmp_path / "bad.sarif"
    bad_json.write_text("{not json")
    with pytest.raises(json.JSONDecodeError):
        load_baseline(bad_json)

    wrong_shape = tmp_path / "shape.sarif"
    wrong_shape.write_text(json.dumps({"version": "1.0", "runs": []}))
    with pytest.raises(ValueError, match="invalid SARIF baseline"):
        load_baseline(wrong_shape)


def _valid_doc():
    return to_sarif(_report())


@pytest.mark.parametrize("mutate,needle", [
    (lambda d: d.update(version="9.9"), "version"),
    (lambda d: d.update(runs=[]), "runs"),
    (lambda d: d["runs"][0]["tool"]["driver"].pop("name"),
     "driver.name"),
    (lambda d: d["runs"][0]["results"][0].update(level="fatal"),
     "level"),
    (lambda d: d["runs"][0]["results"][0].update(ruleIndex=99),
     "ruleIndex"),
    (lambda d: d["runs"][0]["results"][0].update(
        partialFingerprints={"k": 7}), "partialFingerprints"),
    (lambda d: d["runs"][0]["results"][0].pop("message"),
     "message.text"),
    (lambda d: d["runs"][0]["results"][0].update(
        baselineState="stale"), "baselineState"),
], ids=["version", "empty-runs", "driver-name", "level", "rule-index",
        "fingerprint-type", "message", "baseline-state"])
def test_validate_sarif_flags_each_defect(mutate, needle):
    doc = _valid_doc()
    assert validate_sarif(doc) == []
    mutate(doc)
    problems = validate_sarif(doc)
    assert problems, f"defect not caught: {needle}"
    assert any(needle in p for p in problems), problems


def test_validate_sarif_rejects_non_object():
    assert validate_sarif([1, 2]) \
        == ["document is list, expected object"]
