"""One firing mutation per analysis-backed lint rule.

These rules consume repro.analyze fixpoint solutions, so each test
builds the smallest network whose *dataflow facts* (not just syntax)
trigger the finding: functions that are constant only after
propagation, cubes killed by SDCs, cones masked at every output.
"""

from repro.approx import NodeType
from repro.cubes import Cover, Cube
from repro.lint import Severity, lint_network, lint_pair
from repro.network import Network

from .helpers import and2, buf, chain, fired


def _const_net(value: int) -> Network:
    """a -> k = const(value); f = AND(a, k) -> output f."""
    net = Network("constnet")
    net.add_input("a")
    if value:
        net.add_node("k", [], Cover(0, [Cube(0, 0, 0)]))
    else:
        net.add_node("k", [], Cover.zero(0))
    net.add_node("f", ["a", "k"], and2())
    net.add_output("f")
    return net


def test_const_node():
    # f = AND(a, 0) is constant 0 but still reads two signals.
    report = lint_network(_const_net(0))
    diags = fired(report, "net.const-node")
    assert len(diags) == 1
    assert diags[0].severity is Severity.WARNING
    assert diags[0].location == "node:f"
    assert diags[0].data == {"constant": 0}
    # The explicit constant node itself is intentional: not flagged.
    assert all("'k'" not in d.message for d in diags)


def test_const_node_quiet_on_clean_network():
    assert fired(lint_network(chain()), "net.const-node") == []


def test_const_redundant():
    # Cube 1 of f requires k=0, but k is proven constant 1: SDC.
    net = Network("sdc")
    net.add_input("a")
    net.add_node("k", [], Cover(0, [Cube(0, 0, 0)]))
    net.add_node("f", ["a", "k"],
                 Cover.from_strings(["11", "10"]))
    net.add_output("f")
    diags = fired(lint_network(net), "net.const-redundant")
    assert len(diags) == 1
    assert diags[0].location == "node:f/cube:1"
    assert "never fire" in diags[0].message


def test_structural_dup():
    # g1 and g2 root identical AND(a, b) cones.
    net = Network("dup")
    net.add_input("a")
    net.add_input("b")
    net.add_node("g1", ["a", "b"], and2())
    net.add_node("g2", ["a", "b"], and2())
    net.add_node("f", ["g1", "g2"],
                 Cover.from_strings(["1-", "-1"]))
    net.add_output("f")
    diags = fired(lint_network(net), "net.structural-dup")
    assert len(diags) == 1
    assert diags[0].data == {"nodes": ["g1", "g2"]}
    assert diags[0].location == "node:g1"


def test_dead_cone():
    # d feeds f, but f = AND(d, k) with k constant 0 masks it at the
    # only output: d is PO-reaching yet provably unobservable.
    net = Network("dead")
    net.add_input("a")
    net.add_node("k", [], Cover.zero(0))
    net.add_node("d", ["a"], buf())
    net.add_node("f", ["d", "k"], and2())
    net.add_output("f")
    diags = fired(lint_network(net), "net.dead-cone")
    # The constant node k is itself unobservable too; d is the point.
    assert "node:d" in [d.location for d in diags]
    assert diags[0].severity is Severity.WARNING


def test_unread_fanin():
    # f declares b but no cube constrains it.
    net = Network("unread")
    net.add_input("a")
    net.add_input("b")
    net.add_node("f", ["a", "b"], Cover.from_strings(["1-"]))
    net.add_output("f")
    diags = fired(lint_network(net), "net.unread-fanin")
    assert len(diags) == 1
    assert "'b'" in diags[0].message
    assert diags[0].data == {"positions": [1]}


def test_const_po_propagated_is_warning():
    # The PO driver is constant only through propagation: suspicious.
    diags = fired(lint_network(_const_net(0)), "net.const-po")
    assert len(diags) == 1
    assert diags[0].severity is Severity.WARNING
    assert diags[0].location == "po:f"


def test_const_po_explicit_is_info():
    net = Network("constpo")
    net.add_input("a")
    net.add_node("f", [], Cover.zero(0))
    net.add_output("f")
    diags = fired(lint_network(net), "net.const-po")
    assert len(diags) == 1
    assert diags[0].severity is Severity.INFO


def _pair_net(rows, name="pair"):
    net = Network(name)
    net.add_input("a")
    net.add_input("b")
    net.add_node("f", ["a", "b"], Cover.from_strings(rows))
    net.add_output("f")
    return net


def test_statically_implied():
    # approx = AND is contained in original = OR: the relational pass
    # discharges G => F with no BDD/SAT.
    report = lint_pair(_pair_net(["1-", "-1"]), _pair_net(["11"]),
                       {"f": NodeType.ONE}, {"f": 1})
    diags = fired(report, "pair.statically-implied")
    assert len(diags) == 1
    assert diags[0].severity is Severity.INFO
    assert diags[0].data["discharged"] == \
        [{"po": "f", "direction": 1, "reason": "relation"}]
    assert diags[0].data["stats"]["discharged"] >= 1


def test_statically_implied_quiet_on_identical_pair():
    report = lint_pair(_pair_net(["11"]), _pair_net(["11"]),
                       {"f": NodeType.EX}, {"f": 1})
    assert fired(report, "pair.statically-implied") == []


def test_static_conflict():
    # original is the tautology, approx collapsed to constant 0, yet
    # direction 0 claims F => G: statically refuted, claimed correct.
    original = _pair_net(["--"])
    approx = Network("pair")
    approx.add_input("a")
    approx.add_input("b")
    approx.add_node("f", [], Cover.zero(0))
    approx.add_output("f")
    report = lint_pair(original, approx, {"f": NodeType.ZERO},
                       {"f": 0}, claimed_method="bdd")
    diags = fired(report, "pair.static-conflict")
    assert len(diags) == 1
    assert diags[0].severity is Severity.ERROR
    assert diags[0].data["witness"] == {"a": False, "b": False}
    assert not report.ok


def test_static_conflict_downgrades_without_claim():
    original = _pair_net(["--"])
    approx = Network("pair")
    approx.add_input("a")
    approx.add_input("b")
    approx.add_node("f", [], Cover.zero(0))
    approx.add_output("f")
    report = lint_pair(original, approx, {"f": NodeType.ZERO},
                       {"f": 0}, claimed_method="sim",
                       claimed_correct={"f": False})
    diags = fired(report, "pair.static-conflict")
    assert len(diags) == 1
    assert diags[0].severity is Severity.WARNING


def test_analyze_rules_skip_ill_formed_networks():
    # Undefined fanins / cycles belong to the structural rules; the
    # dataflow rules must not crash on them.
    from repro.network import Node
    net = chain()
    net.nodes["n2"] = Node("n2", ["ghost"], buf())
    report = lint_network(net)
    assert fired(report, "net.undefined-fanin")
    assert fired(report, "net.const-node") == []
