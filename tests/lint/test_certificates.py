"""Certificate build / validate / tamper / offline-recheck tests."""

import json

import pytest

from repro.cubes import Cover
from repro.lint import (PairSemantics, ProofResult, build_certificate,
                        certificate_digest, check_certificate,
                        validate_certificate, write_certificates)
from repro.lint.certificates import certificate_filename
from repro.network import Network


def _net(cover_rows, name="cert"):
    net = Network(name)
    net.add_input("a")
    net.add_input("b")
    net.add_node("f", ["a", "b"], Cover.from_strings(cover_rows))
    net.add_output("f")
    return net


@pytest.fixture
def cert():
    # approx = AND implies original = OR: a proved 1-approximation.
    original, approx = _net(["1-", "-1"]), _net(["11"])
    proof = PairSemantics(original, approx).implication("f", 1)
    assert proof.holds is True
    return build_certificate(original, approx, "f", 1, proof)


def test_certificate_is_schema_valid_and_rechecks(cert):
    assert validate_certificate(cert) == []
    assert check_certificate(cert) == []
    assert cert["method"] in ("bdd", "sat", "static")
    assert cert["inputs"] == ["a", "b"]
    assert ".model" in cert["original_blif"]


def test_build_refuses_unproved():
    proof = ProofResult(False, "bdd", {}, {"a": True, "b": False})
    with pytest.raises(ValueError, match="proved"):
        build_certificate(_net(["11"]), _net(["1-"]), "f", 1, proof)
    with pytest.raises(ValueError, match="proved"):
        build_certificate(_net(["11"]), _net(["11"]), "f", 1,
                          ProofResult(None, "sat"))


def test_tampered_digest_is_detected(cert):
    cert["direction"] = 0
    problems = validate_certificate(cert)
    assert any("digest mismatch" in p for p in problems)


def test_resigned_false_claim_fails_recheck(cert):
    # Flip the claim and re-sign: the schema passes, the re-proof must
    # catch the lie (OR does not imply AND).
    cert["direction"] = 0
    cert["digest"] = certificate_digest(cert)
    assert validate_certificate(cert) == []
    problems = check_certificate(cert)
    assert any("does NOT hold" in p for p in problems)


def test_missing_and_mistyped_keys(cert):
    broken = dict(cert)
    del broken["original_blif"]
    assert any("original_blif" in p for p in validate_certificate(broken))
    broken = dict(cert)
    broken["direction"] = "1"
    assert any("not int" in p for p in validate_certificate(broken))
    assert validate_certificate("not a dict") \
        == ["certificate is not a JSON object"]


def test_corrupt_embedded_blif_fails_recheck(cert):
    cert["original_blif"] = ".model broken\n.names x y\n"
    cert["digest"] = certificate_digest(cert)
    problems = check_certificate(cert)
    assert len(problems) == 1
    assert "does not parse" in problems[0]
    # The crash diagnostic names the exception type and keeps the
    # traceback tail — a bare str(err) hides both.
    assert "Error" in problems[0]
    assert "Traceback" in problems[0]


def test_corrupt_embedded_blif_raises_under_strict(cert):
    cert["original_blif"] = ".model broken\n.names x y\n"
    cert["digest"] = certificate_digest(cert)
    with pytest.raises(Exception):
        check_certificate(cert, strict=True)


def test_reproof_crash_is_reported_with_type_and_traceback(
        cert, monkeypatch):
    """A crash inside the re-proof must not surface as an opaque
    string (or worse, a clean bill): the problem entry carries the
    exception type, message, and traceback tail."""
    import repro.lint.certificates as certificates

    class Boom:
        def __init__(self, *args, **kwargs):
            raise KeyError("missing po wiring")

    monkeypatch.setattr(certificates, "PairSemantics", Boom)
    problems = check_certificate(cert)
    assert len(problems) == 1
    assert "implication re-proof crashed" in problems[0]
    assert "KeyError" in problems[0]
    assert "missing po wiring" in problems[0]
    assert "Traceback" in problems[0]
    with pytest.raises(KeyError, match="missing po wiring"):
        check_certificate(cert, strict=True)


def test_filename_is_sanitized():
    assert certificate_filename(
        {"circuit": "my circuit", "po": "out[3]", "direction": 1}) \
        == "my_circuit__out_3___d1.cert.json"


def test_write_certificates_round_trip(cert, tmp_path):
    paths = write_certificates([cert], tmp_path)
    assert len(paths) == 1
    loaded = json.loads(paths[0].read_text())
    assert loaded == cert
    assert check_certificate(loaded) == []
