"""One firing mutation per approximation-semantics (pair.*) rule."""

from repro.approx import NodeType
from repro.cubes import Cover
from repro.lint import Severity, lint_pair
from repro.network import Network

from .helpers import and2, buf, fired


def _net(cover_rows, name="pair"):
    """a, b -> f with the given SOP -> output f."""
    net = Network(name)
    net.add_input("a")
    net.add_input("b")
    net.add_node("f", ["a", "b"], Cover.from_strings(cover_rows))
    net.add_output("f")
    return net


def _lint(original, approx, types=None, directions=None, **kwargs):
    if types is None:
        types = {"f": NodeType.ONE}
    if directions is None:
        directions = {"f": 1}
    return lint_pair(original, approx, types, directions, **kwargs)


def test_identical_pair_is_clean():
    report = _lint(_net(["11"]), _net(["11"]),
                   types={"f": NodeType.EX})
    assert report.ok
    assert [d for d in report.diagnostics if d.rule.startswith("pair.")] \
        == []


def test_io_mismatch_inputs():
    approx = _net(["11"])
    approx.add_input("c")
    diags = fired(_lint(_net(["11"]), approx), "pair.io-mismatch")
    assert len(diags) == 1
    assert "'c'" in diags[0].message


def test_io_mismatch_outputs():
    approx = _net(["11"])
    approx.outputs.append("a")
    diags = fired(_lint(_net(["11"]), approx), "pair.io-mismatch")
    assert len(diags) == 1
    assert "outputs differ" in diags[0].message


def test_direction_missing():
    diags = fired(_lint(_net(["11"]), _net(["11"]), directions={}),
                  "pair.direction-missing")
    assert len(diags) == 1
    assert diags[0].location == "po:f"


def test_direction_value():
    diags = fired(_lint(_net(["11"]), _net(["11"]),
                        directions={"f": 2}),
                  "pair.direction-value")
    assert len(diags) == 1
    assert diags[0].severity is Severity.ERROR


def test_untyped_node():
    diags = fired(_lint(_net(["11"]), _net(["11"]), types={}),
                  "pair.untyped-node")
    assert len(diags) == 1
    assert diags[0].location == "node:f"


def test_po_type_inconsistent_with_direction():
    diags = fired(_lint(_net(["11"]), _net(["11"]),
                        types={"f": NodeType.ZERO}),
                  "pair.po-type")
    assert len(diags) == 1
    assert "direction 1" in diags[0].message


def test_dc_read():
    # n1 is DC-typed yet the (changed) approximate f still reads it.
    original = Network("dc")
    original.add_input("a")
    original.add_input("c")
    original.add_node("n1", ["a"], buf())
    original.add_node("f", ["n1", "c"], and2())
    original.add_output("f")
    approx = original.copy()
    approx.replace_cover("f", Cover.from_strings(["10"]))
    types = {"n1": NodeType.DC, "f": NodeType.ONE}
    diags = fired(lint_pair(original, approx, types, {"f": 1}),
                  "pair.dc-read")
    assert len(diags) == 1
    assert "n1" in diags[0].message


def test_dc_read_skips_exact_nodes():
    # Same shape, but f kept its original cover (restored-exact).
    original = Network("dc")
    original.add_input("a")
    original.add_input("c")
    original.add_node("n1", ["a"], buf())
    original.add_node("f", ["n1", "c"], and2())
    original.add_output("f")
    types = {"n1": NodeType.DC, "f": NodeType.ONE}
    report = lint_pair(original, original.copy(), types, {"f": 1})
    assert fired(report, "pair.dc-read") == []


def test_ex_changed():
    diags = fired(_lint(_net(["11"]), _net(["1-"]),
                        types={"f": NodeType.EX}),
                  "pair.ex-changed")
    assert len(diags) == 1
    assert diags[0].location == "node:f"


def test_direction_local_one_grew():
    # Type-ONE nodes may only shrink their on-set; "1-" grows "11".
    diags = fired(_lint(_net(["11"]), _net(["1-"])),
                  "pair.direction-local")
    assert len(diags) == 1
    assert "apx => orig" in diags[0].message


def test_direction_local_zero_shrank():
    diags = fired(_lint(_net(["1-"]), _net(["11"]),
                        types={"f": NodeType.ZERO},
                        directions={"f": 0}),
                  "pair.direction-local")
    assert len(diags) == 1
    assert "orig => apx" in diags[0].message


def test_direction_local_accepts_shrinking():
    report = _lint(_net(["1-", "-1"]), _net(["11"]))
    assert fired(report, "pair.direction-local") == []


def test_cube_unjustified():
    # f = XNOR(a, n1) with n1 typed ZERO.  n1 is fully observable at f
    # (toggling it always flips XNOR), so Eq. 1 leaves no feasible
    # subspace; the kept cube "11" reads n1 without justification.
    original = Network("eq1")
    original.add_input("a")
    original.add_input("b")
    original.add_node("n1", ["b"], buf())
    original.add_node("f", ["a", "n1"],
                      Cover.from_strings(["11", "00"]))
    original.add_output("f")
    approx = original.copy()
    approx.replace_cover("f", Cover.from_strings(["11"]))
    types = {"n1": NodeType.ZERO, "f": NodeType.ONE}
    diags = fired(lint_pair(original, approx, types, {"f": 1}),
                  "pair.cube-unjustified")
    assert len(diags) == 1
    assert "11" in diags[0].message
    assert diags[0].location == "node:f/cube:0"


def test_cube_unjustified_accepts_conforming_selection():
    # Dropping the n1-reading cube is the exact selection: clean.
    original = Network("eq1")
    original.add_input("a")
    original.add_input("b")
    original.add_node("n1", ["b"], buf())
    original.add_node("f", ["a", "n1"],
                      Cover.from_strings(["1-", "01"]))
    original.add_output("f")
    approx = original.copy()
    approx.replace_cover("f", Cover.from_strings(["1-"]))
    types = {"n1": NodeType.ZERO, "f": NodeType.ONE}
    report = lint_pair(original, approx, types, {"f": 1})
    assert fired(report, "pair.cube-unjustified") == []


def test_po_implication_holds_quietly():
    report = _lint(_net(["1-", "-1"]), _net(["11"]))
    assert fired(report, "pair.po-implication") == []


def test_po_implication_refuted_error_when_proof_claimed():
    diags = fired(_lint(_net(["11"]), _net(["1-", "-1"]),
                        claimed_method="bdd"),
                  "pair.po-implication")
    assert len(diags) == 1
    assert diags[0].severity is Severity.ERROR
    assert "G => F" in diags[0].message
    assert diags[0].data["witness"] is not None


def test_po_implication_refuted_warning_for_sim_claims():
    diags = fired(_lint(_net(["11"]), _net(["1-", "-1"]),
                        claimed_method="sim"),
                  "pair.po-implication")
    assert len(diags) == 1
    assert diags[0].severity is Severity.WARNING


def test_po_implication_refuted_warning_when_admittedly_incorrect():
    diags = fired(_lint(_net(["11"]), _net(["1-", "-1"]),
                        claimed_method="bdd",
                        claimed_correct={"f": False}),
                  "pair.po-implication")
    assert len(diags) == 1
    assert diags[0].severity is Severity.WARNING


def test_certificates_emitted_for_proved_implications():
    report = _lint(_net(["1-", "-1"]), _net(["11"]),
                   certificates=True)
    assert len(report.certificates) == 1
    cert = report.certificates[0]
    assert cert["po"] == "f"
    assert cert["direction"] == 1
    assert cert["status"] == "proved"
