"""Tests for reliability analysis and observability estimation."""

import pytest

from repro.cubes import Cover
from repro.network import Network
from repro.reliability import (analytic_directions, analyze_reliability,
                               error_contributions,
                               global_observabilities, max_ced_coverage)


def skewed_network():
    """y = a&b&c (mostly 0 -> errors mostly 0->1),
    z = a|b|c (mostly 1 -> errors mostly 1->0)."""
    net = Network("skewed")
    for pi in "abc":
        net.add_input(pi)
    net.add_node("y", ["a", "b", "c"], Cover.from_strings(["111"]))
    net.add_node("z", ["a", "b", "c"],
                 Cover.from_strings(["1--", "-1-", "--1"]))
    net.add_output("y")
    net.add_output("z")
    return net


class TestAnalyzeReliability:
    def test_directions_follow_skew(self):
        report = analyze_reliability(skewed_network(), n_words=32, seed=9)
        assert report.directions["y"] == "0->1"
        assert report.directions["z"] == "1->0"
        assert report.approximations["y"] == 0
        assert report.approximations["z"] == 1

    def test_max_coverage_in_range(self):
        report = analyze_reliability(skewed_network(), n_words=32, seed=9)
        assert 0.5 < report.max_ced_coverage <= 1.0

    def test_skew_accessor(self):
        report = analyze_reliability(skewed_network(), n_words=32, seed=9)
        assert 0.5 <= report.skew("y") <= 1.0

    def test_runs_accounted(self):
        report = analyze_reliability(skewed_network(), n_words=4, seed=1)
        assert report.runs == 2 * 2 * 4 * 64  # 2 nodes x sa0/sa1 x words
        assert 0 < report.error_runs <= report.runs


class TestMaxCoverage:
    def test_wrong_directions_lower_coverage(self):
        net = skewed_network()
        good = max_ced_coverage(net, {"y": 0, "z": 1}, n_words=32, seed=3)
        bad = max_ced_coverage(net, {"y": 1, "z": 0}, n_words=32, seed=3)
        assert good > bad

    def test_no_errors_edge_case(self):
        net = Network()
        net.add_input("a")
        net.add_node("y", ["a"], Cover.from_strings(["1"]))
        net.add_output("y")
        # Fault list on a signal that never reaches outputs is impossible
        # here; instead restrict to an unexcitable scenario via the API.
        cov = max_ced_coverage(net, {"y": 0}, n_words=2, seed=1, faults=[])
        assert cov == 0.0


class TestAnalyticDirections:
    def test_matches_monte_carlo_on_skewed(self):
        net = skewed_network()
        analytic = analytic_directions(net)
        report = analyze_reliability(net, n_words=32, seed=9)
        assert analytic == report.approximations


class TestObservabilities:
    def test_output_driver_fully_observable(self):
        net = skewed_network()
        obs = global_observabilities(net, n_words=16, seed=2)
        assert obs["y"] == 1.0
        assert obs["z"] == 1.0

    def test_input_observability_of_and(self):
        net = Network()
        for pi in "ab":
            net.add_input(pi)
        net.add_node("y", ["a", "b"], Cover.from_strings(["11"]))
        net.add_output("y")
        obs = global_observabilities(net, n_words=64, seed=2)
        # a observable iff b=1: probability 1/2.
        assert obs["a"] == pytest.approx(0.5, abs=0.05)

    def test_restricted_signal_list(self):
        net = skewed_network()
        obs = global_observabilities(net, signals=["y"])
        assert set(obs) == {"y"}

    def test_error_contributions_bounded(self):
        net = skewed_network()
        contribs = error_contributions(net, n_words=16, seed=4)
        assert set(contribs) == {"y", "z"}
        for value in contribs.values():
            assert 0.0 <= value <= 1.0
