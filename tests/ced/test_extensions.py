"""Tests for the Sec 5 extensions: error masking and delay-fault CED."""

import pytest

from repro.approx import synthesize_approximation
from repro.bench import tiny_benchmark
from repro.ced import (build_ced, build_masked_circuit,
                       evaluate_delay_fault_ced, evaluate_masking,
                       run_ced_flow)
from repro.synth import quick_map


@pytest.fixture(scope="module")
def flow():
    return run_ced_flow(tiny_benchmark(seed=41))


@pytest.fixture(scope="module")
def masked(flow):
    return build_masked_circuit(flow.original_mapped, flow.approx_mapped,
                                flow.assembly.directions)


class TestMasking:
    def test_fault_free_masked_equals_raw(self, masked):
        for trial in range(32):
            values = {pi: bool(trial * 2654435761 >> i & 1)
                      for i, pi in enumerate(masked.netlist.inputs)}
            out = masked.netlist.evaluate_outputs(values)
            for po, masked_po in masked.masked_outputs.items():
                assert out[po] == out[masked_po], \
                    "masking corrupted the fault-free circuit"

    def test_masking_reduces_error_rate(self, masked):
        result = evaluate_masking(masked, n_words=16, seed=5)
        assert result.raw_error_runs > 0
        assert result.masked_error_runs <= result.raw_error_runs
        assert result.reduction_pct > 0.0

    def test_masking_rates_consistent(self, masked):
        result = evaluate_masking(masked, n_words=8, seed=5)
        assert 0.0 <= result.masked_error_rate <= \
            result.raw_error_rate <= 1.0

    def test_masking_never_adds_errors_per_direction(self):
        """The construction's safety argument, checked exhaustively on
        a small circuit: Y&X (0-approx) / Y|X (1-approx) never differ
        from Y on fault-free inputs."""
        net = tiny_benchmark(seed=43)
        directions = {po: i % 2 for i, po in enumerate(net.outputs)}
        result = synthesize_approximation(net, directions)
        assert result.all_correct
        masked = build_masked_circuit(quick_map(net),
                                      quick_map(result.approx),
                                      directions)
        for trial in range(64):
            values = {pi: bool(trial * 40503 >> i & 1)
                      for i, pi in enumerate(masked.netlist.inputs)}
            out = masked.netlist.evaluate_outputs(values)
            for po, mpo in masked.masked_outputs.items():
                assert out[po] == out[mpo]


class TestDelayFaultCed:
    def test_coverage_in_range(self, flow):
        result = evaluate_delay_fault_ced(flow.assembly, n_words=8,
                                          seed=13)
        assert 0.0 <= result.coverage <= 100.0
        assert result.golden_invalid == 0

    def test_errors_occur_under_delay_faults(self, flow):
        result = evaluate_delay_fault_ced(flow.assembly, n_words=16,
                                          seed=13)
        assert result.error_runs > 0

    def test_detects_some_delay_errors(self, flow):
        result = evaluate_delay_fault_ced(flow.assembly, n_words=16,
                                          seed=13)
        assert result.detected_error_runs > 0

    def test_deterministic(self, flow):
        a = evaluate_delay_fault_ced(flow.assembly, n_words=4, seed=3)
        b = evaluate_delay_fault_ced(flow.assembly, n_words=4, seed=3)
        assert a.coverage == b.coverage

    def test_restricted_fault_list(self, flow):
        from repro.sim import TransitionFault
        site = flow.assembly.fault_sites[0]
        result = evaluate_delay_fault_ced(
            flow.assembly, n_words=4, seed=3,
            faults=[TransitionFault(site, 1)])
        assert result.runs == 4 * 64
