"""Tests for CED assembly, coverage evaluation, and logic sharing."""

import pytest

from repro.approx import ApproxConfig, synthesize_approximation
from repro.bench import tiny_benchmark
from repro.ced import build_ced, clone_netlist, evaluate_ced
from repro.cubes import Cover
from repro.network import Network, NetworkError
from repro.sim import Fault
from repro.synth import LIB_GENERIC, quick_map


def small_flow(share_logic=False, directions_value=0, seed=7):
    net = tiny_benchmark(seed=seed)
    directions = {po: directions_value for po in net.outputs}
    approx_result = synthesize_approximation(net, directions,
                                             ApproxConfig())
    assert approx_result.all_correct
    original = quick_map(net)
    approx = quick_map(approx_result.approx)
    assembly = build_ced(original, approx, directions,
                         share_logic=share_logic)
    return net, assembly


class TestCloneNetlist:
    def test_identical_structure(self):
        net = tiny_benchmark(seed=1)
        mapped = quick_map(net)
        clone = clone_netlist(mapped)
        assert set(clone.gates) == set(mapped.gates)
        assert clone.outputs == mapped.outputs

    def test_clone_is_independent(self):
        mapped = quick_map(tiny_benchmark(seed=1))
        clone = clone_netlist(mapped)
        victim = next(iter(clone.gates))
        del clone.gates[victim]
        assert victim in mapped.gates


class TestBuildCed:
    def test_original_gates_preserved(self):
        _, assembly = small_flow()
        for site in assembly.fault_sites:
            assert site in assembly.netlist.gates

    def test_function_preserved(self):
        net, assembly = small_flow()
        for trial in range(16):
            values = {pi: bool(trial * 2654435761 >> i & 1)
                      for i, pi in enumerate(net.inputs)}
            expected = net.evaluate_outputs(values)
            got = assembly.netlist.evaluate_outputs(
                {pi: values[pi] for pi in assembly.netlist.inputs})
            for po in net.outputs:
                assert got[po] == expected[po]

    def test_error_outputs_registered(self):
        _, assembly = small_flow()
        assert "__error0" in assembly.netlist.outputs
        assert "__error1" in assembly.netlist.outputs

    def test_fault_free_codeword_always_valid(self):
        net, assembly = small_flow()
        for trial in range(32):
            values = {pi: bool(trial * 40503 >> i & 1)
                      for i, pi in enumerate(assembly.netlist.inputs)}
            out = assembly.netlist.evaluate_outputs(values)
            assert out["__error0"] != out["__error1"], values

    def test_missing_direction_rejected(self):
        net = tiny_benchmark(seed=7)
        directions = {po: 0 for po in net.outputs}
        result = synthesize_approximation(net, directions)
        original = quick_map(net)
        approx = quick_map(result.approx)
        with pytest.raises(NetworkError):
            build_ced(original, approx, {})

    def test_overhead_gates_counted(self):
        _, assembly = small_flow()
        assert assembly.overhead_gates > 0
        assert assembly.overhead_gates == (assembly.netlist.gate_count
                                           - len(assembly.fault_sites))


class TestEvaluateCed:
    def test_coverage_in_range(self):
        _, assembly = small_flow()
        result = evaluate_ced(assembly, n_words=8, seed=3)
        assert 0.0 <= result.coverage <= 100.0
        assert result.error_runs > 0
        assert result.golden_invalid == 0

    def test_detects_injected_error(self):
        """A stuck-at fault on a PO driver in the protected direction
        must be detected on some vectors."""
        net, assembly = small_flow(directions_value=0)
        po_site = assembly.original.po_signals[
            assembly.original.outputs[0]]
        result = evaluate_ced(assembly, n_words=32, seed=3,
                              faults=[Fault(po_site, 1)])  # 0->1 error
        if result.error_runs:
            assert result.detected_error_runs > 0

    def test_protected_direction_matters(self):
        """With a 0-approximation, forcing the PO to 1 (0->1 errors) is
        detected; forcing to 0 (1->0 errors) is not."""
        net, assembly = small_flow(directions_value=0, seed=9)
        po_site = assembly.original.po_signals[
            assembly.original.outputs[0]]
        up = evaluate_ced(assembly, n_words=32, seed=3,
                          faults=[Fault(po_site, 1)])
        down = evaluate_ced(assembly, n_words=32, seed=3,
                            faults=[Fault(po_site, 0)])
        if up.error_runs and down.error_runs:
            assert up.coverage > down.coverage

    def test_deterministic(self):
        _, assembly = small_flow()
        a = evaluate_ced(assembly, n_words=4, seed=5)
        b = evaluate_ced(assembly, n_words=4, seed=5)
        assert a.coverage == b.coverage


class TestLogicSharing:
    def test_sharing_reduces_overhead(self):
        _, plain = small_flow(share_logic=False, seed=13)
        _, shared = small_flow(share_logic=True, seed=13)
        assert shared.shared_gates >= 0
        assert shared.overhead_gates <= plain.overhead_gates

    def test_sharing_preserves_golden_validity(self):
        _, shared = small_flow(share_logic=True, seed=13)
        result = evaluate_ced(shared, n_words=8, seed=3)
        assert result.golden_invalid == 0

    def test_sharing_keeps_fault_sites(self):
        _, shared = small_flow(share_logic=True, seed=13)
        for site in shared.fault_sites:
            assert site in shared.netlist.gates
