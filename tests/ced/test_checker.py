"""Tests for the TSC checkers — the Figure 3 experiment.

Exhaustively verifies the checker's code space (code-disjointness) and
probes the TSC fault properties the paper discusses: self-testing and
fault-secureness when CED is active, and the documented exceptions
(Y stuck-at-0 / X stuck-at-1 for a 0-approximation are untestable).
"""

import itertools

import pytest

from repro.ced import (checker_reference, emit_approximate_checker,
                       emit_trc_tree, emit_two_rail_cell, is_two_rail,
                       two_rail_cell_reference, valid_codeword)
from repro.synth import Emitter, LIB_GENERIC, LIB_NAND_NOR, MappedNetlist


class TestCodeDisjointness:
    """Fig 3(a): valid input codewords map to valid two-rail outputs,
    invalid ones to invalid outputs."""

    @pytest.mark.parametrize("direction", [0, 1])
    def test_code_disjoint(self, direction):
        for x in (False, True):
            for y in (False, True):
                out = checker_reference(x, y, direction)
                if valid_codeword(x, y, direction):
                    assert is_two_rail(out), (x, y, direction)
                else:
                    assert not is_two_rail(out), (x, y, direction)

    def test_invalid_codeword_identity(self):
        # 0-approximation: (X, Y) = (0, 1) is the invalid codeword.
        assert not valid_codeword(False, True, 0)
        assert valid_codeword(False, False, 0)
        # 1-approximation: (1, 0) is invalid.
        assert not valid_codeword(True, False, 1)
        assert valid_codeword(True, True, 1)


class TestCheckerGateLevel:
    @pytest.mark.parametrize("direction", [0, 1])
    @pytest.mark.parametrize("library", [LIB_GENERIC, LIB_NAND_NOR])
    def test_matches_reference(self, direction, library):
        netlist = MappedNetlist("chk", library)
        netlist.add_input("x")
        netlist.add_input("y")
        pair = emit_approximate_checker(Emitter(netlist), "x", "y",
                                        direction, "c")
        netlist.set_output("c1", pair[0])
        netlist.set_output("c2", pair[1])
        for x in (False, True):
            for y in (False, True):
                out = netlist.evaluate_outputs({"x": x, "y": y})
                assert (out["c1"], out["c2"]) == \
                    checker_reference(x, y, direction)

    def test_bad_direction_rejected(self):
        netlist = MappedNetlist("chk", LIB_GENERIC)
        netlist.add_input("x")
        netlist.add_input("y")
        with pytest.raises(ValueError):
            emit_approximate_checker(Emitter(netlist), "x", "y", 2, "c")


class TestTscProperties:
    """Single stuck-at faults inside the 0-approximate checker."""

    def _checker_netlist(self):
        netlist = MappedNetlist("chk", LIB_GENERIC)
        netlist.add_input("x")
        netlist.add_input("y")
        pair = emit_approximate_checker(Emitter(netlist), "x", "y", 0,
                                        "c")
        netlist.set_output("c1", pair[0])
        netlist.set_output("c2", pair[1])
        return netlist

    def test_checker_faults_detected_when_ced_active(self):
        """Self-testing/fault-secure w.r.t. checker gate faults on the
        valid codeword space: every internal stuck-at either keeps the
        correct output or yields an invalid codeword, and every fault is
        testable by some valid codeword."""
        from repro.sim import fault_list
        import numpy as np
        from repro.sim import BitSimulator
        netlist = self._checker_netlist()
        sim = BitSimulator(netlist)
        valid_inputs = [(x, y) for x in (0, 1) for y in (0, 1)
                        if valid_codeword(bool(x), bool(y), 0)]
        xs = np.array([sum(v[0] << i for i, v in
                           enumerate(valid_inputs))], dtype=np.uint64)
        ys = np.array([sum(v[1] << i for i, v in
                           enumerate(valid_inputs))], dtype=np.uint64)
        golden = sim.run(np.stack([xs, ys]))
        for fault in fault_list(netlist):
            overlay = sim.run_fault(golden, fault.signal, fault.stuck)
            out = sim.faulty_outputs(golden, overlay)
            gold_out = sim.outputs_of(golden)
            detected_somewhere = False
            for i in range(len(valid_inputs)):
                shift = np.uint64(i)
                one = np.uint64(1)
                faulty_pair = (bool(out[0][0] >> shift & one),
                               bool(out[1][0] >> shift & one))
                golden_pair = (bool(gold_out[0][0] >> shift & one),
                               bool(gold_out[1][0] >> shift & one))
                if faulty_pair != golden_pair:
                    # Fault-secure: a wrong output must be invalid.
                    assert not is_two_rail(faulty_pair), fault
                    detected_somewhere = True
            # Self-testing: some valid codeword exposes the fault.
            assert detected_somewhere, fault

    def test_y_stuck_at_0_untestable(self):
        """The paper's documented exception: Y/sa0 under a
        0-approximation always presents a valid codeword."""
        for x in (False, True):
            for y in (False, True):
                if not valid_codeword(x, y, 0):
                    continue
                # Y stuck at 0: checker sees (x, 0) which is also valid.
                assert valid_codeword(x, False, 0)
                out = checker_reference(x, False, 0)
                assert is_two_rail(out)

    def test_x_stuck_at_1_untestable(self):
        for x in (False, True):
            for y in (False, True):
                if not valid_codeword(x, y, 0):
                    continue
                assert valid_codeword(True, y, 0)
                assert is_two_rail(checker_reference(True, y, 0))


class TestTwoRailCell:
    def test_reference_truth_table(self):
        for a0, a1, b0, b1 in itertools.product((False, True), repeat=4):
            c = two_rail_cell_reference((a0, a1), (b0, b1))
            a_valid = a0 != a1
            b_valid = b0 != b1
            if a_valid and b_valid:
                assert is_two_rail(c)
            if (a0, a1) in ((False, False),) or \
                    (b0, b1) in ((False, False),):
                pass  # all-zero rails propagate invalidity below

    def test_invalid_input_propagates(self):
        # (0,0) or (1,1) on either input must give an invalid output.
        for bad in ((False, False), (True, True)):
            for good in ((False, True), (True, False)):
                assert not is_two_rail(two_rail_cell_reference(bad, good))
                assert not is_two_rail(two_rail_cell_reference(good, bad))

    def test_gate_level_cell_matches_reference(self):
        netlist = MappedNetlist("trc", LIB_GENERIC)
        for name in ("a0", "a1", "b0", "b1"):
            netlist.add_input(name)
        pair = emit_two_rail_cell(Emitter(netlist), ("a0", "a1"),
                                  ("b0", "b1"), "cell")
        netlist.set_output("c0", pair[0])
        netlist.set_output("c1", pair[1])
        for a0, a1, b0, b1 in itertools.product((False, True), repeat=4):
            out = netlist.evaluate_outputs(
                {"a0": a0, "a1": a1, "b0": b0, "b1": b1})
            assert (out["c0"], out["c1"]) == \
                two_rail_cell_reference((a0, a1), (b0, b1))


class TestTrcTree:
    @pytest.mark.parametrize("n_pairs", [1, 2, 3, 5, 8])
    def test_tree_consolidation(self, n_pairs):
        netlist = MappedNetlist("tree", LIB_GENERIC)
        names = []
        for i in range(n_pairs):
            netlist.add_input(f"p{i}0")
            netlist.add_input(f"p{i}1")
            names.append((f"p{i}0", f"p{i}1"))
        pair = emit_trc_tree(Emitter(netlist), names, "t")
        netlist.set_output("t0", pair[0])
        netlist.set_output("t1", pair[1])
        # All-valid input pairs -> valid output.
        values = {}
        for i in range(n_pairs):
            values[f"p{i}0"] = bool(i % 2)
            values[f"p{i}1"] = not bool(i % 2)
        out = netlist.evaluate_outputs(values)
        assert out["t0"] != out["t1"]
        # Corrupt one pair -> invalid output.
        for i in range(n_pairs):
            bad = dict(values)
            bad[f"p{i}1"] = bad[f"p{i}0"]
            out = netlist.evaluate_outputs(bad)
            assert out["t0"] == out["t1"], f"pair {i} not propagated"

    def test_empty_tree_rejected(self):
        netlist = MappedNetlist("tree", LIB_GENERIC)
        with pytest.raises(ValueError):
            emit_trc_tree(Emitter(netlist), [], "t")
