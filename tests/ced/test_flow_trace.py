"""CED flow as a pass pipeline: trace schema, bit-identity of the
shared AnalysisContext, and checkpointed resume."""

import pytest

from repro.bench import tiny_benchmark
from repro.ced import run_ced_flow
from repro.flow import AnalysisContext, validate_trace

PASS_NAMES = ("map-original", "reliability", "synthesize",
              "map-approx", "assemble", "coverage", "metrics")


class TestTrace:
    @pytest.fixture(scope="class")
    def flow(self):
        return run_ced_flow(tiny_benchmark(seed=31))

    def test_trace_present_and_valid(self, flow):
        doc = flow.to_dict()["trace"]
        assert validate_trace(doc) == []

    def test_expected_passes_in_order(self, flow):
        names = [r.name for r in flow.trace.passes]
        assert tuple(names[:len(PASS_NAMES)]) == PASS_NAMES

    def test_cache_sharing_shows_up_in_trace(self, flow):
        # Downstream stages must reuse the pair BDDs, not rebuild them.
        totals = flow.trace.cache_totals()
        assert totals.get("global_bdds", {}).get("hits", 0) > 0


def test_context_is_bit_identical_to_uncached():
    net = tiny_benchmark(seed=42)
    cached = run_ced_flow(net.copy(), ctx=AnalysisContext(enabled=True))
    fresh = run_ced_flow(net.copy(), ctx=AnalysisContext(enabled=False))
    assert cached.summary() == fresh.summary()
    for field in ("types", "output_approximations", "correctness",
                  "repair_rounds", "repaired_nodes", "dropped_cubes"):
        assert getattr(cached.approx_result, field) == \
            getattr(fresh.approx_result, field)
    from repro.network.blif import write_blif
    assert write_blif(cached.approx_result.approx) == \
        write_blif(fresh.approx_result.approx)


def test_lint_rides_the_shared_context():
    net = tiny_benchmark(seed=42)
    ctx = AnalysisContext()
    flow = run_ced_flow(net, ctx=ctx, lint_level="warn")
    assert flow.lint is not None
    lint = flow.trace.record("lint")
    assert lint is not None
    assert lint.cache.get("global_bdds", {}).get("hits", 0) > 0


class TestCheckpointResume:
    def test_warm_rerun_resumes_every_pass(self, tmp_path):
        net = tiny_benchmark(seed=31)
        cold = run_ced_flow(net.copy(), checkpoint_dir=tmp_path)
        warm = run_ced_flow(net.copy(), checkpoint_dir=tmp_path)
        assert all(r.status == "ok" for r in cold.trace.passes
                   if r.name in PASS_NAMES)
        statuses = {r.name: r.status for r in warm.trace.passes}
        assert all(statuses[n] == "resumed" for n in PASS_NAMES)
        assert warm.summary() == cold.summary()

    def test_killed_flow_resumes_mid_pipeline(self, tmp_path, monkeypatch):
        # Kill the flow inside the coverage pass; the re-run must
        # restore everything up to the kill point from the store.
        import repro.ced.flow as flow_mod

        net = tiny_benchmark(seed=31)
        real = flow_mod.evaluate_ced

        def boom(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(flow_mod, "evaluate_ced", boom)
        with pytest.raises(KeyboardInterrupt):
            run_ced_flow(net.copy(), checkpoint_dir=tmp_path)
        monkeypatch.setattr(flow_mod, "evaluate_ced", real)

        resumed = run_ced_flow(net.copy(), checkpoint_dir=tmp_path)
        statuses = {r.name: r.status for r in resumed.trace.passes}
        for name in ("map-original", "reliability", "synthesize",
                     "map-approx", "assemble"):
            assert statuses[name] == "resumed"
        assert statuses["coverage"] == "ok"
        # Result matches a never-killed run end to end.
        reference = run_ced_flow(tiny_benchmark(seed=31))
        assert resumed.summary() == reference.summary()

    def test_different_params_do_not_share_checkpoints(self, tmp_path):
        net = tiny_benchmark(seed=31)
        run_ced_flow(net.copy(), checkpoint_dir=tmp_path)
        other = run_ced_flow(net.copy(), checkpoint_dir=tmp_path,
                             coverage_words=8)
        statuses = {r.name: r.status for r in other.trace.passes}
        assert statuses["coverage"] == "ok"
