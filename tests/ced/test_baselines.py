"""Tests for the partial-duplication and parity-prediction baselines."""

import pytest

from repro.bench import tiny_benchmark
from repro.ced import (build_parity_ced, build_parity_predictor,
                       build_partial_duplication, evaluate_ced,
                       plan_duplication)
from repro.synth import quick_map


@pytest.fixture(scope="module")
def mapped_pair():
    net = tiny_benchmark(seed=17)
    return net, quick_map(net)


class TestParityPredictor:
    def test_predictor_computes_output_parity(self, mapped_pair):
        net, _ = mapped_pair
        predictor = build_parity_predictor(net)
        for trial in range(16):
            values = {pi: bool(trial * 2246822519 >> i & 1)
                      for i, pi in enumerate(net.inputs)}
            outs = net.evaluate_outputs(values)
            parity = sum(outs.values()) % 2 == 1
            pvals = {pi: values[pi] for pi in predictor.inputs}
            got = predictor.evaluate_outputs(pvals)
            assert got[predictor.outputs[0]] == parity

    def test_parity_ced_valid_when_fault_free(self, mapped_pair):
        net, mapped = mapped_pair
        assembly = build_parity_ced(mapped, net)
        result = evaluate_ced(assembly, n_words=4, seed=3)
        assert result.golden_invalid == 0

    def test_parity_overhead_near_100pct(self, mapped_pair):
        """The headline comparison: parity prediction re-implements the
        whole circuit, so its overhead is ~100%, far above approximate
        logic."""
        net, mapped = mapped_pair
        assembly = build_parity_ced(mapped, net)
        overhead = 100.0 * assembly.overhead_gates / mapped.gate_count
        assert overhead > 60.0

    def test_parity_detects_single_output_flips(self, mapped_pair):
        net, mapped = mapped_pair
        assembly = build_parity_ced(mapped, net)
        result = evaluate_ced(assembly, n_words=8, seed=3)
        # Odd-weight output errors dominate for random single faults.
        assert result.coverage > 30.0


class TestPartialDuplication:
    def test_plan_respects_budget(self, mapped_pair):
        _, mapped = mapped_pair
        plan = plan_duplication(mapped, area_budget_pct=40.0, n_words=4)
        assert plan.cost <= mapped.gate_count * 0.4 + 1

    def test_full_budget_duplicates_everything_useful(self, mapped_pair):
        _, mapped = mapped_pair
        plan = plan_duplication(mapped, area_budget_pct=100.0, n_words=4)
        assert len(plan.check_points) == len(mapped.outputs)

    def test_duplication_ced_valid_when_fault_free(self, mapped_pair):
        net, mapped = mapped_pair
        assembly = build_partial_duplication(mapped, 60.0, n_words=4)
        result = evaluate_ced(assembly, n_words=4, seed=3)
        assert result.golden_invalid == 0

    def test_full_duplication_has_high_coverage(self, mapped_pair):
        """Duplicating every output cone detects (nearly) every output
        error — the 100%-approximation special case."""
        _, mapped = mapped_pair
        assembly = build_partial_duplication(mapped, 100.0, n_words=4)
        result = evaluate_ced(assembly, n_words=16, seed=3)
        assert result.coverage > 95.0

    def test_coverage_grows_with_budget(self, mapped_pair):
        _, mapped = mapped_pair
        small = build_partial_duplication(mapped, 25.0, n_words=4)
        large = build_partial_duplication(mapped, 100.0, n_words=4)
        cov_small = evaluate_ced(small, n_words=8, seed=3).coverage
        cov_large = evaluate_ced(large, n_words=8, seed=3).coverage
        assert cov_large >= cov_small

    def test_empty_plan_detects_nothing(self, mapped_pair):
        from repro.ced.baselines.partial_duplication import \
            DuplicationPlan
        _, mapped = mapped_pair
        assembly = build_partial_duplication(
            mapped, 0.0, plan=DuplicationPlan([], set()))
        result = evaluate_ced(assembly, n_words=4, seed=3)
        assert result.detected_runs == 0


class TestPlanCustomCandidates:
    def test_internal_check_points(self, mapped_pair):
        """Candidates need not be PO drivers: internal gates work as
        check points too (closer to [10]'s node-level selection)."""
        from repro.ced import build_partial_duplication, evaluate_ced, \
            plan_duplication
        _, mapped = mapped_pair
        internal = list(mapped.gates)[:4]
        plan = plan_duplication(mapped, area_budget_pct=100.0,
                                n_words=2, candidates=internal)
        assert set(plan.check_points) <= set(internal)
        assembly = build_partial_duplication(mapped, 100.0, plan=plan)
        result = evaluate_ced(assembly, n_words=4, seed=3)
        assert result.golden_invalid == 0

    def test_greedy_prefers_cheap_high_impact(self, mapped_pair):
        from repro.ced import plan_duplication
        _, mapped = mapped_pair
        tight = plan_duplication(mapped, area_budget_pct=30.0, n_words=2)
        loose = plan_duplication(mapped, area_budget_pct=100.0,
                                 n_words=2)
        assert tight.cost <= loose.cost
