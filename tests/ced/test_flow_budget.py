"""Budget threading through the CED flow and its artifacts."""

import pytest

from repro.ced import run_ced_flow
from repro.ced.flow import CedFlowResult
from repro.flow import AnalysisContext
from repro.flow.trace import validate_trace
from repro.guard import Budget, validate_budget_report
from repro.lab.tasks import load_circuit


def _flow(**kwargs):
    kwargs.setdefault("reliability_words", 1)
    kwargs.setdefault("coverage_words", 1)
    kwargs.setdefault("power_words", 1)
    return run_ced_flow(load_circuit("tiny"), **kwargs)


class TestBudgetThreading:
    def test_ungoverned_run_has_no_budget_artifacts(self):
        result = _flow()
        assert result.budget_report is None
        doc = result.to_dict()
        assert "budget_report" not in doc
        assert "budget" not in doc["trace"]
        assert validate_trace(doc["trace"]) == []

    def test_governed_run_attaches_validated_report(self):
        result = _flow(budget=Budget(deadline_s=600.0))
        report = result.budget_report
        assert validate_budget_report(report) == []
        doc = result.to_dict()
        assert doc["budget_report"] == report
        assert doc["trace"]["budget"] == report
        assert validate_trace(doc["trace"]) == []

    def test_guard_is_cleared_after_the_flow(self):
        """Lint and later consumers of a shared context must not
        inherit an expired deadline."""
        analysis = AnalysisContext()
        _flow(budget=Budget(deadline_s=600.0), ctx=analysis)
        assert analysis.guard is None

    def test_trace_with_corrupted_budget_fails_validation(self):
        result = _flow(budget=Budget(deadline_s=600.0))
        doc = result.to_dict()["trace"]
        doc["budget"]["schema"] = 99
        assert any("budget:" in p for p in validate_trace(doc))

    def test_unknown_chaos_kind_is_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            _flow(chaos="entropy-storm")


class TestCheckpointKeySeparation:
    def test_chaos_run_does_not_reuse_ungoverned_checkpoints(
            self, tmp_path):
        store = tmp_path / "ckpt"
        first = _flow(checkpoint_dir=store)
        assert all(r.status == "ok" for r in first.trace.passes)
        # Identical parameters resume from the store...
        rerun = _flow(checkpoint_dir=store)
        assert any(r.status == "resumed" for r in rerun.trace.passes)
        # ...but a chaos (hence budget) run keys differently: a
        # degraded result must never be served from — or poison — the
        # ungoverned run's checkpoints.
        chaotic = _flow(checkpoint_dir=store, chaos="bdd-overflow")
        assert all(r.status == "ok" for r in chaotic.trace.passes)
        again = _flow(checkpoint_dir=store)
        assert any(r.status == "resumed" for r in again.trace.passes)
        assert isinstance(again, CedFlowResult)
