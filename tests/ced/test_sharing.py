"""Unit tests for criticality-budgeted logic sharing."""

import pytest

from repro.ced import merge_equivalent_gates
from repro.synth import LIB_GENERIC, MappedNetlist


def host_with_duplicates():
    """Original gates g1/g2 plus approximate twins apx_g1/apx_g2."""
    netlist = MappedNetlist("host", LIB_GENERIC)
    for pi in "ab":
        netlist.add_input(pi)
    netlist.add_gate("g1", "AND2", ["a", "b"])
    netlist.add_gate("g2", "OR2", ["a", "b"])
    netlist.add_gate("apx_g1", "AND2", ["a", "b"])
    netlist.add_gate("apx_g2", "OR2", ["a", "b"])
    netlist.add_gate("apx_top", "AND2", ["apx_g1", "apx_g2"])
    netlist.set_output("o1", "g1")
    netlist.set_output("o2", "g2")
    netlist.set_output("oa", "apx_top")
    return netlist


class TestMergeEquivalentGates:
    def test_unbudgeted_merges_everything(self):
        netlist = host_with_duplicates()
        rename = merge_equivalent_gates(netlist, "apx_",
                                        protect={"g1", "g2"})
        assert rename == {"apx_g1": "g1", "apx_g2": "g2"}
        assert "apx_g1" not in netlist.gates
        assert netlist.gates["apx_top"].fanins == ["g1", "g2"]

    def test_protected_gates_survive(self):
        netlist = host_with_duplicates()
        merge_equivalent_gates(netlist, "apx_", protect={"g1", "g2"})
        assert "g1" in netlist.gates and "g2" in netlist.gates

    def test_budget_zero_blocks_critical_merges(self):
        netlist = host_with_duplicates()
        criticality = {"g1": 0.5, "g2": 0.5}
        rename = merge_equivalent_gates(netlist, "apx_",
                                        protect={"g1", "g2"},
                                        criticality=criticality,
                                        budget=0.0)
        assert rename == {}
        assert "apx_g1" in netlist.gates

    def test_budget_picks_least_critical_first(self):
        netlist = host_with_duplicates()
        criticality = {"g1": 0.9, "g2": 0.1}
        rename = merge_equivalent_gates(netlist, "apx_",
                                        protect={"g1", "g2"},
                                        criticality=criticality,
                                        budget=0.2)
        assert rename == {"apx_g2": "g2"}
        assert "apx_g1" in netlist.gates

    def test_function_preserved_after_merge(self):
        netlist = host_with_duplicates()
        before = {}
        for m in range(4):
            values = {"a": bool(m & 1), "b": bool(m & 2)}
            before[m] = netlist.evaluate_outputs(values)
        merge_equivalent_gates(netlist, "apx_", protect={"g1", "g2"})
        for m in range(4):
            values = {"a": bool(m & 1), "b": bool(m & 2)}
            assert netlist.evaluate_outputs(values) == before[m]

    def test_cascaded_merge_resolves_chains(self):
        netlist = MappedNetlist("chain", LIB_GENERIC)
        netlist.add_input("a")
        netlist.add_gate("g1", "INV", ["a"])
        netlist.add_gate("g2", "INV", ["g1"])
        netlist.add_gate("apx_g1", "INV", ["a"])
        netlist.add_gate("apx_g2", "INV", ["apx_g1"])
        netlist.set_output("o", "g2")
        netlist.set_output("oa", "apx_g2")
        rename = merge_equivalent_gates(netlist, "apx_", protect=set())
        assert rename["apx_g2"] == "g2"
        assert rename["apx_g1"] == "g1"
        assert netlist.po_signals["oa"] == "g2"
