"""End-to-end property tests of the CED pipeline on random circuits."""

from hypothesis import given, settings, strategies as st

from repro.bench import random_network
from repro.ced import evaluate_ced, run_ced_flow


class TestFlowProperties:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 5000))
    def test_no_false_alarms_when_verified(self, seed):
        """A BDD-verified approximation never raises a fault-free alarm
        and never reports detections on error-free runs beyond benign
        pre-masking ones."""
        net = random_network(seed, 20, 7, 2, name=f"e2e{seed}")
        flow = run_ced_flow(net, reliability_words=2, coverage_words=2)
        if flow.approx_result.check_method in ("bdd", "sat") and \
                flow.approx_result.all_correct:
            assert flow.coverage.golden_invalid == 0

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 5000))
    def test_coverage_at_most_error_runs(self, seed):
        net = random_network(seed, 20, 7, 2, name=f"e2f{seed}")
        flow = run_ced_flow(net, reliability_words=2, coverage_words=2)
        result = flow.coverage
        assert result.detected_error_runs <= result.error_runs
        assert result.error_runs <= result.runs

    @settings(max_examples=4, deadline=None)
    @given(st.integers(0, 5000))
    def test_sharing_never_increases_generator_area(self, seed):
        net = random_network(seed, 24, 8, 3, name=f"e2g{seed}")
        plain = run_ced_flow(net, reliability_words=2, coverage_words=1)
        shared = run_ced_flow(net, share_logic=True,
                              reliability_words=2, coverage_words=1)
        assert shared.metrics["area_overhead_pct"] <= \
            plain.metrics["area_overhead_pct"] + 1e-9

    @settings(max_examples=4, deadline=None)
    @given(st.integers(0, 5000), st.integers(1, 9))
    def test_coverage_deterministic_in_seed(self, seed, eval_seed):
        net = random_network(seed, 16, 6, 2, name=f"e2h{seed}")
        flow = run_ced_flow(net, reliability_words=2, coverage_words=1)
        a = evaluate_ced(flow.assembly, n_words=2, seed=eval_seed)
        b = evaluate_ced(flow.assembly, n_words=2, seed=eval_seed)
        assert a.coverage == b.coverage
        assert a.detected_runs == b.detected_runs
