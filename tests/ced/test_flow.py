"""Integration tests for the end-to-end CED flow."""

import pytest

from repro.approx import ApproxConfig
from repro.bench import load_benchmark, tiny_benchmark
from repro.ced import run_ced_flow
from repro.synth import SCRIPT_CHAIN


class TestFlowTiny:
    @pytest.fixture(scope="class")
    def flow(self):
        return run_ced_flow(tiny_benchmark(seed=31))

    def test_all_artifacts_present(self, flow):
        assert flow.original_mapped.gate_count > 0
        assert flow.approx_mapped.gate_count > 0
        assert flow.assembly.netlist.gate_count > \
            flow.original_mapped.gate_count

    def test_approximation_correct(self, flow):
        assert flow.approx_result.all_correct

    def test_summary_keys(self, flow):
        summary = flow.summary()
        for key in ("gates", "area_overhead_pct", "power_overhead_pct",
                    "approximation_pct", "max_ced_coverage_pct",
                    "ced_coverage_pct", "delay_change_pct"):
            assert key in summary

    def test_coverage_below_max(self, flow):
        """Achieved coverage cannot exceed the direction-protection
        bound by more than sampling noise."""
        summary = flow.summary()
        assert summary["ced_coverage_pct"] <= \
            summary["max_ced_coverage_pct"] + 8.0

    def test_no_false_alarms_when_exact(self, flow):
        assert flow.coverage.golden_invalid == 0

    def test_approximation_pct_positive(self, flow):
        assert 0.0 < flow.approximation_pct <= 100.0


class TestFlowVariants:
    def test_share_logic_reduces_area(self):
        net = tiny_benchmark(seed=33)
        plain = run_ced_flow(net, share_logic=False)
        shared = run_ced_flow(net, share_logic=True)
        assert shared.metrics["area_overhead_pct"] <= \
            plain.metrics["area_overhead_pct"]

    def test_directions_override(self):
        net = tiny_benchmark(seed=33)
        directions = {po: 1 for po in net.outputs}
        flow = run_ced_flow(net, directions=directions)
        assert flow.assembly.directions == directions

    def test_alternate_script(self):
        net = tiny_benchmark(seed=33)
        flow = run_ced_flow(net, script=SCRIPT_CHAIN)
        assert flow.original_mapped.library.name == "generic"
        assert flow.approx_result.all_correct

    def test_aggressive_config_smaller_checker_circuit(self):
        """In significance mode (conformance disabled so the threshold
        is the only lever) a higher threshold never yields a larger
        check-symbol generator."""
        net = tiny_benchmark(seed=35)
        gentle = run_ced_flow(
            net, config=ApproxConfig(cube_drop_threshold=0.01,
                                     stage1="significance",
                                     collapse_dc=False))
        aggressive = run_ced_flow(
            net, config=ApproxConfig(cube_drop_threshold=0.5,
                                     stage1="significance",
                                     collapse_dc=False))
        assert aggressive.approx_mapped.gate_count <= \
            gentle.approx_mapped.gate_count

    def test_dc_threshold_is_a_coverage_area_knob(self):
        """A larger DC threshold marks more of the network DC, giving a
        smaller approximate circuit (possibly at lower coverage)."""
        net = tiny_benchmark(seed=35)
        strict = run_ced_flow(
            net, config=ApproxConfig(dc_threshold=0.0))
        loose = run_ced_flow(
            net, config=ApproxConfig(dc_threshold=0.6))
        assert loose.approx_mapped.gate_count <= \
            strict.approx_mapped.gate_count


class TestFlowOnSuiteCircuit:
    def test_cmb_sized_benchmark(self):
        """Smallest Table 2 benchmark through the whole flow."""
        net = load_benchmark("cmb")
        flow = run_ced_flow(net, reliability_words=2, coverage_words=2)
        summary = flow.summary()
        assert summary["ced_coverage_pct"] > 20.0
        assert summary["area_overhead_pct"] < 120.0
        # Approximate circuit must be faster than the original.
        assert summary["delay_change_pct"] < 10.0
