"""Tests for the quality-floor retry ladder in the CED flow."""

import pytest

from repro.approx import ApproxConfig
from repro.bench import load_benchmark, tiny_benchmark
from repro.ced import run_ced_flow
from repro.ced.flow import _synthesize_with_floor
from repro.reliability import analyze_reliability
from repro.synth import quick_map


class TestQualityFloor:
    def test_floor_prevents_constant_collapse(self):
        """The i8-class cone used to collapse to a constant (0%
        approximation) under aggressive typing; the floor must keep
        every output above the threshold or pick the best attempt."""
        net = load_benchmark("i8", table=1)
        flow = run_ced_flow(net, reliability_words=4, coverage_words=2,
                            min_approx_pct=25.0)
        assert flow.approximation_pct > 25.0

    def test_floor_disabled_keeps_single_attempt(self):
        net = tiny_benchmark(seed=71)
        directions = {po: 0 for po in net.outputs}
        config = ApproxConfig()
        result, pct = _synthesize_with_floor(net, directions, config,
                                             min_approx_pct=0.0)
        assert set(pct) == set(directions)

    def test_ladder_returns_best_attempt(self):
        net = tiny_benchmark(seed=73)
        directions = {po: 0 for po in net.outputs}
        # Absurd floor: unreachable, so the best attempt is returned.
        result, pct = _synthesize_with_floor(net, directions,
                                             ApproxConfig(),
                                             min_approx_pct=101.0)
        assert result is not None
        assert all(0.0 <= v <= 100.0 for v in pct.values())

    def test_gentler_configs_keep_more(self):
        net = tiny_benchmark(seed=73)
        directions = {po: 0 for po in net.outputs}
        aggressive, pct_a = _synthesize_with_floor(
            net, directions,
            ApproxConfig(dc_threshold=0.6, cube_drop_threshold=0.4),
            min_approx_pct=0.0)
        gentle, pct_g = _synthesize_with_floor(
            net, directions,
            ApproxConfig(dc_threshold=0.05, cube_drop_threshold=0.01),
            min_approx_pct=0.0)
        assert min(pct_g.values()) >= min(pct_a.values()) - 1.0
