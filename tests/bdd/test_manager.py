"""Unit and property tests for the ROBDD manager."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BddManager, BddOverflowError
from repro.cubes import Cover, Cube


@pytest.fixture
def mgr():
    return BddManager(4)


def brute_force(mgr, f, n=4):
    return [mgr.evaluate(f, m) for m in range(1 << n)]


class TestBasics:
    def test_constants(self, mgr):
        assert mgr.evaluate(mgr.zero, 0) is False
        assert mgr.evaluate(mgr.one, 0) is True

    def test_var_and_nvar(self, mgr):
        x1 = mgr.var(1)
        assert mgr.evaluate(x1, 0b0010)
        assert not mgr.evaluate(x1, 0b0000)
        nx1 = mgr.nvar(1)
        assert mgr.evaluate(nx1, 0b0000)

    def test_undeclared_var_rejected(self, mgr):
        with pytest.raises(ValueError):
            mgr.var(7)

    def test_canonicity(self, mgr):
        a, b = mgr.var(0), mgr.var(1)
        f = mgr.or_(mgr.and_(a, b), mgr.and_(a, mgr.not_(b)))
        assert f == a  # a&b | a&!b reduces to a

    def test_connectives(self, mgr):
        a, b = mgr.var(0), mgr.var(1)
        table = {
            mgr.and_(a, b): lambda x, y: x and y,
            mgr.or_(a, b): lambda x, y: x or y,
            mgr.xor_(a, b): lambda x, y: x != y,
            mgr.xnor_(a, b): lambda x, y: x == y,
            mgr.nand_(a, b): lambda x, y: not (x and y),
            mgr.nor_(a, b): lambda x, y: not (x or y),
        }
        for f, ref in table.items():
            for m in range(4):
                assert mgr.evaluate(f, m) == ref(bool(m & 1), bool(m & 2))

    def test_and_or_many(self, mgr):
        xs = [mgr.var(i) for i in range(4)]
        allv = mgr.and_many(xs)
        anyv = mgr.or_many(xs)
        assert mgr.evaluate(allv, 0b1111) and not mgr.evaluate(allv, 0b0111)
        assert mgr.evaluate(anyv, 0b1000) and not mgr.evaluate(anyv, 0)


class TestStructuralOps:
    def test_restrict(self, mgr):
        a, b = mgr.var(0), mgr.var(1)
        f = mgr.and_(a, b)
        assert mgr.restrict(f, 0, 1) == b
        assert mgr.restrict(f, 0, 0) == mgr.zero

    def test_compose(self, mgr):
        a, b, c = mgr.var(0), mgr.var(1), mgr.var(2)
        f = mgr.and_(a, b)
        g = mgr.or_(b, c)
        composed = mgr.compose(f, 0, g)
        # (b|c) & b == b
        assert composed == b

    def test_exists_forall(self, mgr):
        a, b = mgr.var(0), mgr.var(1)
        f = mgr.and_(a, b)
        assert mgr.exists(f, [0]) == b
        assert mgr.forall(f, [0]) == mgr.zero
        assert mgr.forall(mgr.or_(a, mgr.not_(a)), [0]) == mgr.one

    def test_boolean_difference(self, mgr):
        a, b = mgr.var(0), mgr.var(1)
        f = mgr.and_(a, b)
        # a observable iff b=1
        assert mgr.boolean_difference(f, 0) == b

    def test_support(self, mgr):
        a, c = mgr.var(0), mgr.var(2)
        f = mgr.xor_(a, c)
        assert mgr.support(f) == {0, 2}


class TestQueries:
    def test_implies(self, mgr):
        a, b = mgr.var(0), mgr.var(1)
        assert mgr.implies(mgr.and_(a, b), a)
        assert not mgr.implies(a, mgr.and_(a, b))

    def test_sat_count(self, mgr):
        a, b = mgr.var(0), mgr.var(1)
        assert mgr.sat_count(mgr.and_(a, b)) == 4   # over 4 vars
        assert mgr.sat_count(mgr.or_(a, b)) == 12
        assert mgr.sat_count(mgr.one) == 16
        assert mgr.sat_count(mgr.zero) == 0

    def test_sat_count_with_explicit_width(self, mgr):
        a = mgr.var(0)
        assert mgr.sat_count(a, num_vars=1) == 1

    def test_probability_uniform(self, mgr):
        a, b = mgr.var(0), mgr.var(1)
        assert mgr.probability(mgr.and_(a, b)) == pytest.approx(0.25)

    def test_probability_biased(self, mgr):
        a, b = mgr.var(0), mgr.var(1)
        p = mgr.probability(mgr.and_(a, b), [0.9, 0.5, 0.5, 0.5])
        assert p == pytest.approx(0.45)

    def test_any_sat(self, mgr):
        a, b = mgr.var(0), mgr.var(1)
        f = mgr.and_(a, mgr.not_(b))
        m = mgr.any_sat(f)
        assert mgr.evaluate(f, m)
        assert mgr.any_sat(mgr.zero) is None

    def test_iter_sat(self, mgr):
        a, b = mgr.var(0), mgr.var(1)
        f = mgr.xor_(a, b)
        sats = set(mgr.iter_sat(f, num_vars=2))
        assert sats == {0b01, 0b10}

    def test_size(self, mgr):
        a, b = mgr.var(0), mgr.var(1)
        f = mgr.and_(a, b)
        assert mgr.size(f) == 4  # two decision nodes + two terminals


class TestConversions:
    def test_from_cube(self, mgr):
        f = mgr.from_cube(Cube.from_string("1-0-"))
        for m in range(16):
            assert mgr.evaluate(f, m) == Cube.from_string("1-0-").evaluate(m)

    def test_from_cover(self, mgr):
        cover = Cover.from_strings(["1---", "-1--", "--00"])
        f = mgr.from_cover(cover)
        for m in range(16):
            assert mgr.evaluate(f, m) == cover.evaluate(m)

    def test_from_cover_with_var_map(self, mgr):
        cover = Cover.from_strings(["1-"])
        f = mgr.from_cover(cover, var_map=[3, 2])
        assert mgr.evaluate(f, 0b1000)
        assert not mgr.evaluate(f, 0b0001)


class TestBudget:
    def test_overflow_raises(self):
        mgr = BddManager(12, max_nodes=16)
        with pytest.raises(BddOverflowError):
            f = mgr.zero
            for i in range(0, 12, 2):
                f = mgr.or_(f, mgr.and_(mgr.var(i), mgr.var(i + 1)))


class TestMarkRollback:
    def test_rollback_restores_var_count(self):
        """Regression: a rollback across an ``add_var`` must also
        retract the variable, or later ``var()`` calls diverge from a
        manager that never advanced past the mark."""
        mgr = BddManager(2)
        mgr.and_(mgr.var(0), mgr.var(1))
        mark = mgr.mark()
        extra = mgr.add_var()
        mgr.var(extra)
        mgr.rollback(mark)
        assert mgr.num_vars == 2
        with pytest.raises(ValueError):
            mgr.var(extra)

    def test_rollback_rejects_future_mark(self):
        mgr = BddManager(2)
        mgr.and_(mgr.var(0), mgr.var(1))
        mark = mgr.mark()
        mgr.rollback(mark)         # no-op rollback is fine
        fresh = BddManager(2)      # smaller store than the mark
        with pytest.raises(ValueError, match="prior state"):
            fresh.rollback(mark)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 15), min_size=1, max_size=6),
           st.lists(st.integers(0, 15), min_size=1, max_size=6))
    def test_overflow_rollback_rebuild_is_bit_identical(self, pre,
                                                        post):
        """Build, mark, overflow, rollback, rebuild: the manager must
        be indistinguishable from one that never overflowed."""
        def build(manager, minterms):
            return manager.or_many(
                manager.from_cube(Cube.from_minterm(4, m))
                for m in minterms)

        mgr = BddManager(4)
        f1 = build(mgr, pre)
        mark = mgr.mark()
        mgr.max_nodes = mgr.num_nodes + 2   # force an early overflow
        try:
            build(mgr, post)
        except BddOverflowError:
            pass
        mgr.max_nodes = None
        mgr.rollback(mark)
        g1 = build(mgr, post)

        fresh = BddManager(4)
        f2 = build(fresh, pre)
        g2 = build(fresh, post)
        assert (f1, g1) == (f2, g2)
        # Same node ids, same store contents, same cache shape.
        assert mgr.mark() == fresh.mark()
        assert mgr._var == fresh._var
        assert mgr._lo == fresh._lo
        assert mgr._hi == fresh._hi
        assert mgr._unique == fresh._unique


class TestGuard:
    def test_expired_guard_stops_allocation(self):
        from repro.guard import Budget, DeadlineExceeded
        mgr = BddManager(4)
        budget = Budget(deadline_s=0.0)
        budget.start()
        mgr.guard = budget
        mgr._allocs = 1023          # next allocation hits the poll
        with pytest.raises(DeadlineExceeded):
            mgr.and_(mgr.var(0), mgr.var(1))


class TestProperties:
    @settings(max_examples=50)
    @given(st.lists(st.sampled_from(["and", "or", "xor", "not"]),
                    min_size=1, max_size=8),
           st.integers(0, 3), st.integers(0, 3))
    def test_random_expression_semantics(self, ops, v1, v2):
        mgr = BddManager(4)
        f = mgr.var(v1)
        ref = lambda m: bool(m >> v1 & 1)
        for op in ops:
            if op == "not":
                f = mgr.not_(f)
                ref = (lambda r: lambda m: not r(m))(ref)
            else:
                g = mgr.var(v2)
                gref = lambda m: bool(m >> v2 & 1)
                if op == "and":
                    f = mgr.and_(f, g)
                    ref = (lambda r: lambda m: r(m) and gref(m))(ref)
                elif op == "or":
                    f = mgr.or_(f, g)
                    ref = (lambda r: lambda m: r(m) or gref(m))(ref)
                else:
                    f = mgr.xor_(f, g)
                    ref = (lambda r: lambda m: r(m) != gref(m))(ref)
        for m in range(16):
            assert mgr.evaluate(f, m) == ref(m)

    @settings(max_examples=50)
    @given(st.lists(st.integers(0, 15), min_size=0, max_size=6))
    def test_sat_count_matches_enumeration(self, minterms):
        mgr = BddManager(4)
        f = mgr.or_many(mgr.from_cube(Cube.from_minterm(4, m))
                        for m in minterms)
        assert mgr.sat_count(f) == len(set(minterms))

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 15), min_size=1, max_size=6))
    def test_probability_equals_density(self, minterms):
        mgr = BddManager(4)
        f = mgr.or_many(mgr.from_cube(Cube.from_minterm(4, m))
                        for m in minterms)
        assert mgr.probability(f) == pytest.approx(len(set(minterms)) / 16)


class TestDotExport:
    def test_dot_structure(self):
        mgr = BddManager(2)
        f = mgr.and_(mgr.var(0), mgr.var(1))
        dot = mgr.to_dot(f)
        assert dot.startswith("digraph bdd {")
        assert 'label="x0"' in dot
        assert 'label="x1"' in dot
        assert "style=dashed" in dot and "style=solid" in dot

    def test_dot_var_names(self):
        mgr = BddManager(2)
        f = mgr.or_(mgr.var(0), mgr.var(1))
        dot = mgr.to_dot(f, var_names=["alpha", "beta"])
        assert 'label="alpha"' in dot

    def test_dot_terminal_root(self):
        mgr = BddManager(1)
        dot = mgr.to_dot(mgr.one)
        assert "root -> t1" in dot
