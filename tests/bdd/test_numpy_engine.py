"""Differential tests: numpy BDD engine vs the dict-based oracle.

The two engines share one semantic contract: identical verdicts for
every function-level query (evaluate / sat_count / probability /
implies), identical scalar-path node ids, and identical overflow /
rollback behavior.  Batched operations may allocate intermediate nodes
in a different order than the scalar recursion, so cross-engine
comparisons are semantic (truth tables, counts), never raw ids.
"""

import random

import numpy as np
import pytest

from repro.bdd import BddManager, BddOverflowError, NumpyBddManager, \
    bdd_engine, make_manager
from repro.bdd.engine_numpy import OP_AND, OP_DIFF, OP_OR, OP_XOR
from repro.guard import Budget, DeadlineExceeded

N_VARS = 6


def _random_roots(mgr, rng, count=24):
    """Grow a shared pool of functions with random scalar operations."""
    roots = [0, 1] + [mgr.var(i) for i in range(N_VARS)]
    for _ in range(count):
        op = rng.randrange(6)
        f = rng.choice(roots)
        g = rng.choice(roots)
        if op == 0:
            roots.append(mgr.and_(f, g))
        elif op == 1:
            roots.append(mgr.or_(f, g))
        elif op == 2:
            roots.append(mgr.xor_(f, g))
        elif op == 3:
            roots.append(mgr.not_(f))
        elif op == 4:
            roots.append(mgr.restrict(f, rng.randrange(N_VARS),
                                      rng.randrange(2)))
        else:
            roots.append(mgr.ite(f, g, rng.choice(roots)))
    return roots


def _truth_table(mgr, f):
    return tuple(mgr.evaluate(f, a) for a in range(1 << N_VARS))


@pytest.mark.parametrize("seed", [2008, 7, 99])
def test_scalar_paths_are_bit_identical(seed):
    """Scalar ops on the numpy engine replay the oracle id for id."""
    rng1, rng2 = random.Random(seed), random.Random(seed)
    oracle = BddManager(N_VARS)
    numpy_mgr = NumpyBddManager(N_VARS)
    roots_o = _random_roots(oracle, rng1)
    roots_n = _random_roots(numpy_mgr, rng2)
    assert roots_o == roots_n
    assert oracle.num_nodes == numpy_mgr.num_nodes
    assert oracle._var == numpy_mgr._var
    assert oracle._lo == numpy_mgr._lo
    assert oracle._hi == numpy_mgr._hi
    for f_o, f_n in zip(roots_o, roots_n):
        assert oracle.sat_count(f_o) == numpy_mgr.sat_count(f_n)
        assert oracle.probability(f_o) == numpy_mgr.probability(f_n)


@pytest.mark.parametrize("seed", [1, 42, 2008])
def test_apply_many_matches_scalar_semantics(seed):
    rng = random.Random(seed)
    mgr = NumpyBddManager(N_VARS)
    roots = _random_roots(mgr, rng, count=30)
    fs = [rng.choice(roots) for _ in range(40)]
    gs = [rng.choice(roots) for _ in range(40)]
    for op, scalar in ((OP_AND, mgr.and_), (OP_OR, mgr.or_),
                       (OP_XOR, mgr.xor_),
                       (OP_DIFF, lambda f, g: mgr.and_(f, mgr.not_(g)))):
        batched = mgr.apply_many(op, fs, gs)
        for f, g, r in zip(fs, gs, batched):
            assert _truth_table(mgr, int(r)) == \
                _truth_table(mgr, scalar(f, g))
    # Canonicity: batched results of existing functions reuse their ids.
    again = mgr.apply_many(OP_AND, fs, gs)
    assert [mgr.and_(f, g) for f, g in zip(fs, gs)] == list(again)


@pytest.mark.parametrize("seed", [3, 2008])
def test_batched_queries_match_oracle(seed):
    rng = random.Random(seed)
    oracle = BddManager(N_VARS)
    numpy_mgr = NumpyBddManager(N_VARS)
    roots = _random_roots(oracle, random.Random(seed))
    roots_n = _random_roots(numpy_mgr, random.Random(seed))
    assert roots == roots_n

    probs = [rng.random() for _ in range(N_VARS)]
    assert numpy_mgr.probability_many(roots_n) == \
        [oracle.probability(f) for f in roots]
    assert numpy_mgr.probability_many(roots_n, probs) == \
        [oracle.probability(f, probs) for f in roots]
    assert numpy_mgr.sat_count_many(roots_n) == \
        [oracle.sat_count(f) for f in roots]

    fs = [rng.choice(roots) for _ in range(30)]
    gs = [rng.choice(roots) for _ in range(30)]
    assert numpy_mgr.implies_many(fs, gs) == \
        [oracle.implies(f, g) for f, g in zip(fs, gs)]

    assignments = np.array([[rng.randrange(2) for _ in range(N_VARS)]
                            for _ in range(16)])
    got = numpy_mgr.evaluate_many(roots_n, assignments)
    want = oracle.evaluate_many(roots, assignments.tolist())
    assert got.tolist() == want


def test_restrict_and_compose_many():
    rng = random.Random(5)
    mgr = NumpyBddManager(N_VARS)
    roots = _random_roots(mgr, rng)
    for var in (0, 2, N_VARS - 1):
        for value in (0, 1):
            batched = mgr.restrict_many(roots, var, value)
            scalar = [mgr.restrict(f, var, value) for f in roots]
            assert batched == scalar
        g = rng.choice(roots)
        batched = mgr.compose_many(roots, var, g)
        scalar = [mgr.compose(f, var, g) for f in roots]
        for b, s in zip(batched, scalar):
            assert _truth_table(mgr, b) == _truth_table(mgr, s)


def test_exists_and_structural_ops_inherited():
    """Scalar structural ops still work on the numpy engine."""
    mgr = NumpyBddManager(4)
    f = mgr.and_(mgr.xor_(mgr.var(0), mgr.var(1)), mgr.var(2))
    assert mgr.support(f) == {0, 1, 2}
    assert mgr.exists(f, [2]) == mgr.xor_(mgr.var(0), mgr.var(1))
    assert mgr.forall(f, [0]) == 0
    assert mgr.boolean_difference(f, 2) == mgr.xor_(mgr.var(0), mgr.var(1))


def test_mark_rollback_restores_batched_state():
    """Rollback across batched ops replays the oracle exactly."""
    mgr = NumpyBddManager(N_VARS)
    rng = random.Random(11)
    roots = _random_roots(mgr, rng)
    mark = mgr.mark()
    snapshot = (list(mgr._var), list(mgr._lo), list(mgr._hi))
    fs = [rng.choice(roots) for _ in range(20)]
    gs = [rng.choice(roots) for _ in range(20)]
    first = list(mgr.apply_many(OP_XOR, fs, gs))
    mgr.rollback(mark)
    assert (list(mgr._var), list(mgr._lo), list(mgr._hi)) == snapshot
    assert mgr.mark() == mark
    # Replaying the same batch after rollback allocates the same ids.
    assert list(mgr.apply_many(OP_XOR, fs, gs)) == first
    # ... and scalar ops agree with the batch.
    for f, g, r in zip(fs, gs, first):
        assert mgr.xor_(f, g) == r


def test_overflow_at_cap_matches_oracle():
    rng = random.Random(13)
    oracle = BddManager(8, max_nodes=40)
    numpy_mgr = NumpyBddManager(8, max_nodes=40)

    def grind(mgr):
        f = mgr.var(0)
        try:
            for i in range(1, 8):
                f = mgr.xor_(f, mgr.var(i))
                f = mgr.or_(f, mgr.and_(mgr.var(i - 1), mgr.var(i)))
            return f, None
        except BddOverflowError as exc:
            return None, str(exc)

    assert grind(oracle) == grind(numpy_mgr)

    batch = NumpyBddManager(8, max_nodes=20)
    vs = [batch.var(i) for i in range(8)]
    with pytest.raises(BddOverflowError):
        acc = vs[0]
        for v in vs[1:]:
            acc = int(batch.apply_many(
                OP_XOR, [acc, vs[0]], [v, v])[0])
            acc = int(batch.apply_many(OP_OR, [acc], [batch.and_(v, vs[0])])[0])
    assert batch.num_nodes <= 20


def test_guard_deadline_polled_in_batched_allocs():
    mgr = NumpyBddManager(10)
    budget = Budget(deadline_s=0.0)
    budget.start()
    mgr.guard = budget
    with pytest.raises(DeadlineExceeded):
        fs = [mgr.var(i) for i in range(9)]
        acc = fs[0]
        for f in fs[1:]:
            acc = int(mgr.apply_many(OP_XOR, [acc], [f])[0])


def test_make_manager_env_switch(monkeypatch):
    monkeypatch.delenv("REPRO_BDD_ENGINE", raising=False)
    assert bdd_engine() == "numpy"
    assert isinstance(make_manager(3), NumpyBddManager)
    monkeypatch.setenv("REPRO_BDD_ENGINE", "python")
    assert bdd_engine() == "python"
    mgr = make_manager(3)
    assert isinstance(mgr, BddManager)
    assert not isinstance(mgr, NumpyBddManager)
    monkeypatch.setenv("REPRO_BDD_ENGINE", "cupy")
    with pytest.raises(ValueError):
        bdd_engine()
