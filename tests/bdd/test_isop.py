"""Tests for Minato-Morreale ISOP extraction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BddManager, cover_from_bdd, isop
from repro.cubes import Cover, Cube


class TestIsop:
    def test_exact_roundtrip_simple(self):
        mgr = BddManager(3)
        cover = Cover.from_strings(["1-0", "-11"])
        f = mgr.from_cover(cover)
        extracted = cover_from_bdd(mgr, f)
        for m in range(8):
            assert extracted.evaluate(m) == mgr.evaluate(f, m)

    def test_interval_uses_dont_cares(self):
        mgr = BddManager(2)
        a, b = mgr.var(0), mgr.var(1)
        lower = mgr.and_(a, b)
        upper = a  # don't care on a & !b
        cover = isop(mgr, lower, upper)
        # Single-literal cube 'a' is the expected irredundant answer.
        assert cover.num_literals == 1
        for m in range(4):
            value = cover.evaluate(m)
            assert (not mgr.evaluate(lower, m)) or value
            assert (not value) or mgr.evaluate(upper, m)

    def test_empty_interval_rejected(self):
        mgr = BddManager(2)
        a, b = mgr.var(0), mgr.var(1)
        with pytest.raises(ValueError):
            isop(mgr, a, mgr.and_(a, b))

    def test_constant_functions(self):
        mgr = BddManager(3)
        assert cover_from_bdd(mgr, mgr.zero).is_zero()
        assert cover_from_bdd(mgr, mgr.one).is_tautology()

    def test_xor_extraction(self):
        mgr = BddManager(2)
        f = mgr.xor_(mgr.var(0), mgr.var(1))
        cover = cover_from_bdd(mgr, f)
        assert len(cover) == 2
        for m in range(4):
            assert cover.evaluate(m) == mgr.evaluate(f, m)


class TestIsopProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 15), max_size=8),
           st.lists(st.integers(0, 15), max_size=8))
    def test_result_within_interval(self, on, dc):
        mgr = BddManager(4)
        lower = mgr.or_many(mgr.from_cube(Cube.from_minterm(4, m))
                            for m in on)
        upper = mgr.or_(lower, mgr.or_many(
            mgr.from_cube(Cube.from_minterm(4, m)) for m in dc))
        cover = isop(mgr, lower, upper)
        for m in range(16):
            value = cover.evaluate(m)
            if mgr.evaluate(lower, m):
                assert value, "onset minterm dropped"
            if value:
                assert mgr.evaluate(upper, m), "offset minterm included"

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 15), max_size=10))
    def test_exact_roundtrip(self, minterms):
        mgr = BddManager(4)
        f = mgr.or_many(mgr.from_cube(Cube.from_minterm(4, m))
                        for m in minterms)
        cover = cover_from_bdd(mgr, f)
        for m in range(16):
            assert cover.evaluate(m) == mgr.evaluate(f, m)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 15), min_size=1, max_size=10))
    def test_irredundancy(self, minterms):
        mgr = BddManager(4)
        f = mgr.or_many(mgr.from_cube(Cube.from_minterm(4, m))
                        for m in minterms)
        cover = cover_from_bdd(mgr, f)
        # Dropping any single cube must lose at least one onset minterm.
        for i in range(len(cover)):
            rest = Cover(4, cover.cubes[:i] + cover.cubes[i + 1:])
            lost = any(mgr.evaluate(f, m) and not rest.evaluate(m)
                       for m in range(16))
            assert lost
