"""AnalysisContext: version-keyed reuse that is bit-identical to fresh
computation, including the overflow fail-fast and rollback paths."""

import random

import pytest

from repro.bdd import BddOverflowError
from repro.cubes import Cover, Cube
from repro.flow import AnalysisContext
from repro.network import GlobalBdds, Network, dfs_input_order
from repro.sim import signal_probabilities


def _and2() -> Cover:
    return Cover(2, [Cube.from_string("11")])


def _or2() -> Cover:
    return Cover(2, [Cube.from_string("1-"), Cube.from_string("-1")])


def _xor2() -> Cover:
    return Cover(2, [Cube.from_string("10"), Cube.from_string("01")])


def _pair(n_inputs: int = 4, depth: int = 3, seed: int = 7
          ) -> tuple[Network, Network]:
    """A random original and an independently random approx over the
    same inputs/outputs."""
    rng = random.Random(seed)
    covers = [_and2, _or2, _xor2]
    original = Network("net")
    for i in range(n_inputs):
        original.add_input(f"i{i}")
    signals = [f"i{i}" for i in range(n_inputs)]
    for level in range(depth):
        for k in range(n_inputs):
            a, b = rng.sample(signals, 2)
            name = f"n{level}_{k}"
            original.add_node(name, [a, b], rng.choice(covers)())
            signals.append(name)
    original.add_output(signals[-1])
    original.add_output(signals[-2])
    # The approx shares the interface and structure, with a handful of
    # covers rewritten (what the synthesis loop produces).
    approx = original.copy()
    for name in rng.sample(list(approx.nodes), 3):
        approx.replace_cover(name, rng.choice(covers)())
    return original, approx


def _fresh_probs(original: Network, approx: Network) -> dict[str, float]:
    bdds = GlobalBdds(dfs_input_order(original))
    bdds.add_network(original, prefix="o_")
    bdds.add_network(approx, prefix="a_")
    return {name: bdds.manager.probability(f)
            for name, f in sorted(bdds.functions.items())}


def _ctx_probs(ctx: AnalysisContext, original: Network,
               approx: Network) -> dict[str, float]:
    bdds = ctx.pair_bdds(original, approx)
    return {name: bdds.manager.probability(f)
            for name, f in sorted(bdds.functions.items())}


def test_pair_bdds_incremental_matches_fresh_under_mutation():
    # Property: across a run of random cone mutations, the shared
    # (incrementally updated) manager yields exactly the function
    # probabilities of a from-scratch build — no stale cones, ever.
    original, approx = _pair()
    ctx = AnalysisContext()
    rng = random.Random(13)
    covers = [_and2, _or2, _xor2]
    assert _ctx_probs(ctx, original, approx) == \
        _fresh_probs(original, approx)
    node_names = [n for n in approx.nodes]
    for _ in range(12):
        name = rng.choice(node_names)
        approx.replace_cover(name, rng.choice(covers)())
        assert _ctx_probs(ctx, original, approx) == \
            _fresh_probs(original, approx)
    assert ctx.stats["global_bdds"]["misses"] == 1
    assert ctx.stats["global_bdds"]["hits"] == 12


def test_pair_bdds_new_approx_object_reuses_original_side():
    original, approx1 = _pair(seed=1)
    approx2 = approx1.copy()
    approx2.replace_cover(next(iter(approx2.nodes)), _or2())
    ctx = AnalysisContext()
    ctx.pair_bdds(original, approx1)
    bdds = ctx.pair_bdds(original, approx2)
    assert ctx.stats["global_bdds"] == {"hits": 1, "misses": 1}
    assert _ctx_probs(ctx, original, approx2) == \
        _fresh_probs(original, approx2)
    assert bdds is ctx.pair_bdds(original, approx2)


def test_one_build_per_network_version():
    # Satellite regression: the metrics stage and the lint re-prover
    # used to each build their own GlobalBdds of the same pair.  With a
    # shared context there must be exactly one build per (original,
    # approx) version.
    from repro.approx import approximation_percentages
    from repro.lint.semantics import PairSemantics

    original, approx = _pair()
    directions = {po: 1 for po in original.outputs}
    po = original.outputs[0]
    ctx = AnalysisContext()
    approximation_percentages(original, approx, directions, ctx=ctx)
    # The prover builds lazily: the first implication query of each
    # instance reuses the context's pair manager.  Static discharge is
    # off so the queries actually reach the BDD layer under test.
    PairSemantics(original, approx, ctx=ctx, static=False) \
        .implication(po, 1)
    PairSemantics(original, approx, ctx=ctx, static=False) \
        .implication(po, 1)
    assert ctx.stats["global_bdds"]["misses"] == 1
    assert ctx.stats["global_bdds"]["hits"] == 2


def test_disabled_context_always_recomputes():
    original, approx = _pair()
    ctx = AnalysisContext(enabled=False)
    b1 = ctx.pair_bdds(original, approx)
    b2 = ctx.pair_bdds(original, approx)
    assert b1 is not b2
    assert ctx.stats["global_bdds"] == {"hits": 0, "misses": 2}


def test_original_mutation_drops_entry():
    original, approx = _pair()
    ctx = AnalysisContext()
    ctx.pair_bdds(original, approx)
    original.replace_cover(next(iter(original.nodes)), _or2())
    ctx.pair_bdds(original, approx)
    assert ctx.stats["global_bdds"]["misses"] == 2
    assert _ctx_probs(ctx, original, approx) == \
        _fresh_probs(original, approx)


# ----------------------------------------------------------------------
# Overflow caching
# ----------------------------------------------------------------------
def test_original_overflow_fails_fast_at_same_or_smaller_budget():
    original, approx = _pair(n_inputs=6, depth=4)
    ctx = AnalysisContext()
    with pytest.raises(BddOverflowError):
        ctx.pair_bdds(original, approx, budget=10)
    assert ctx.stats["global_bdds"] == {"hits": 0, "misses": 1}
    # Identical and smaller budgets fail fast (counted as hits: the
    # verdict is served from the cache, not recomputed).
    with pytest.raises(BddOverflowError):
        ctx.pair_bdds(original, approx, budget=10)
    with pytest.raises(BddOverflowError):
        ctx.pair_bdds(original, approx, budget=9)
    assert ctx.stats["global_bdds"] == {"hits": 2, "misses": 1}
    # A larger budget is a genuine retry.
    bdds = ctx.pair_bdds(original, approx, budget=100_000)
    assert bdds.function("o_" + original.outputs[0]) is not None
    assert ctx.stats["global_bdds"]["misses"] == 2


def test_completed_original_side_survives_approx_overflow():
    # Budget large enough for the original alone but not the pair:
    # the o_ functions and a manager mark survive, so the next attempt
    # (with a bigger budget here) skips the o_ rebuild entirely.
    original, approx = _pair(n_inputs=6, depth=4)
    rng = random.Random(99)
    for name in rng.sample(list(approx.nodes), 12):
        approx.replace_cover(name, _xor2())
    probe = GlobalBdds(dfs_input_order(original))
    probe.add_network(original, prefix="o_")
    o_nodes = probe.manager.num_nodes
    budget = o_nodes + 2
    ctx = AnalysisContext()
    with pytest.raises(BddOverflowError):
        ctx.pair_bdds(original, approx, budget=budget)
    assert ctx.stats["global_bdds"] == {"hits": 0, "misses": 1}
    bdds = ctx.pair_bdds(original, approx, budget=10 * o_nodes)
    # The retry reused the completed o_ side: a hit, not a rebuild.
    assert ctx.stats["global_bdds"] == {"hits": 1, "misses": 1}
    assert _ctx_probs(ctx, original, approx) == \
        _fresh_probs(original, approx)
    assert bdds.manager.max_nodes == 10 * o_nodes


def test_known_oversized_original_fails_fast_below_its_node_count():
    original, approx = _pair(n_inputs=6, depth=4)
    ctx = AnalysisContext()
    bdds = ctx.pair_bdds(original, approx)        # unlimited build
    o_created = ctx._o_entry["o_created"]
    del bdds
    # Any budget below the known o_ node count must overflow; the
    # context answers from the record without building anything.
    with pytest.raises(BddOverflowError):
        ctx.pair_bdds(original, approx, budget=o_created - 1)
    assert ctx.stats["global_bdds"] == {"hits": 1, "misses": 1}


# ----------------------------------------------------------------------
# Memoized probabilities / switching
# ----------------------------------------------------------------------
def test_probabilities_memo_and_invalidation():
    original, _ = _pair()
    ctx = AnalysisContext()
    p1 = ctx.probabilities(original, n_words=8, seed=3)
    p2 = ctx.probabilities(original, n_words=8, seed=3)
    assert p1 is p2
    assert ctx.stats["probabilities"] == {"hits": 1, "misses": 1}
    # A content-changing mutation must invalidate: no stale values.
    name = next(iter(original.nodes))
    original.replace_cover(name, Cover(2, []))    # node now constant 0
    p3 = ctx.probabilities(original, n_words=8, seed=3)
    assert p3 == signal_probabilities(original, n_words=8, seed=3)
    assert ctx.stats["probabilities"]["misses"] == 2
    # Content-keyed memo: an equal circuit loaded as a different object
    # (a warm serve-style run) hits instead of recomputing.
    reloaded = original.copy()
    p4 = ctx.probabilities(reloaded, n_words=8, seed=3)
    assert p4 is p3
    assert ctx.stats["probabilities"]["misses"] == 2


def test_observabilities_never_stale_after_mutation():
    # global_observabilities rides the version-aware simulator cache;
    # a cone mutation must be reflected immediately.
    from repro.reliability.observability import global_observabilities

    original, _ = _pair()
    first = global_observabilities(original, n_words=4, seed=5)
    name = original.outputs[0]
    original.replace_cover(name, Cover(2, []))    # output now constant 0
    second = global_observabilities(original, n_words=4, seed=5)
    fresh = global_observabilities(original.copy(), n_words=4, seed=5)
    assert second == pytest.approx(fresh)
    assert second != first
