"""FlowTrace/PassRecord serialization and the validate_trace schema."""

from repro.flow import FlowTrace, PassRecord, validate_trace
from repro.flow.trace import TRACE_SCHEMA


def _trace() -> FlowTrace:
    trace = FlowTrace()
    trace.add(PassRecord(
        name="map-original", wall_time_s=0.25,
        cache={"global_bdds": {"hits": 2, "misses": 1}},
        stats={"gates": 50}))
    trace.add(PassRecord(name="metrics", status="resumed",
                         cache={"checkpoint": {"hits": 1, "misses": 0}}))
    return trace


def test_round_trip_is_valid():
    doc = _trace().to_dict()
    assert validate_trace(doc) == []
    assert doc["schema"] == TRACE_SCHEMA
    assert doc["total_wall_time_s"] == 0.25
    assert [p["name"] for p in doc["passes"]] == \
        ["map-original", "metrics"]


def test_cache_totals_and_hit_properties():
    trace = _trace()
    assert trace.cache_totals() == {
        "global_bdds": {"hits": 2, "misses": 1},
        "checkpoint": {"hits": 1, "misses": 0}}
    rec = trace.record("map-original")
    assert rec.cache_hits == 2
    assert rec.cache_misses == 1
    assert trace.record("nonexistent") is None


def test_stats_are_jsonified():
    import numpy as np
    rec = PassRecord(name="p", stats={
        "count": np.int64(3), "ratio": np.float64(0.5),
        "nested": {"vals": (1, 2)}, "flag": True, "none": None})
    stats = rec.to_dict()["stats"]
    assert stats == {"count": 3, "ratio": 0.5,
                     "nested": {"vals": [1, 2]},
                     "flag": True, "none": None}
    assert type(stats["count"]) is int
    assert type(stats["ratio"]) is float


def test_non_dict_document_rejected():
    assert validate_trace([1, 2]) != []
    assert validate_trace(None) != []


def test_wrong_schema_version_rejected():
    doc = _trace().to_dict()
    doc["schema"] = TRACE_SCHEMA + 1
    assert any("schema" in e for e in validate_trace(doc))


def test_empty_passes_rejected():
    doc = _trace().to_dict()
    doc["passes"] = []
    assert any("no passes" in e for e in validate_trace(doc))


def test_bad_status_rejected():
    doc = _trace().to_dict()
    doc["passes"][0]["status"] = "skipped"
    assert any("bad status" in e for e in validate_trace(doc))


def test_negative_wall_time_rejected():
    doc = _trace().to_dict()
    doc["passes"][0]["wall_time_s"] = -1.0
    assert any("wall_time_s" in e for e in validate_trace(doc))


def test_non_integer_cache_counter_rejected():
    doc = _trace().to_dict()
    doc["passes"][0]["cache"]["global_bdds"]["hits"] = "two"
    assert any("cache entry" in e for e in validate_trace(doc))


def test_nameless_pass_rejected():
    doc = _trace().to_dict()
    doc["passes"][1]["name"] = ""
    assert any("no name" in e for e in validate_trace(doc))
