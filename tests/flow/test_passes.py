"""PassManager: declaration checking, tracing, and checkpoint resume."""

import pytest

from repro.flow import (FlowContext, FlowError, Pass, PassManager,
                        flow_token, pass_fingerprint, validate_trace)
from repro.lab.cache import ArtifactStore


class _Produce(Pass):
    name = "produce"
    provides = ("value",)
    checkpoint = ("value",)

    def run(self, ctx, record):
        record.stats["ran"] = True
        return {"value": 41}


class _Consume(Pass):
    name = "consume"
    requires = ("value",)
    provides = ("doubled",)
    checkpoint = ("doubled",)

    def run(self, ctx, record):
        return {"doubled": ctx["value"] * 2}


class _Boom(Pass):
    name = "boom"
    requires = ("doubled",)
    provides = ("never",)
    checkpoint = ("never",)

    def run(self, ctx, record):
        raise RuntimeError("killed mid-pipeline")


class _Final(Pass):
    name = "final"
    requires = ("doubled",)
    provides = ("result",)
    checkpoint = ("result",)

    def run(self, ctx, record):
        return {"result": ctx["doubled"] + 1}


def test_unknown_requirement_is_rejected():
    with pytest.raises(FlowError):
        PassManager([_Consume()])


def test_duplicate_provide_is_rejected():
    with pytest.raises(FlowError):
        PassManager([_Produce(), _Produce()])


def test_missing_provide_is_rejected_at_runtime():
    class Liar(Pass):
        name = "liar"
        provides = ("thing",)

        def run(self, ctx, record):
            return {}

    ctx = FlowContext(network=None)
    with pytest.raises(FlowError):
        PassManager([Liar()]).run(ctx)


def test_run_populates_artifacts_and_trace():
    ctx = FlowContext(network=None)
    trace = PassManager([_Produce(), _Consume(), _Final()]).run(ctx)
    assert ctx["result"] == 83
    assert [r.name for r in trace.passes] == \
        ["produce", "consume", "final"]
    assert all(r.status == "ok" for r in trace.passes)
    assert all(r.wall_time_s >= 0 for r in trace.passes)
    assert validate_trace(trace.to_dict()) == []


def test_killed_run_resumes_mid_pipeline(tmp_path):
    store = ArtifactStore(tmp_path)
    token = flow_token("content", {"p": 1})
    passes = [_Produce(), _Consume(), _Boom(), _Final()]

    ctx = FlowContext(network=None)
    with pytest.raises(RuntimeError):
        PassManager(passes, store=store, token=token).run(ctx)

    # The re-run restores every pass completed before the kill from the
    # store instead of recomputing it.
    fixed = [_Produce(), _Consume(), _Final()]
    ctx2 = FlowContext(network=None)
    trace = PassManager(fixed, store=store, token=token).run(ctx2)
    assert ctx2["result"] == 83
    statuses = {r.name: r.status for r in trace.passes}
    assert statuses["produce"] == "resumed"
    assert statuses["consume"] == "resumed"
    assert statuses["final"] == "ok"
    assert "ran" not in trace.record("produce").stats


def test_different_token_does_not_resume(tmp_path):
    store = ArtifactStore(tmp_path)
    passes = lambda: [_Produce(), _Consume(), _Final()]  # noqa: E731
    PassManager(passes(), store=store,
                token=flow_token("content", {"p": 1})).run(
        FlowContext(network=None))
    trace = PassManager(passes(), store=store,
                        token=flow_token("content", {"p": 2})).run(
        FlowContext(network=None))
    assert all(r.status == "ok" for r in trace.passes)


def test_upstream_resume_chain_is_merkle_keyed(tmp_path):
    # Editing an upstream pass invalidates every downstream checkpoint.
    store = ArtifactStore(tmp_path)
    token = flow_token("content", {})
    PassManager([_Produce(), _Consume()], store=store,
                token=token).run(FlowContext(network=None))

    class Produce2(_Produce):      # different class -> new fingerprint
        def run(self, ctx, record):
            return {"value": 41}

    assert pass_fingerprint(Produce2()) != pass_fingerprint(_Produce())
    trace = PassManager([Produce2(), _Consume()], store=store,
                        token=token).run(FlowContext(network=None))
    assert all(r.status == "ok" for r in trace.passes)


def test_store_without_token_disables_checkpointing(tmp_path):
    store = ArtifactStore(tmp_path)
    manager = PassManager([_Produce()], store=store, token=None)
    assert manager.store is None
    trace = manager.run(FlowContext(network=None))
    assert trace.passes[0].status == "ok"


def test_non_resumable_pass_always_runs(tmp_path):
    class Ephemeral(Pass):
        name = "ephemeral"
        provides = ("thing",)
        checkpoint = ()            # declares nothing persistable

        def run(self, ctx, record):
            return {"thing": object()}

    store = ArtifactStore(tmp_path)
    token = flow_token("x", {})
    for _ in range(2):
        trace = PassManager([Ephemeral()], store=store,
                            token=token).run(FlowContext(network=None))
        assert trace.passes[0].status == "ok"
