"""CLI engine selection, error flags, exit-2 config errors, prune --stale."""

import json

import pytest

from repro.cli import EXIT_CONFIG_ERROR, main
from repro.lab.proofs import PROOF_SCHEMA, ProofCache


@pytest.fixture
def blif_path(tmp_path):
    path = tmp_path / "demo.blif"
    path.write_text("""
.model demo
.inputs a b c
.outputs y z
.names a b t1
11 1
.names t1 c y
1- 1
-0 1
.names a c z
11 1
.end
""")
    return path


class TestEngineFlags:
    def test_resub_run_reports_engine_and_error(self, blif_path,
                                                capsys):
        code = main(["ced", "--blif", str(blif_path), "--words", "1",
                     "--engine", "resub", "--error-metric", "er",
                     "--error-bound", "0.1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "engine                : resub" in out
        assert "error                 : er" in out
        assert "within" in out

    def test_json_report_carries_engine_and_report(self, blif_path,
                                                   capsys):
        code = main(["ced", "--blif", str(blif_path), "--words", "1",
                     "--json", "--engine", "resub",
                     "--error-metric", "er", "--error-bound", "0.1",
                     "--error-exact-threshold", "10"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["engine"] == "resub"
        assert doc["error_report"]["within"] is True
        assert doc["error_report"]["budget_spent"][
            "exact_threshold"] == 10

    def test_default_engine_is_cube(self, blif_path, capsys):
        code = main(["ced", "--blif", str(blif_path), "--words", "1",
                     "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["engine"] == "cube"
        assert "error_report" not in doc


class TestConfigErrors:
    def check(self, argv, field, capsys):
        assert main(argv) == EXIT_CONFIG_ERROR
        doc = json.loads(capsys.readouterr().err)
        assert doc["error"] == "config"
        assert doc["field"] == field
        return doc

    def test_unknown_engine_exits_2(self, blif_path, capsys):
        doc = self.check(["ced", "--blif", str(blif_path),
                          "--engine", "nope"], "engine", capsys)
        assert "nope" in doc["message"]

    def test_resub_without_error_exits_2(self, blif_path, capsys):
        self.check(["ced", "--blif", str(blif_path),
                    "--engine", "resub"], "error", capsys)

    def test_cube_with_error_exits_2(self, blif_path, capsys):
        self.check(["ced", "--blif", str(blif_path),
                    "--error-metric", "er", "--error-bound", "0.1"],
                   "error", capsys)

    def test_bound_without_metric_exits_2(self, blif_path, capsys):
        self.check(["ced", "--blif", str(blif_path),
                    "--engine", "resub", "--error-bound", "0.1"],
                   "error.metric", capsys)

    def test_bad_metric_exits_2(self, blif_path, capsys):
        doc = self.check(["ced", "--blif", str(blif_path),
                          "--engine", "resub",
                          "--error-metric", "mse",
                          "--error-bound", "0.1"],
                         "error.metric", capsys)
        assert "mse" in doc["message"]

    def test_synth_shares_the_flags(self, blif_path, tmp_path, capsys):
        self.check(["synth", "--blif", str(blif_path),
                    "--out", str(tmp_path / "o.blif"),
                    "--engine", "nope"], "engine", capsys)


class TestCachePruneStale:
    def test_prune_stale_sweeps_old_schema(self, tmp_path, capsys):
        cache = ProofCache(tmp_path / "proofs")
        cache.put("aa" + "0" * 62, {"kind": "implication",
                                    "holds": True})
        stale_dir = tmp_path / "proofs" / "bb"
        stale_dir.mkdir(parents=True)
        (stale_dir / ("bb" + "0" * 62 + ".json")).write_text(
            json.dumps({"kind": "implication", "holds": True,
                        "schema": PROOF_SCHEMA - 1, "digest": "x"}))
        code = main(["cache", "--dir", str(tmp_path / "proofs"),
                     "prune", "--stale", "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["removed_stale"] == 1
        assert doc["kept_entries"] == 1

    def test_prune_without_criteria_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "--dir", str(tmp_path / "proofs"), "prune"])

    def test_prune_stale_and_size_compose(self, tmp_path, capsys):
        cache = ProofCache(tmp_path / "proofs")
        for i in range(3):
            cache.put(f"a{i}" + "0" * 62, {"kind": "implication",
                                           "n": i})
        code = main(["cache", "--dir", str(tmp_path / "proofs"),
                     "prune", "--stale", "--max-size", "1", "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["removed_stale"] == 0
        assert doc["removed"] == 3
