"""Shared helpers: exhaustive evaluation and random network stock.

The analyze tests check soundness claims ("a definite answer is a
theorem about the circuit") against brute force, so everything here is
deliberately independent of the simulator and BDD machinery under
test: covers are evaluated cube-by-cube in pure Python over every
input assignment.
"""

from repro.cubes import Cover
from repro.network import Network


def cube_fires(cube, fanin_values) -> bool:
    for i, value in enumerate(fanin_values):
        lit = cube.literal(i)
        if lit == "1" and value != 1:
            return False
        if lit == "0" and value != 0:
            return False
    return True


def eval_cover(cover: Cover, fanin_values) -> int:
    return 1 if any(cube_fires(c, fanin_values) for c in cover.cubes) \
        else 0


def eval_all(net: Network, force: dict[str, int] | None = None) -> dict:
    """Signal truth rows over all ``2**len(inputs)`` assignments.

    Assignment ``a`` sets PI ``inputs[j]`` to bit ``j`` of ``a``.
    ``force`` overrides named internal signals to a fixed value
    (fault-injection style) *before* their readers evaluate.
    """
    n = len(net.inputs)
    count = 1 << n
    rows: dict[str, list[int]] = {
        pi: [(a >> j) & 1 for a in range(count)]
        for j, pi in enumerate(net.inputs)}
    for name in net.topological_order():
        node = net.nodes[name]
        fanin_rows = [rows[f] for f in node.fanins]
        rows[name] = [eval_cover(node.cover,
                                 [r[a] for r in fanin_rows])
                      for a in range(count)]
        if force and name in force:
            rows[name] = [force[name]] * count
    return rows


def random_cover(rng, n_vars: int) -> Cover:
    strings = sorted({
        "".join(rng.choice("01-") for _ in range(n_vars))
        for _ in range(rng.randint(1, 3))})
    return Cover.from_strings(strings)


def random_network(rng, n_inputs: int = 4, n_nodes: int = 6,
                   name: str = "rand") -> Network:
    net = Network(name)
    signals = []
    for i in range(n_inputs):
        net.add_input(f"x{i}")
        signals.append(f"x{i}")
    for k in range(n_nodes):
        width = rng.randint(1, min(3, len(signals)))
        fanins = rng.sample(signals, width)
        net.add_node(f"n{k}", fanins, random_cover(rng, width))
        signals.append(f"n{k}")
    for po in signals[-2:]:
        net.add_output(po)
    return net
