"""StaticDischarger: every definite answer checked against brute force.

The discharger promises (static_proof.py docstring) that a True or
False answer is a theorem about the original/approximate pair, so the
flow may skip the BDD/SAT engines without ever changing a verdict.
Here we synthesize random pairs with the same edit vocabulary the
approximation uses (dropped cubes, constant collapses, arbitrary
rewrites) and compare every definite answer against exhaustive
evaluation.
"""

import random

from repro.analyze.static_proof import StaticDischarger
from repro.cubes import Cover
from repro.network import Network

from .helpers import eval_all, random_cover, random_network


def _mutate(rng, net: Network) -> Network:
    """Synthesis-style per-node edits on a copy of ``net``."""
    approx = net.copy(net.name + "_approx")
    for victim in rng.sample(sorted(approx.nodes), rng.randint(1, 3)):
        node = approx.nodes[victim]
        width = len(node.fanins)
        kind = rng.random()
        if kind < 0.4 and len(node.cover.cubes) > 1:
            drop = rng.randrange(len(node.cover.cubes))
            kept = [c for i, c in enumerate(node.cover.cubes)
                    if i != drop]
            approx.replace_cover(victim, Cover(node.cover.n, kept))
        elif kind < 0.7:
            approx.replace_cover(
                victim,
                Cover.from_strings(["-" * width])
                if rng.random() < 0.5 else Cover.zero(width))
        else:
            approx.replace_cover(victim, random_cover(rng, width))
    return approx


def test_definite_answers_match_brute_force():
    rng = random.Random(2008)
    proved = 0
    for trial in range(40):
        original = random_network(rng, n_inputs=4, n_nodes=7,
                                  name=f"sp{trial}")
        approx = _mutate(rng, original)
        discharger = StaticDischarger(original, approx)
        rows_o, rows_a = eval_all(original), eval_all(approx)
        count = 1 << len(original.inputs)
        for po in original.outputs:
            for direction in (0, 1):
                proof = discharger.implication(po, direction)
                lhs, rhs = ((rows_a[po], rows_o[po]) if direction == 1
                            else (rows_o[po], rows_a[po]))
                truth = all(lhs[a] <= rhs[a] for a in range(count))
                if proof.holds is True:
                    proved += 1
                    assert truth, (original.name, po, direction,
                                   proof.reason)
                elif proof.holds is False:
                    assert not truth, (original.name, po, direction)
                    witness = proof.witness
                    assert witness is not None
                    vo = original.evaluate(witness)[po]
                    va = approx.evaluate(witness)[po]
                    violates = (va and not vo) if direction == 1 \
                        else (vo and not va)
                    assert violates, (original.name, po, direction)
    # The mutation stock must actually exercise the positive rules.
    assert proved > 30


def test_constant_conflict_is_refuted_with_witness():
    original = Network("conflict")
    original.add_input("x")
    original.add_node("f", ["x"], Cover.zero(1))            # f == 0
    original.add_output("f")
    approx = Network("conflict")
    approx.add_input("x")
    approx.add_node("f", ["x"], Cover.from_strings(["-"]))  # f == 1
    approx.add_output("f")
    proof = StaticDischarger(original, approx).implication("f", 1)
    assert proof.holds is False
    assert proof.reason == "const-conflict"
    assert approx.evaluate(proof.witness)["f"]
    assert not original.evaluate(proof.witness)["f"]


def test_identical_copy_discharges_everything():
    rng = random.Random(5)
    net = random_network(rng, name="same")
    discharger = StaticDischarger(net, net.copy())
    for po in net.outputs:
        for direction in (0, 1):
            assert discharger.implication(po, direction).holds is True
    rate = discharger.discharge_rate()
    assert set(rate) == {"attempts", "discharged", "rate", "reasons"}
    assert rate["rate"] == 1.0
    assert rate["attempts"] == 2 * len(net.outputs)


def test_dropped_cube_discharges_only_its_direction():
    net = Network("drop")
    net.add_input("x0")
    net.add_input("x1")
    net.add_node("f", ["x0", "x1"], Cover.from_strings(["1-", "-1"]))
    net.add_output("f")
    approx = net.copy()
    approx.replace_cover("f", Cover.from_strings(["11"]))
    discharger = StaticDischarger(net, approx)
    proof = discharger.implication("f", 1)          # AND => OR
    assert proof.holds is True
    assert proof.reason == "relation"
    assert discharger.implication("f", 0).holds is None
