"""Every domain's definite answers checked against brute force.

The contract under test (domains.py docstring): a definite answer is a
theorem about the circuit; TOP only ever means "unknown".  So for each
analysis we enumerate all input assignments with the pure-Python
evaluator in helpers.py and demand that claimed constants really are
constant, claimed unateness really is monotone, probability bounds
really bracket the exact density, structural duplicates really compute
the same function, and dead cones really are unobservable.
"""

import random

from repro.analyze import NetworkAnalyses
from repro.analyze.domains import cover_implies, cones_structurally_equal
from repro.analyze.lattice import BOTTOM, TOP
from repro.cubes import Cover

from .helpers import cube_fires, eval_all, eval_cover, random_network

N_TRIALS = 25


def _cases():
    rng = random.Random(2008)
    for trial in range(N_TRIALS):
        net = random_network(rng, n_inputs=4, n_nodes=7,
                             name=f"dom{trial}")
        yield net, NetworkAnalyses(net), eval_all(net)


def test_constants_are_really_constant():
    for net, bundle, rows in _cases():
        for name, value in bundle.constants.items():
            assert set(rows[name]) == {value}, (net.name, name)


def test_unateness_masks_are_sound():
    for net, bundle, rows in _cases():
        count = 1 << len(net.inputs)
        for name, masks in bundle.unateness.items():
            if masks in (BOTTOM, TOP) or net.is_input(name):
                continue
            pos, neg = masks
            for j in range(len(net.inputs)):
                bit = 1 << j
                pairs = [(a, a | bit) for a in range(count)
                         if not a & bit]
                if not masks[0] & bit and not masks[1] & bit:
                    # Provably independent of PI j.
                    assert all(rows[name][lo] == rows[name][hi]
                               for lo, hi in pairs), (net.name, name, j)
                elif not neg & bit:
                    # Positive unate: monotone non-decreasing in PI j.
                    assert all(rows[name][lo] <= rows[name][hi]
                               for lo, hi in pairs), (net.name, name, j)
                elif not pos & bit:
                    assert all(rows[name][lo] >= rows[name][hi]
                               for lo, hi in pairs), (net.name, name, j)


def test_probability_intervals_bracket_exact_density():
    for net, bundle, rows in _cases():
        count = 1 << len(net.inputs)
        for name, interval in bundle.probability_intervals.items():
            if interval in (BOTTOM, TOP):
                continue
            lo, hi = interval
            density = sum(rows[name]) / count
            assert lo - 1e-9 <= density <= hi + 1e-9, \
                (net.name, name, interval, density)


def test_structural_duplicates_compute_equal_functions():
    groups_seen = 0
    for net, bundle, rows in _cases():
        for group in bundle.duplicate_classes():
            groups_seen += 1
            leader = group[0]
            for member in group[1:]:
                assert rows[member] == rows[leader], (net.name, group)
                assert cones_structurally_equal(net, leader, net,
                                                member)
    # The random stock reuses fanins heavily, so at least some trials
    # must actually exercise the grouping path.
    assert groups_seen > 0


def test_dead_cones_are_unobservable_at_every_po():
    cones_seen = 0
    for net, bundle, _rows in _cases():
        for name in bundle.dead_cones():
            cones_seen += 1
            forced0 = eval_all(net, force={name: 0})
            forced1 = eval_all(net, force={name: 1})
            for po in net.outputs:
                assert forced0[po] == forced1[po], (net.name, name, po)
    assert cones_seen > 0


def test_sdc_cubes_never_fire():
    for net, bundle, rows in _cases():
        count = 1 << len(net.inputs)
        for name, dead in bundle.sdc_cubes().items():
            node = net.nodes[name]
            for idx in dead:
                cube = node.cover.cubes[idx]
                for a in range(count):
                    fanin_values = [rows[f][a] for f in node.fanins]
                    assert not cube_fires(cube, fanin_values), \
                        (net.name, name, idx, a)


def test_unread_fanins_do_not_matter():
    for net, bundle, rows in _cases():
        count = 1 << len(net.inputs)
        for name, positions in bundle.unread_fanins().items():
            node = net.nodes[name]
            for a in range(count):
                fanin_values = [rows[f][a] for f in node.fanins]
                base = eval_cover(node.cover, fanin_values)
                for i in positions:
                    flipped = list(fanin_values)
                    flipped[i] ^= 1
                    assert eval_cover(node.cover, flipped) == base


def test_cover_implies_is_a_proof():
    rng = random.Random(99)
    proofs = 0
    for _ in range(200):
        n = rng.randint(1, 4)
        a = Cover.from_strings(sorted({
            "".join(rng.choice("01-") for _ in range(n))
            for _ in range(rng.randint(1, 3))}))
        b = Cover.from_strings(sorted({
            "".join(rng.choice("01-") for _ in range(n))
            for _ in range(rng.randint(1, 3))}))
        verdict = cover_implies(a, b)
        if verdict is None:
            continue
        assert verdict is True  # the helper never refutes
        proofs += 1
        for bits in range(1 << n):
            values = [(bits >> i) & 1 for i in range(n)]
            assert eval_cover(a, values) <= eval_cover(b, values)
    assert proofs > 20


def test_cover_implies_decides_dropped_cube_shapes():
    full = Cover.from_strings(["1-", "-1"])
    dropped = Cover.from_strings(["11"])
    assert cover_implies(dropped, full) is True
    assert cover_implies(Cover.zero(2), full) is True
    assert cover_implies(full, dropped) is None
