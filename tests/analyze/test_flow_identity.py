"""The static rung is behavior-neutral and visibly exercised.

Acceptance property from ISSUE: every flow must produce an identical
``CedFlowResult`` summary with static discharge on and off — the rung
changes where proofs come from, never what gets synthesized.  The
benchmarks assert this on all nine circuits; here the same property is
pinned cheaply on the bundled circuits, including a forced ``sim``
checker run, which exercises the wrapped-statistical-checker argument
from iterative.py (a discharged implication has no violating vector,
and a static refutation is violated on every vector, so skipping the
query cannot change the simulator's answer).
"""

import pytest

from repro.approx import ApproxConfig
from repro.bench.suite import load_benchmark, tiny_benchmark
from repro.ced.flow import run_ced_flow
from repro.flow import AnalysisContext

FLOW_KW = dict(reliability_words=1, coverage_words=1, seed=2008)


def _flow(circuit, config):
    network = tiny_benchmark() if circuit == "tiny" \
        else load_benchmark(circuit)
    return run_ced_flow(network, config=config,
                        ctx=AnalysisContext(enabled=False), **FLOW_KW)


@pytest.mark.parametrize("circuit,check", [
    ("tiny", "auto"),
    ("tiny", "sim"),
    ("cmb", "auto"),
])
def test_flow_summary_identical_with_static_discharge(circuit, check):
    on = _flow(circuit, ApproxConfig(seed=2008, check=check,
                                     static_discharge=True))
    off = _flow(circuit, ApproxConfig(seed=2008, check=check,
                                      static_discharge=False))
    assert on.summary() == off.summary()

    totals = on.trace.cache_totals()
    assert "static" in totals, "static rung left no trace counters"
    attempts = totals["static"]["hits"] + totals["static"]["misses"]
    assert attempts > 0
    # The rung off: no static counters may appear at all.
    off_static = off.trace.cache_totals().get("static", {})
    assert off_static.get("hits", 0) == 0
