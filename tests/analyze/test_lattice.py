"""Lattice laws and the relation algebra of the analyze package."""

import pytest

from repro.analyze.lattice import (BOTTOM, REL_EQ, REL_GE, REL_LE,
                                   REL_TOP, TOP, BitsetPairLattice,
                                   FlatLattice, IntervalLattice,
                                   RelationLattice, compose_relations,
                                   flip_relation)

SAMPLES = {
    "flat": (FlatLattice(), [BOTTOM, 0, 1, "h", TOP]),
    "interval": (IntervalLattice(),
                 [BOTTOM, (0.0, 0.0), (0.25, 0.5), (0.5, 0.5),
                  (0.0, 1.0)]),
    "bitset": (BitsetPairLattice(3),
               [(0, 0), (1, 0), (0, 5), (3, 4), (7, 7)]),
    "relation": (RelationLattice(),
                 [BOTTOM, REL_EQ, REL_LE, REL_GE, REL_TOP]),
}


@pytest.mark.parametrize("name", sorted(SAMPLES))
def test_join_semilattice_laws(name):
    lattice, elems = SAMPLES[name]
    for a in elems:
        assert lattice.join(a, a) == a                    # idempotent
        assert lattice.join(lattice.bottom, a) == a       # unit
        assert lattice.join(lattice.top, a) == lattice.top
        for b in elems:
            ab = lattice.join(a, b)
            assert ab == lattice.join(b, a)               # commutative
            assert lattice.leq(a, ab) and lattice.leq(b, ab)
            for c in elems:
                assert lattice.join(ab, c) \
                    == lattice.join(a, lattice.join(b, c))  # associative


@pytest.mark.parametrize("name", sorted(SAMPLES))
def test_leq_agrees_with_join(name):
    lattice, elems = SAMPLES[name]
    for a in elems:
        for b in elems:
            assert lattice.leq(a, b) == (lattice.join(a, b) == b)


def test_flat_distinct_values_join_to_top():
    flat = FlatLattice()
    assert flat.join(0, 1) is TOP
    assert flat.join("a", "a") == "a"


def test_interval_join_is_convex_hull():
    iv = IntervalLattice()
    assert iv.join((0.1, 0.3), (0.5, 0.8)) == (0.1, 0.8)
    assert iv.leq((0.2, 0.3), (0.1, 0.5))
    assert not iv.leq((0.1, 0.5), (0.2, 0.3))


def test_bitset_width_validation():
    with pytest.raises(ValueError):
        BitsetPairLattice(-1)
    assert BitsetPairLattice(0).top == (0, 0)


def test_relation_join_table():
    rel = RelationLattice()
    assert rel.join(REL_EQ, REL_LE) == REL_LE
    assert rel.join(REL_EQ, REL_GE) == REL_GE
    assert rel.join(REL_LE, REL_GE) == REL_TOP
    assert rel.leq(REL_EQ, REL_LE)
    assert not rel.leq(REL_LE, REL_EQ)
    assert not rel.leq(REL_LE, REL_GE)


def test_compose_relations():
    assert compose_relations(REL_EQ, REL_LE) == REL_LE
    assert compose_relations(REL_GE, REL_EQ) == REL_GE
    assert compose_relations(REL_LE, REL_LE) == REL_LE
    assert compose_relations(REL_GE, REL_GE) == REL_GE
    assert compose_relations(REL_LE, REL_GE) == REL_TOP
    assert compose_relations(REL_TOP, REL_EQ) == REL_TOP
    assert compose_relations(REL_EQ, REL_EQ) == REL_EQ


def test_flip_relation():
    assert flip_relation(REL_LE) == REL_GE
    assert flip_relation(REL_GE) == REL_LE
    assert flip_relation(REL_EQ) == REL_EQ
    assert flip_relation(REL_TOP) == REL_TOP
