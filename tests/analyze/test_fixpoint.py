"""Fixpoint engine: full solves, incremental re-solves, cost records."""

import random

import pytest

from repro.analyze.domains import (ConstantAnalysis,
                                   ObservabilityAnalysis,
                                   UnatenessAnalysis)
from repro.analyze.fixpoint import (DataflowAnalysis, FixpointEngine,
                                    FixpointResult)
from repro.cubes import Cover

from .helpers import random_network

ANALYSES = [ConstantAnalysis, UnatenessAnalysis, ObservabilityAnalysis]


def _ids(cls):
    return cls.name


@pytest.mark.parametrize("analysis_cls", ANALYSES, ids=_ids)
def test_incremental_update_matches_full_solve(analysis_cls):
    rng = random.Random(7)
    engine = FixpointEngine()
    for trial in range(20):
        net = random_network(rng, n_inputs=4, n_nodes=7,
                             name=f"inc{trial}")
        analysis = analysis_cls()
        previous = engine.run(net, analysis)
        v0 = net.version
        victim = rng.choice(sorted(net.nodes))
        width = len(net.nodes[victim].fanins)
        net.replace_cover(victim, Cover.from_strings(
            ["".join(rng.choice("01-") for _ in range(width))])
            if width else Cover.zero(0))
        changed = net.changed_signals(v0)
        assert changed is not None and victim in changed
        incremental = engine.update(net, analysis, previous, changed)
        full = engine.run(net, analysis)
        assert incremental.values == full.values, \
            f"{analysis.name} diverged on trial {trial} ({victim})"
        assert incremental.incremental is True
        assert full.incremental is False


def test_unknown_change_scope_forces_full_run():
    rng = random.Random(1)
    net = random_network(rng)
    engine = FixpointEngine()
    analysis = ConstantAnalysis()
    previous = engine.run(net, analysis)
    result = engine.update(net, analysis, previous, None)
    assert result.incremental is False
    assert result.values == previous.values


def test_incremental_does_less_work_on_a_long_chain():
    from repro.cubes import Cube
    from repro.network import Network
    net = Network("chain")
    net.add_input("a")
    prev = "a"
    for i in range(40):
        net.add_node(f"n{i}", [prev], Cover(1, [Cube.from_string("1")]))
        prev = f"n{i}"
    net.add_output(prev)
    engine = FixpointEngine()
    analysis = ConstantAnalysis()
    previous = engine.run(net, analysis)
    v0 = net.version
    # Touch the tail: only the last node's (empty) fanout closure and
    # itself need recomputing, not the whole chain.
    net.replace_cover("n39", Cover.from_strings(["0"]))
    result = engine.update(net, analysis, previous,
                           net.changed_signals(v0))
    assert result.transfers < previous.transfers / 4


def test_cost_record_shape():
    rng = random.Random(2)
    net = random_network(rng)
    result = FixpointEngine().run(net, ConstantAnalysis())
    cost = result.cost()
    assert set(cost) == {"analysis", "transfers", "iterations",
                         "seconds", "incremental"}
    assert cost["analysis"] == "constants"
    assert cost["transfers"] >= len(net.nodes)
    assert cost["seconds"] >= 0.0


def test_unknown_direction_rejected():
    class Sideways(DataflowAnalysis):
        name = "sideways"
        direction = "diagonal"

    rng = random.Random(3)
    with pytest.raises(ValueError, match="direction"):
        FixpointEngine().run(random_network(rng), Sideways())


def test_result_is_a_plain_dataclass():
    result = FixpointResult(analysis="x", values={"a": 1})
    assert result.values["a"] == 1
    assert result.stats == {}
