"""Tests for the bit-parallel simulator."""

import numpy as np
import pytest

from repro.cubes import Cover
from repro.network import Network
from repro.sim import BitSimulator, popcount, signal_probabilities
from repro.synth import LIB_GENERIC, technology_map


def demo_network():
    net = Network("demo")
    for pi in "abc":
        net.add_input(pi)
    net.add_node("t", ["a", "b"], Cover.from_strings(["11"]))
    net.add_node("y", ["t", "c"], Cover.from_strings(["1-", "-0"]))
    net.add_output("y")
    return net


def words_from_bits(bits):
    """Pack a list of 0/1 into a single uint64 word array."""
    value = 0
    for i, bit in enumerate(bits):
        if bit:
            value |= 1 << i
    return np.array([value], dtype=np.uint64)


class TestGoldenSimulation:
    def test_network_matches_reference(self):
        net = demo_network()
        sim = BitSimulator(net)
        rows = []
        for m in range(8):
            rows.append((m & 1, m >> 1 & 1, m >> 2 & 1))
        pi_words = np.stack([
            words_from_bits([r[0] for r in rows]),
            words_from_bits([r[1] for r in rows]),
            words_from_bits([r[2] for r in rows]),
        ])
        values = sim.run(pi_words)
        out = values[sim.output_indices[0]]
        for i, (a, b, c) in enumerate(rows):
            expected = net.evaluate_outputs(
                {"a": a, "b": b, "c": c})["y"]
            assert bool(out[0] >> np.uint64(i) & np.uint64(1)) == expected

    def test_mapped_netlist_matches_network(self):
        net = demo_network()
        mapped = technology_map(net, LIB_GENERIC)
        sim_net = BitSimulator(net)
        sim_map = BitSimulator(mapped)
        rng = np.random.default_rng(7)
        pi = sim_net.random_inputs(rng, 4)
        out_net = sim_net.outputs_of(sim_net.run(pi))
        out_map = sim_map.outputs_of(sim_map.run(pi))
        assert np.array_equal(out_net, out_map)

    def test_wrong_input_shape_rejected(self):
        sim = BitSimulator(demo_network())
        with pytest.raises(ValueError):
            sim.run(np.zeros((2, 1), dtype=np.uint64))

    def test_unsupported_circuit_type(self):
        with pytest.raises(TypeError):
            BitSimulator(42)


class TestFaultInjection:
    def test_stuck_at_changes_outputs(self):
        net = demo_network()
        sim = BitSimulator(net)
        # a=1,b=1,c=1 -> t=1 -> y=1.  Stuck t@0 makes y=0.
        pi = np.stack([words_from_bits([1]), words_from_bits([1]),
                       words_from_bits([1])])
        golden = sim.run(pi)
        overlay = sim.run_fault(golden, "t", 0)
        faulty = sim.faulty_outputs(golden, overlay)
        assert not bool(faulty[0][0] & np.uint64(1))

    def test_unexcited_fault_produces_no_change(self):
        net = demo_network()
        sim = BitSimulator(net)
        # a=0 keeps t=0; stuck-at-0 on t is never excited.
        pi = np.stack([words_from_bits([0] * 8), words_from_bits([1] * 8),
                       words_from_bits([0] * 8)])
        golden = sim.run(pi)
        overlay = sim.run_fault(golden, "t", 0)
        faulty = sim.faulty_outputs(golden, overlay)
        assert np.array_equal(faulty, sim.outputs_of(golden))

    def test_fault_on_pi(self):
        net = demo_network()
        sim = BitSimulator(net)
        pi = np.stack([words_from_bits([1]), words_from_bits([1]),
                       words_from_bits([1])])
        golden = sim.run(pi)
        overlay = sim.run_fault(golden, "a", 0)
        faulty = sim.faulty_outputs(golden, overlay)
        # a/sa0 -> t=0 -> y = !c = 0
        assert not bool(faulty[0][0] & np.uint64(1))

    def test_fault_matches_full_resimulation(self):
        net = demo_network()
        mapped = technology_map(net, LIB_GENERIC)
        sim = BitSimulator(mapped)
        rng = np.random.default_rng(3)
        pi = sim.random_inputs(rng, 4)
        golden = sim.run(pi)
        for site in list(mapped.gates)[:10]:
            for stuck in (0, 1):
                overlay = sim.run_fault(golden, site, stuck)
                fast = sim.faulty_outputs(golden, overlay)
                # Reference: brute-force rebuild with the signal forced.
                slow = _forced_run(sim, pi, site, stuck)
                assert np.array_equal(fast, slow), (site, stuck)

    def test_fanout_cone_is_cached(self):
        sim = BitSimulator(demo_network())
        first = sim.fanout_cone("t")
        second = sim.fanout_cone("t")
        assert first == second


def _forced_run(sim, pi_words, site, stuck):
    n_words = pi_words.shape[1]
    forced_value = np.full(n_words, 0xFFFFFFFFFFFFFFFF if stuck else 0,
                           dtype=np.uint64)
    values = np.zeros((len(sim.signals), n_words), dtype=np.uint64)
    values[:sim.num_inputs] = pi_words
    site_idx = sim.index[site]
    if site_idx < sim.num_inputs:
        values[site_idx] = forced_value
    from repro.sim.simulator import _eval_cubes
    for out, cubes in sim.steps:
        if out == site_idx:
            values[out] = forced_value
        else:
            values[out] = _eval_cubes(cubes, values, n_words)
    return values[sim.output_indices]


class TestHelpers:
    def test_popcount(self):
        words = np.array([0b1011, 0], dtype=np.uint64)
        assert popcount(words) == 3

    def test_signal_probabilities(self):
        net = demo_network()
        probs = signal_probabilities(net, n_words=64, seed=1)
        assert probs["a"] == pytest.approx(0.5, abs=0.05)
        assert probs["t"] == pytest.approx(0.25, abs=0.05)
        assert probs["y"] == pytest.approx(0.25 + 0.5 - 0.125, abs=0.05)


class TestExhaustiveInputs:
    def test_small_pattern_set(self):
        from repro.sim import exhaustive_inputs
        rows = exhaustive_inputs(3)
        assert rows.shape == (3, 1)
        for pattern in range(8):
            for i in range(3):
                bit = bool(rows[i][0] >> np.uint64(pattern) & np.uint64(1))
                assert bit == bool(pattern >> i & 1)

    def test_multi_word(self):
        from repro.sim import exhaustive_inputs
        rows = exhaustive_inputs(8)
        assert rows.shape == (8, 4)
        # Pattern 200 lives in word 3 bit 8.
        pattern = 200
        word, bit = divmod(pattern, 64)
        for i in range(8):
            value = bool(rows[i][word] >> np.uint64(bit) & np.uint64(1))
            assert value == bool(pattern >> i & 1)

    def test_exhaustive_matches_reference_eval(self):
        from repro.sim import exhaustive_inputs
        net = demo_network()
        sim = BitSimulator(net)
        rows = exhaustive_inputs(len(net.inputs))
        values = sim.run(rows)
        out = values[sim.output_indices[0]]
        for pattern in range(8):
            values_map = {pi: bool(pattern >> i & 1)
                          for i, pi in enumerate(net.inputs)}
            expected = net.evaluate_outputs(values_map)["y"]
            got = bool(out[pattern // 64] >> np.uint64(pattern % 64)
                       & np.uint64(1))
            assert got == expected

    def test_bounds(self):
        from repro.sim import exhaustive_inputs
        with pytest.raises(ValueError):
            exhaustive_inputs(30)
        assert exhaustive_inputs(0).shape == (0, 1)
