"""Tests for the transition (delay) fault model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cubes import Cover
from repro.network import Network
from repro.sim import (BitSimulator, TransitionFault, late_value,
                       run_transition_fault, transition_fault_list)


def buffer_chain():
    net = Network("chain")
    net.add_input("a")
    net.add_node("b1", ["a"], Cover.from_strings(["1"]))
    net.add_node("b2", ["b1"], Cover.from_strings(["1"]))
    net.add_output("b2")
    return net


class TestModel:
    def test_fault_validation(self):
        with pytest.raises(ValueError):
            TransitionFault("x", 2)

    def test_str(self):
        assert str(TransitionFault("g", 1)) == "g/str"
        assert str(TransitionFault("g", 0)) == "g/stf"

    def test_fault_list(self):
        faults = transition_fault_list(buffer_chain())
        assert len(faults) == 4  # two gates x rise/fall

    def test_fault_list_restricted(self):
        faults = transition_fault_list(buffer_chain(), signals=["b1"])
        assert {f.signal for f in faults} == {"b1"}


class TestLateValue:
    def test_slow_to_rise_blocks_rising_bits(self):
        first = np.array([0b0011], dtype=np.uint64)
        second = np.array([0b0101], dtype=np.uint64)
        # Bit 2 rises (0->1): blocked.  Bit 1 falls: unaffected.
        late = late_value(first, second, slow_to=1)
        assert late[0] == 0b0001

    def test_slow_to_fall_blocks_falling_bits(self):
        first = np.array([0b0011], dtype=np.uint64)
        second = np.array([0b0101], dtype=np.uint64)
        # Bit 1 falls (1->0): stays 1.
        late = late_value(first, second, slow_to=0)
        assert late[0] == 0b0111

    @settings(max_examples=50)
    @given(st.integers(0, 2 ** 16 - 1), st.integers(0, 2 ** 16 - 1),
           st.sampled_from([0, 1]))
    def test_late_value_semantics(self, v1, v2, slow_to):
        first = np.array([v1], dtype=np.uint64)
        second = np.array([v2], dtype=np.uint64)
        late = int(late_value(first, second, slow_to)[0])
        for bit in range(16):
            b1 = v1 >> bit & 1
            b2 = v2 >> bit & 1
            expected = b1 if (b1 != b2 and b2 == slow_to) else b2
            assert late >> bit & 1 == expected


class TestRunTransitionFault:
    def test_delayed_rise_propagates(self):
        net = buffer_chain()
        sim = BitSimulator(net)
        first = sim.run(np.array([[0]], dtype=np.uint64))
        second = sim.run(np.array([[1]], dtype=np.uint64))
        overlay = run_transition_fault(sim, first, second,
                                       TransitionFault("b1", 1))
        out = sim.faulty_outputs(second, overlay)
        assert out[0][0] == 0  # rise blocked, output still low

    def test_wrong_direction_has_no_effect(self):
        net = buffer_chain()
        sim = BitSimulator(net)
        first = sim.run(np.array([[0]], dtype=np.uint64))
        second = sim.run(np.array([[1]], dtype=np.uint64))
        overlay = run_transition_fault(sim, first, second,
                                       TransitionFault("b1", 0))
        out = sim.faulty_outputs(second, overlay)
        assert out[0][0] == np.uint64(0xFFFFFFFFFFFFFFFF) & np.uint64(1) \
            or bool(out[0][0] & np.uint64(1))

    def test_no_transition_no_fault(self):
        net = buffer_chain()
        sim = BitSimulator(net)
        same = sim.run(np.array([[1]], dtype=np.uint64))
        overlay = run_transition_fault(sim, same, same,
                                       TransitionFault("b1", 1))
        out = sim.faulty_outputs(same, overlay)
        assert np.array_equal(out, sim.outputs_of(same))
