"""Equivalence tests for the compiled simulation tape.

The compiled engine must be bit-identical to the seed interpreter
(`run_interpreted`) on every circuit of the generator suite, under both
random and exhaustive inputs, and the batched fault engine must agree
with the overlay-based cone propagation fault by fault.
"""

import numpy as np
import pytest

from repro.bench.suite import (TABLE1_CONE_SPECS, TABLE2_SPECS,
                               load_benchmark, tiny_benchmark)
from repro.sim import (BitSimulator, clear_simulator_cache,
                       exhaustive_inputs, fault_list, get_simulator,
                       run_campaign)
from repro.sim.simulator import (_popcount_unpackbits, bit_count,
                                 popcount)
from repro.synth import quick_map

TABLE2_NAMES = sorted(TABLE2_SPECS)
TABLE1_NAMES = sorted(TABLE1_CONE_SPECS)


class TestTapeMatchesInterpreter:
    @pytest.mark.parametrize("name", TABLE2_NAMES)
    def test_table2_random(self, name):
        net = load_benchmark(name, table=2)
        sim = BitSimulator(net)
        rng = np.random.default_rng(11)
        pi = sim.random_inputs(rng, 4)
        assert np.array_equal(sim.run(pi), sim.run_interpreted(pi))

    @pytest.mark.parametrize("name", TABLE1_NAMES)
    def test_table1_cones_random(self, name):
        net = load_benchmark(name, table=1)
        sim = BitSimulator(net)
        rng = np.random.default_rng(13)
        pi = sim.random_inputs(rng, 4)
        assert np.array_equal(sim.run(pi), sim.run_interpreted(pi))

    @pytest.mark.parametrize("name", ["cmb", "cordic", "term1"])
    def test_mapped_random(self, name):
        mapped = quick_map(load_benchmark(name, table=2))
        sim = BitSimulator(mapped)
        rng = np.random.default_rng(17)
        pi = sim.random_inputs(rng, 4)
        assert np.array_equal(sim.run(pi), sim.run_interpreted(pi))

    def test_tiny_exhaustive(self):
        net = tiny_benchmark()
        sim = BitSimulator(net)
        pi = exhaustive_inputs(len(net.inputs))
        assert np.array_equal(sim.run(pi), sim.run_interpreted(pi))

    def test_cmb_exhaustive(self):
        net = load_benchmark("cmb", table=2)
        sim = BitSimulator(net)
        pi = exhaustive_inputs(len(net.inputs))
        assert np.array_equal(sim.run(pi), sim.run_interpreted(pi))

    def test_constant_covers(self):
        from repro.cubes import Cover
        from repro.network import Network
        net = Network("consts")
        net.add_input("a")
        net.add_node("zero", ["a"], Cover(1))          # empty cover: 0
        net.add_node("one", ["a"], Cover.from_strings(["-"]))  # tautology
        net.add_node("y", ["a", "zero", "one"],
                     Cover.from_strings(["1-1", "-1-"]))
        net.add_output("y")
        sim = BitSimulator(net)
        pi = exhaustive_inputs(1)
        assert np.array_equal(sim.run(pi), sim.run_interpreted(pi))


class TestBatchedMatchesOverlay:
    @pytest.mark.parametrize("name", ["cmb", "cordic"])
    def test_stuck_batch_bit_identical(self, name):
        mapped = quick_map(load_benchmark(name, table=2))
        sim = BitSimulator(mapped)
        rng = np.random.default_rng(23)
        golden = sim.run(sim.random_inputs(rng, 4))
        faults = fault_list(mapped)
        scratch = sim.run_stuck_batch(golden, faults)
        for lane, fault in enumerate(faults):
            overlay = sim.run_fault(golden, fault.signal, fault.stuck)
            reference = golden.copy()
            for idx, row in overlay.items():
                reference[idx] = row
            assert np.array_equal(scratch[:, lane, :], reference), fault

    def test_forced_batch_toggle(self):
        mapped = quick_map(tiny_benchmark())
        sim = BitSimulator(mapped)
        rng = np.random.default_rng(29)
        golden = sim.run(sim.random_inputs(rng, 4))
        rows = np.arange(len(sim.signals), dtype=np.intp)
        scratch = sim.run_forced_batch(golden, rows, ~golden)
        for lane, name in enumerate(sim.signals):
            overlay = sim.run_toggle(golden, name)
            reference = golden.copy()
            for idx, row in overlay.items():
                reference[idx] = row
            assert np.array_equal(scratch[:, lane, :], reference), name

    def test_empty_batch(self):
        sim = BitSimulator(tiny_benchmark())
        rng = np.random.default_rng(1)
        golden = sim.run(sim.random_inputs(rng, 2))
        scratch = sim.run_forced_batch(
            golden, np.zeros(0, dtype=np.intp),
            np.zeros((0, 2), dtype=np.uint64))
        assert scratch.shape == (len(sim.signals), 0, 2)


class TestCampaignModes:
    def test_per_fault_mode_matches_seed_loop(self):
        """The per-fault mode reproduces the seed engine exactly."""
        mapped = quick_map(tiny_benchmark())
        sim = BitSimulator(mapped)
        faults = fault_list(mapped)
        rng = np.random.default_rng(2008)
        error_runs = 0
        up = {po: 0 for po in sim.output_names}
        down = {po: 0 for po in sim.output_names}
        for fault in faults:
            pi = sim.random_inputs(rng, 4)
            golden = sim.run(pi)
            overlay = sim.run_fault(golden, fault.signal, fault.stuck)
            diff = sim.outputs_of(golden) ^ sim.faulty_outputs(golden,
                                                               overlay)
            if diff.any():
                error_runs += popcount(np.bitwise_or.reduce(diff,
                                                            axis=0))
                for po, g_row, d_row in zip(sim.output_names,
                                            sim.outputs_of(golden),
                                            diff):
                    up[po] += popcount(d_row & ~g_row)
                    down[po] += popcount(d_row & g_row)
        report = run_campaign(mapped, n_words=4, seed=2008,
                              vector_mode="per-fault")
        assert report.error_runs == error_runs
        for po in sim.output_names:
            assert report.per_output[po].zero_to_one == up[po]
            assert report.per_output[po].one_to_zero == down[po]

    @pytest.mark.parametrize("name", ["cmb", "cordic"])
    def test_shared_and_per_fault_agree_on_directions(self, name):
        """Shared-golden campaigns find the same dominant directions."""
        mapped = quick_map(load_benchmark(name, table=2))
        shared = run_campaign(mapped, n_words=16, seed=3,
                              vector_mode="shared")
        per_fault = run_campaign(mapped, n_words=16, seed=3,
                                 vector_mode="per-fault")
        assert shared.runs == per_fault.runs
        for po in shared.per_output:
            assert (shared.per_output[po].dominant_direction
                    == per_fault.per_output[po].dominant_direction), po
        assert shared.error_rate == pytest.approx(per_fault.error_rate,
                                                  rel=0.15)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(tiny_benchmark(), n_words=1,
                         vector_mode="bogus")


class TestPopcount:
    def test_matches_unpackbits_oracle(self):
        rng = np.random.default_rng(31)
        for shape in [(1,), (7,), (3, 5), (2, 3, 4)]:
            words = rng.integers(0, 1 << 64, size=shape, dtype=np.uint64)
            assert popcount(words) == _popcount_unpackbits(words)

    def test_lut_fallback_matches(self, monkeypatch):
        import repro.sim.simulator as simmod
        monkeypatch.setattr(simmod, "_HAS_BITWISE_COUNT", False)
        rng = np.random.default_rng(37)
        words = rng.integers(0, 1 << 64, size=(4, 9), dtype=np.uint64)
        assert popcount(words) == _popcount_unpackbits(words)
        counts = bit_count(words)
        assert counts.shape == words.shape

    def test_edge_values(self):
        words = np.array([0, 0xFFFFFFFFFFFFFFFF, 1 << 63],
                         dtype=np.uint64)
        assert popcount(words) == 0 + 64 + 1
        assert popcount(np.zeros(0, dtype=np.uint64)) == 0

    def test_noncontiguous_input(self):
        rng = np.random.default_rng(41)
        words = rng.integers(0, 1 << 64, size=(6, 6), dtype=np.uint64)
        view = words[::2, 1::2]
        assert popcount(view) == _popcount_unpackbits(
            np.ascontiguousarray(view))


class TestSimulatorCache:
    def test_same_object_reused(self):
        clear_simulator_cache()
        net = tiny_benchmark()
        assert get_simulator(net) is get_simulator(net)

    def test_distinct_circuits_distinct_sims(self):
        clear_simulator_cache()
        assert get_simulator(tiny_benchmark(1)) is not \
            get_simulator(tiny_benchmark(2))

    def test_mutation_invalidates(self):
        from repro.cubes import Cover
        clear_simulator_cache()
        net = tiny_benchmark()
        before = get_simulator(net)
        pi = net.inputs[0]
        net.add_node("extra_gate", [pi], Cover.from_strings(["0"]))
        net.add_output("extra_gate")
        after = get_simulator(net)
        assert after is not before
        assert "extra_gate" in after.index

    def test_clear(self):
        net = tiny_benchmark()
        first = get_simulator(net)
        clear_simulator_cache()
        assert get_simulator(net) is not first
