"""Tests for fault lists, campaigns, and power estimation."""

import pytest

from repro.cubes import Cover
from repro.network import Network
from repro.sim import (Fault, OutputErrorStats, fault_list, power_overhead,
                       run_campaign, switching_activity)
from repro.synth import LIB_GENERIC, technology_map


def and_network():
    net = Network("andnet")
    for pi in "ab":
        net.add_input(pi)
    net.add_node("y", ["a", "b"], Cover.from_strings(["11"]))
    net.add_output("y")
    return net


class TestFaultModel:
    def test_fault_validation(self):
        with pytest.raises(ValueError):
            Fault("x", 2)

    def test_fault_str(self):
        assert str(Fault("g1", 0)) == "g1/sa0"

    def test_fault_list_network(self):
        faults = fault_list(and_network())
        assert len(faults) == 2  # one node, sa0 + sa1

    def test_fault_list_with_inputs(self):
        faults = fault_list(and_network(), include_inputs=True)
        assert len(faults) == 6

    def test_fault_list_restricted(self):
        faults = fault_list(and_network(), signals=["y"])
        assert {f.signal for f in faults} == {"y"}

    def test_fault_list_mapped(self):
        mapped = technology_map(and_network(), LIB_GENERIC)
        faults = fault_list(mapped)
        assert len(faults) == 2 * mapped.gate_count


class TestCampaign:
    def test_and_gate_error_directions(self):
        """y = a&b: golden 1 w.p. 1/4.  sa0 makes 1->0 errors (1/4 of
        vectors); sa1 makes 0->1 errors (3/4 of vectors)."""
        report = run_campaign(and_network(), n_words=64, seed=5)
        stats = report.per_output["y"]
        assert stats.one_to_zero / report.runs == pytest.approx(
            0.25 / 2, abs=0.02)
        assert stats.zero_to_one / report.runs == pytest.approx(
            0.75 / 2, abs=0.02)
        assert stats.dominant_direction == "0->1"
        assert 0.5 <= stats.skew <= 1.0

    def test_error_rate_bounds(self):
        report = run_campaign(and_network(), n_words=16, seed=1)
        assert 0.0 < report.error_rate < 1.0

    def test_per_fault_tracking(self):
        report = run_campaign(and_network(), n_words=16, seed=1,
                              track_per_fault=True)
        assert set(report.per_fault_errors) == set(fault_list(and_network()))
        assert all(v >= 0 for v in report.per_fault_errors.values())

    def test_restricted_faults(self):
        mapped = technology_map(and_network(), LIB_GENERIC)
        site = next(iter(mapped.gates))
        report = run_campaign(mapped, n_words=4,
                              faults=[Fault(site, 0), Fault(site, 1)])
        assert report.runs == 2 * 4 * 64

    def test_deterministic_given_seed(self):
        r1 = run_campaign(and_network(), n_words=8, seed=42)
        r2 = run_campaign(and_network(), n_words=8, seed=42)
        assert r1.error_runs == r2.error_runs

    def test_output_stats_dataclass(self):
        stats = OutputErrorStats(zero_to_one=3, one_to_zero=1)
        assert stats.total == 4
        assert stats.dominant_direction == "0->1"
        assert stats.skew == pytest.approx(0.75)

    def test_empty_stats_skew(self):
        assert OutputErrorStats().skew == 1.0


class TestPower:
    def test_activity_of_inverter_chain(self):
        net = Network()
        net.add_input("a")
        prev = "a"
        for i in range(4):
            name = f"n{i}"
            net.add_node(name, [prev], Cover.from_strings(["0"]))
            prev = name
        net.add_output(prev)
        activity = switching_activity(net, n_words=64, seed=2)
        # Each inverter toggles with probability 1/2 per transition.
        assert activity == pytest.approx(4 * 0.5, abs=0.2)

    def test_weighted_activity_mapped(self):
        mapped = technology_map(and_network(), LIB_GENERIC)
        plain = switching_activity(mapped, n_words=32, seed=3)
        weighted = switching_activity(mapped, n_words=32, seed=3,
                                      weighted=True)
        assert plain > 0 and weighted > 0

    def test_power_overhead(self):
        assert power_overhead(10.0, 13.0) == pytest.approx(30.0)
        assert power_overhead(0.0, 5.0) == 0.0
