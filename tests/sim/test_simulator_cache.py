"""Regression tests for the version-aware ``get_simulator`` cache.

The original cache keyed entries on gate/IO *counts* only, so an
in-place rewrite that kept the size unchanged (exactly what the repair
loop's cover replacement does) served a stale compiled tape.  These
tests pin the fixed behavior: any structural mutation recompiles.
"""

import numpy as np

from repro.cubes import Cover, Cube
from repro.network import Network
from repro.sim import (clear_simulator_cache, get_simulator,
                       simulator_cache_stats)
from repro.synth import QUICK_SCRIPT


def _net() -> Network:
    net = Network("c")
    net.add_input("a")
    net.add_input("b")
    net.add_node("f", ["a", "b"], Cover(2, [Cube.from_string("11")]))
    net.add_output("f")
    return net


def _truth_row(net: Network) -> list[int]:
    sim = get_simulator(net)
    pi = np.zeros((2, 1), dtype=np.uint64)
    pi[0, 0] = 0b1010          # a
    pi[1, 0] = 0b1100          # b
    out = sim.run(pi)[sim.index["f"], 0]
    return [(int(out) >> i) & 1 for i in range(4)]


def test_mutate_then_simulate_is_fresh():
    net = _net()
    assert _truth_row(net) == [0, 0, 0, 1]          # AND
    # Same node count, same fanins — only the cover changes.  The old
    # size-keyed cache returned the stale AND tape here.
    net.replace_cover("f", Cover(2, [Cube.from_string("1-"),
                                     Cube.from_string("-1")]))
    assert _truth_row(net) == [0, 1, 1, 1]          # OR


def test_same_version_hits_cache():
    clear_simulator_cache()
    net = _net()
    before = simulator_cache_stats()
    sim1 = get_simulator(net)
    sim2 = get_simulator(net)
    after = simulator_cache_stats()
    assert sim1 is sim2
    assert after["hits"] - before["hits"] == 1
    assert after["misses"] - before["misses"] == 1


def test_mutation_is_a_miss_not_a_stale_hit():
    clear_simulator_cache()
    net = _net()
    sim1 = get_simulator(net)
    net.replace_cover("f", Cover(2, [Cube.from_string("0-")]))
    before = simulator_cache_stats()
    sim2 = get_simulator(net)
    after = simulator_cache_stats()
    assert sim2 is not sim1
    assert after["misses"] - before["misses"] == 1
    assert after["hits"] == before["hits"]


def test_mapped_netlist_mutation_recompiles():
    netlist = QUICK_SCRIPT.run(_net())
    sim1 = get_simulator(netlist)
    netlist.add_input("x")
    netlist.add_gate("g_x", "INV", ["x"])
    sim2 = get_simulator(netlist)
    assert sim2 is not sim1
    assert "g_x" in sim2.index
