"""repro.lint: certificate-emitting static verifier and circuit linter.

Three rule layers over the approximation/CED flow:

1. **structural** (``net.*``) — graph and SOP well-formedness of any
   :class:`~repro.network.Network`;
2. **approximation semantics** (``pair.*``) — the Sec 2.1 type and
   cube-selection invariants over an original/approximate pair, plus
   the per-PO implication of Sec 2.2 re-proved by BDD or SAT;
3. **flow** (``flow.*``) — non-intrusiveness and checker/TRC-tree
   well-formedness of an assembled CED circuit (Sec 3).

Proved implications are emitted as self-contained, offline-checkable
certificates (:mod:`repro.lint.certificates`).
"""

from .certificates import (CERT_SCHEMA_VERSION, build_certificate,
                           certificate_digest, check_certificate,
                           validate_certificate, write_certificates)
from .diagnostics import Diagnostic, LintReport, Severity
from .engine import (LINT_LEVELS, FlowContext, LintError, NetworkContext,
                     PairContext, lint_approx_result, lint_assembly,
                     lint_flow, lint_network, lint_pair)
from .registry import LintRule, all_rules, get_rule, rule, rules_for
from .semantics import PairSemantics, ProofResult

__all__ = [
    "CERT_SCHEMA_VERSION",
    "Diagnostic",
    "FlowContext",
    "LINT_LEVELS",
    "LintError",
    "LintReport",
    "LintRule",
    "NetworkContext",
    "PairContext",
    "PairSemantics",
    "ProofResult",
    "Severity",
    "all_rules",
    "build_certificate",
    "certificate_digest",
    "check_certificate",
    "get_rule",
    "lint_approx_result",
    "lint_assembly",
    "lint_flow",
    "lint_network",
    "lint_pair",
    "rule",
    "rules_for",
    "validate_certificate",
    "write_certificates",
]
