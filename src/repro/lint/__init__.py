"""repro.lint: certificate-emitting static verifier and circuit linter.

Three rule layers over the approximation/CED flow:

1. **structural** (``net.*``) — graph and SOP well-formedness of any
   :class:`~repro.network.Network`;
2. **approximation semantics** (``pair.*``) — the Sec 2.1 type and
   cube-selection invariants over an original/approximate pair, plus
   the per-PO implication of Sec 2.2 re-proved by BDD or SAT;
3. **flow** (``flow.*``) — non-intrusiveness and checker/TRC-tree
   well-formedness of an assembled CED circuit (Sec 3).

Layers 1 and 2 are augmented by dataflow-backed rules
(:mod:`repro.lint.analyzerules`) that consume :mod:`repro.analyze`
fixpoint solutions: provably-constant nodes, SDC-dead cubes,
structurally duplicate cones, unobservable logic, and statically
discharged (or refuted) implications.

Proved implications are emitted as self-contained, offline-checkable
certificates (:mod:`repro.lint.certificates`), and whole reports
export as SARIF 2.1.0 with stable fingerprints for CI baselines
(:mod:`repro.lint.sarif`).
"""

from .certificates import (CERT_SCHEMA_VERSION, ERROR_CERT_KIND,
                           build_certificate, build_error_certificate,
                           certificate_digest, check_certificate,
                           check_error_certificate,
                           validate_certificate,
                           validate_error_certificate,
                           write_certificates)
from .diagnostics import Diagnostic, LintReport, Severity
from .engine import (LINT_LEVELS, FlowContext, LintError, NetworkContext,
                     PairContext, lint_approx_result, lint_assembly,
                     lint_flow, lint_network, lint_pair)
from .registry import LintRule, all_rules, get_rule, rule, rules_for
from .sarif import (FINGERPRINT_KEY, diagnostic_fingerprint,
                    finding_fingerprint, load_baseline, new_results,
                    to_sarif, validate_sarif, write_sarif)
from .semantics import PairSemantics, ProofResult

__all__ = [
    "CERT_SCHEMA_VERSION",
    "ERROR_CERT_KIND",
    "Diagnostic",
    "FINGERPRINT_KEY",
    "FlowContext",
    "LINT_LEVELS",
    "LintError",
    "LintReport",
    "LintRule",
    "NetworkContext",
    "PairContext",
    "PairSemantics",
    "ProofResult",
    "Severity",
    "all_rules",
    "build_certificate",
    "build_error_certificate",
    "certificate_digest",
    "check_certificate",
    "check_error_certificate",
    "diagnostic_fingerprint",
    "finding_fingerprint",
    "get_rule",
    "load_baseline",
    "new_results",
    "lint_approx_result",
    "lint_assembly",
    "lint_flow",
    "lint_network",
    "lint_pair",
    "rule",
    "rules_for",
    "to_sarif",
    "validate_certificate",
    "validate_error_certificate",
    "validate_sarif",
    "write_certificates",
    "write_sarif",
]
