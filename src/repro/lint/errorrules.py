"""Error-bound lint rules for error-constrained synthesis results.

The ``pair.error-bound`` family is the error-constrained counterpart
of ``pair.po-implication``: when a pair carries an
:class:`~repro.approx.config.ErrorSpec` (engine ``resub`` and
friends), the per-PO implication is *expected* to fail — the contract
is instead that the measured error stays within the configured bound.
The rules re-measure the metric from scratch with the two-tier
evaluator and cross-check the synthesis run's own claims; a sound,
satisfied re-measurement is what the error certificate attests.
"""

from __future__ import annotations

from .diagnostics import Severity
from .registry import rule


def _spec(ctx):
    """The pair's ErrorSpec, or None for implication-exact pairs."""
    return getattr(ctx, "error_spec", None)


def _evaluate(ctx):
    """Re-measure once per lint run; cached on the context."""
    if getattr(ctx, "_error_evaluation", None) is None:
        from repro.approx.metrics import evaluate_error
        ctx._error_evaluation = evaluate_error(
            ctx.original, ctx.approx, _spec(ctx),
            bdd_node_budget=ctx.bdd_node_budget,
            ctx=ctx.ctx)
    return ctx._error_evaluation


@rule("pair.error-bound", "pair", Severity.ERROR,
      "measured error of an error-constrained pair is within its bound")
def error_bound(ctx, emit):
    spec = _spec(ctx)
    if spec is None:
        return
    if set(ctx.approx.inputs) != set(ctx.original.inputs) \
            or list(ctx.approx.outputs) != list(ctx.original.outputs):
        return  # pair.io-mismatch already fired
    evaluation = _evaluate(ctx)
    if evaluation.within:
        if not evaluation.sound:
            emit(f"{spec.metric} bound {spec.bound:g} met only "
                 f"statistically (method {evaluation.method}, "
                 f"confidence {evaluation.confidence:g})",
                 severity=Severity.INFO,
                 data={"value": evaluation.value})
        return
    kind = "value" if evaluation.exact else "upper bound"
    # A statistical excess is only a warning — the run never claimed
    # more; a sound excess refutes the engine's bound guarantee.
    severity = Severity.ERROR if evaluation.sound else Severity.WARNING
    emit(f"measured {spec.metric} {kind} {evaluation.value:g} exceeds "
         f"the configured bound {spec.bound:g} "
         f"(method {evaluation.method})",
         severity=severity,
         hint="undo commits or tighten the screening margin; the "
              "engine must return within-budget networks",
         data={"value": evaluation.value, "bound": spec.bound,
               "method": evaluation.method})


@rule("pair.error-claim", "pair", Severity.WARNING,
      "the synthesis run's error report matches the re-measurement")
def error_claim(ctx, emit):
    spec = _spec(ctx)
    report = getattr(ctx, "error_report", None)
    if spec is None or report is None:
        return
    if set(ctx.approx.inputs) != set(ctx.original.inputs) \
            or list(ctx.approx.outputs) != list(ctx.original.outputs):
        return
    if report.get("metric") != spec.metric:
        emit(f"run reported metric {report.get('metric')!r} but the "
             f"spec says {spec.metric!r}")
        return
    evaluation = _evaluate(ctx)
    claimed = report.get("value")
    if claimed is None:
        emit("run's error report carries no value")
        return
    # Same exact tier => same value; bounded/statistical tiers may
    # legitimately differ between runs.
    if evaluation.exact and report.get("exact") \
            and abs(float(claimed) - evaluation.value) > 1e-9:
        emit(f"run claimed exact {spec.metric} {float(claimed):g} but "
             f"re-measurement gives {evaluation.value:g}",
             data={"claimed": claimed, "measured": evaluation.value})
    if report.get("within") is False:
        emit("run admitted exceeding its own error bound",
             severity=Severity.ERROR)
