"""SARIF 2.1.0 emission for lint reports, with fingerprint baselines.

:func:`to_sarif` renders a :class:`~repro.lint.diagnostics.LintReport`
as a SARIF log (the Static Analysis Results Interchange Format, OASIS
standard v2.1.0) so CI systems and code-review UIs can ingest the
findings.  Every result carries a *stable fingerprint* — a content hash
of (rule, circuit, location, message) under ``partialFingerprints`` —
which survives reordering and unrelated edits; :func:`load_baseline`
reads the fingerprints back from a committed SARIF file, and results
matching the baseline are marked ``baselineState: unchanged`` so only
``new`` findings gate a run.

:func:`validate_sarif` is a hand-rolled structural check against the
parts of the 2.1.0 schema this emitter uses (the environment has no
``jsonschema`` package, and the full 10k-line schema would be overkill
for a format we produce ourselves).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .diagnostics import LintReport
from .registry import all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

#: Versioned partialFingerprints key; bump when the hashed fields or
#: the hash recipe change (old baselines then simply stop matching).
FINGERPRINT_KEY = "reproLint/v1"

_LEVELS = {"error": "error", "warning": "warning", "info": "note"}
_VALID_LEVELS = ("none", "note", "warning", "error")


def finding_fingerprint(rule: str, circuit: str, location: str,
                        message: str) -> str:
    """Stable content hash of one finding.

    Deliberately excludes severity (a rule re-classification should not
    re-open baselined findings) and any positional information beyond
    the logical location string.
    """
    body = "|".join(("v1", rule, circuit, location, message))
    return hashlib.sha256(body.encode()).hexdigest()[:32]


def diagnostic_fingerprint(diag) -> str:
    return finding_fingerprint(diag.rule, diag.circuit, diag.location,
                               diag.message)


def to_sarif(report: LintReport,
             baseline: set[str] | None = None) -> dict:
    """Render a lint report as a SARIF 2.1.0 log dict.

    With ``baseline`` (a set of fingerprints from
    :func:`load_baseline`), each result gets a ``baselineState`` of
    ``"unchanged"`` or ``"new"``.
    """
    diagnostics = report.sorted()
    rule_ids = sorted({d.rule for d in diagnostics})
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    titles = {r.rule_id: r.title for r in all_rules()}
    rules = [{
        "id": rule_id,
        "shortDescription": {
            "text": titles.get(rule_id, rule_id)},
    } for rule_id in rule_ids]

    results = []
    for diag in diagnostics:
        result = {
            "ruleId": diag.rule,
            "ruleIndex": rule_index[diag.rule],
            "level": _LEVELS[diag.severity.value],
            "message": {"text": diag.message},
            "locations": [{
                "logicalLocations": [{
                    "fullyQualifiedName": ":".join(
                        p for p in (diag.circuit, diag.location) if p)
                    or diag.rule,
                }],
            }],
            "partialFingerprints": {
                FINGERPRINT_KEY: diagnostic_fingerprint(diag),
            },
        }
        if diag.hint:
            result["message"]["markdown"] = \
                f"{diag.message}\n\n**hint:** {diag.hint}"
        if baseline is not None:
            seen = result["partialFingerprints"][FINGERPRINT_KEY] \
                in baseline
            result["baselineState"] = "unchanged" if seen else "new"
        results.append(result)

    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro.lint",
                    "informationUri":
                        "https://example.invalid/repro-lint",
                    "rules": rules,
                },
            },
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }


def write_sarif(report: LintReport, path: str | Path,
                baseline: set[str] | None = None) -> dict:
    """Write the SARIF log to ``path``; returns the document."""
    doc = to_sarif(report, baseline=baseline)
    Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def load_baseline(path: str | Path) -> set[str]:
    """Fingerprints of every result in a committed SARIF baseline.

    Unreadable or malformed baselines raise — silently treating a
    broken baseline as empty would resurface every suppressed finding
    and fail CI for the wrong reason.
    """
    doc = json.loads(Path(path).read_text())
    problems = validate_sarif(doc)
    if problems:
        raise ValueError(f"invalid SARIF baseline {path}: "
                         f"{problems[0]}")
    fingerprints: set[str] = set()
    for run in doc.get("runs", []):
        for result in run.get("results", []):
            fp = (result.get("partialFingerprints") or {}) \
                .get(FINGERPRINT_KEY)
            if fp:
                fingerprints.add(fp)
    return fingerprints


def new_results(doc: dict) -> list[dict]:
    """Results not suppressed by the baseline the log was built with.

    On a log built without a baseline every result is new.
    """
    out = []
    for run in doc.get("runs", []):
        for result in run.get("results", []):
            if result.get("baselineState", "new") == "new":
                out.append(result)
    return out


def validate_sarif(doc) -> list[str]:
    """Structural problems against SARIF 2.1.0 (empty list = valid).

    Checks the subset of the schema this emitter produces: top-level
    version/runs, tool.driver identity, per-result ruleId/level/message
    shape, ruleIndex consistency with the driver rule table, location
    and fingerprint shapes.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, expected object"]
    if doc.get("version") != SARIF_VERSION:
        errors.append(f"version is {doc.get('version')!r}, expected "
                      f"{SARIF_VERSION!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return errors + ["runs missing, not a list, or empty"]
    for ri, run in enumerate(runs):
        where = f"runs[{ri}]"
        if not isinstance(run, dict):
            errors.append(f"{where} is not an object")
            continue
        driver = (run.get("tool") or {}).get("driver") \
            if isinstance(run.get("tool"), dict) else None
        if not isinstance(driver, dict) \
                or not isinstance(driver.get("name"), str) \
                or not driver["name"]:
            errors.append(f"{where}.tool.driver.name missing")
            rules = []
        else:
            rules = driver.get("rules", [])
            if not isinstance(rules, list):
                errors.append(f"{where}.tool.driver.rules is not "
                              f"a list")
                rules = []
            for i, rule in enumerate(rules):
                if not isinstance(rule, dict) \
                        or not isinstance(rule.get("id"), str):
                    errors.append(f"{where}.tool.driver.rules[{i}]: "
                                  f"missing string id")
        results = run.get("results")
        if not isinstance(results, list):
            errors.append(f"{where}.results missing or not a list")
            continue
        for i, result in enumerate(results):
            rwhere = f"{where}.results[{i}]"
            if not isinstance(result, dict):
                errors.append(f"{rwhere} is not an object")
                continue
            if not isinstance(result.get("ruleId"), str):
                errors.append(f"{rwhere}.ruleId missing")
            if result.get("level") not in _VALID_LEVELS:
                errors.append(f"{rwhere}.level is "
                              f"{result.get('level')!r}, expected one "
                              f"of {_VALID_LEVELS}")
            message = result.get("message")
            if not isinstance(message, dict) \
                    or not isinstance(message.get("text"), str):
                errors.append(f"{rwhere}.message.text missing")
            index = result.get("ruleIndex")
            if index is not None:
                ok = isinstance(index, int) \
                    and 0 <= index < len(rules) \
                    and rules[index].get("id") == result.get("ruleId")
                if not ok:
                    errors.append(f"{rwhere}.ruleIndex does not match "
                                  f"the driver rule table")
            locations = result.get("locations")
            if locations is not None:
                if not isinstance(locations, list):
                    errors.append(f"{rwhere}.locations is not a list")
                else:
                    for j, loc in enumerate(locations):
                        if not isinstance(loc, dict):
                            errors.append(
                                f"{rwhere}.locations[{j}] is not an "
                                f"object")
            fingerprints = result.get("partialFingerprints")
            if fingerprints is not None and (
                    not isinstance(fingerprints, dict)
                    or not all(isinstance(k, str) and isinstance(v, str)
                               for k, v in fingerprints.items())):
                errors.append(f"{rwhere}.partialFingerprints must map "
                              f"strings to strings")
            state = result.get("baselineState")
            if state is not None and state not in (
                    "new", "unchanged", "updated", "absent"):
                errors.append(f"{rwhere}.baselineState is {state!r}")
    return errors
