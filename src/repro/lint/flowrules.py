"""Flow-level lint rules over a complete CED assembly (Sec 3, Fig. 2-3).

Layer 3: the properties that make the assembled circuit a valid
non-intrusive CED scheme — the functional circuit's gates and outputs
are untouched, every output gets a checker of the right polarity, and
the two-rail checker tree consolidates every pair into the error
outputs.
"""

from __future__ import annotations

from .diagnostics import Severity
from .registry import rule


@rule("flow.direction-values", "flow", Severity.ERROR,
      "the assembly records a 0/1 direction for every output")
def direction_values(ctx, emit):
    assembly = ctx.assembly
    for po in assembly.original.outputs:
        direction = assembly.directions.get(po)
        if direction is None:
            emit(f"output {po!r} has no recorded direction",
                 location=f"po:{po}")
        elif direction not in (0, 1):
            emit(f"output {po!r} direction is {direction!r}, not 0/1",
                 location=f"po:{po}")


@rule("flow.fault-sites", "flow", Severity.ERROR,
      "fault sites are exactly the original circuit's gates")
def fault_sites(ctx, emit):
    assembly = ctx.assembly
    sites = set(assembly.fault_sites)
    for site in sorted(sites - set(assembly.netlist.gates)):
        emit(f"fault site {site!r} is not a gate of the CED netlist",
             location=f"gate:{site}")
    for gate in sorted(set(assembly.original.gates) - sites):
        emit(f"original gate {gate!r} is not a fault site",
             location=f"gate:{gate}",
             hint="faults must be injectable at every original gate")


@rule("flow.nonintrusive", "flow", Severity.ERROR,
      "the original cone never reads approximate/checker logic")
def nonintrusive(ctx, emit):
    assembly = ctx.assembly
    if assembly.shared_gates:
        emit(f"logic sharing merged {assembly.shared_gates} gate(s); "
             f"the scheme is intentionally intrusive here",
             severity=Severity.INFO)
        return
    allowed = set(assembly.fault_sites) | set(assembly.netlist.inputs)
    for site in assembly.fault_sites:
        gate = assembly.netlist.gates.get(site)
        if gate is None:
            continue  # flow.fault-sites reports the missing gate
        for fanin in gate.fanins:
            if fanin not in allowed:
                emit(f"original gate {site!r} reads {fanin!r}, which "
                     f"is outside the original cone",
                     location=f"gate:{site}",
                     hint="CED logic must only observe, never drive, "
                          "the functional circuit")


@rule("flow.output-preserved", "flow", Severity.ERROR,
      "functional outputs are driven by the original signals")
def output_preserved(ctx, emit):
    assembly = ctx.assembly
    for po in assembly.original.outputs:
        want = assembly.original.po_signals.get(po)
        got = assembly.netlist.po_signals.get(po)
        if got is None:
            emit(f"functional output {po!r} is missing from the CED "
                 f"netlist", location=f"po:{po}")
        elif got != want:
            emit(f"functional output {po!r} is driven by {got!r} "
                 f"instead of the original signal {want!r}",
                 location=f"po:{po}",
                 hint="non-intrusive CED may not rewire F's outputs")


@rule("flow.checker-missing", "flow", Severity.ERROR,
      "every functional output has a two-rail checker pair")
def checker_missing(ctx, emit):
    assembly = ctx.assembly
    for po in assembly.original.outputs:
        pair = assembly.checker_pairs.get(po)
        if pair is None:
            emit(f"output {po!r} has no checker pair",
                 location=f"po:{po}")
            continue
        for rail in pair:
            if not assembly.netlist.signal_exists(rail):
                emit(f"checker rail {rail!r} for output {po!r} is not "
                     f"a netlist signal", location=f"po:{po}")


@rule("flow.trc-tree", "flow", Severity.ERROR,
      "the TRC tree consolidates every checker pair into __error0/1")
def trc_tree(ctx, emit):
    assembly = ctx.assembly
    netlist = assembly.netlist
    for i, rail in enumerate(assembly.error_pair):
        po_name = f"__error{i}"
        if netlist.po_signals.get(po_name) != rail:
            emit(f"output {po_name!r} is "
                 f"{netlist.po_signals.get(po_name)!r}, expected the "
                 f"error rail {rail!r}", location=f"po:{po_name}")
        if not netlist.signal_exists(rail):
            emit(f"error rail {rail!r} is not a netlist signal",
                 location=f"po:{po_name}")
    # Every checker rail must feed the consolidated pair.
    cone: set[str] = set()
    stack = [r for r in assembly.error_pair if netlist.signal_exists(r)]
    while stack:
        signal = stack.pop()
        if signal in cone:
            continue
        cone.add(signal)
        gate = netlist.gates.get(signal)
        if gate is not None:
            stack.extend(gate.fanins)
    for po, pair in assembly.checker_pairs.items():
        for rail in pair:
            if netlist.signal_exists(rail) and rail not in cone:
                emit(f"checker rail {rail!r} (output {po!r}) does not "
                     f"reach the error outputs",
                     location=f"po:{po}",
                     hint="wire every checker pair into the TRC tree")
