"""The lint-rule registry.

Rules register themselves with the :func:`rule` decorator and are looked
up by scope at run time.  A rule is a function ``fn(ctx, emit)``: it
inspects its context object (``NetworkContext``, ``PairContext`` or
``FlowContext``, see :mod:`repro.lint.engine`) and reports findings
through ``emit(message, ...)``, which fills in the rule's identity and
default severity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .diagnostics import Diagnostic, Severity

SCOPES = ("network", "pair", "flow")


@dataclass(frozen=True)
class LintRule:
    """One registered rule: identity, scope, default severity, body."""

    rule_id: str
    scope: str
    severity: Severity
    title: str
    fn: Callable

    def run(self, ctx, sink: list[Diagnostic]) -> None:
        def emit(message: str, location: str = "",
                 severity: Severity | None = None, hint: str = "",
                 data: dict | None = None, circuit: str = "") -> None:
            sink.append(Diagnostic(
                rule=self.rule_id,
                severity=severity or self.severity,
                message=message,
                circuit=circuit or ctx.circuit,
                location=location,
                hint=hint,
                data=data))
        self.fn(ctx, emit)


_REGISTRY: dict[str, LintRule] = {}


def rule(rule_id: str, scope: str, severity: Severity, title: str):
    """Register a rule function under ``rule_id``."""
    if scope not in SCOPES:
        raise ValueError(f"unknown lint scope {scope!r}")

    def decorate(fn: Callable) -> Callable:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate lint rule id {rule_id!r}")
        _REGISTRY[rule_id] = LintRule(rule_id, scope, severity, title, fn)
        return fn

    return decorate


def rules_for(scope: str) -> list[LintRule]:
    return sorted((r for r in _REGISTRY.values() if r.scope == scope),
                  key=lambda r: r.rule_id)


def all_rules() -> list[LintRule]:
    return sorted(_REGISTRY.values(), key=lambda r: r.rule_id)


def get_rule(rule_id: str) -> LintRule:
    return _REGISTRY[rule_id]
