"""Diagnostic records and reports for the static verifier.

A :class:`Diagnostic` is one finding of one rule: identity (rule id),
severity, a location string precise down to the node or cube, a
human-readable message, and an optional fix hint plus structured data.
A :class:`LintReport` aggregates diagnostics and proof certificates and
renders them as text or JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum


class Severity(Enum):
    """Severity ladder; only ERROR diagnostics fail a lint run."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one lint rule."""

    rule: str                 # e.g. "net.cycle"
    severity: Severity
    message: str
    circuit: str = ""         # which network/netlist the finding is in
    location: str = ""        # "node:n1", "node:n1/cube:2", "po:y", ...
    hint: str = ""            # suggested fix, may be empty
    data: dict | None = None  # structured extras (witness vectors, ...)

    def to_dict(self) -> dict:
        doc = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.circuit:
            doc["circuit"] = self.circuit
        if self.location:
            doc["location"] = self.location
        if self.hint:
            doc["hint"] = self.hint
        if self.data:
            doc["data"] = self.data
        return doc

    def render(self) -> str:
        place = ":".join(p for p in (self.circuit, self.location) if p)
        head = f"{self.severity.value}[{self.rule}]"
        text = f"{head} {place}: {self.message}" if place \
            else f"{head} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class LintReport:
    """All diagnostics (and certificates) of one lint run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    certificates: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was emitted."""
        return not any(d.severity is Severity.ERROR
                       for d in self.diagnostics)

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    def counts(self) -> dict[str, int]:
        out = {"error": 0, "warning": 0, "info": 0}
        for d in self.diagnostics:
            out[d.severity.value] += 1
        return out

    def by_rule(self) -> dict[str, list[Diagnostic]]:
        grouped: dict[str, list[Diagnostic]] = {}
        for d in self.diagnostics:
            grouped.setdefault(d.rule, []).append(d)
        return grouped

    def extend(self, other: "LintReport") -> "LintReport":
        self.diagnostics.extend(other.diagnostics)
        self.certificates.extend(other.certificates)
        return self

    def sorted(self) -> list[Diagnostic]:
        return sorted(self.diagnostics,
                      key=lambda d: (d.severity.rank, d.rule,
                                     d.circuit, d.location, d.message))

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "counts": self.counts(),
            "diagnostics": [d.to_dict() for d in self.sorted()],
            "certificates": self.certificates,
        }

    def render_json(self, **dumps_kwargs) -> str:
        dumps_kwargs.setdefault("indent", 2)
        dumps_kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **dumps_kwargs)

    def render_text(self) -> str:
        lines = [d.render() for d in self.sorted()]
        c = self.counts()
        lines.append(f"{c['error']} error(s), {c['warning']} warning(s), "
                     f"{c['info']} info")
        if self.certificates:
            lines.append(f"{len(self.certificates)} "
                         f"certificate(s) emitted")
        return "\n".join(lines)
