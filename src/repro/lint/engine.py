"""Lint engine: contexts, entry points, and the strict-mode error.

Three entry points, one per scope:

* :func:`lint_network` — structural rules over one network;
* :func:`lint_pair` — structural rules over both networks plus the
  approximation-semantics rules (and per-PO implication proofs with
  optional certificates);
* :func:`lint_flow` — everything above plus the CED assembly rules,
  over a complete :class:`~repro.ced.flow.CedFlowResult`.
"""

from __future__ import annotations

from repro.network import Network

from . import analyzerules as _analyzerules  # noqa: F401 (registers rules)
from . import approxrules as _approxrules    # noqa: F401
from . import errorrules as _errorrules      # noqa: F401
from . import flowrules as _flowrules        # noqa: F401
from . import structural as _structural      # noqa: F401
from .certificates import (build_certificate, build_error_certificate,
                           write_certificates)
from .diagnostics import Diagnostic, LintReport
from .registry import rules_for
from .semantics import PairSemantics, ProofResult

LINT_LEVELS = ("off", "warn", "strict")


class LintError(RuntimeError):
    """Raised by strict-mode guards when error diagnostics exist."""

    def __init__(self, report: LintReport):
        self.report = report
        errors = report.errors()
        rules = sorted({d.rule for d in errors})
        super().__init__(
            f"lint found {len(errors)} error(s) ({', '.join(rules)})")


class NetworkContext:
    """Context for structural rules over one network."""

    def __init__(self, network: Network, circuit: str | None = None):
        self.network = network
        self.circuit = circuit if circuit is not None else network.name
        self._analyses = None

    def analyses(self):
        """Lazy :class:`~repro.analyze.NetworkAnalyses` bundle.

        Built at most once per lint run; the dataflow-backed rules all
        share the same fixpoint solutions.  Returns None for ill-formed
        networks (undefined fanins, combinational cycles) — those are
        the structural rules' findings, and the fixpoint engine needs a
        well-defined DAG to run on at all.
        """
        if self._analyses is None:
            net = self.network
            broken = any(not net.signal_exists(f)
                         for node in net.nodes.values()
                         for f in node.fanins) or self.stuck_nodes()
            if broken:
                return None
            from repro.analyze import NetworkAnalyses
            self._analyses = NetworkAnalyses(net)
        return self._analyses

    def stuck_nodes(self) -> set[str]:
        """Nodes on (or fed only through) a combinational cycle.

        Unlike ``Network.topological_order`` this ignores undefined
        fanins, so missing signals surface as ``net.undefined-fanin``
        rather than masquerading as a cycle.
        """
        net = self.network
        defined = set(net.nodes)
        pending: dict[str, int] = {}
        readers: dict[str, list[str]] = {}
        ready: list[str] = []
        for name, node in net.nodes.items():
            deps = [f for f in node.fanins if f in defined]
            pending[name] = len(deps)
            for dep in deps:
                readers.setdefault(dep, []).append(name)
            if not deps:
                ready.append(name)
        placed = 0
        while ready:
            name = ready.pop()
            placed += 1
            for reader in readers.get(name, ()):
                pending[reader] -= 1
                if pending[reader] == 0:
                    ready.append(reader)
        if placed == len(net.nodes):
            return set()
        return {n for n, count in pending.items() if count > 0}


class PairContext:
    """Context for approximation-semantics rules over a pair."""

    def __init__(self, original: Network, approx: Network,
                 types: dict, directions: dict[str, int],
                 claimed_method: str | None = None,
                 claimed_correct: dict[str, bool] | None = None,
                 circuit: str | None = None,
                 bdd_node_budget: int = 300_000,
                 sat_conflict_budget: int = 200_000,
                 ctx=None, error_spec=None, error_report=None):
        self.original = original
        self.approx = approx
        self.types = types
        self.directions = directions
        self.claimed_method = claimed_method
        self.claimed_correct = claimed_correct or {}
        self.circuit = circuit if circuit is not None else original.name
        self.bdd_node_budget = bdd_node_budget
        self.sat_conflict_budget = sat_conflict_budget
        self.ctx = ctx
        #: ErrorSpec of an error-constrained pair (engine "resub" and
        #: friends): switches the ERROR-severity contract from
        #: pair.po-implication to the pair.error-bound family.
        self.error_spec = error_spec
        #: The synthesis run's own error report (ApproxResult
        #: .error_report), cross-checked by pair.error-claim.
        self.error_report = error_report
        #: The lint run's own re-measurement (ErrorEvaluation), filled
        #: by the error-bound rules; feeds certificate emission.
        self._error_evaluation = None
        self._static = None
        self._semantics: PairSemantics | None = None
        self._proof_cache: dict[tuple[str, int], ProofResult] = {}
        #: (po, direction, proof) triples for certificate emission.
        self.proofs: list[tuple[str, int, ProofResult]] = []

    def semantics(self) -> PairSemantics:
        if self._semantics is None:
            self._semantics = PairSemantics(
                self.original, self.approx,
                bdd_node_budget=self.bdd_node_budget,
                sat_conflict_budget=self.sat_conflict_budget,
                ctx=self.ctx)
        return self._semantics

    def static(self):
        """Lazy :class:`~repro.analyze.StaticDischarger` for the pair.

        Returns None when the networks do not share a primary-input
        space (the analyses compare signals by name).
        """
        if self._static is None:
            if set(self.original.inputs) != set(self.approx.inputs):
                return None
            from repro.analyze import StaticDischarger
            if self.ctx is not None:
                self._static = StaticDischarger(
                    self.original, self.approx,
                    self.ctx.analyses(self.original),
                    self.ctx.analyses(self.approx))
            else:
                self._static = StaticDischarger(self.original,
                                                self.approx)
        return self._static

    def prove(self, po: str, direction: int) -> ProofResult:
        key = (po, direction)
        if key not in self._proof_cache:
            proof = self.semantics().implication(po, direction)
            self._proof_cache[key] = proof
            self.proofs.append((po, direction, proof))
        return self._proof_cache[key]


class FlowContext:
    """Context for CED-assembly rules."""

    def __init__(self, assembly, circuit: str | None = None):
        self.assembly = assembly
        self.circuit = circuit if circuit is not None \
            else assembly.original.name


def _run_scope(scope: str, ctx) -> list[Diagnostic]:
    sink: list[Diagnostic] = []
    for lint_rule in rules_for(scope):
        lint_rule.run(ctx, sink)
    # Deterministic order regardless of rule iteration internals: SARIF
    # fingerprint baselines and golden reports must not churn when a
    # rule reorders its emissions.
    sink.sort(key=lambda d: (d.rule, d.circuit, d.location, d.message))
    return sink


def lint_network(network: Network,
                 circuit: str | None = None) -> LintReport:
    """Structural lint of one network."""
    ctx = NetworkContext(network, circuit)
    return LintReport(diagnostics=_run_scope("network", ctx))


def lint_pair(original: Network, approx: Network, types: dict,
              directions: dict[str, int],
              claimed_method: str | None = None,
              claimed_correct: dict[str, bool] | None = None,
              circuit: str | None = None,
              certificates: bool = False,
              bdd_node_budget: int = 300_000,
              sat_conflict_budget: int = 200_000,
              ctx=None, error_spec=None,
              error_report=None) -> LintReport:
    """Structural + approximation-semantics lint of a pair.

    ``claimed_method``/``claimed_correct`` are the synthesis run's own
    claims (``ApproxResult.check_method``/``.correctness``); a refuted
    implication is an error only when an exact proof was claimed.
    ``error_spec`` marks an error-constrained pair: the per-PO
    implication rule stands down and the ``pair.error-bound`` family
    re-measures the metric against the bound instead.  With
    ``certificates=True`` every proved implication — and, for
    error-constrained pairs, the soundly re-measured ``error <= bound``
    verdict — is recorded as an offline-checkable certificate in
    ``report.certificates``.
    """
    name = circuit if circuit is not None else original.name
    report = lint_network(original, circuit=name)
    report.extend(lint_network(approx, circuit=f"{name}/approx"))
    pair_ctx = PairContext(original, approx, types, directions,
                           claimed_method=claimed_method,
                           claimed_correct=claimed_correct, circuit=name,
                           bdd_node_budget=bdd_node_budget,
                           sat_conflict_budget=sat_conflict_budget,
                           ctx=ctx, error_spec=error_spec,
                           error_report=error_report)
    report.diagnostics.extend(_run_scope("pair", pair_ctx))
    if certificates:
        for po, direction, proof in pair_ctx.proofs:
            if proof.holds is True and not proof.stats.get("trivial"):
                report.certificates.append(build_certificate(
                    original, approx, po, direction, proof))
        evaluation = pair_ctx._error_evaluation
        if evaluation is not None and evaluation.sound \
                and evaluation.within:
            report.certificates.append(build_error_certificate(
                original, approx, evaluation, circuit=name))
    return report


def lint_approx_result(original: Network, result,
                       **kwargs) -> LintReport:
    """:func:`lint_pair` with the claims taken from an ApproxResult."""
    error_report = getattr(result, "error_report", None)
    error_spec = None
    if error_report is not None:
        from repro.approx.config import ErrorSpec
        error_spec = ErrorSpec(
            metric=error_report["metric"],
            bound=error_report["bound"],
            exact_threshold=int(error_report.get(
                "budget_spent", {}).get("exact_threshold", 12)))
    return lint_pair(original, result.approx, result.types,
                     result.output_approximations,
                     claimed_method=result.check_method,
                     claimed_correct=result.correctness,
                     error_spec=error_spec, error_report=error_report,
                     **kwargs)


def lint_assembly(assembly, circuit: str | None = None) -> LintReport:
    """CED-assembly rules only (non-intrusiveness, checkers, TRC)."""
    ctx = FlowContext(assembly, circuit=circuit)
    return LintReport(diagnostics=_run_scope("flow", ctx))


def lint_flow(flow, certificate_dir=None, certificates: bool = True,
              circuit: str | None = None,
              bdd_node_budget: int = 300_000,
              sat_conflict_budget: int = 200_000,
              ctx=None) -> LintReport:
    """Full lint of a :class:`~repro.ced.flow.CedFlowResult`.

    Runs the pair lint on the original/approximate networks (with
    implication certificates) and the assembly rules on the CED
    netlist.  ``certificate_dir`` additionally writes each certificate
    as a JSON file.
    """
    name = circuit if circuit is not None else flow.original.name
    report = lint_approx_result(
        flow.original, flow.approx_result, circuit=name,
        certificates=certificates, bdd_node_budget=bdd_node_budget,
        sat_conflict_budget=sat_conflict_budget, ctx=ctx)
    report.extend(lint_assembly(flow.assembly, circuit=name))
    if certificate_dir is not None and report.certificates:
        write_certificates(report.certificates, certificate_dir)
    return report
