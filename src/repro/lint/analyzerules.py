"""Lint rules backed by the :mod:`repro.analyze` dataflow analyses.

The structural rules in :mod:`repro.lint.structural` check local,
syntactic well-formedness; the rules here consume *fixpoint solutions*
(constant propagation, observability, structural hashing, SDC
computation) and therefore see facts no single-node inspection can:
nodes whose function is provably constant, cubes that can never fire,
cones that are byte-identical duplicates, logic masked at every primary
output.  The pair-scope rules drive the :class:`~repro.analyze.
StaticDischarger` directly, reporting how much of the paper's Sec 2.2
implication obligation the static rung settles — and flagging outright
static *refutations* of a claimed-correct run, which are contradictions
no budget can excuse.
"""

from __future__ import annotations

from .diagnostics import Severity
from .registry import rule


@rule("net.const-node", "network", Severity.WARNING,
      "no node with fanins computes a provably constant function")
def const_node(ctx, emit):
    analyses = ctx.analyses()
    if analyses is None:
        return
    for name, value in sorted(analyses.constants.items()):
        node = ctx.network.nodes.get(name)
        if node is None or not node.fanins:
            # Explicit constant nodes (e.g. collapsed DC nodes) are
            # intentional; only redundant logic is worth flagging.
            continue
        emit(f"node {name!r} reads {len(node.fanins)} signal(s) but "
             f"always evaluates to {value}",
             location=f"node:{name}",
             hint="replace the node by the constant and sweep its cone",
             data={"constant": value})


@rule("net.const-redundant", "network", Severity.WARNING,
      "no cube is unsatisfiable under proven-constant fanins (SDC)")
def const_redundant(ctx, emit):
    analyses = ctx.analyses()
    if analyses is None:
        return
    for name, cubes in sorted(analyses.sdc_cubes().items()):
        for index in cubes:
            emit(f"node {name!r}: cube {index} conflicts with a "
                 f"proven-constant fanin and can never fire",
                 location=f"node:{name}/cube:{index}",
                 hint="drop the cube; the satisfiability don't-care "
                      "makes it unreachable")


@rule("net.structural-dup", "network", Severity.INFO,
      "no two nodes root byte-identical cone structures")
def structural_dup(ctx, emit):
    analyses = ctx.analyses()
    if analyses is None:
        return
    for group in analyses.duplicate_classes():
        members = sorted(group)
        emit(f"nodes {members} compute identical functions "
             f"(structurally equal cones)",
             location=f"node:{members[0]}",
             hint="merge the duplicates and rewire their fanouts",
             data={"nodes": members})


@rule("net.dead-cone", "network", Severity.WARNING,
      "no PO-reaching node is provably unobservable at every output")
def dead_cone(ctx, emit):
    analyses = ctx.analyses()
    if analyses is None:
        return
    for name in sorted(analyses.dead_cones()):
        emit(f"node {name!r} feeds primary-output logic but is masked "
             f"(zero observability) at every output",
             location=f"node:{name}",
             hint="the cone is dead logic; sweep it")


@rule("net.unread-fanin", "network", Severity.INFO,
      "every declared fanin is read by at least one cube")
def unread_fanin(ctx, emit):
    analyses = ctx.analyses()
    if analyses is None:
        return
    for name, positions in sorted(analyses.unread_fanins().items()):
        node = ctx.network.nodes[name]
        signals = [node.fanins[i] for i in positions]
        emit(f"node {name!r} declares but never reads {signals}",
             location=f"node:{name}",
             hint="trim the unread fanins "
                  "(repro.network.trim_unread_fanins)",
             data={"positions": list(positions)})


@rule("net.const-po", "network", Severity.WARNING,
      "no primary output is stuck at a proven constant")
def const_po(ctx, emit):
    analyses = ctx.analyses()
    if analyses is None:
        return
    constants = analyses.constants
    for po in ctx.network.outputs:
        if ctx.network.is_input(po) or po not in constants:
            continue
        node = ctx.network.nodes.get(po)
        explicit = node is not None and not node.fanins
        emit(f"output {po!r} is constant {constants[po]}",
             location=f"po:{po}",
             severity=Severity.INFO if explicit else Severity.WARNING,
             hint="" if explicit
             else "a stuck output usually means over-approximation "
                  "collapsed the whole cone",
             data={"constant": constants[po]})


@rule("pair.statically-implied", "pair", Severity.INFO,
      "report the implications the static analyses discharge")
def statically_implied(ctx, emit):
    discharger = ctx.static()
    if discharger is None:
        return
    proved = []
    for po in ctx.original.outputs:
        direction = ctx.directions.get(po)
        if direction not in (0, 1):
            continue
        if not ctx.approx.signal_exists(po):
            continue
        proof = discharger.implication(po, direction)
        if proof.holds is True \
                and proof.reason not in ("shared-pi", "struct-eq"):
            # Trivially-equal cones (untouched by the approximation)
            # would drown the report; only genuine approximation
            # discharges (constants, directional relations) are news.
            proved.append({"po": po, "direction": direction,
                           "reason": proof.reason})
    if proved:
        emit(f"{len(proved)} of {len(ctx.original.outputs)} per-PO "
             f"implications are discharged by static analysis alone "
             f"(no BDD/SAT needed)",
             data={"discharged": proved,
                   "stats": discharger.discharge_rate()})


@rule("pair.static-conflict", "pair", Severity.ERROR,
      "static analysis never refutes a claimed-correct implication")
def static_conflict(ctx, emit):
    discharger = ctx.static()
    if discharger is None:
        return
    for po in ctx.original.outputs:
        direction = ctx.directions.get(po)
        if direction not in (0, 1):
            continue
        if not ctx.approx.signal_exists(po):
            continue
        proof = discharger.implication(po, direction)
        if proof.holds is not False:
            continue
        condition = "G => F" if direction == 1 else "F => G"
        claimed = ctx.claimed_correct.get(po, True)
        emit(f"output {po!r}: implication {condition} is statically "
             f"refuted ({proof.reason}) "
             f"{'yet the run claims correctness' if claimed else ''}",
             location=f"po:{po}",
             severity=Severity.ERROR if claimed else Severity.WARNING,
             hint="both cones are proven constant with conflicting "
                  "values; every input assignment is a counterexample",
             data={"reason": proof.reason, "detail": proof.detail,
                   "witness": proof.witness})
