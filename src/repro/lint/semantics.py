"""The proof engine behind flow-level lint rules.

:class:`PairSemantics` re-verifies the paper's per-PO implication
condition (Sec 2.2) independently of whatever checker the synthesis run
used: global BDDs over the shared primary-input space first (exact, and
the proof doubles as a BDD witness), falling back to the CDCL SAT solver
(the implication holds iff the miter ``G & !F`` is UNSAT) when the BDD
node budget blows up.  Every query returns a :class:`ProofResult` with
enough provenance to build an offline-checkable certificate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bdd import BddOverflowError
from repro.flow import AnalysisContext
from repro.network import GlobalBdds, Network, dfs_input_order


@dataclass
class ProofResult:
    """Outcome of one implication query.

    ``holds`` is True (proved), False (refuted, ``witness`` holds a
    violating input assignment) or None (undecided within budget).
    """

    holds: bool | None
    method: str                     # "bdd" | "sat"
    stats: dict = field(default_factory=dict)
    witness: dict[str, bool] | None = None


class PairSemantics:
    """Implication prover for an original/approximate network pair."""

    def __init__(self, original: Network, approx: Network,
                 bdd_node_budget: int = 300_000,
                 sat_conflict_budget: int = 200_000,
                 ctx: AnalysisContext | None = None):
        self.original = original
        self.approx = approx
        self.sat_conflict_budget = sat_conflict_budget
        self._encoder = None
        self._bdds = None
        self._bdd_inputs: list[str] = []
        try:
            if ctx is not None:
                # Reuse the flow's pair manager (canonicity keeps the
                # re-proofs identical to a from-scratch build).
                bdds = ctx.pair_bdds(original, approx, bdd_node_budget)
            else:
                bdds = GlobalBdds(dfs_input_order(original),
                                  max_nodes=bdd_node_budget)
                bdds.add_network(original, prefix="o_")
                bdds.add_network(approx, prefix="a_")
            self._bdds = bdds
            self._bdd_inputs = list(bdds.inputs)
        except BddOverflowError:
            pass  # SAT takes over lazily

    @property
    def method(self) -> str:
        return "bdd" if self._bdds is not None else "sat"

    def _sat_encoder(self):
        if self._encoder is None:
            from repro.sat import NetworkEncoder
            encoder = NetworkEncoder(self.original.inputs)
            encoder.add_network(self.original, prefix="o_")
            encoder.add_network(self.approx, prefix="a_")
            self._encoder = encoder
        return self._encoder

    def implication(self, po: str, direction: int) -> ProofResult:
        """Check the paper's condition for one primary output.

        Direction 1 (1-approximation): ``G => F`` — the approximate
        function implies the original.  Direction 0: ``F => G``.
        """
        if self.original.is_input(po):
            # An output wired straight to a PI has an exact "cone".
            return ProofResult(True, self.method, {"trivial": True})
        if self._bdds is not None:
            try:
                return self._bdd_implication(po, direction)
            except BddOverflowError:
                pass  # query blow-up: fall through to SAT
        return self._sat_implication(po, direction)

    def _bdd_implication(self, po: str, direction: int) -> ProofResult:
        bdds = self._bdds
        mgr = bdds.manager
        f = bdds.function("o_" + po)
        g = bdds.function("a_" + po)
        bad = mgr.and_(g, mgr.not_(f)) if direction == 1 \
            else mgr.and_(f, mgr.not_(g))
        stats = {"bdd_nodes": int(mgr.num_nodes)}
        if bad == mgr.zero:
            return ProofResult(True, "bdd", stats)
        witness = self._bdd_witness(mgr.any_sat(bad))
        return ProofResult(False, "bdd", stats, witness)

    def _bdd_witness(self, minterm: int | None) -> dict[str, bool] | None:
        if minterm is None:
            return None
        return {pi: bool(minterm >> i & 1)
                for i, pi in enumerate(self._bdd_inputs)}

    def _sat_implication(self, po: str, direction: int) -> ProofResult:
        encoder = self._sat_encoder()
        solver = encoder.solver
        before = (solver.conflicts, solver.decisions, solver.propagations)
        if direction == 1:
            holds = encoder.implication_holds(
                "a_" + po, "o_" + po, max_conflicts=self.sat_conflict_budget)
        else:
            holds = encoder.implication_holds(
                "o_" + po, "a_" + po, max_conflicts=self.sat_conflict_budget)
        stats = {
            "conflicts": solver.conflicts - before[0],
            "decisions": solver.decisions - before[1],
            "propagations": solver.propagations - before[2],
        }
        witness = None
        if holds is False:
            pair = ("a_" + po, "o_" + po) if direction == 1 \
                else ("o_" + po, "a_" + po)
            witness = encoder.counterexample(*pair)
        return ProofResult(holds, "sat", stats, witness)
