"""The proof engine behind flow-level lint rules.

:class:`PairSemantics` re-verifies the paper's per-PO implication
condition (Sec 2.2) independently of whatever checker the synthesis run
used: the static-discharge analyses first (constant/containment/
relational dataflow over the pair — certificates of kind ``"static"``),
then global BDDs over the shared primary-input space (exact, and the
proof doubles as a BDD witness), falling back to the CDCL SAT solver
(the implication holds iff the miter ``G & !F`` is UNSAT) when the BDD
node budget blows up.  Every query returns a :class:`ProofResult` with
enough provenance to build an offline-checkable certificate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bdd import BddOverflowError
from repro.flow import AnalysisContext
from repro.network import GlobalBdds, Network, dfs_input_order


@dataclass
class ProofResult:
    """Outcome of one implication query.

    ``holds`` is True (proved), False (refuted, ``witness`` holds a
    violating input assignment) or None (undecided within budget).
    """

    holds: bool | None
    method: str                     # "bdd" | "sat" | "static"
    stats: dict = field(default_factory=dict)
    witness: dict[str, bool] | None = None


class PairSemantics:
    """Implication prover for an original/approximate network pair."""

    def __init__(self, original: Network, approx: Network,
                 bdd_node_budget: int = 300_000,
                 sat_conflict_budget: int = 200_000,
                 ctx: AnalysisContext | None = None,
                 static: bool = True):
        self.original = original
        self.approx = approx
        self.bdd_node_budget = bdd_node_budget
        self.sat_conflict_budget = sat_conflict_budget
        self.ctx = ctx
        self.static = static
        self._encoder = None
        self._bdds = None
        self._bdd_failed = False
        self._bdd_inputs: list[str] = []
        self._static_discharger = None
        # Cross-process proof cache (repro.lab.proofs): re-verification
        # of a cone pair an earlier run already proved is served from
        # disk, and the pair BDDs are then never built at all.
        self._proofs = getattr(ctx, "proofs", None)
        self._fp = None

    def _bdd_pair(self) -> GlobalBdds | None:
        """The pair BDDs, built lazily once; None after an overflow."""
        if self._bdds is None and not self._bdd_failed:
            try:
                if self.ctx is not None:
                    # Reuse the flow's pair manager (canonicity keeps
                    # the re-proofs identical to a from-scratch build).
                    bdds = self.ctx.pair_bdds(self.original, self.approx,
                                              self.bdd_node_budget)
                else:
                    bdds = GlobalBdds(dfs_input_order(self.original),
                                      max_nodes=self.bdd_node_budget)
                    bdds.add_network(self.original, prefix="o_")
                    bdds.add_network(self.approx, prefix="a_")
                self._bdds = bdds
                self._bdd_inputs = list(bdds.inputs)
            except BddOverflowError:
                self._bdd_failed = True  # SAT takes over lazily
        return self._bdds

    @property
    def method(self) -> str:
        return "sat" if self._bdd_failed else "bdd"

    def _sat_encoder(self):
        if self._encoder is None:
            from repro.sat import NetworkEncoder
            encoder = NetworkEncoder(self.original.inputs)
            encoder.add_network(self.original, prefix="o_")
            encoder.add_network(self.approx, prefix="a_")
            self._encoder = encoder
        return self._encoder

    def implication(self, po: str, direction: int) -> ProofResult:
        """Check the paper's condition for one primary output.

        Direction 1 (1-approximation): ``G => F`` — the approximate
        function implies the original.  Direction 0: ``F => G``.
        """
        if self.original.is_input(po):
            # An output wired straight to a PI has an exact "cone".
            return ProofResult(True, self.method, {"trivial": True})
        static = self._static_proof(po, direction)
        if static is not None:
            self._store_proof(po, direction, static)
            return static
        cached = self._cached_proof(po, direction)
        if cached is not None:
            return cached
        if self._bdd_pair() is not None:
            try:
                proof = self._bdd_implication(po, direction)
            except BddOverflowError:
                proof = self._sat_implication(po, direction)
        else:
            proof = self._sat_implication(po, direction)
        self._store_proof(po, direction, proof)
        return proof

    def _static_proof(self, po: str,
                      direction: int) -> ProofResult | None:
        """The static-discharge rung: decide by dataflow analysis alone.

        Returns None when the analyses cannot decide (the engines take
        over).  A decided verdict is a theorem — these proofs are
        re-checkable offline without BDDs or SAT, which is what makes
        ``"static"`` certificates cheap to audit.
        """
        if not self.static:
            return None
        if self._static_discharger is None:
            from repro.analyze import StaticDischarger
            if self.ctx is not None:
                self._static_discharger = StaticDischarger(
                    self.original, self.approx,
                    self.ctx.analyses(self.original),
                    self.ctx.analyses(self.approx))
            else:
                self._static_discharger = StaticDischarger(
                    self.original, self.approx)
        proof = self._static_discharger.implication(
            po, 1 if direction == 1 else 0)
        if proof.holds is None:
            return None
        return ProofResult(proof.holds, "static",
                           {"reason": proof.reason, **proof.detail},
                           witness=proof.witness)

    def _proof_key(self, po: str, direction: int) -> str:
        from repro.lab.proofs import ConeFingerprinter, implication_key
        if self._fp is None:
            self._fp = ConeFingerprinter()
        return implication_key(self._fp, self.original, self.approx,
                               po, 1 if direction == 1 else 0)

    def _cached_proof(self, po: str,
                      direction: int) -> ProofResult | None:
        if self._proofs is None:
            return None
        from repro.lab.proofs import TRUSTED_ENGINES
        entry = self._proofs.get(self._proof_key(po, direction))
        if entry is None or entry.get("engine") not in TRUSTED_ENGINES \
                or entry.get("holds") is not True:
            # Refuted or undecided entries are re-proved live: a
            # certificate-grade refutation needs a fresh witness.
            return None
        return ProofResult(True, entry["engine"], {"proof_cache": True})

    def _store_proof(self, po: str, direction: int,
                     proof: ProofResult) -> None:
        if self._proofs is None or proof.holds is None \
                or proof.method not in ("bdd", "sat", "static"):
            return
        self._proofs.put(self._proof_key(po, direction), {
            "kind": "implication", "po": po,
            "direction": 1 if direction == 1 else 0,
            "holds": bool(proof.holds), "engine": proof.method})

    def _bdd_implication(self, po: str, direction: int) -> ProofResult:
        bdds = self._bdds
        mgr = bdds.manager
        f = bdds.function("o_" + po)
        g = bdds.function("a_" + po)
        bad = mgr.and_(g, mgr.not_(f)) if direction == 1 \
            else mgr.and_(f, mgr.not_(g))
        stats = {"bdd_nodes": int(mgr.num_nodes)}
        if bad == mgr.zero:
            return ProofResult(True, "bdd", stats)
        witness = self._bdd_witness(mgr.any_sat(bad))
        return ProofResult(False, "bdd", stats, witness)

    def _bdd_witness(self, minterm: int | None) -> dict[str, bool] | None:
        if minterm is None:
            return None
        return {pi: bool(minterm >> i & 1)
                for i, pi in enumerate(self._bdd_inputs)}

    def _sat_implication(self, po: str, direction: int) -> ProofResult:
        encoder = self._sat_encoder()
        solver = encoder.solver
        before = (solver.conflicts, solver.decisions, solver.propagations)
        if direction == 1:
            holds = encoder.implication_holds(
                "a_" + po, "o_" + po, max_conflicts=self.sat_conflict_budget)
        else:
            holds = encoder.implication_holds(
                "o_" + po, "a_" + po, max_conflicts=self.sat_conflict_budget)
        stats = {
            "conflicts": solver.conflicts - before[0],
            "decisions": solver.decisions - before[1],
            "propagations": solver.propagations - before[2],
        }
        witness = None
        if holds is False:
            pair = ("a_" + po, "o_" + po) if direction == 1 \
                else ("o_" + po, "a_" + po)
            witness = encoder.counterexample(*pair)
        return ProofResult(holds, "sat", stats, witness)
