"""Implication certificates: offline-checkable proof artifacts.

A certificate records one proved per-PO implication (paper Sec 2.2,
``G => F`` for 1-approximation, ``F => G`` for 0-approximation) in a
self-contained JSON document: the BLIF text of the original and
approximate PO cones over a shared primary-input list, the proof method
(BDD or SAT/UNSAT attestation) with its statistics, and a SHA-256
digest binding the whole document.  :func:`check_certificate` re-parses
the embedded cones and re-proves the implication from scratch — no
access to the run that produced the certificate is needed.
"""

from __future__ import annotations

import hashlib
import json
import re
import traceback
from pathlib import Path

from repro.network import Network
from repro.network.blif import parse_blif, write_blif

from .semantics import PairSemantics, ProofResult

CERT_SCHEMA_VERSION = 1
CERT_KIND = "implication-certificate"
ERROR_CERT_KIND = "error-bound-certificate"

_REQUIRED_KEYS = {
    "schema_version": int,
    "kind": str,
    "circuit": str,
    "po": str,
    "direction": int,
    "method": str,
    "status": str,
    "inputs": list,
    "original_blif": str,
    "approx_blif": str,
    "stats": dict,
    "digest": str,
}

_ERROR_REQUIRED_KEYS = {
    "schema_version": int,
    "kind": str,
    "circuit": str,
    "metric": str,
    "bound": (int, float),
    "value": (int, float),
    "method": str,
    "exact": bool,
    "exact_threshold": int,
    "outputs": list,
    "per_output": dict,
    "original_blif": str,
    "approx_blif": str,
    "digest": str,
}


def po_cone(network: Network, po: str, inputs: list[str],
            name: str) -> Network:
    """The single-output subnetwork feeding ``po``.

    ``inputs`` fixes the primary-input list (a superset of the cone's
    support) so that original and approximate cones share a PI space.
    """
    cone = network.transitive_fanin([po])
    sub = Network(name)
    for pi in inputs:
        sub.add_input(pi)
    for node_name in network.topological_order():
        if node_name in cone:
            node = network.nodes[node_name]
            sub.add_node(node_name, list(node.fanins), node.cover.copy())
    sub.add_output(po)
    return sub


def cone_inputs(original: Network, approx: Network,
                po: str) -> list[str]:
    """Shared PI list for the two cones, in original input order."""
    support = original.transitive_fanin([po]) \
        | approx.transitive_fanin([po])
    return [pi for pi in original.inputs if pi in support]


def build_certificate(original: Network, approx: Network, po: str,
                      direction: int, proof: ProofResult) -> dict:
    """Certificate document for one *proved* implication."""
    if proof.holds is not True:
        raise ValueError("certificates attest proved implications only")
    inputs = cone_inputs(original, approx, po)
    doc = {
        "schema_version": CERT_SCHEMA_VERSION,
        "kind": CERT_KIND,
        "circuit": original.name,
        "po": po,
        "direction": int(direction),
        "method": proof.method,
        "status": "proved",
        "inputs": inputs,
        "original_blif": write_blif(
            po_cone(original, po, inputs, f"{original.name}_orig")),
        "approx_blif": write_blif(
            po_cone(approx, po, inputs, f"{original.name}_apx")),
        "stats": {k: v for k, v in proof.stats.items()},
    }
    doc["digest"] = certificate_digest(doc)
    return doc


def certificate_digest(doc: dict) -> str:
    body = {k: v for k, v in doc.items() if k != "digest"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(canonical.encode()).hexdigest()


def validate_certificate(doc: dict) -> list[str]:
    """Schema problems of a certificate document (empty list = valid)."""
    problems = []
    if not isinstance(doc, dict):
        return ["certificate is not a JSON object"]
    for key, kind in _REQUIRED_KEYS.items():
        if key not in doc:
            problems.append(f"missing key {key!r}")
        elif not isinstance(doc[key], kind):
            problems.append(f"key {key!r} is not {kind.__name__}")
    if problems:
        return problems
    if doc["schema_version"] != CERT_SCHEMA_VERSION:
        problems.append(f"unknown schema_version "
                        f"{doc['schema_version']!r}")
    if doc["kind"] != CERT_KIND:
        problems.append(f"unknown kind {doc['kind']!r}")
    if doc["direction"] not in (0, 1):
        problems.append(f"direction must be 0 or 1, got "
                        f"{doc['direction']!r}")
    if doc["method"] not in ("bdd", "sat", "static"):
        problems.append(f"unknown method {doc['method']!r}")
    if doc["status"] != "proved":
        problems.append(f"unknown status {doc['status']!r}")
    if doc["digest"] != certificate_digest(doc):
        problems.append("digest mismatch (document was modified)")
    return problems


def _crash_summary(what: str, err: Exception) -> str:
    """Diagnostic for a re-check failure.

    Keeps the exception type, message, and the tail of the traceback —
    a bare ``str(err)`` loses the type (often empty for KeyError and
    friends) and the crash site, making corrupted certificates
    undebuggable from the problem list alone.
    """
    tail = traceback.format_exc(limit=8)[-2000:]
    return f"{what}: {type(err).__name__}: {err}\n{tail}"


def check_certificate(doc: dict,
                      bdd_node_budget: int = 300_000,
                      sat_conflict_budget: int = 500_000,
                      strict: bool = False) -> list[str]:
    """Re-verify a certificate offline (empty list = it checks out).

    Validates the schema and digest, re-parses the embedded cones, and
    re-proves the implication from scratch.  An unexpected crash while
    parsing or re-proving is reported as a problem carrying the
    exception type, message, and traceback tail; ``strict=True``
    re-raises it instead (for callers that want the real traceback).
    """
    problems = validate_certificate(doc)
    if problems:
        return problems
    try:
        original = parse_blif(doc["original_blif"],
                              source="<certificate:original>")
        approx = parse_blif(doc["approx_blif"],
                            source="<certificate:approx>")
    except Exception as err:  # noqa: BLE001 - report, don't crash
        if strict:
            raise
        return [_crash_summary("embedded BLIF does not parse", err)]
    po = doc["po"]
    for label, net in (("original", original), ("approx", approx)):
        if net.inputs != doc["inputs"]:
            problems.append(f"{label} cone inputs differ from the "
                            f"certificate input list")
        if net.outputs != [po]:
            problems.append(f"{label} cone outputs are {net.outputs}, "
                            f"expected [{po!r}]")
    if problems:
        return problems
    try:
        semantics = PairSemantics(original, approx,
                                  bdd_node_budget=bdd_node_budget,
                                  sat_conflict_budget=sat_conflict_budget)
        proof = semantics.implication(po, doc["direction"])
    except Exception as err:  # noqa: BLE001 - report, don't crash
        if strict:
            raise
        return problems + [_crash_summary("implication re-proof crashed",
                                          err)]
    if proof.holds is None:
        problems.append("implication undecided within recheck budget")
    elif proof.holds is False:
        problems.append(f"implication does NOT hold "
                        f"(witness: {proof.witness})")
    return problems


def build_error_certificate(original: Network, approx: Network,
                            evaluation, circuit: str | None = None
                            ) -> dict:
    """``error <= bound`` certificate for one whole-circuit evaluation.

    ``evaluation`` is a *sound and satisfied*
    :class:`~repro.approx.metrics.ErrorEvaluation` — exact exhaustive /
    BDD measurements or mathematically sound upper bounds; statistical
    (Monte-Carlo) evaluations cannot be attested.  The document embeds
    the complete original and approximate networks, so
    :func:`check_error_certificate` re-measures the metric from
    scratch, offline, with the same two-tier evaluator.
    """
    if not evaluation.sound:
        raise ValueError("error certificates attest sound (exact or "
                         "bounded) evaluations only")
    if not evaluation.within:
        raise ValueError("error certificates attest satisfied bounds "
                         "only")
    doc = {
        "schema_version": CERT_SCHEMA_VERSION,
        "kind": ERROR_CERT_KIND,
        "circuit": circuit if circuit is not None else original.name,
        "metric": evaluation.metric,
        "bound": float(evaluation.bound),
        "value": float(evaluation.value),
        "method": evaluation.method,
        "exact": bool(evaluation.exact),
        "exact_threshold": _eval_exact_threshold(evaluation),
        "outputs": list(original.outputs),
        "per_output": {po: float(r)
                       for po, r in evaluation.per_output.items()},
        "original_blif": write_blif(original),
        "approx_blif": write_blif(approx),
    }
    doc["digest"] = certificate_digest(doc)
    return doc


def _eval_exact_threshold(evaluation) -> int:
    # The tier split must be reproducible offline; record the threshold
    # that selected the tier (stored in work by the evaluator).
    return int(evaluation.work.get("exact_threshold", 12))


def validate_error_certificate(doc: dict) -> list[str]:
    """Schema problems of an error certificate (empty list = valid)."""
    problems = []
    if not isinstance(doc, dict):
        return ["certificate is not a JSON object"]
    for key, kind in _ERROR_REQUIRED_KEYS.items():
        if key not in doc:
            problems.append(f"missing key {key!r}")
        elif not isinstance(doc[key], kind):
            name = kind.__name__ if isinstance(kind, type) else "number"
            problems.append(f"key {key!r} is not {name}")
    if problems:
        return problems
    if doc["schema_version"] != CERT_SCHEMA_VERSION:
        problems.append(f"unknown schema_version "
                        f"{doc['schema_version']!r}")
    if doc["kind"] != ERROR_CERT_KIND:
        problems.append(f"unknown kind {doc['kind']!r}")
    if doc["metric"] not in ("er", "med", "wce"):
        problems.append(f"unknown metric {doc['metric']!r}")
    if doc["value"] > doc["bound"]:
        problems.append("claimed value exceeds the claimed bound")
    if doc["digest"] != certificate_digest(doc):
        problems.append("digest mismatch (document was modified)")
    return problems


def check_error_certificate(doc: dict,
                            bdd_node_budget: int = 300_000,
                            strict: bool = False) -> list[str]:
    """Re-verify an error certificate offline (empty = checks out).

    Re-parses the embedded networks and re-measures the metric with
    the two-tier evaluator.  The re-measurement must itself be sound
    (a fall to the statistical tier reports "undecided") and must meet
    the certified bound; exact re-measurements must also reproduce the
    certified value.
    """
    problems = validate_error_certificate(doc)
    if problems:
        return problems
    try:
        original = parse_blif(doc["original_blif"],
                              source="<certificate:original>")
        approx = parse_blif(doc["approx_blif"],
                            source="<certificate:approx>")
    except Exception as err:  # noqa: BLE001 - report, don't crash
        if strict:
            raise
        return [_crash_summary("embedded BLIF does not parse", err)]
    if list(original.outputs) != doc["outputs"]:
        problems.append("original outputs differ from the certified "
                        "output order")
    if list(approx.outputs) != doc["outputs"]:
        problems.append("approx outputs differ from the certified "
                        "output order")
    if problems:
        return problems
    try:
        from repro.approx.config import ErrorSpec
        from repro.approx.metrics import evaluate_error
        spec = ErrorSpec(metric=doc["metric"], bound=doc["bound"],
                         exact_threshold=doc["exact_threshold"])
        evaluation = evaluate_error(original, approx, spec,
                                    bdd_node_budget=bdd_node_budget)
    except Exception as err:  # noqa: BLE001 - report, don't crash
        if strict:
            raise
        return problems + [_crash_summary("error re-measurement crashed",
                                          err)]
    if not evaluation.sound:
        problems.append("error re-measurement fell to the statistical "
                        "tier within the recheck budget; undecided")
        return problems
    if not evaluation.within:
        problems.append(
            f"measured {doc['metric']} "
            f"{'value' if evaluation.exact else 'bound'} "
            f"{evaluation.value:g} exceeds the certified bound "
            f"{doc['bound']:g}")
    if evaluation.exact and doc["exact"] \
            and abs(evaluation.value - doc["value"]) > 1e-9:
        problems.append(f"re-measured exact value {evaluation.value:g} "
                        f"differs from certified {doc['value']:g}")
    return problems


def certificate_filename(doc: dict) -> str:
    if doc.get("kind") == ERROR_CERT_KIND:
        slug = re.sub(r"[^A-Za-z0-9_.-]", "_",
                      f"{doc['circuit']}__{doc['metric']}_bound")
        return f"{slug}.cert.json"
    slug = re.sub(r"[^A-Za-z0-9_.-]", "_",
                  f"{doc['circuit']}__{doc['po']}__d{doc['direction']}")
    return f"{slug}.cert.json"


def write_certificates(certificates: list[dict],
                       directory: str | Path) -> list[Path]:
    """Write certificates as JSON files; returns the paths written."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for doc in certificates:
        path = directory / certificate_filename(doc)
        path.write_text(json.dumps(doc, indent=2, sort_keys=True))
        paths.append(path)
    return paths
