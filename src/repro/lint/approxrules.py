"""Approximation-semantics lint rules over an original/approximate pair.

Layer 2 of the verifier: the type assignment (Sec 2.1.1) and cube
selection (Sec 2.1.2) invariants.  Internal-node rules are warnings by
design — the synthesis loop only *guarantees* the per-PO implication
(Sec 2.2); internal nodes may be individually "incorrect" yet globally
masked, which is legitimate.  The per-PO implication itself
(``pair.po-implication``) is the error-severity rule, re-proved from
scratch by :class:`~repro.lint.semantics.PairSemantics`.
"""

from __future__ import annotations

from repro.approx.cube_selection import (conforms, feasible_subspace,
                                         phase_cover)
from repro.approx.types import NodeType
from repro.bdd import BddManager, BddOverflowError

from .diagnostics import Severity
from .registry import rule

#: Local per-node checks build a BDD over the node's fanins; beyond
#: this width they are skipped (soundness is unaffected — these are
#: warning-level redundancy checks, and real covers stay narrow).
MAX_LOCAL_VARS = 16


@rule("pair.io-mismatch", "pair", Severity.ERROR,
      "approximate network shares the original PI/PO names")
def io_mismatch(ctx, emit):
    if set(ctx.approx.inputs) != set(ctx.original.inputs):
        extra = sorted(set(ctx.approx.inputs) - set(ctx.original.inputs))
        missing = sorted(set(ctx.original.inputs)
                         - set(ctx.approx.inputs))
        emit(f"primary inputs differ (extra: {extra[:5]}, "
             f"missing: {missing[:5]})",
             hint="approximate synthesis must keep the PI space")
    if list(ctx.approx.outputs) != list(ctx.original.outputs):
        emit(f"primary outputs differ: {ctx.approx.outputs[:5]} vs "
             f"{ctx.original.outputs[:5]}")


@rule("pair.direction-missing", "pair", Severity.ERROR,
      "every primary output has an approximation direction")
def direction_missing(ctx, emit):
    for po in ctx.original.outputs:
        if po not in ctx.directions:
            emit(f"output {po!r} has no approximation direction",
                 location=f"po:{po}")


@rule("pair.direction-value", "pair", Severity.ERROR,
      "approximation directions are 0 or 1")
def direction_value(ctx, emit):
    for po, direction in ctx.directions.items():
        if direction not in (0, 1):
            emit(f"direction for {po!r} is {direction!r}, not 0/1",
                 location=f"po:{po}")


@rule("pair.untyped-node", "pair", Severity.ERROR,
      "the type assignment covers every original node")
def untyped_node(ctx, emit):
    for name in ctx.original.nodes:
        if name not in ctx.types:
            emit(f"node {name!r} has no assigned type",
                 location=f"node:{name}",
                 hint="re-run assign_types on the original network")


@rule("pair.po-type", "pair", Severity.WARNING,
      "PO driver types are consistent with the chosen directions")
def po_type(ctx, emit):
    # resolve_type can never answer DC or the opposite direction for a
    # node that received a PO request, so such a type is inconsistent.
    for po in ctx.original.outputs:
        if ctx.original.is_input(po) or po not in ctx.types:
            continue
        direction = ctx.directions.get(po)
        if direction not in (0, 1):
            continue
        allowed = {NodeType.ONE if direction == 1 else NodeType.ZERO,
                   NodeType.EX}
        if ctx.types[po] not in allowed:
            emit(f"output {po!r} is typed {ctx.types[po].value} but has "
                 f"direction {direction}",
                 location=f"po:{po}",
                 hint="PO requests make resolve_type answer the "
                      "direction's type or EX")


@rule("pair.dc-read", "pair", Severity.WARNING,
      "DC-typed fanins are read only where Eq. 1 permits")
def dc_read(ctx, emit):
    # Conforming cubes leave DC fanins unread (Sec 2.1.2); Eq. 1 only
    # permits reads where the fanin is locally unobservable.  The check
    # runs on the *phase* cover the selection actually produced — a
    # 0-approximated node stores its re-complemented cover, which may
    # legitimately re-introduce literals — and skips nodes kept (or
    # restored) exact.
    for name, node in ctx.approx.nodes.items():
        dc_pos = [i for i, f in enumerate(node.fanins)
                  if ctx.types.get(f) is NodeType.DC]
        if not dc_pos:
            continue
        pair = _comparable(ctx, name)
        if pair is None:
            continue
        orig, apx = pair
        node_type = ctx.types.get(name)
        if node_type not in (NodeType.ONE, NodeType.ZERO):
            continue  # changed EX nodes are pair.ex-changed's business
        try:
            mgr = BddManager(len(node.fanins))
            if mgr.from_cover(orig.cover) == mgr.from_cover(apx.cover):
                continue  # node left (or restored) exact
            phase_fn = mgr.from_cover(phase_cover(orig.cover, node_type))
            fanin_types = [NodeType.EX if ctx.original.is_input(f)
                           else ctx.types.get(f, NodeType.EX)
                           for f in node.fanins]
            feasible = feasible_subspace(mgr, phase_fn, fanin_types)
            apx_phase = phase_cover(apx.cover, node_type)
            for j, cube in enumerate(apx_phase.cubes):
                read = [node.fanins[i] for i in dc_pos
                        if cube.literal(i) != "-"]
                if not read:
                    continue
                if mgr.implies(mgr.from_cube(cube), feasible):
                    continue  # ODC-justified read (Eq. 1)
                emit(f"node {name!r}: phase cube {j} reads DC-typed "
                     f"fanin(s) {read[:5]} outside the Eq. 1 feasible "
                     f"subspace",
                     location=f"node:{name}/cube:{j}",
                     hint="DC fanins may only be read where locally "
                          "unobservable")
        except BddOverflowError:
            continue


def _comparable(ctx, name):
    """Original/approx node pair with identical fanins, or None.

    Resynthesis renames and rewires nodes; local semantic rules only
    apply where the node survived with its original interface.
    """
    orig = ctx.original.nodes.get(name)
    apx = ctx.approx.nodes.get(name)
    if orig is None or apx is None or orig.fanins != apx.fanins:
        return None
    if len(orig.fanins) > MAX_LOCAL_VARS:
        return None
    return orig, apx


@rule("pair.ex-changed", "pair", Severity.WARNING,
      "EX-typed nodes keep their exact local function")
def ex_changed(ctx, emit):
    for name, node_type in ctx.types.items():
        if node_type is not NodeType.EX:
            continue
        pair = _comparable(ctx, name)
        if pair is None:
            continue
        orig, apx = pair
        mgr = BddManager(len(orig.fanins))
        if mgr.from_cover(orig.cover) != mgr.from_cover(apx.cover):
            emit(f"EX node {name!r} changed its local function",
                 location=f"node:{name}",
                 hint="EX nodes must stay bit-identical; rely on the "
                      "repair loop or type the node 0/1")


@rule("pair.direction-local", "pair", Severity.WARNING,
      "approximated nodes respect their direction locally")
def direction_local(ctx, emit):
    # Both exact and ODC selection shrink the phase function, so the
    # local implication (ONE: apx => orig on-set; ZERO: orig => apx)
    # holds for every selected cover.
    for name, node_type in ctx.types.items():
        if node_type not in (NodeType.ONE, NodeType.ZERO):
            continue
        pair = _comparable(ctx, name)
        if pair is None:
            continue
        orig, apx = pair
        mgr = BddManager(len(orig.fanins))
        f = mgr.from_cover(orig.cover)
        g = mgr.from_cover(apx.cover)
        ok = mgr.implies(g, f) if node_type is NodeType.ONE \
            else mgr.implies(f, g)
        if not ok:
            emit(f"type-{node_type.value} node {name!r} breaks the "
                 f"local implication "
                 f"({'apx => orig' if node_type is NodeType.ONE else 'orig => apx'})",
                 location=f"node:{name}",
                 hint="the selected phase cover must shrink, never "
                      "grow, the phase function")


@rule("pair.cube-unjustified", "pair", Severity.WARNING,
      "selected cubes are exact-conforming or ODC-justified (Eq. 1)")
def cube_unjustified(ctx, emit):
    for name, node_type in ctx.types.items():
        if node_type not in (NodeType.ONE, NodeType.ZERO):
            continue
        pair = _comparable(ctx, name)
        if pair is None:
            continue
        orig, apx = pair
        fanin_types = [NodeType.EX if ctx.original.is_input(f)
                       else ctx.types.get(f, NodeType.EX)
                       for f in orig.fanins]
        try:
            mgr = BddManager(len(orig.fanins))
            orig_phase = phase_cover(orig.cover, node_type)
            phase_fn = mgr.from_cover(orig_phase)
            apx_phase = phase_cover(apx.cover, node_type)
            if mgr.from_cover(apx_phase) == phase_fn:
                continue  # node left (or restored) exact: always correct
            feasible = feasible_subspace(mgr, phase_fn, fanin_types)
            for i, cube in enumerate(apx_phase.cubes):
                if conforms(cube, fanin_types):
                    continue
                if mgr.implies(mgr.from_cube(cube), feasible):
                    continue
                emit(f"node {name!r}: phase cube {i} "
                     f"({cube.to_string()}) neither conforms to the "
                     f"fanin types nor lies in the Eq. 1 feasible "
                     f"subspace",
                     location=f"node:{name}/cube:{i}",
                     hint="re-select with exact_select or odc_select")
        except BddOverflowError:
            continue


@rule("pair.po-implication", "pair", Severity.ERROR,
      "per-PO implication G => F (1-approx) / F => G (0-approx) holds")
def po_implication(ctx, emit):
    # Error-constrained pairs (engine "resub") deliberately break the
    # implication; their ERROR-severity contract is pair.error-bound.
    if getattr(ctx, "error_spec", None) is not None:
        return
    # No shared PI space, no proof: pair.io-mismatch already fired.
    if set(ctx.approx.inputs) != set(ctx.original.inputs):
        return
    for po in ctx.original.outputs:
        direction = ctx.directions.get(po)
        if direction not in (0, 1):
            continue  # pair.direction-missing/-value already fired
        if not ctx.approx.signal_exists(po):
            continue  # pair.io-mismatch already fired
        proof = ctx.prove(po, direction)
        if proof.holds is True:
            continue
        condition = "G => F" if direction == 1 else "F => G"
        if proof.holds is None:
            emit(f"output {po!r}: implication {condition} undecided "
                 f"within the {proof.method.upper()} budget",
                 location=f"po:{po}", severity=Severity.INFO,
                 data={"stats": proof.stats})
            continue
        # Refuted.  Exactly-checked flows claimed a proof, so this is
        # an error; simulation-checked (or admittedly incorrect) runs
        # only ever claimed statistical confidence.
        exact_claim = ctx.claimed_method in ("bdd", "sat", "static") \
            and ctx.claimed_correct.get(po, True)
        severity = Severity.ERROR if exact_claim else Severity.WARNING
        emit(f"output {po!r}: implication {condition} does not hold "
             f"({proof.method.upper()} counterexample found)",
             location=f"po:{po}", severity=severity,
             hint="repair the cone (exact cube selection at the "
                  "sources provably restores correctness)",
             data={"witness": proof.witness, "stats": proof.stats})
