"""Structural lint rules over a single :class:`~repro.network.Network`.

These are the layer-1 checks: graph well-formedness (acyclicity,
resolvable references), SOP well-formedness (cube width vs fanin arity,
duplicate/contained cubes), and hygiene (dangling nodes, unused inputs).
They assume nothing about approximation — any network can be linted.
"""

from __future__ import annotations

from .diagnostics import Severity
from .registry import rule


@rule("net.undefined-fanin", "network", Severity.ERROR,
      "every fanin resolves to a node or primary input")
def undefined_fanin(ctx, emit):
    net = ctx.network
    for name, node in net.nodes.items():
        for fanin in node.fanins:
            if not net.signal_exists(fanin):
                emit(f"node {name!r} reads undefined signal {fanin!r}",
                     location=f"node:{name}",
                     hint="define the signal or drop the fanin")


@rule("net.cycle", "network", Severity.ERROR,
      "the network is acyclic")
def cycle(ctx, emit):
    stuck = ctx.stuck_nodes()
    if stuck:
        emit(f"combinational cycle through {sorted(stuck)[:5]}",
             location=f"node:{sorted(stuck)[0]}",
             hint="break the loop; combinational networks must be DAGs")


@rule("net.undefined-output", "network", Severity.ERROR,
      "every primary output references a defined signal")
def undefined_output(ctx, emit):
    net = ctx.network
    for po in net.outputs:
        if not net.signal_exists(po):
            emit(f"output {po!r} references no node or input",
                 location=f"output:{po}")


@rule("net.duplicate-output", "network", Severity.WARNING,
      "primary output names are unique")
def duplicate_output(ctx, emit):
    seen = set()
    for po in ctx.network.outputs:
        if po in seen:
            emit(f"output {po!r} is listed more than once",
                 location=f"output:{po}")
        seen.add(po)


@rule("net.cube-width", "network", Severity.ERROR,
      "cover width matches the fanin count")
def cube_width(ctx, emit):
    for name, node in ctx.network.nodes.items():
        if node.cover.n != len(node.fanins):
            emit(f"node {name!r}: cover over {node.cover.n} variables "
                 f"but {len(node.fanins)} fanins",
                 location=f"node:{name}")
            continue
        for i, cube in enumerate(node.cover.cubes):
            if cube.n != node.cover.n:
                emit(f"node {name!r}: cube {i} has width {cube.n}, "
                     f"cover has {node.cover.n}",
                     location=f"node:{name}/cube:{i}")


@rule("net.duplicate-fanin", "network", Severity.ERROR,
      "fanin lists have no repeated signals")
def duplicate_fanin(ctx, emit):
    for name, node in ctx.network.nodes.items():
        if len(set(node.fanins)) != len(node.fanins):
            dupes = sorted({f for f in node.fanins
                            if node.fanins.count(f) > 1})
            emit(f"node {name!r} lists fanin(s) {dupes} more than once",
                 location=f"node:{name}",
                 hint="collapse repeated fanins into one column")


@rule("net.duplicate-cube", "network", Severity.WARNING,
      "covers contain no repeated cubes")
def duplicate_cube(ctx, emit):
    for name, node in ctx.network.nodes.items():
        seen: dict[tuple[int, int], int] = {}
        for i, cube in enumerate(node.cover.cubes):
            key = (cube.ones, cube.zeros)
            if key in seen:
                emit(f"node {name!r}: cube {i} "
                     f"({cube.to_string() or 'const'}) repeats cube "
                     f"{seen[key]}",
                     location=f"node:{name}/cube:{i}",
                     hint="run minimize() on the cover")
            else:
                seen[key] = i


@rule("net.contained-cube", "network", Severity.WARNING,
      "no cube is contained in another (redundant SOP)")
def contained_cube(ctx, emit):
    for name, node in ctx.network.nodes.items():
        cubes = node.cover.cubes
        for i, small in enumerate(cubes):
            for j, big in enumerate(cubes):
                if i == j:
                    continue
                if (big.ones, big.zeros) == (small.ones, small.zeros):
                    continue  # exact duplicates: net.duplicate-cube
                if big.contains(small):
                    emit(f"node {name!r}: cube {i} "
                         f"({small.to_string()}) is contained in cube "
                         f"{j} ({big.to_string()})",
                         location=f"node:{name}/cube:{i}",
                         hint="remove the contained cube")
                    break


@rule("net.dangling-node", "network", Severity.WARNING,
      "every node reaches a primary output")
def dangling_node(ctx, emit):
    net = ctx.network
    live = net.transitive_fanin([po for po in net.outputs
                                 if net.signal_exists(po)])
    for name in net.nodes:
        if name not in live:
            emit(f"node {name!r} drives no primary output",
                 location=f"node:{name}",
                 hint="sweep() removes dead logic")


@rule("net.unused-input", "network", Severity.INFO,
      "every primary input is read")
def unused_input(ctx, emit):
    net = ctx.network
    read = {f for node in net.nodes.values() for f in node.fanins}
    for pi in net.inputs:
        if pi not in read and pi not in net.outputs:
            emit(f"input {pi!r} is never read", location=f"input:{pi}")


@rule("net.no-outputs", "network", Severity.WARNING,
      "the network declares at least one primary output")
def no_outputs(ctx, emit):
    if not ctx.network.outputs:
        emit("network has no primary outputs")
