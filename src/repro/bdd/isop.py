"""Irredundant sum-of-products extraction from BDDs (Minato-Morreale).

Given an interval ``[lower, upper]`` of Boolean functions (onset plus
don't-care set) represented as BDDs, :func:`isop` computes an irredundant
SOP cover ``C`` with ``lower <= C <= upper``.  This is the bridge back
from BDD-space computations (observability don't cares, feasible
subspaces, Eq. 1 of the paper) to the cube covers stored on network
nodes.
"""

from __future__ import annotations

from repro.cubes import Cover, Cube

from .manager import BddManager


def isop(manager: BddManager, lower: int, upper: int,
         num_vars: int | None = None) -> Cover:
    """Minato-Morreale irredundant SOP for the interval [lower, upper].

    ``num_vars`` sets the variable count of the returned cover (defaults
    to the manager's variable count).  Raises ValueError when
    ``lower => upper`` does not hold (the interval is empty).
    """
    if not manager.implies(lower, upper):
        raise ValueError("isop interval is empty: lower does not imply upper")
    n = manager.num_vars if num_vars is None else num_vars
    cache: dict[tuple[int, int], tuple[list[Cube], int]] = {}
    cubes, _ = _isop(manager, lower, upper, n, cache)
    return Cover(n, cubes)


def _isop(manager: BddManager, lower: int, upper: int, n: int,
          cache: dict) -> tuple[list[Cube], int]:
    """Returns (cubes, bdd) where bdd is the function of the cubes."""
    if lower == 0:
        return [], 0
    if upper == 1:
        return [Cube.full(n)], 1
    key = (lower, upper)
    if key in cache:
        return cache[key]

    var = min(manager.var_of(lower), manager.var_of(upper))
    l0, l1 = _cofactors(manager, lower, var)
    u0, u1 = _cofactors(manager, upper, var)

    # Minterms that can only be covered with the negative / positive
    # literal on this variable.
    lower_neg = manager.and_(l0, manager.not_(u1))
    cubes_neg, f_neg = _isop(manager, lower_neg, u0, n, cache)
    lower_pos = manager.and_(l1, manager.not_(u0))
    cubes_pos, f_pos = _isop(manager, lower_pos, u1, n, cache)

    # What remains must be covered by cubes free of this variable.
    rest = manager.or_(manager.and_(l0, manager.not_(f_neg)),
                       manager.and_(l1, manager.not_(f_pos)))
    cubes_free, f_free = _isop(manager, rest, manager.and_(u0, u1), n, cache)

    cubes = ([c.with_literal(var, 0) for c in cubes_neg]
             + [c.with_literal(var, 1) for c in cubes_pos]
             + cubes_free)
    func = manager.or_(
        f_free,
        manager.or_(manager.and_(manager.nvar(var), f_neg),
                    manager.and_(manager.var(var), f_pos)))
    cache[key] = (cubes, func)
    return cubes, func


def _cofactors(manager: BddManager, f: int, var: int) -> tuple[int, int]:
    if not manager.is_terminal(f) and manager.var_of(f) == var:
        return manager.lo_of(f), manager.hi_of(f)
    return f, f


def cover_from_bdd(manager: BddManager, f: int,
                   num_vars: int | None = None) -> Cover:
    """Exact SOP cover of a BDD function (no don't cares)."""
    return isop(manager, f, f, num_vars)
