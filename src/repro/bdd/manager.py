"""A reduced ordered binary decision diagram (ROBDD) package.

The manager owns all nodes; functions are plain integer node ids, so they
are hashable, comparable, and canonical (two ids are equal iff the
functions are equal under the manager's variable order).  This is the
engine behind the correctness checks of the iterative cube-selection
algorithm (paper Sec 2.2: "checking the implication condition for correct
approximation using BDDs") and behind exact approximation-percentage
accounting (minterm counting).

The implementation is a textbook ite-based ROBDD with a unique table and
an operation cache, plus an optional node budget so callers can fall back
to simulation-based checking when a global BDD blows up.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.cubes import Cover, Cube

_TERMINAL_VAR = 1 << 30  # ordered after every real variable


class BddOverflowError(RuntimeError):
    """Raised when the manager exceeds its configured node budget."""


class BddManager:
    """Owner of a shared ROBDD node store.

    Node ids 0 and 1 are the constant functions.  Variables are indexed
    ``0 .. num_vars-1`` and ordered by index.
    """

    #: Engine name; the numpy subclass overrides this.  Callers that can
    #: exploit batched operations test for them with ``hasattr``.
    engine = "python"

    def __init__(self, num_vars: int = 0, max_nodes: int | None = None):
        self.max_nodes = max_nodes
        #: Optional :class:`repro.guard.Budget` polled during node
        #: allocation, so a long build respects a wall-clock deadline
        #: cooperatively (checked every 1024 allocations).
        self.guard = None
        self._allocs = 0
        # Parallel arrays: variable index, low child (var=0), high child.
        self._var: list[int] = [_TERMINAL_VAR, _TERMINAL_VAR]
        self._lo: list[int] = [0, 1]
        self._hi: list[int] = [0, 1]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._num_vars = 0
        self.zero = 0
        self.one = 1
        for _ in range(num_vars):
            self.add_var()

    # ------------------------------------------------------------------
    # Node store
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_nodes(self) -> int:
        return len(self._var)

    def add_var(self) -> int:
        """Declare a new variable (appended at the end of the order)."""
        self._num_vars += 1
        return self._num_vars - 1

    def var_of(self, f: int) -> int:
        return self._var[f]

    def lo_of(self, f: int) -> int:
        return self._lo[f]

    def hi_of(self, f: int) -> int:
        return self._hi[f]

    def is_terminal(self, f: int) -> bool:
        return f <= 1

    def mark(self) -> tuple[int, int, int, int]:
        """Opaque snapshot of the node store for :meth:`rollback`.

        Every structure in the manager is append-only (the node arrays
        grow, the unique table and operation cache only gain entries),
        so a mark is just the current lengths.
        """
        return (len(self._var), len(self._unique),
                len(self._ite_cache), self._num_vars)

    def rollback(self, mark: tuple[int, int, int, int]) -> None:
        """Restore the exact node-store state captured by ``mark``.

        Truncates the node arrays and pops the entries inserted since
        the mark (dicts preserve insertion order and are never deleted
        from, so ``popitem`` removes exactly the post-mark additions —
        including every unique-table and ite-cache entry that mentions
        a rolled-back node, since an entry can only reference nodes
        that existed when it was inserted).  Variables declared after
        the mark are forgotten the same way the nodes are.  Afterwards
        the manager is bit-identical to its state at :meth:`mark` time:
        subsequent operations allocate the same node ids and hit/miss
        the caches the same way a manager that never advanced past the
        mark would.
        """
        n_nodes, n_unique, n_ite, n_vars = mark
        if len(self._var) < n_nodes or self._num_vars < n_vars or \
                len(self._unique) < n_unique or \
                len(self._ite_cache) < n_ite:
            raise ValueError("mark does not describe a prior state "
                             "of this manager")
        self._num_vars = n_vars
        del self._var[n_nodes:]
        del self._lo[n_nodes:]
        del self._hi[n_nodes:]
        while len(self._unique) > n_unique:
            self._unique.popitem()
        while len(self._ite_cache) > n_ite:
            self._ite_cache.popitem()

    def _mk(self, var: int, lo: int, hi: int) -> int:
        if lo == hi:
            return lo
        key = (var, lo, hi)
        node = self._unique.get(key)
        if node is not None:
            return node
        if self.max_nodes is not None and len(self._var) >= self.max_nodes:
            raise BddOverflowError(
                f"BDD node budget of {self.max_nodes} exceeded")
        self._allocs += 1
        if self.guard is not None and not self._allocs & 1023:
            self.guard.check_deadline("bdd allocation")
        node = len(self._var)
        self._var.append(var)
        self._lo.append(lo)
        self._hi.append(hi)
        self._unique[key] = node
        return node

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def var(self, index: int) -> int:
        """The function ``x_index``."""
        if not 0 <= index < self._num_vars:
            raise ValueError(f"variable {index} not declared")
        return self._mk(index, 0, 1)

    def nvar(self, index: int) -> int:
        """The function ``!x_index``."""
        if not 0 <= index < self._num_vars:
            raise ValueError(f"variable {index} not declared")
        return self._mk(index, 1, 0)

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f & g | !f & h`` — the universal connective."""
        if f == 1:
            return g
        if f == 0:
            return h
        if g == h:
            return g
        if g == 1 and h == 0:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        top = min(self._var[f], self._var[g], self._var[h])
        f0, f1 = self._cofactors(f, top)
        g0, g1 = self._cofactors(g, top)
        h0, h1 = self._cofactors(h, top)
        lo = self.ite(f0, g0, h0)
        hi = self.ite(f1, g1, h1)
        result = self._mk(top, lo, hi)
        self._ite_cache[key] = result
        return result

    def _cofactors(self, f: int, var: int) -> tuple[int, int]:
        if self._var[f] == var:
            return self._lo[f], self._hi[f]
        return f, f

    def not_(self, f: int) -> int:
        return self.ite(f, 0, 1)

    def and_(self, f: int, g: int) -> int:
        return self.ite(f, g, 0)

    def or_(self, f: int, g: int) -> int:
        return self.ite(f, 1, g)

    def xor_(self, f: int, g: int) -> int:
        return self.ite(f, self.not_(g), g)

    def xnor_(self, f: int, g: int) -> int:
        return self.ite(f, g, self.not_(g))

    def nand_(self, f: int, g: int) -> int:
        return self.not_(self.and_(f, g))

    def nor_(self, f: int, g: int) -> int:
        return self.not_(self.or_(f, g))

    def and_many(self, fs: Iterable[int]) -> int:
        result = 1
        for f in fs:
            result = self.and_(result, f)
        return result

    def or_many(self, fs: Iterable[int]) -> int:
        result = 0
        for f in fs:
            result = self.or_(result, f)
        return result

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------
    def restrict(self, f: int, var: int, value: int) -> int:
        """Cofactor ``f`` with respect to ``var = value``."""
        if self.is_terminal(f) or self._var[f] > var:
            return f
        if self._var[f] == var:
            return self._hi[f] if value else self._lo[f]
        lo = self.restrict(self._lo[f], var, value)
        hi = self.restrict(self._hi[f], var, value)
        return self._mk(self._var[f], lo, hi)

    def compose(self, f: int, var: int, g: int) -> int:
        """Substitute function ``g`` for variable ``var`` in ``f``."""
        hi = self.restrict(f, var, 1)
        lo = self.restrict(f, var, 0)
        return self.ite(g, hi, lo)

    def exists(self, f: int, variables: Iterable[int]) -> int:
        result = f
        for var in variables:
            result = self.or_(self.restrict(result, var, 0),
                              self.restrict(result, var, 1))
        return result

    def forall(self, f: int, variables: Iterable[int]) -> int:
        result = f
        for var in variables:
            result = self.and_(self.restrict(result, var, 0),
                               self.restrict(result, var, 1))
        return result

    def boolean_difference(self, f: int, var: int) -> int:
        """d f / d var: assignments where ``var`` is observable in ``f``."""
        return self.xor_(self.restrict(f, var, 0), self.restrict(f, var, 1))

    def support(self, f: int) -> set[int]:
        """Set of variable indices ``f`` depends on."""
        seen: set[int] = set()
        result: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in seen or self.is_terminal(node):
                continue
            seen.add(node)
            result.add(self._var[node])
            stack.append(self._lo[node])
            stack.append(self._hi[node])
        return result

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def implies(self, f: int, g: int) -> bool:
        """True iff f => g (i.e. f & !g is unsatisfiable)."""
        return self.and_(f, self.not_(g)) == 0

    def evaluate(self, f: int, assignment: int) -> bool:
        """Evaluate under a complete assignment given as a bit vector."""
        node = f
        while not self.is_terminal(node):
            if assignment >> self._var[node] & 1:
                node = self._hi[node]
            else:
                node = self._lo[node]
        return node == 1

    def sat_count(self, f: int, num_vars: int | None = None) -> int:
        """Number of satisfying assignments over ``num_vars`` variables."""
        n = self._num_vars if num_vars is None else num_vars
        cache: dict[int, int] = {}

        def count(node: int) -> int:
            # Count over variables strictly below var_of(node) in the order.
            if node == 0:
                return 0
            if node == 1:
                return 1
            if node in cache:
                return cache[node]
            var = self._var[node]
            lo, hi = self._lo[node], self._hi[node]
            lo_var = min(self._var[lo], n)
            hi_var = min(self._var[hi], n)
            total = (count(lo) << (lo_var - var - 1)) + \
                    (count(hi) << (hi_var - var - 1))
            cache[node] = total
            return total

        top = min(self._var[f], n)
        return count(f) << top

    def probability(self, f: int, var_probs: Sequence[float] | None = None) -> float:
        """P(f = 1) under independent input probabilities (default 0.5)."""
        cache: dict[int, float] = {0: 0.0, 1: 1.0}

        def prob(node: int) -> float:
            if node in cache:
                return cache[node]
            var = self._var[node]
            p = 0.5 if var_probs is None else var_probs[var]
            value = (1.0 - p) * prob(self._lo[node]) + p * prob(self._hi[node])
            cache[node] = value
            return value

        return prob(f)

    # -- batched queries -------------------------------------------------
    # Scalar fallbacks so callers stay engine-agnostic; the numpy engine
    # overrides these with single whole-table array sweeps.
    def implies_many(self, fs: Sequence[int],
                     gs: Sequence[int]) -> list[bool]:
        """``[f => g]`` for many root pairs."""
        return [self.implies(f, g) for f, g in zip(fs, gs)]

    def probability_many(self, fs: Sequence[int],
                         var_probs: Sequence[float] | None = None
                         ) -> list[float]:
        """``P(f = 1)`` for many roots."""
        return [self.probability(f, var_probs) for f in fs]

    def sat_count_many(self, fs: Sequence[int],
                       num_vars: int | None = None) -> list[int]:
        """Exact model counts for many roots."""
        return [self.sat_count(f, num_vars) for f in fs]

    def evaluate_many(self, fs: Sequence[int], assignments) -> list[list[bool]]:
        """Evaluate many roots under many assignments.

        ``assignments`` is a sequence of rows of 0/1 variable values
        (row ``j``, column ``v`` is the value of variable ``v``).
        """
        packed = []
        for row in assignments:
            word = 0
            for i, bit in enumerate(row):
                if bit:
                    word |= 1 << i
            packed.append(word)
        return [[self.evaluate(f, word) for word in packed] for f in fs]

    def any_sat(self, f: int) -> int | None:
        """One satisfying assignment (bit vector), or None if f == 0."""
        if f == 0:
            return None
        assignment = 0
        node = f
        while not self.is_terminal(node):
            if self._hi[node] != 0:
                assignment |= 1 << self._var[node]
                node = self._hi[node]
            else:
                node = self._lo[node]
        return assignment

    def iter_sat(self, f: int, num_vars: int | None = None) -> Iterator[int]:
        """Yield all satisfying assignments.  Exponential; tests only."""
        n = self._num_vars if num_vars is None else num_vars
        for assignment in range(1 << n):
            if self.evaluate(f, assignment):
                yield assignment

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def from_cube(self, cube: Cube, var_map: Sequence[int] | None = None) -> int:
        """Build the BDD of a single cube.

        ``var_map[i]`` gives the BDD variable for cube variable ``i``;
        identity by default.
        """
        result = 1
        for i in range(cube.n):
            lit = cube.literal(i)
            if lit == "-":
                continue
            var = i if var_map is None else var_map[i]
            node = self.var(var) if lit == "1" else self.nvar(var)
            result = self.and_(result, node)
        return result

    def from_cover(self, cover: Cover,
                   var_map: Sequence[int] | None = None) -> int:
        """Build the BDD of an SOP cover."""
        return self.or_many(self.from_cube(cube, var_map)
                            for cube in cover.cubes)

    def to_dot(self, f: int, name: str = "bdd",
               var_names: Sequence[str] | None = None) -> str:
        """Graphviz dot text for the BDD rooted at ``f`` (debug aid).

        Dashed edges are low (0) branches, solid edges high (1).
        """
        lines = [f"digraph {name} {{",
                 '  node [shape=circle];',
                 '  t0 [shape=box, label="0"];',
                 '  t1 [shape=box, label="1"];']
        seen: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in seen or self.is_terminal(node):
                continue
            seen.add(node)
            var = self._var[node]
            label = var_names[var] if var_names is not None else f"x{var}"
            lines.append(f'  n{node} [label="{label}"];')
            for child, style in ((self._lo[node], "dashed"),
                                 (self._hi[node], "solid")):
                target = f"t{child}" if self.is_terminal(child) \
                    else f"n{child}"
                lines.append(f"  n{node} -> {target} [style={style}];")
                stack.append(child)
        if self.is_terminal(f):
            lines.append(f"  root [shape=none, label=\"\"];"
                         f" root -> t{f};")
        lines.append("}")
        return "\n".join(lines)

    def size(self, f: int) -> int:
        """Number of distinct nodes reachable from ``f`` (incl. terminals)."""
        seen: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if not self.is_terminal(node):
                stack.append(self._lo[node])
                stack.append(self._hi[node])
        return len(seen)
