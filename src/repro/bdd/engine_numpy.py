"""Vectorized struct-of-arrays BDD engine.

:class:`NumpyBddManager` keeps the dict-based :class:`BddManager`
storage as the source of truth — every scalar operation, ``mark()`` /
``rollback()``, guard polling, and the lint certificate machinery
behave exactly as in the oracle engine — and layers numpy mirrors on
top for batched work:

* struct-of-arrays int64 ``(var, lo, hi)`` node mirrors, synced lazily
  from the append-only python lists (a watermark records how far the
  mirror is valid, so scalar and batched operations interleave freely);
* a vectorized open-addressing unique table (linear probing, batched
  hashing) used by :meth:`_mk_level` to hash-cons whole frontiers of
  nodes at once;
* an array-backed computed table for the batched apply operator;
* :meth:`apply_many` — a breadth-first apply that buckets pending
  subproblems by top-variable level, deduplicates each bucket globally
  (``np.unique``), expands all cofactors of a level in one shot and
  rebuilds results bottom-up with batched hash-consing;
* whole-table ``probability`` / ``sat_count`` / ``evaluate`` sweeps
  that answer many roots with a single bottom-up pass.

Node ids remain allocation-ordered small integers, so ids of a batched
result are canonical *within* the manager (the unique table guarantees
one id per ``(var, lo, hi)`` triple) even though the allocation order —
and hence the numbering of intermediate nodes — differs from what a
scalar recursion would produce.  All flow-level verdicts (implication,
equality, probability) are function-level and therefore identical
between engines.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .manager import BddManager, BddOverflowError

#: Batched apply operator codes.
OP_AND, OP_OR, OP_XOR, OP_DIFF = 0, 1, 2, 3

_M32 = np.int64(0xFFFFFFFF)


def _hash_mix(vars_: np.ndarray, keys: np.ndarray, mask: int) -> np.ndarray:
    """Vectorized slot hash of ``(var, lo<<32|hi)`` pairs."""
    h = keys.astype(np.uint64)
    h ^= h >> np.uint64(33)
    h *= np.uint64(0xFF51AFD7ED558CCD)
    h ^= vars_.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
    h ^= h >> np.uint64(29)
    return (h & np.uint64(mask)).astype(np.int64)


class NumpyBddManager(BddManager):
    """Struct-of-arrays BDD manager with batched frontier operations."""

    engine = "numpy"

    def __init__(self, num_vars: int = 0, max_nodes: int | None = None):
        super().__init__(num_vars, max_nodes=max_nodes)
        self._np_cap = 1024
        self._np_var = np.empty(self._np_cap, np.int64)
        self._np_lo = np.empty(self._np_cap, np.int64)
        self._np_hi = np.empty(self._np_cap, np.int64)
        self._np_n = 0
        # Unique-table mirror: open addressing, linear probing.
        self._ht_bits = 13
        self._ht_var = np.zeros(1 << self._ht_bits, np.int64)
        self._ht_key = np.zeros(1 << self._ht_bits, np.int64)
        self._ht_node = np.full(1 << self._ht_bits, -1, np.int64)
        self._ht_count = 0
        self._ht_synced = 0
        # Computed table for the batched apply operator.
        self._ac_bits = 13
        self._ac_op = np.zeros(1 << self._ac_bits, np.int64)
        self._ac_key = np.zeros(1 << self._ac_bits, np.int64)
        self._ac_res = np.full(1 << self._ac_bits, -1, np.int64)
        self._ac_count = 0

    # ------------------------------------------------------------------
    # Mirror maintenance
    # ------------------------------------------------------------------
    def _sync_nodes(self) -> None:
        n = len(self._var)
        if self._np_n >= n:
            return
        if n > self._np_cap:
            cap = max(self._np_cap * 2, n + 1024)
            for name in ("_np_var", "_np_lo", "_np_hi"):
                old = getattr(self, name)
                new = np.empty(cap, np.int64)
                new[:self._np_n] = old[:self._np_n]
                setattr(self, name, new)
            self._np_cap = cap
        s = self._np_n
        self._np_var[s:n] = self._var[s:n]
        self._np_lo[s:n] = self._lo[s:n]
        self._np_hi[s:n] = self._hi[s:n]
        self._np_n = n

    def _ht_grow_for(self, extra: int) -> None:
        if (self._ht_count + extra) * 2 < (1 << self._ht_bits):
            return
        while (self._ht_count + extra) * 2 >= (1 << self._ht_bits):
            self._ht_bits += 1
        self._ht_rebuild()

    def _ht_rebuild(self) -> None:
        """Re-insert every live node into a fresh table."""
        self._sync_nodes()
        # Nodes born on the scalar path never passed _ht_grow_for; size
        # the table for the full store or the probe loop cannot finish.
        while (self._np_n + 1) * 2 >= (1 << self._ht_bits):
            self._ht_bits += 1
        size = 1 << self._ht_bits
        self._ht_var = np.zeros(size, np.int64)
        self._ht_key = np.zeros(size, np.int64)
        self._ht_node = np.full(size, -1, np.int64)
        self._ht_count = 0
        n = self._np_n
        if n > 2:
            ids = np.arange(2, n, dtype=np.int64)
            keys = (self._np_lo[2:n] << 32) | self._np_hi[2:n]
            self._ht_insert(self._np_var[2:n], keys, ids)
        self._ht_synced = n

    def _ht_sync(self) -> None:
        """Insert nodes created through the scalar ``_mk`` path."""
        self._sync_nodes()
        n = self._np_n
        s = max(self._ht_synced, 2)
        if s < n:
            self._ht_grow_for(n - s)
            ids = np.arange(s, n, dtype=np.int64)
            keys = (self._np_lo[s:n] << 32) | self._np_hi[s:n]
            self._ht_insert(self._np_var[s:n], keys, ids)
        self._ht_synced = n

    def _ht_insert(self, vars_, keys, nodes) -> None:
        """Batch-insert distinct, absent ``(var, key) -> node`` entries."""
        mask = (1 << self._ht_bits) - 1
        h = _hash_mix(vars_, keys, mask)
        cur = np.arange(keys.size)
        while cur.size:
            slots = h[cur]
            empty = self._ht_node[slots] < 0
            placed = np.zeros(keys.size, bool)
            claimants = cur[empty]
            if claimants.size:
                uslots, first = np.unique(slots[empty], return_index=True)
                win = claimants[first]
                self._ht_var[uslots] = vars_[win]
                self._ht_key[uslots] = keys[win]
                self._ht_node[uslots] = nodes[win]
                self._ht_count += win.size
                placed[win] = True
            cur = cur[~placed[cur]]
            h[cur] = (h[cur] + 1) & mask

    def _alloc_batch(self, var: int, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        k = int(lo.size)
        n = len(self._var)
        if self.max_nodes is not None and n + k > self.max_nodes:
            raise BddOverflowError(
                f"BDD node budget of {self.max_nodes} exceeded")
        self._allocs += k
        if self.guard is not None:
            self.guard.check_deadline("bdd allocation")
        ids = np.arange(n, n + k, dtype=np.int64)
        lo_list = lo.tolist()
        hi_list = hi.tolist()
        self._var.extend([var] * k)
        self._lo.extend(lo_list)
        self._hi.extend(hi_list)
        unique = self._unique
        for i in range(k):
            unique[(var, lo_list[i], hi_list[i])] = n + i
        self._sync_nodes()
        return ids

    def _ht_get_or_make(self, var: int, lo: np.ndarray,
                        hi: np.ndarray) -> np.ndarray:
        """Hash-cons a batch of distinct ``(lo, hi)`` pairs at ``var``."""
        self._ht_sync()
        k = lo.size
        self._ht_grow_for(k)
        mask = (1 << self._ht_bits) - 1
        key = (lo << 32) | hi
        out = np.full(k, -1, np.int64)
        h = _hash_mix(np.full(k, var, np.int64), key, mask)
        cur = np.arange(k)
        while cur.size:
            slots = h[cur]
            node = self._ht_node[slots]
            empty = node < 0
            hit = ~empty & (self._ht_var[slots] == var) \
                & (self._ht_key[slots] == key[cur])
            out[cur[hit]] = node[hit]
            claimants = cur[empty]
            if claimants.size:
                uslots, first = np.unique(slots[empty], return_index=True)
                win = claimants[first]
                new_ids = self._alloc_batch(var, lo[win], hi[win])
                self._ht_var[uslots] = var
                self._ht_key[uslots] = key[win]
                self._ht_node[uslots] = new_ids
                self._ht_count += win.size
                out[win] = new_ids
            cur = cur[out[cur] < 0]
            h[cur] = (h[cur] + 1) & mask
        self._ht_synced = len(self._var)
        return out

    # ------------------------------------------------------------------
    # Computed table
    # ------------------------------------------------------------------
    def _ac_grow_for(self, extra: int) -> None:
        if (self._ac_count + extra) * 2 < (1 << self._ac_bits):
            return
        old_op, old_key, old_res = self._ac_op, self._ac_key, self._ac_res
        live = old_res >= 0
        while (self._ac_count + extra) * 2 >= (1 << self._ac_bits):
            self._ac_bits += 1
        size = 1 << self._ac_bits
        self._ac_op = np.zeros(size, np.int64)
        self._ac_key = np.zeros(size, np.int64)
        self._ac_res = np.full(size, -1, np.int64)
        self._ac_count = 0
        if live.any():
            self._ac_insert(old_op[live], old_key[live], old_res[live])

    def _ac_insert(self, ops, keys, res) -> None:
        mask = (1 << self._ac_bits) - 1
        h = _hash_mix(ops, keys, mask)
        cur = np.arange(keys.size)
        while cur.size:
            slots = h[cur]
            empty = self._ac_res[slots] < 0
            placed = np.zeros(keys.size, bool)
            claimants = cur[empty]
            if claimants.size:
                uslots, first = np.unique(slots[empty], return_index=True)
                win = claimants[first]
                self._ac_op[uslots] = ops[win]
                self._ac_key[uslots] = keys[win]
                self._ac_res[uslots] = res[win]
                self._ac_count += win.size
                placed[win] = True
            cur = cur[~placed[cur]]
            h[cur] = (h[cur] + 1) & mask

    def _ac_store(self, op: int, keys: np.ndarray, res: np.ndarray) -> None:
        self._ac_grow_for(keys.size)
        self._ac_insert(np.full(keys.size, op, np.int64), keys, res)

    def _ac_lookup(self, op: int, keys: np.ndarray) -> np.ndarray:
        mask = (1 << self._ac_bits) - 1
        out = np.full(keys.size, -1, np.int64)
        h = _hash_mix(np.full(keys.size, op, np.int64), keys, mask)
        cur = np.arange(keys.size)
        while cur.size:
            slots = h[cur]
            res = self._ac_res[slots]
            empty = res < 0
            hit = ~empty & (self._ac_op[slots] == op) \
                & (self._ac_key[slots] == keys[cur])
            out[cur[hit]] = res[hit]
            cur = cur[~(empty | hit)]
            h[cur] = (h[cur] + 1) & mask
        return out

    def _ac_wipe(self) -> None:
        self._ac_res.fill(-1)
        self._ac_count = 0

    # ------------------------------------------------------------------
    # Batched apply
    # ------------------------------------------------------------------
    #: Below these sizes the scalar recursion (dict caches) wins over
    #: array-operation overhead: whole requests and per-level frontier
    #: buckets smaller than the cutoff take the scalar ite path.
    BATCH_CUTOFF = 128
    BUCKET_CUTOFF = 96

    def _scalar_op(self, op: int, f: int, g: int) -> int:
        if op == OP_AND:
            return self.and_(f, g)
        if op == OP_OR:
            return self.or_(f, g)
        if op == OP_XOR:
            return self.xor_(f, g)
        return self.and_(f, self.not_(g))

    def apply_many(self, op: int, fs, gs) -> np.ndarray:
        """Apply a binary operator to many root pairs at once.

        Breadth-first: unresolved subproblems are bucketed by their top
        variable, each bucket is globally deduplicated, and the whole
        level's cofactor expansion / hash-consing happens in a handful
        of array operations.  Results are canonical node ids.  Small
        requests and small frontier buckets are delegated to the scalar
        recursion, where python dict caches beat array overhead.
        """
        fs = np.asarray(fs, dtype=np.int64)
        gs = np.asarray(gs, dtype=np.int64)
        if self.guard is not None:
            self.guard.check_deadline("bdd batched apply")
        if fs.size == 0:
            return np.empty(0, np.int64)
        if fs.size < self.BATCH_CUTOFF:
            return np.fromiter(
                (self._scalar_op(op, int(f), int(g))
                 for f, g in zip(fs, gs)), np.int64, fs.size)
        self._sync_nodes()
        pending: list[list] = [[] for _ in range(self._num_vars)]
        root = self._resolve_batch(op, fs, gs, pending)
        records: dict[int, tuple] = {}
        results: dict[int, np.ndarray] = {}
        scalar_levels: list[int] = []
        for v in range(self._num_vars):
            if not pending[v]:
                continue
            keys = np.unique(np.concatenate(pending[v]))
            if keys.size < self.BUCKET_CUTOFF:
                # Sparse frontier: resolve the whole bucket scalar-side.
                records[v] = (keys, None)
                results[v] = np.fromiter(
                    (self._scalar_op(op, int(k) >> 32,
                                     int(k) & 0xFFFFFFFF)
                     for k in keys), np.int64, keys.size)
                scalar_levels.append(v)
                self._sync_nodes()
                continue
            kf = keys >> 32
            kg = keys & _M32
            var, lo, hi = self._np_var, self._np_lo, self._np_hi
            f_has = var[kf] == v
            g_has = var[kg] == v
            f01 = np.concatenate((np.where(f_has, lo[kf], kf),
                                  np.where(f_has, hi[kf], kf)))
            g01 = np.concatenate((np.where(g_has, lo[kg], kg),
                                  np.where(g_has, hi[kg], kg)))
            records[v] = (keys, self._resolve_batch(op, f01, g01, pending))
        for v in sorted(records, reverse=True):
            keys, children = records[v]
            if children is None:
                continue  # scalar-resolved bucket
            both = self._gather(children, records, results)
            out = self._mk_level(v, both[:keys.size], both[keys.size:])
            results[v] = out
            self._ac_store(op, keys, out)
        for v in scalar_levels:
            self._ac_store(op, records[v][0], results[v])
        return self._gather(root, records, results)

    def _resolve_batch(self, op: int, f: np.ndarray, g: np.ndarray,
                       pending: list) -> tuple:
        """Resolve trivial/cached pairs; enqueue the rest by top var."""
        if op != OP_DIFF:  # commutative: normalize for cache sharing
            swap = f > g
            if swap.any():
                f, g = np.where(swap, g, f), np.where(swap, f, g)
        res = np.full(f.size, -1, np.int64)

        def fill(mask, values) -> None:
            m = mask & (res < 0)
            res[m] = values[m] if isinstance(values, np.ndarray) else values

        if op == OP_AND:
            fill(f == 0, 0)          # after normalization f <= g
            fill(f == 1, g)
            fill(f == g, f)
        elif op == OP_OR:
            fill(f == 1, 1)
            fill(g == 1, 1)
            fill(f == 0, g)
            fill(f == g, f)
        elif op == OP_XOR:
            fill(f == g, 0)
            fill(f == 0, g)
        else:  # OP_DIFF: f & !g
            fill(f == 0, 0)
            fill(g == 1, 0)
            fill(f == g, 0)
            fill(g == 0, f)
        key = (f << 32) | g
        open_ = res < 0
        if open_.any():
            cached = self._ac_lookup(op, key[open_])
            sub = res[open_]
            sub[cached >= 0] = cached[cached >= 0]
            res[open_] = sub
        open_ = res < 0
        top = np.full(f.size, -1, np.int64)
        if open_.any():
            t = np.minimum(self._np_var[f[open_]], self._np_var[g[open_]])
            top[open_] = t
            open_keys = key[open_]
            for v in np.unique(t):
                pending[int(v)].append(open_keys[t == v])
        return res, key, top

    def _gather(self, resolved: tuple, records: dict,
                results: dict) -> np.ndarray:
        res, key, top = resolved
        out = res.copy()
        need = out < 0
        if need.any():
            for v in np.unique(top[need]):
                m = need & (top == v)
                keys_v = records[int(v)][0]
                pos = np.searchsorted(keys_v, key[m])
                out[m] = results[int(v)][pos]
        return out

    def _mk_level(self, var: int, lo: np.ndarray,
                  hi: np.ndarray) -> np.ndarray:
        """Batched ``_mk``: collapse redundant tests, hash-cons the rest."""
        out = np.where(lo == hi, lo, np.int64(-1))
        need = out < 0
        if need.any():
            packed = (lo[need] << 32) | hi[need]
            upacked, inverse = np.unique(packed, return_inverse=True)
            nodes = self._ht_get_or_make(var, upacked >> 32, upacked & _M32)
            out[need] = nodes[inverse]
        return out

    # ------------------------------------------------------------------
    # Batched public operations
    # ------------------------------------------------------------------
    def not_many(self, fs) -> np.ndarray:
        fs = np.asarray(fs, dtype=np.int64)
        return self.apply_many(OP_XOR, fs, np.ones(fs.size, np.int64))

    def implies_many(self, fs, gs) -> list[bool]:
        bad = self.apply_many(OP_DIFF, fs, gs)
        return [b == 0 for b in bad.tolist()]

    def restrict_many(self, fs, var: int, value: int) -> list[int]:
        """Cofactor many roots w.r.t. ``var = value`` in one table sweep."""
        self._sync_nodes()
        n = self._np_n
        sub = np.arange(n, dtype=np.int64)   # node -> restricted node
        node_var = self._np_var[:n].copy()
        lo = self._np_lo[:n]
        hi = self._np_hi[:n]
        at = node_var == var
        sub[at] = (hi if value else lo)[at]
        above = np.flatnonzero(node_var < var)
        if above.size:
            order = np.argsort(node_var[above], kind="stable")
            above = above[order]
            vs = node_var[above]
            bounds = np.flatnonzero(np.diff(vs)) + 1
            starts = np.concatenate(([0], bounds))
            ends = np.concatenate((bounds, [vs.size]))
            for gi in range(starts.size - 1, -1, -1):
                idx = above[starts[gi]:ends[gi]]
                v = int(vs[starts[gi]])
                sub[idx] = self._mk_level(v, sub[lo[idx]], sub[hi[idx]])
        return [int(sub[f]) for f in np.asarray(fs, dtype=np.int64)]

    def compose_many(self, fs, var: int, g: int) -> list[int]:
        """Substitute ``g`` for ``var`` in many roots at once."""
        fs = np.asarray(fs, dtype=np.int64)
        hi = np.asarray(self.restrict_many(fs, var, 1), np.int64)
        lo = np.asarray(self.restrict_many(fs, var, 0), np.int64)
        gv = np.full(fs.size, g, np.int64)
        then = self.apply_many(OP_AND, gv, hi)
        ng = self.not_many(gv[:1])[0] if fs.size else 0
        other = self.apply_many(OP_AND, np.full(fs.size, ng, np.int64), lo)
        return [int(r) for r in self.apply_many(OP_OR, then, other)]

    # ------------------------------------------------------------------
    # Whole-table query sweeps
    # ------------------------------------------------------------------
    def probabilities_all(self,
                          var_probs: Sequence[float] | None = None
                          ) -> np.ndarray:
        """P(node = 1) for every node: one bottom-up levelized sweep.

        Bit-identical to the scalar recursion — each node evaluates the
        same ``(1-p)*P(lo) + p*P(hi)`` expression in float64.
        """
        self._sync_nodes()
        n = self._np_n
        var = self._np_var[:n]
        lo = self._np_lo[:n]
        hi = self._np_hi[:n]
        prob = np.zeros(n, np.float64)
        if n > 1:
            prob[1] = 1.0
        if n > 2:
            order = np.argsort(var[2:], kind="stable").astype(np.int64) + 2
            vs = var[order]
            bounds = np.flatnonzero(np.diff(vs)) + 1
            starts = np.concatenate(([0], bounds))
            ends = np.concatenate((bounds, [vs.size]))
            for gi in range(starts.size - 1, -1, -1):
                idx = order[starts[gi]:ends[gi]]
                v = int(vs[starts[gi]])
                p = 0.5 if var_probs is None else float(var_probs[v])
                prob[idx] = (1.0 - p) * prob[lo[idx]] + p * prob[hi[idx]]
        return prob

    def probability_many(self, fs,
                         var_probs: Sequence[float] | None = None
                         ) -> list[float]:
        table = self.probabilities_all(var_probs)
        return [float(table[f]) for f in fs]

    def sat_count_many(self, fs, num_vars: int | None = None) -> list[int]:
        """Exact model counts for many roots in one shared sweep.

        Counts stay python big ints: wide circuits (i10 has 257 inputs)
        overflow int64 immediately.
        """
        n = self._num_vars if num_vars is None else num_vars
        var, lo, hi = self._var, self._lo, self._hi
        order = sorted(range(2, len(var)), key=lambda i: -var[i])
        count = [0] * len(var)
        if len(var) > 1:
            count[1] = 1
        for i in order:
            v = var[i]
            l, h = lo[i], hi[i]
            lo_var = min(var[l], n)
            hi_var = min(var[h], n)
            count[i] = (count[l] << (lo_var - v - 1)) + \
                       (count[h] << (hi_var - v - 1))
        return [count[f] << min(var[f], n) for f in fs]

    def evaluate_many(self, fs, assignments) -> np.ndarray:
        """Evaluate many roots under many assignments.

        ``assignments`` is a ``(k, num_vars)`` 0/1 array; the result is
        a ``(len(fs), k)`` boolean array.
        """
        self._sync_nodes()
        fs = np.asarray(fs, dtype=np.int64)
        assignments = np.asarray(assignments)
        node = np.broadcast_to(fs[:, None],
                               (fs.size, assignments.shape[0])).copy()
        ii, jj = np.nonzero(node > 1)
        while ii.size:
            nd = node[ii, jj]
            bit = assignments[jj, self._np_var[nd]]
            node[ii, jj] = np.where(bit.astype(bool),
                                    self._np_hi[nd], self._np_lo[nd])
            keep = node[ii, jj] > 1
            ii, jj = ii[keep], jj[keep]
        return node == 1

    # ------------------------------------------------------------------
    # Rollback
    # ------------------------------------------------------------------
    def rollback(self, mark: tuple[int, int, int, int]) -> None:
        super().rollback(mark)
        self._np_n = min(self._np_n, len(self._var))
        # Mirror tables may reference rolled-back nodes: rebuild the
        # unique-table mirror from the surviving store and wipe the
        # computed table (recomputation is deterministic, so replayed
        # batched operations hash-cons the same ids the oracle would).
        self._ht_rebuild()
        self._ac_wipe()
