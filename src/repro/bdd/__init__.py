"""Reduced ordered BDDs: manager, ISOP extraction, node budgets."""

from .manager import BddManager, BddOverflowError
from .isop import cover_from_bdd, isop

__all__ = ["BddManager", "BddOverflowError", "cover_from_bdd", "isop"]
