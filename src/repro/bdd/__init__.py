"""Reduced ordered BDDs: manager, ISOP extraction, node budgets.

Two engines share one node-id contract (append-only allocation, ids are
canonical within a manager): the dict-based oracle
(:class:`BddManager`) and the vectorized struct-of-arrays engine
(:class:`NumpyBddManager`).  :func:`make_manager` picks one from the
``REPRO_BDD_ENGINE`` environment variable (``numpy`` by default,
``python`` selects the oracle) — the switch exists so every flow result
can be cross-checked against the oracle bit for bit.
"""

import os

from .manager import BddManager, BddOverflowError
from .isop import cover_from_bdd, isop

_ENGINES = ("numpy", "python")


def bdd_engine() -> str:
    """The engine name ``make_manager`` resolves to right now."""
    engine = os.environ.get("REPRO_BDD_ENGINE", "numpy").strip().lower()
    if engine not in _ENGINES:
        raise ValueError(
            f"REPRO_BDD_ENGINE={engine!r}: expected one of {_ENGINES}")
    return engine


def make_manager(num_vars: int = 0,
                 max_nodes: "int | None" = None) -> BddManager:
    """Construct a BDD manager for the currently selected engine."""
    if bdd_engine() == "numpy":
        from .engine_numpy import NumpyBddManager
        return NumpyBddManager(num_vars, max_nodes=max_nodes)
    return BddManager(num_vars, max_nodes=max_nodes)


def __getattr__(name):
    if name == "NumpyBddManager":
        from .engine_numpy import NumpyBddManager
        return NumpyBddManager
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = ["BddManager", "BddOverflowError", "NumpyBddManager",
           "bdd_engine", "cover_from_bdd", "isop", "make_manager"]
