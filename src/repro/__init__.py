"""repro — Approximate logic circuits for low-overhead, non-intrusive
concurrent error detection.

A from-scratch Python reproduction of Choudhury & Mohanram, DATE 2008.
The package layers a complete logic-synthesis substrate (two-level
covers, BDDs, multi-level networks, technology mapping, bit-parallel
fault simulation, reliability analysis) under the paper's contribution:
approximate logic synthesis (``repro.approx``) and its CED application
(``repro.ced``).

Quickstart::

    from repro.bench import load_benchmark
    from repro.ced import run_ced_flow

    net = load_benchmark("cmb")
    result = run_ced_flow(net)
    print(result.summary())
"""

from .approx import (ApproxConfig, ApproxResult, NodeType,
                     approximation_percentage, assign_types,
                     synthesize_approximation)
from .ced import (CedAssembly, CedFlowResult, CoverageResult, build_ced,
                  evaluate_ced, run_ced_flow)
from .cubes import Cover, Cube
from .network import Network, parse_blif, read_blif, write_blif
from .reliability import analyze_reliability
from .synth import (LIB_GENERIC, MappedNetlist, TABLE3_SCRIPTS, quick_map,
                    technology_map)

__version__ = "0.1.0"

__all__ = [
    "ApproxConfig", "ApproxResult", "CedAssembly", "CedFlowResult",
    "CoverageResult", "Cover", "Cube", "LIB_GENERIC", "MappedNetlist",
    "Network", "NodeType", "TABLE3_SCRIPTS", "analyze_reliability",
    "approximation_percentage", "assign_types", "build_ced",
    "evaluate_ced", "parse_blif", "quick_map", "read_blif",
    "run_ced_flow", "synthesize_approximation", "technology_map",
    "write_blif", "__version__",
]
