"""Static discharge of the paper's per-PO implication condition.

The Sec 2.2 check asks, per primary output: does ``G => F`` hold
(1-approximation; ``F => G`` for direction 0), where F is the original
PO function and G the approximate one?  The flow normally answers with
BDDs or SAT.  Many implications, however, are decidable *structurally*,
because the synthesis builds G from F by directional per-node edits:
cubes dropped from a cover, nodes collapsed to constants, cones left
untouched.  :class:`StaticDischarger` proves exactly those cases with
abstract interpretation — no BDD node, no SAT clause:

1. **Constants** — if either side is proven constant in the direction
   that makes the implication vacuous (G ≡ 0 or F ≡ 1 for direction 1),
   it holds; two *conflicting* constants refute it outright, with an
   explicit witness.
2. **Structural equality** — byte-identical cone structure over shared
   PIs (hash-guided, exactly confirmed) gives F ≡ G.
3. **Directional relations** — a forward abstract interpretation over
   the name-matched pair assigns every approx signal a relation in
   {EQ, LE, GE, TOP} to its original counterpart, composing per-fanin
   relations through the node's syntactic polarity with cube-wise
   cover containment.  A PO relation of LE proves direction 1, GE
   proves direction 0.

Every positive or negative answer is a theorem (the analyses only ever
over-approximate toward "unknown"), so discharging a check statically
can never change a flow verdict — the bit-identity property the
benchmarks assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cubes import Cover, Cube
from repro.network import Network

from .context import NetworkAnalyses
from .domains import cones_structurally_equal, cover_implies
from .lattice import (REL_EQ, REL_GE, REL_LE, REL_TOP,
                      compose_relations, flip_relation)


@dataclass
class StaticProof:
    """Outcome of one static implication attempt.

    ``holds`` is True (proved), False (refuted, with a concrete
    ``witness`` assignment) or None (not statically decidable — the
    caller falls through to BDD/SAT).  ``reason`` names the discharge
    rule for certificates, stats, and lint messages.
    """

    holds: bool | None
    reason: str
    detail: dict = field(default_factory=dict)
    witness: dict[str, bool] | None = None


class StaticDischarger:
    """Implication prover over one original/approximate network pair.

    Analyses are pulled from per-network :class:`NetworkAnalyses`
    bundles (shareable through the flow's ``AnalysisContext``), and the
    relational map is computed once per approx version, lazily.
    """

    def __init__(self, original: Network, approx: Network,
                 original_analyses: NetworkAnalyses | None = None,
                 approx_analyses: NetworkAnalyses | None = None):
        self.original = original
        self.approx = approx
        self.oa = original_analyses if original_analyses is not None \
            else NetworkAnalyses(original)
        self.aa = approx_analyses if approx_analyses is not None \
            else NetworkAnalyses(approx)
        self._relations: dict[str, str] | None = None
        self._rel_version: int | None = None
        #: Discharge attempts by outcome reason (includes "unknown").
        self.stats: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def implication(self, po: str, direction: int) -> StaticProof:
        """Try to statically decide the Sec 2.2 condition for one PO."""
        proof = self._implication(po, direction)
        self.stats[proof.reason] = self.stats.get(proof.reason, 0) + 1
        return proof

    def _implication(self, po: str, direction: int) -> StaticProof:
        original, approx = self.original, self.approx
        if original.is_input(po) and approx.is_input(po):
            return StaticProof(True, "shared-pi")

        # Rule 1: constants make the implication vacuous or absurd.
        co = self._const(self.oa, original, po)
        ca = self._const(self.aa, approx, po)
        if direction == 1:                      # need G => F
            if ca == 0:
                return StaticProof(True, "const",
                                   {"approx_const": 0})
            if co == 1:
                return StaticProof(True, "const",
                                   {"original_const": 1})
            if ca == 1 and co == 0:
                return StaticProof(False, "const-conflict",
                                   {"approx_const": 1,
                                    "original_const": 0},
                                   witness=self._any_input())
        else:                                   # need F => G
            if co == 0:
                return StaticProof(True, "const",
                                   {"original_const": 0})
            if ca == 1:
                return StaticProof(True, "const",
                                   {"approx_const": 1})
            if co == 1 and ca == 0:
                return StaticProof(False, "const-conflict",
                                   {"original_const": 1,
                                    "approx_const": 0},
                                   witness=self._any_input())

        # Rule 2: structurally identical cones compute equal functions.
        if self._structurally_equal(po):
            return StaticProof(True, "struct-eq")

        # Rule 3: directional relation composed across the pair.
        rel = self.relations().get(po, REL_TOP)
        if direction == 1 and rel in (REL_EQ, REL_LE):
            return StaticProof(True, "relation", {"relation": rel})
        if direction == 0 and rel in (REL_EQ, REL_GE):
            return StaticProof(True, "relation", {"relation": rel})
        return StaticProof(None, "unknown", {"relation": rel})

    def discharge_rate(self) -> dict:
        """Stats summary: attempts, discharges, per-reason counts."""
        total = sum(self.stats.values())
        solved = total - self.stats.get("unknown", 0)
        return {
            "attempts": total,
            "discharged": solved,
            "rate": round(solved / total, 4) if total else 0.0,
            "reasons": dict(sorted(self.stats.items())),
        }

    # ------------------------------------------------------------------
    # Constants
    # ------------------------------------------------------------------
    @staticmethod
    def _const(bundle: NetworkAnalyses, network: Network,
               signal: str) -> int | None:
        if network.is_input(signal):
            return None
        return bundle.constants.get(signal)

    def _any_input(self) -> dict[str, bool]:
        """With both sides constant, every assignment is a witness."""
        return {pi: False for pi in self.original.inputs}

    # ------------------------------------------------------------------
    # Structural equality
    # ------------------------------------------------------------------
    def _structurally_equal(self, po: str) -> bool:
        ho = self.oa.structure_hashes.get(po)
        ha = self.aa.structure_hashes.get(po)
        if ho is None or ha is None or ho != ha:
            return False
        return cones_structurally_equal(self.original, po,
                                        self.approx, po)

    # ------------------------------------------------------------------
    # Relational abstract interpretation
    # ------------------------------------------------------------------
    def relations(self) -> dict[str, str]:
        """Relation of every approx signal to its original namesake.

        One forward topological pass over the approx network; the
        solution is memoized per approx mutation version.
        """
        if self._relations is not None \
                and self._rel_version == self.approx.version:
            return self._relations
        original, approx = self.original, self.approx
        rel: dict[str, str] = {}
        orig_inputs = set(original.inputs)
        for pi in approx.inputs:
            rel[pi] = REL_EQ if pi in orig_inputs else REL_TOP
        o_consts = self.oa.constants
        a_consts = self.aa.constants
        for name in approx.topological_order():
            rel[name] = self._node_relation(
                name, rel, o_consts, a_consts)
        self._relations = rel
        self._rel_version = self.approx.version
        return rel

    def _node_relation(self, name: str, rel: dict[str, str],
                       o_consts: dict[str, int],
                       a_consts: dict[str, int]) -> str:
        original, approx = self.original, self.approx
        onode = original.nodes.get(name)
        anode = approx.nodes[name]

        # Constant information works regardless of structure drift.
        ca = a_consts.get(name)
        co = o_consts.get(name) if onode is not None else None
        const_rel = _relation_from_constants(ca, co)
        if const_rel == REL_EQ:
            return REL_EQ

        if onode is None:
            return const_rel
        fanins = list(onode.fanins)
        a_cover = anode.cover
        if list(anode.fanins) != fanins:
            # Cube selection trims unread fanins and DC collapse empties
            # the list; re-express the approx cover over the original
            # fanin list (trimmed positions become don't-cares) so the
            # comparison stays positional.
            a_cover = _expand_cover(anode.cover, list(anode.fanins),
                                    fanins)
            if a_cover is None:
                return const_rel

        # Step 1: A(approx fanins) vs A(original fanins), through the
        # approx cover's syntactic polarity in each fanin.
        step1 = REL_EQ
        for i, fanin in enumerate(fanins):
            r = rel.get(fanin, REL_TOP)
            if r == REL_EQ:
                continue
            used_pos = used_neg = False
            for cube in a_cover.cubes:
                lit = cube.literal(i)
                if lit == "1":
                    used_pos = True
                elif lit == "0":
                    used_neg = True
            if not used_pos and not used_neg:
                continue                      # fanin not actually read
            if used_pos and used_neg:
                step1 = REL_TOP               # binate: direction lost
                break
            through = r if used_pos else flip_relation(r)
            step1 = _meet_directions(step1, through)
            if step1 == REL_TOP:
                break

        # Step 2: A(x) vs O(x) — same inputs, different covers.
        step2 = _cover_relation(a_cover, onode.cover)

        combined = compose_relations(step1, step2)
        return _best_relation(combined, const_rel)


def _expand_cover(cover, fanins: list[str],
                  target_fanins: list[str]):
    """Rewrite ``cover`` over ``target_fanins`` (a fanin superset).

    Positions absent from ``fanins`` become don't-cares; returns None
    when alignment is ambiguous (duplicate names) or impossible (a
    fanin with no counterpart), sending the caller to the constant
    fallback.
    """
    position: dict[str, int] = {}
    for j, f in enumerate(target_fanins):
        if f in position:
            return None
        position[f] = j
    if len(set(fanins)) != len(fanins):
        return None
    try:
        mapping = [position[f] for f in fanins]
    except KeyError:
        return None
    n = len(target_fanins)
    cubes = []
    for cube in cover.cubes:
        ones = zeros = 0
        for i, j in enumerate(mapping):
            if cube.ones >> i & 1:
                ones |= 1 << j
            if cube.zeros >> i & 1:
                zeros |= 1 << j
        cubes.append(Cube(n, ones, zeros))
    return Cover(n, cubes)


def _relation_from_constants(ca: int | None, co: int | None) -> str:
    """Relation implied by proven constants (approx vs original)."""
    if ca is not None and co is not None:
        if ca == co:
            return REL_EQ
        return REL_LE if ca < co else REL_GE
    if ca == 0 or co == 1:
        return REL_LE
    if ca == 1 or co == 0:
        return REL_GE
    return REL_TOP


def _meet_directions(acc: str, through: str) -> str:
    """Combine per-fanin directional contributions.

    All fanins must push the same way: mixing a <=-contribution with a
    >=-contribution says nothing about the node output.
    """
    if acc == REL_EQ:
        return through
    if through == REL_EQ or through == acc:
        return acc
    return REL_TOP


def _cover_relation(a_cover, b_cover) -> str:
    """Syntactic relation between two covers over the same fanins."""
    rows_a = sorted(a_cover.to_strings())
    rows_b = sorted(b_cover.to_strings())
    if rows_a == rows_b:
        return REL_EQ
    a_implies_b = cover_implies(a_cover, b_cover)
    b_implies_a = cover_implies(b_cover, a_cover)
    if a_implies_b and b_implies_a:
        return REL_EQ
    if a_implies_b:
        return REL_LE
    if b_implies_a:
        return REL_GE
    return REL_TOP


def _best_relation(a: str, b: str) -> str:
    """The more informative of two *sound* relation facts.

    Both arguments are theorems about the same pair of signals, so the
    tighter one wins; EQ beats LE/GE beats TOP.  LE and GE together
    would mean EQ, but the meet of independently derived LE and GE is
    only taken when one side is EQ already — returning the non-TOP one
    otherwise keeps the function simple and still sound.
    """
    rank = {REL_EQ: 0, REL_LE: 1, REL_GE: 1, REL_TOP: 2}
    return a if rank[a] <= rank[b] else b
