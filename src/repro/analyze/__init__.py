"""Dataflow / abstract-interpretation framework over :class:`Network`.

A generic worklist fixpoint engine (:mod:`repro.analyze.fixpoint`) with
pluggable lattices (:mod:`repro.analyze.lattice`) and the concrete
domains the flow consumes (:mod:`repro.analyze.domains`): constant
propagation, unateness/parity masks, signal-probability interval
bounds, structural hashing, and observability (ODC) masks.
:class:`NetworkAnalyses` bundles the solutions per network version;
:class:`StaticDischarger` turns them into per-PO implication proofs for
the guard ladder's ``static`` rung.
"""

from .context import (ANALYZE_SCHEMA, NetworkAnalyses, analyze_network,
                      load_cached_summary, store_summary, summary_token)
from .domains import (ConstantAnalysis, ObservabilityAnalysis,
                      ProbabilityIntervalAnalysis, StructuralHashAnalysis,
                      UnatenessAnalysis, cones_structurally_equal,
                      constant_signals, cover_implies,
                      sdc_redundant_cubes, structural_classes,
                      unate_summary, unread_fanin_positions)
from .fixpoint import DataflowAnalysis, FixpointEngine, FixpointResult
from .lattice import (BOTTOM, REL_EQ, REL_GE, REL_LE, REL_TOP, TOP,
                      BitsetPairLattice, FlatLattice, IntervalLattice,
                      Lattice, RelationLattice, compose_relations,
                      flip_relation)
from .static_proof import StaticDischarger, StaticProof

__all__ = [
    "ANALYZE_SCHEMA",
    "BOTTOM",
    "TOP",
    "REL_EQ",
    "REL_GE",
    "REL_LE",
    "REL_TOP",
    "BitsetPairLattice",
    "ConstantAnalysis",
    "DataflowAnalysis",
    "FixpointEngine",
    "FixpointResult",
    "FlatLattice",
    "IntervalLattice",
    "Lattice",
    "NetworkAnalyses",
    "ObservabilityAnalysis",
    "ProbabilityIntervalAnalysis",
    "RelationLattice",
    "StaticDischarger",
    "StaticProof",
    "StructuralHashAnalysis",
    "UnatenessAnalysis",
    "analyze_network",
    "compose_relations",
    "cones_structurally_equal",
    "constant_signals",
    "cover_implies",
    "flip_relation",
    "load_cached_summary",
    "sdc_redundant_cubes",
    "store_summary",
    "structural_classes",
    "summary_token",
    "unate_summary",
    "unread_fanin_positions",
]
