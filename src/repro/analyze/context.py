"""Lazy per-network analysis bundles and the cross-process summary cache.

:class:`NetworkAnalyses` runs each domain at most once per network
version and exposes the solutions as cached properties; the
:class:`~repro.flow.AnalysisContext` memoizes whole bundles by object
identity + mutation version (and counts hits under the ``"static"``
cache kind), so repair loops re-analyze only when the approx actually
mutated — and then incrementally, via the fixpoint engine's
``update`` path.

:func:`analyze_network` distills a bundle into the JSON summary served
by ``repro.cli analyze`` and ``bench_analyze``;
:func:`load_cached_summary` / :func:`store_summary` persist summaries
in ``.lab_cache/analyze/`` beside the PR 6 proof store, content-keyed
by the circuit digest so equal circuits in different processes share
one computation.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.network import Network

from .domains import (ConstantAnalysis, ObservabilityAnalysis,
                      ProbabilityIntervalAnalysis, StructuralHashAnalysis,
                      UnatenessAnalysis, constant_signals,
                      sdc_redundant_cubes, structural_classes,
                      unate_summary, unread_fanin_positions)
from .fixpoint import FixpointEngine, FixpointResult

ANALYZE_SCHEMA = 1


class NetworkAnalyses:
    """All analysis solutions for one network at one mutation version.

    Properties solve lazily and memoize; :meth:`refresh` re-solves
    incrementally after a mutation using the network's
    ``changed_signals`` log, falling back to full re-runs when the log
    overflowed.
    """

    def __init__(self, network: Network):
        self.network = network
        self.version = network.version
        self._engine = FixpointEngine()
        self._results: dict[str, FixpointResult] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def stale(self) -> bool:
        return self.network.version != self.version

    def refresh(self) -> None:
        """Re-solve whatever is already solved after a mutation."""
        if not self.stale:
            return
        changed = self.network.changed_signals(self.version)
        for key in list(self._results):
            if key == "observability":
                # Depends on the constants solution; recompute whole.
                del self._results[key]
                continue
            analysis = self._make(key)
            self._results[key] = self._engine.update(
                self.network, analysis, self._results[key], changed)
        self.version = self.network.version

    def _make(self, key: str):
        if key == "constants":
            return ConstantAnalysis()
        if key == "unateness":
            return UnatenessAnalysis()
        if key == "probability":
            return ProbabilityIntervalAnalysis()
        if key == "structure":
            return StructuralHashAnalysis()
        raise KeyError(key)

    def _solve(self, key: str) -> FixpointResult:
        if self.stale:
            self.refresh()
        result = self._results.get(key)
        if result is None:
            if key == "observability":
                analysis = ObservabilityAnalysis(self.constants)
            else:
                analysis = self._make(key)
            result = self._engine.run(self.network, analysis)
            self._results[key] = result
        return result

    # ------------------------------------------------------------------
    # Solutions
    # ------------------------------------------------------------------
    @property
    def constant_values(self) -> dict[str, object]:
        return self._solve("constants").values

    @property
    def constants(self) -> dict[str, int]:
        """Signals proven constant, with their values."""
        return constant_signals(self.constant_values)

    @property
    def unateness(self) -> dict[str, object]:
        return self._solve("unateness").values

    @property
    def probability_intervals(self) -> dict[str, object]:
        return self._solve("probability").values

    @property
    def structure_hashes(self) -> dict[str, object]:
        return self._solve("structure").values

    @property
    def observability(self) -> dict[str, object]:
        return self._solve("observability").values

    def fixpoint_costs(self) -> list[dict]:
        return [self._results[key].cost()
                for key in sorted(self._results)]

    # ------------------------------------------------------------------
    # Derived facts
    # ------------------------------------------------------------------
    def dead_cones(self) -> list[str]:
        """PO-reaching nodes proven unobservable at every PO (ODC)."""
        obs = self.observability
        reachable = self.network.transitive_fanin(
            [po for po in self.network.outputs
             if not self.network.is_input(po)])
        return [name for name in self.network.topological_order()
                if name in reachable and not obs.get(name, 0)]

    def sdc_cubes(self) -> dict[str, list[int]]:
        return sdc_redundant_cubes(self.network, self.constants)

    def duplicate_classes(self) -> list[list[str]]:
        return structural_classes(self.network, self.structure_hashes)

    def unread_fanins(self) -> dict[str, list[int]]:
        return unread_fanin_positions(self.network)


# ----------------------------------------------------------------------
# Summary + cross-process cache
# ----------------------------------------------------------------------
def analyze_network(network: Network,
                    analyses: NetworkAnalyses | None = None) -> dict:
    """One-shot JSON-ready summary of every analysis over ``network``."""
    bundle = analyses if analyses is not None \
        else NetworkAnalyses(network)
    constants = bundle.constants
    dead = bundle.dead_cones()
    sdc = bundle.sdc_cubes()
    dups = bundle.duplicate_classes()
    unread = bundle.unread_fanins()
    intervals = bundle.probability_intervals
    widths = [hi - lo for value in intervals.values()
              if isinstance(value, tuple) for lo, hi in [value]]
    unate = unate_summary(network, bundle.unateness)
    doc = {
        "schema": ANALYZE_SCHEMA,
        "circuit": network.name,
        "inputs": len(network.inputs),
        "nodes": network.num_nodes,
        "outputs": len(network.outputs),
        "constants": {
            "count": len(constants),
            "signals": {name: constants[name]
                        for name in sorted(constants)},
        },
        "dead_cones": sorted(dead),
        "sdc_cubes": {
            "nodes": len(sdc),
            "cubes": sum(len(v) for v in sdc.values()),
        },
        "structural_duplicates": [sorted(group) for group in dups],
        "unread_fanins": {
            "nodes": len(unread),
            "positions": sum(len(v) for v in unread.values()),
        },
        "probability_intervals": {
            "signals": len(widths),
            "mean_width": round(sum(widths) / len(widths), 6)
            if widths else 0.0,
            "exact": sum(1 for w in widths if w <= 1e-12),
        },
        "unateness": {
            "pos_unate_po_inputs": sum(u["positive_unate"]
                                       for u in unate.values()),
            "neg_unate_po_inputs": sum(u["negative_unate"]
                                       for u in unate.values()),
            "binate_po_inputs": sum(u["binate"]
                                    for u in unate.values()),
        },
        "fixpoint": bundle.fixpoint_costs(),
    }
    return doc


def summary_token(network: Network) -> str:
    """Content digest keying the cross-process summary cache."""
    lines = ["inputs:" + ",".join(network.inputs)]
    for name in network.topological_order():
        node = network.nodes[name]
        lines.append(f"{name}<{','.join(node.fanins)}"
                     f"<{';'.join(node.cover.to_strings())}")
    lines.append("outputs:" + ",".join(network.outputs))
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def _summary_path(cache_dir: str | Path, token: str) -> Path:
    return Path(cache_dir) / token[:2] / f"{token}.json"


def load_cached_summary(cache_dir: str | Path,
                        network: Network) -> dict | None:
    """Serve a summary from disk; corrupt entries are evicted."""
    path = _summary_path(cache_dir, summary_token(network))
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(doc, dict) or doc.get("schema") != ANALYZE_SCHEMA:
        try:
            path.unlink()
        except OSError:
            pass
        return None
    return doc


def store_summary(cache_dir: str | Path, network: Network,
                  doc: dict) -> Path:
    """Atomic, racing-writer-safe summary write (pid-tagged temp)."""
    path = _summary_path(cache_dir, summary_token(network))
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(doc, indent=2, sort_keys=True))
    os.replace(tmp, path)
    return path
