"""Concrete abstract-interpretation domains over Boolean networks.

Every analysis here is *sound by over-approximation*: a definite answer
(constant value, unateness direction, probability bound, structural
equality, unobservability) is a theorem about the circuit; "top" only
ever means "unknown".  That is what lets the static-discharge rung and
the analysis-backed lint rules act on these results without changing
any flow verdict.

Domains:

* :class:`ConstantAnalysis` — which signals compute a constant 0/1
  regardless of inputs (constants propagate through cofactored covers).
* :class:`UnatenessAnalysis` — per-signal pair of PI bitmasks:
  "may depend positively / negatively on PI i".  An unset bit is a
  proof of unateness (or independence) in that input.
* :class:`ProbabilityIntervalAnalysis` — sound [lo, hi] bounds on
  P(signal = 1) via Fréchet inequalities, valid under *any* input
  correlation structure given the PI marginals (no independence
  assumption, unlike the simulation estimate it brackets).
* :class:`StructuralHashAnalysis` — canonical cone hashes (cut-based
  redundancy detection); equal hashes are confirmed exactly with
  :func:`cones_structurally_equal` before anything acts on them.
* :class:`ObservabilityAnalysis` — backward PO-reachability masks
  blocked by constant readers and unread fanin positions; a zero mask
  on a PO-reaching signal is an ODC proof (dead cone).
* :func:`sdc_redundant_cubes` — per-node satisfiability don't-cares:
  cubes that conflict with a proven-constant fanin.
"""

from __future__ import annotations

import hashlib

from repro.cubes import Cover
from repro.network import Network

from .fixpoint import DataflowAnalysis
from .lattice import (BOTTOM, TOP, BitsetPairLattice, FlatLattice,
                      IntervalLattice)

#: Cost caps for exact two-level reasoning inside transfer functions.
#: Tautology/containment checks are exponential in the worst case; the
#: analyses stay sound by answering "unknown" beyond these bounds.
TAUT_VAR_LIMIT = 12
TAUT_CUBE_LIMIT = 64


# ----------------------------------------------------------------------
# Constant propagation
# ----------------------------------------------------------------------
class ConstantAnalysis(DataflowAnalysis):
    """Forward constant propagation; values are 0, 1, or TOP."""

    name = "constants"
    direction = "forward"

    def lattice(self, network: Network) -> FlatLattice:
        return FlatLattice()

    def boundary(self, network: Network, signal: str):
        return TOP

    def transfer(self, network: Network, signal: str, fanin_values):
        node = network.nodes[signal]
        cover = node.cover
        if not node.fanins:
            return 0 if cover.is_zero() else 1
        for i, value in enumerate(fanin_values):
            if value in (0, 1):
                cover = cover.cofactor(i, value)
        if cover.is_zero():
            return 0
        if any(c.num_literals == 0 for c in cover.cubes):
            return 1
        # Residual support after cofactoring; a full tautology check is
        # only worth it (and affordable) on small remaining covers.
        if (cover.support.bit_count() <= TAUT_VAR_LIMIT
                and len(cover.cubes) <= TAUT_CUBE_LIMIT
                and cover.is_tautology()):
            return 1
        return TOP


def constant_signals(values: dict[str, object]) -> dict[str, int]:
    """The proven-constant subset of a ConstantAnalysis solution."""
    return {name: value for name, value in values.items()
            if value in (0, 1)}


# ----------------------------------------------------------------------
# Parity / unateness
# ----------------------------------------------------------------------
class UnatenessAnalysis(DataflowAnalysis):
    """May-depend masks with polarity over the PI index space.

    A signal's value is ``(pos_mask, neg_mask)``: bit ``i`` of
    ``pos_mask`` is set when some syntactic path from PI ``i`` to the
    signal has positive composite polarity (even number of inverting
    literals), and likewise for ``neg_mask``.  If bit ``i`` is set in
    neither mask the signal provably does not depend on PI ``i``; set
    in exactly one, the signal is provably unate in it.
    """

    name = "unateness"
    direction = "forward"

    def lattice(self, network: Network) -> BitsetPairLattice:
        return BitsetPairLattice(len(network.inputs))

    def boundary(self, network: Network, signal: str):
        index = network.inputs.index(signal)
        return (1 << index, 0)

    def transfer(self, network: Network, signal: str, fanin_values):
        node = network.nodes[signal]
        pos = neg = 0
        for i, value in enumerate(fanin_values):
            if value is BOTTOM:
                continue
            fp, fn = (0, 0) if value is TOP else value
            if value is TOP:
                fp = fn = (1 << len(network.inputs)) - 1
            used_pos = used_neg = False
            for cube in node.cover.cubes:
                lit = cube.literal(i)
                if lit == "1":
                    used_pos = True
                elif lit == "0":
                    used_neg = True
            if used_pos:
                pos |= fp
                neg |= fn
            if used_neg:
                pos |= fn
                neg |= fp
        return (pos, neg)


def unate_summary(network: Network,
                  values: dict[str, object]) -> dict[str, dict]:
    """Per-PO unateness classification from an analysis solution."""
    out: dict[str, dict] = {}
    for po in network.outputs:
        value = values.get(po)
        if value in (BOTTOM, TOP) or value is None:
            continue
        pos, neg = value
        both = pos & neg
        out[po] = {
            "positive_unate": (pos & ~neg).bit_count(),
            "negative_unate": (neg & ~pos).bit_count(),
            "binate": both.bit_count(),
            "independent": len(network.inputs)
            - (pos | neg).bit_count(),
        }
    return out


# ----------------------------------------------------------------------
# Signal-probability intervals
# ----------------------------------------------------------------------
class ProbabilityIntervalAnalysis(DataflowAnalysis):
    """Sound [lo, hi] bounds on P(signal = 1) via Fréchet inequalities.

    For a cube (an AND of literals) with literal probabilities bounded
    by [l_i, h_i]: P >= max(0, sum(l_i) - (k - 1)) and P <= min(h_i).
    For a cover (an OR of cubes): P >= max(cube lows) and
    P <= min(1, sum(cube highs)).  Both directions hold for arbitrary
    dependence between the operands, so the bounds are valid even
    though reconvergent fanout correlates internal signals.
    """

    name = "probability"
    direction = "forward"

    def __init__(self, pi_probability: float = 0.5):
        self.pi_probability = float(pi_probability)

    def lattice(self, network: Network) -> IntervalLattice:
        return IntervalLattice()

    def boundary(self, network: Network, signal: str):
        p = self.pi_probability
        return (p, p)

    def transfer(self, network: Network, signal: str, fanin_values):
        node = network.nodes[signal]
        if not node.fanins:
            value = 0.0 if node.cover.is_zero() else 1.0
            return (value, value)
        if node.cover.is_zero():
            return (0.0, 0.0)
        lo = 0.0
        hi_sum = 0.0
        for cube in node.cover.cubes:
            c_lo, c_hi = 1.0, 1.0
            lo_sum, k = 0.0, 0
            for i in range(cube.n):
                lit = cube.literal(i)
                if lit == "-":
                    continue
                value = fanin_values[i]
                f_lo, f_hi = (0.0, 1.0) if value in (BOTTOM, TOP) \
                    else value
                if lit == "0":
                    f_lo, f_hi = 1.0 - f_hi, 1.0 - f_lo
                lo_sum += f_lo
                c_hi = min(c_hi, f_hi)
                k += 1
            c_lo = max(0.0, lo_sum - (k - 1)) if k else 1.0
            c_lo = min(c_lo, c_hi)
            lo = max(lo, c_lo)
            hi_sum += c_hi
        hi = min(1.0, hi_sum)
        return (min(lo, hi), hi)


# ----------------------------------------------------------------------
# Structural hashing
# ----------------------------------------------------------------------
class StructuralHashAnalysis(DataflowAnalysis):
    """Canonical cone digests: equal digests mean (up to hash
    collision) byte-identical cone structure over identically named
    PIs.  Collision paranoia is handled by the exact confirmation in
    :func:`cones_structurally_equal` — nothing trusts the hash alone.
    """

    name = "structure"
    direction = "forward"

    def lattice(self, network: Network) -> FlatLattice:
        return FlatLattice()

    def boundary(self, network: Network, signal: str):
        return _digest("pi|" + signal)

    def transfer(self, network: Network, signal: str, fanin_values):
        node = network.nodes[signal]
        rows = ";".join(sorted(node.cover.to_strings()))
        parts = ",".join(str(v) for v in fanin_values)
        return _digest(f"node|{rows}|{parts}")


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:32]


def structural_classes(network: Network,
                       values: dict[str, object]) -> list[list[str]]:
    """Groups of nodes with identical cone structure (size >= 2).

    Hash groups are re-confirmed pairwise against the group leader with
    the exact recursive comparison, so a (cosmically unlikely) hash
    collision degrades to a smaller group, never a wrong one.  Groups
    and members come out in topological order for deterministic lint
    output.
    """
    by_hash: dict[object, list[str]] = {}
    for name in network.topological_order():
        by_hash.setdefault(values.get(name), []).append(name)
    classes = []
    for digest, members in by_hash.items():
        if digest in (BOTTOM, TOP) or len(members) < 2:
            continue
        leader = members[0]
        confirmed = [leader] + [
            m for m in members[1:]
            if cones_structurally_equal(network, leader, network, m)]
        if len(confirmed) >= 2:
            classes.append(confirmed)
    return classes


def cones_structurally_equal(net_a: Network, root_a: str,
                             net_b: Network, root_b: str) -> bool:
    """Exact recursive structural equality of two cones.

    Matches node-for-node: identical sorted cover rows and pairwise
    structurally equal fanins (in fanin order); PIs match by name.
    Internal node names are ignored, which makes the check usable
    across a resynthesized pair.  Structural equality implies
    functional equality (it is syntactic identity of the DAGs).
    """
    memo: dict[tuple[str, str], bool] = {}

    def eq(a: str, b: str) -> bool:
        key = (a, b)
        cached = memo.get(key)
        if cached is not None:
            return cached
        a_is_pi = net_a.is_input(a)
        b_is_pi = net_b.is_input(b)
        if a_is_pi or b_is_pi:
            result = a_is_pi and b_is_pi and a == b
            memo[key] = result
            return result
        node_a, node_b = net_a.nodes[a], net_b.nodes[b]
        memo[key] = False  # cycle guard; networks are DAGs anyway
        result = (len(node_a.fanins) == len(node_b.fanins)
                  and sorted(node_a.cover.to_strings())
                  == sorted(node_b.cover.to_strings())
                  and all(eq(fa, fb) for fa, fb
                          in zip(node_a.fanins, node_b.fanins)))
        memo[key] = result
        return result

    return eq(root_a, root_b)


# ----------------------------------------------------------------------
# Observability (ODC) and satisfiability (SDC) don't-cares
# ----------------------------------------------------------------------
class ObservabilityAnalysis(DataflowAnalysis):
    """Backward PO-observability masks.

    A signal's value is a bitmask over PO indices: bit ``j`` set means
    the signal *may* be observable at PO ``j``.  Bit ``j`` clear is a
    proof of unobservability: every path to that PO is blocked by a
    proven-constant reader or by a fanin position no cube of the
    reader actually reads.  ``constants`` (a ConstantAnalysis solution
    subset) sharpens the result; pass ``{}`` for the purely structural
    variant.
    """

    name = "observability"
    direction = "backward"

    def __init__(self, constants: dict[str, int] | None = None):
        self.constants = constants or {}

    def lattice(self, network: Network) -> BitsetPairLattice:
        return BitsetPairLattice(len(network.outputs))

    def boundary(self, network: Network, signal: str):
        return 0

    def transfer(self, network: Network, signal: str, reader_values):
        mask = 0
        for j, po in enumerate(network.outputs):
            if po == signal:
                mask |= 1 << j
        for reader, value in reader_values:
            if value is BOTTOM or not value:
                continue
            node = network.nodes[reader]
            # Fix every proven-constant fanin EXCEPT the signal itself.
            # Cofactoring by the signal's own constant would be
            # circular: the whole point of observability is to bound
            # what happens when this signal takes the *other* value,
            # and a reader whose constancy derives from the signal
            # (e.g. an OR the constant-1 signal saturates) does NOT
            # block it.
            cover = node.cover
            for i, fanin in enumerate(node.fanins):
                if fanin != signal:
                    fixed = self.constants.get(fanin)
                    if fixed in (0, 1):
                        cover = cover.cofactor(i, fixed)
            if _residual_constant(cover) is not None:
                continue  # constant independently of the signal
            for i, fanin in enumerate(node.fanins):
                if fanin != signal:
                    continue
                if any(c.has_literal(i) for c in cover.cubes):
                    mask |= value
        return mask


def _residual_constant(cover: Cover) -> int | None:
    """0/1 when the (partially cofactored) cover is provably constant,
    else None — the same three-tier check ConstantAnalysis uses."""
    if cover.is_zero():
        return 0
    if any(c.num_literals == 0 for c in cover.cubes):
        return 1
    if (cover.support.bit_count() <= TAUT_VAR_LIMIT
            and len(cover.cubes) <= TAUT_CUBE_LIMIT
            and cover.is_tautology()):
        return 1
    return None


def sdc_redundant_cubes(network: Network,
                        constants: dict[str, int]
                        ) -> dict[str, list[int]]:
    """Per-node cube indices made unsatisfiable by constant fanins.

    A cube requiring fanin ``f = 1`` while ``f`` provably computes 0
    (or vice versa) can never fire — a satisfiability don't-care the
    resynthesis pass would eventually sweep, surfaced here as an
    analysis fact.
    """
    redundant: dict[str, list[int]] = {}
    for name in network.topological_order():
        node = network.nodes[name]
        if not node.fanins:
            continue
        dead = []
        for idx, cube in enumerate(node.cover.cubes):
            for i, fanin in enumerate(node.fanins):
                value = constants.get(fanin)
                if value is None:
                    continue
                lit = cube.literal(i)
                if (lit == "1" and value == 0) or \
                        (lit == "0" and value == 1):
                    dead.append(idx)
                    break
        if dead:
            redundant[name] = dead
    return redundant


def unread_fanin_positions(network: Network) -> dict[str, list[int]]:
    """Fanin positions no cube of the node's cover ever reads."""
    unread: dict[str, list[int]] = {}
    for name in network.topological_order():
        node = network.nodes[name]
        if not node.fanins:
            continue
        support = node.cover.support
        dead = [i for i in range(len(node.fanins))
                if not support >> i & 1]
        if dead:
            unread[name] = dead
    return unread


# ----------------------------------------------------------------------
# Syntactic cover comparison (shared with the static discharger)
# ----------------------------------------------------------------------
def cover_implies(a: Cover, b: Cover) -> bool | None:
    """Does cover ``a`` imply cover ``b``?  True is a proof; None is
    "could not decide cheaply" (never False — refutation is not this
    helper's job).

    Two tiers: single-cube containment (every a-cube inside some
    b-cube — linear, catches dropped-cube approximations), then the
    exact unate-recursive check on covers small enough to afford it.
    """
    if a.is_zero():
        return True
    if any(c.num_literals == 0 for c in b.cubes):
        return True
    if all(any(bc.contains(ac) for bc in b.cubes) for ac in a.cubes):
        return True
    if (a.n <= TAUT_VAR_LIMIT
            and len(a.cubes) + len(b.cubes) <= TAUT_CUBE_LIMIT):
        if a.implies(b):
            return True
    return None
