"""The generic worklist fixpoint engine over :class:`Network` DAGs.

An analysis plugs in a lattice plus transfer functions; the engine owns
iteration order, change detection, and incremental re-solving.  On the
acyclic networks of this repo a forward analysis converges in a single
topological sweep, but the engine is written as a worklist loop so that
non-monotone-looking updates (and any future cyclic extensions) still
terminate at the least fixpoint rather than silently under-iterating.

Two analysis shapes are supported:

* **forward** — information flows from primary inputs toward outputs.
  ``boundary(network, pi)`` seeds each PI; ``transfer(network, node,
  fanin_values)`` computes a node's value from its fanins' values (in
  fanin order).
* **backward** — information flows from primary outputs toward inputs.
  ``transfer(network, signal, reader_values)`` combines the values of
  the nodes reading ``signal``, passed as ``(reader_node,
  reader_value)`` pairs, and is responsible for seeding PO membership
  itself (it can see ``network.outputs``); ``boundary`` is unused.

:meth:`FixpointEngine.update` re-solves after a mutation given the
previous solution and the set of touched signals (the network's
``changed_signals`` feed), recomputing only the affected fanout (or
fanin, for backward analyses) closure.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

from repro.network import Network

from .lattice import BOTTOM, Lattice


class DataflowAnalysis:
    """Base class for pluggable analyses; subclass and override."""

    #: Identifier used in stats and cache summaries.
    name = "abstract"
    #: "forward" or "backward".
    direction = "forward"

    def lattice(self, network: Network) -> Lattice:
        raise NotImplementedError

    def boundary(self, network: Network, signal: str):
        """Seed value (PIs for forward analyses, every signal backward)."""
        raise NotImplementedError

    def transfer(self, network: Network, signal: str, values):
        """Abstract evaluation of one signal from its dependencies."""
        raise NotImplementedError


@dataclass
class FixpointResult:
    """Solution plus cost accounting for one fixpoint run."""

    analysis: str
    values: dict[str, object]
    transfers: int = 0
    iterations: int = 0
    seconds: float = 0.0
    incremental: bool = False
    stats: dict = field(default_factory=dict)

    def cost(self) -> dict:
        return {
            "analysis": self.analysis,
            "transfers": self.transfers,
            "iterations": self.iterations,
            "seconds": round(self.seconds, 6),
            "incremental": self.incremental,
        }


class FixpointEngine:
    """Worklist solver; one instance is stateless and reusable."""

    def run(self, network: Network,
            analysis: DataflowAnalysis) -> FixpointResult:
        start = time.perf_counter()
        if analysis.direction == "forward":
            result = self._solve_forward(network, analysis, None, None)
        elif analysis.direction == "backward":
            result = self._solve_backward(network, analysis, None, None)
        else:
            raise ValueError(
                f"unknown analysis direction {analysis.direction!r}")
        result.seconds = time.perf_counter() - start
        return result

    def update(self, network: Network, analysis: DataflowAnalysis,
               previous: FixpointResult,
               changed: frozenset[str] | None) -> FixpointResult:
        """Re-solve after a mutation.

        ``changed`` is the network's ``changed_signals`` answer since
        the previous solve: ``None`` (unknown scope) forces a full
        re-run; otherwise only the dependency closure of the touched
        signals is recomputed, reusing every other previous value.
        """
        if changed is None:
            return self.run(network, analysis)
        start = time.perf_counter()
        seed = {s for s in changed if network.signal_exists(s)}
        base = {s: v for s, v in previous.values.items()
                if network.signal_exists(s) and s not in seed}
        if analysis.direction == "forward":
            result = self._solve_forward(network, analysis, base, seed)
        else:
            result = self._solve_backward(network, analysis, base, seed)
        result.seconds = time.perf_counter() - start
        result.incremental = True
        return result

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def _solve_forward(self, network: Network,
                       analysis: DataflowAnalysis,
                       base: dict | None,
                       seed: set[str] | None) -> FixpointResult:
        values: dict[str, object] = {}
        transfers = iterations = 0
        fanouts = network.fanouts()
        topo = network.topological_order()
        position = {name: i for i, name in enumerate(topo)}
        for pi in network.inputs:
            values[pi] = analysis.boundary(network, pi)
        if base is None:
            pending = list(topo)
        else:
            # Incremental: keep prior values, recompute the fanout
            # closure of the seed in topological order.
            for name, value in base.items():
                if name not in values:
                    values[name] = value
            closure: set[str] = set()
            stack = [s for s in (seed or ()) if s in network.nodes]
            while stack:
                name = stack.pop()
                if name in closure:
                    continue
                closure.add(name)
                stack.extend(r for r in fanouts.get(name, ())
                             if r not in closure)
            pending = list(closure)
        heap = [(position[n], n) for n in pending]
        heapq.heapify(heap)
        in_list = set(pending)
        while heap:
            iterations += 1
            _, name = heapq.heappop(heap)
            in_list.discard(name)
            node = network.nodes[name]
            fanin_values = [values.get(f, BOTTOM) for f in node.fanins]
            transfers += 1
            new = analysis.transfer(network, name, fanin_values)
            if values.get(name, BOTTOM) == new and name in values:
                continue
            values[name] = new
            for reader in fanouts.get(name, ()):
                if reader not in in_list:
                    heapq.heappush(heap, (position[reader], reader))
                    in_list.add(reader)
        return FixpointResult(analysis=analysis.name, values=values,
                              transfers=transfers, iterations=iterations)

    # ------------------------------------------------------------------
    # Backward
    # ------------------------------------------------------------------
    def _solve_backward(self, network: Network,
                        analysis: DataflowAnalysis,
                        base: dict | None,
                        seed: set[str] | None) -> FixpointResult:
        values: dict[str, object] = {}
        transfers = iterations = 0
        fanouts = network.fanouts()
        order = network.reverse_topological_order() + list(network.inputs)
        position = {name: i for i, name in enumerate(order)}
        if base is None:
            pending = list(order)
        else:
            for name, value in base.items():
                values[name] = value
            # A touched node invalidates the values of everything in
            # its transitive fanin (information flows output-to-input).
            closure: set[str] = set()
            stack = list(seed or ())
            while stack:
                name = stack.pop()
                if name in closure:
                    continue
                closure.add(name)
                if name in network.nodes:
                    stack.extend(network.nodes[name].fanins)
            for name in closure:
                values.pop(name, None)
            pending = [n for n in closure if n in position]
        heap = [(position[n], n) for n in pending]
        heapq.heapify(heap)
        in_list = set(pending)
        while heap:
            iterations += 1
            _, name = heapq.heappop(heap)
            in_list.discard(name)
            readers = [(r, values.get(r, BOTTOM))
                       for r in fanouts.get(name, ())]
            transfers += 1
            new = analysis.transfer(network, name, readers)
            if values.get(name, BOTTOM) == new and name in values:
                continue
            values[name] = new
            if name in network.nodes:
                for fanin in network.nodes[name].fanins:
                    if fanin not in in_list:
                        heapq.heappush(heap, (position[fanin], fanin))
                        in_list.add(fanin)
        return FixpointResult(analysis=analysis.name, values=values,
                              transfers=transfers, iterations=iterations)
