"""Abstract-domain lattices for the dataflow framework.

Every analysis in :mod:`repro.analyze` interprets circuit signals over
a join-semilattice: ``bottom`` is "no information yet" (unreached),
``top`` is "anything" (no useful fact), and :meth:`Lattice.join`
combines facts flowing together.  Soundness of every client analysis
reduces to its transfer functions being monotone over these orders, so
the lattices live here, small and separately testable.

The concrete domains:

* :class:`FlatLattice` — bottom < {each value} < top; used for
  constant propagation (values 0/1) and structural hashes.
* :class:`IntervalLattice` — sub-intervals of [0, 1] ordered by
  containment; used for signal-probability bounds.
* :class:`BitsetPairLattice` — pairs of bitmasks ordered pointwise by
  subset; used for polarity/unateness (may-depend-positively,
  may-depend-negatively masks over PI indices) and for observability
  masks over PO indices.
* :class:`RelationLattice` — EQ < {LE, GE} < TOP; used by the
  static-discharge relational analysis between an original network and
  its approximation.
"""

from __future__ import annotations


class _Sentinel:
    """Singleton lattice extremes with a readable repr."""

    __slots__ = ("_name",)

    def __init__(self, name: str):
        self._name = name

    def __repr__(self) -> str:
        return self._name

    def __reduce__(self):
        return (_resolve_sentinel, (self._name,))


#: "Unreached / no information" — below every other element.
BOTTOM = _Sentinel("BOTTOM")
#: "Could be anything" — above every other element.
TOP = _Sentinel("TOP")


def _resolve_sentinel(name: str) -> _Sentinel:
    return TOP if name == "TOP" else BOTTOM


class Lattice:
    """A join-semilattice over opaque, equality-comparable values."""

    @property
    def bottom(self):
        raise NotImplementedError

    @property
    def top(self):
        raise NotImplementedError

    def join(self, a, b):
        raise NotImplementedError

    def leq(self, a, b) -> bool:
        """Partial order: ``a`` carries at least the information of ``b``."""
        return self.join(a, b) == b


class FlatLattice(Lattice):
    """bottom < v < top for every distinct value ``v``.

    Joining two distinct proper values loses everything (top): the
    domain has no structure between single facts and no-fact.
    """

    @property
    def bottom(self):
        return BOTTOM

    @property
    def top(self):
        return TOP

    def join(self, a, b):
        if a is BOTTOM:
            return b
        if b is BOTTOM:
            return a
        if a is TOP or b is TOP:
            return TOP
        return a if a == b else TOP

    def leq(self, a, b) -> bool:
        return a is BOTTOM or b is TOP or a == b


class IntervalLattice(Lattice):
    """Closed sub-intervals of [0, 1], ordered by containment.

    Values are ``(lo, hi)`` float pairs with ``lo <= hi``; ``BOTTOM``
    stands in for the empty interval.  Join is the convex hull.
    """

    @property
    def bottom(self):
        return BOTTOM

    @property
    def top(self):
        return (0.0, 1.0)

    def join(self, a, b):
        if a is BOTTOM:
            return b
        if b is BOTTOM:
            return a
        return (min(a[0], b[0]), max(a[1], b[1]))

    def leq(self, a, b) -> bool:
        if a is BOTTOM:
            return True
        if b is BOTTOM:
            return False
        return b[0] <= a[0] and a[1] <= b[1]


class BitsetPairLattice(Lattice):
    """Pairs of integer bitsets ordered pointwise by subset.

    ``width`` bounds the universe (e.g. the PI count for unateness
    masks, the PO count for observability masks); ``top`` is the pair
    of full masks.
    """

    def __init__(self, width: int):
        if width < 0:
            raise ValueError("bitset width must be non-negative")
        self.width = width
        self._full = (1 << width) - 1

    @property
    def bottom(self):
        return (0, 0)

    @property
    def top(self):
        return (self._full, self._full)

    def join(self, a, b):
        return (a[0] | b[0], a[1] | b[1])

    def leq(self, a, b) -> bool:
        return (a[0] | b[0]) == b[0] and (a[1] | b[1]) == b[1]


#: Relation-lattice elements: how an approximate signal compares with
#: its original counterpart on every shared-PI assignment.
REL_EQ = "eq"    # always equal
REL_LE = "le"    # approx <= original (approx implies original)
REL_GE = "ge"    # approx >= original (original implies approx)
REL_TOP = "top"  # unknown

_REL_RANK = {REL_EQ: 0, REL_LE: 1, REL_GE: 1, REL_TOP: 2}


class RelationLattice(Lattice):
    """EQ below LE and GE, both below TOP (BOTTOM = unreached)."""

    @property
    def bottom(self):
        return BOTTOM

    @property
    def top(self):
        return REL_TOP

    def join(self, a, b):
        if a is BOTTOM:
            return b
        if b is BOTTOM:
            return a
        if a == b:
            return a
        if REL_EQ in (a, b):
            return b if a == REL_EQ else a
        return REL_TOP  # LE join GE

    def leq(self, a, b) -> bool:
        if a is BOTTOM or a == b or b == REL_TOP:
            return True
        return a == REL_EQ and b in (REL_LE, REL_GE)


def compose_relations(first: str, second: str) -> str:
    """Transitive composition: a R1 b and b R2 c gives a (R1;R2) c.

    EQ is the identity; LE;LE = LE, GE;GE = GE; mixing LE with GE (or
    anything with TOP) yields TOP.
    """
    if first == REL_EQ:
        return second
    if second == REL_EQ:
        return first
    if first == second and first in (REL_LE, REL_GE):
        return first
    return REL_TOP


def flip_relation(rel: str) -> str:
    """The relation seen through one negative (inverting) level."""
    if rel == REL_LE:
        return REL_GE
    if rel == REL_GE:
        return REL_LE
    return rel
