"""Resource budgets and structured degradation reports.

A :class:`Budget` is the single carrier for every resource limit a flow
run is allowed to spend: a wall-clock deadline, a BDD node cap, a SAT
conflict cap, and a repair-iteration cap.  It is threaded through
:class:`~repro.flow.FlowContext` / :class:`~repro.flow.AnalysisContext`
and enforced *cooperatively* — the BDD manager, the SAT solver, the
two-level minimizer, and the repair loop each poll it at their natural
check points and degrade instead of hanging.

The companion :class:`BudgetReport` records what the degradation ladder
actually did (paper Sec 2.2: the implication check falls from global
BDDs to incremental SAT to exact per-node conformance selection): which
engine each rung used, why a rung was abandoned, what work was skipped,
and which chaos faults were injected.  The report rides along in
:class:`~repro.flow.FlowTrace` documents and ``CedFlowResult``s, so a
budget hit is a structured outcome rather than an exception.

This module imports only the standard library: every engine layer
(``repro.bdd``, ``repro.sat``, ``repro.cubes``, ``repro.approx``) may
depend on it without cycles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

#: Bump when the BudgetReport document layout changes incompatibly.
BUDGET_REPORT_SCHEMA = 1

#: Engines a ladder rung may name, in degradation order.  ``static``
#: (the repro.analyze discharge rung) sits above the proving engines:
#: implications it answers never reach BDD or SAT at all.
LADDER_ENGINES = ("static", "bdd", "sat", "sim", "conformance")

#: Outcomes a ladder rung may record.  ``assisted`` marks a rung that
#: discharged part of the work without displacing the selected engine
#: (the static rung answering some, but not all, implication queries);
#: it is informational and does not count as degradation.
RUNG_OUTCOMES = ("selected", "assisted", "overflow", "exhausted",
                 "deadline")


class BudgetExceeded(RuntimeError):
    """A cooperative resource budget was violated.

    Carries the :class:`Budget` (when known) so callers can surface its
    :class:`BudgetReport` in the structured error they emit.
    """

    def __init__(self, message: str, budget: "Budget | None" = None):
        super().__init__(message)
        self.budget = budget

    def to_dict(self) -> dict:
        """Machine-readable error record (for CLI/JSON surfaces)."""
        doc = {"error": type(self).__name__, "message": str(self)}
        if self.budget is not None:
            doc["budget"] = self.budget.describe()
            doc["budget_report"] = self.budget.report.to_dict()
        return doc


class DeadlineExceeded(BudgetExceeded):
    """The budget's wall-clock deadline has passed."""


@dataclass
class BudgetReport:
    """What a governed run consumed, skipped, and fell back to."""

    #: Engine that produced the final answer (last ``selected`` rung).
    engine: str | None = None
    #: Ordered ladder events: ``{"engine", "outcome", ...detail}``.
    ladder: list = field(default_factory=list)
    #: Resources that ran out: ``{"resource", ...detail}``.
    exhausted: list = field(default_factory=list)
    #: Work skipped to stay inside the budget.
    skipped: list = field(default_factory=list)
    #: Chaos fault kinds injected into this run.
    chaos: list = field(default_factory=list)

    def rung(self, engine: str, outcome: str, **detail) -> dict:
        """Record one ladder step; ``selected`` rungs set the engine."""
        event = {"engine": engine, "outcome": outcome, **detail}
        self.ladder.append(event)
        if outcome == "selected":
            self.engine = engine
        return event

    def exhaust(self, resource: str, **detail) -> None:
        self.exhausted.append({"resource": resource, **detail})

    def skip(self, what: str, reason: str = "") -> None:
        self.skipped.append({"what": what, "reason": reason})

    @property
    def degraded(self) -> bool:
        """True when anything beyond the first-choice path happened."""
        return bool(self.exhausted or self.skipped
                    or any(e["outcome"] not in ("selected", "assisted")
                           for e in self.ladder))

    def to_dict(self) -> dict:
        return {
            "schema": BUDGET_REPORT_SCHEMA,
            "engine": self.engine,
            "degraded": self.degraded,
            "ladder": [dict(e) for e in self.ladder],
            "exhausted": [dict(e) for e in self.exhausted],
            "skipped": [dict(e) for e in self.skipped],
            "chaos": list(self.chaos),
        }


def validate_budget_report(doc) -> list[str]:
    """Schema problems of a BudgetReport document (empty list = valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"budget report is {type(doc).__name__}, expected dict"]
    if doc.get("schema") != BUDGET_REPORT_SCHEMA:
        errors.append(f"budget report schema is {doc.get('schema')!r}, "
                      f"expected {BUDGET_REPORT_SCHEMA}")
    engine = doc.get("engine")
    if engine is not None and engine not in LADDER_ENGINES:
        errors.append(f"unknown engine {engine!r}")
    if not isinstance(doc.get("degraded"), bool):
        errors.append("degraded missing or non-boolean")
    for key in ("ladder", "exhausted", "skipped", "chaos"):
        if not isinstance(doc.get(key), list):
            errors.append(f"{key} missing or not a list")
    for i, event in enumerate(doc.get("ladder") or []):
        where = f"ladder[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where} is not a dict")
            continue
        if event.get("engine") not in LADDER_ENGINES:
            errors.append(f"{where}: unknown engine "
                          f"{event.get('engine')!r}")
        if event.get("outcome") not in RUNG_OUTCOMES:
            errors.append(f"{where}: unknown outcome "
                          f"{event.get('outcome')!r}")
    for i, event in enumerate(doc.get("exhausted") or []):
        if not isinstance(event, dict) or \
                not isinstance(event.get("resource"), str):
            errors.append(f"exhausted[{i}]: missing resource name")
    return errors


@dataclass
class Budget:
    """Cooperative resource limits for one flow run.

    Every field is optional; ``None`` means unlimited.  ``deadline_s``
    counts wall-clock seconds from :meth:`start` (idempotent; the flow
    entry point calls it, and deadline queries auto-start so a bare
    Budget still behaves sensibly).  The caps merge with per-call
    defaults via :meth:`bdd_cap` / :meth:`sat_cap` / :meth:`repair_cap`
    — the effective limit is the minimum of the two.
    """

    deadline_s: float | None = None
    bdd_node_cap: int | None = None
    sat_conflict_cap: int | None = None
    repair_round_cap: int | None = None
    report: BudgetReport = field(default_factory=BudgetReport)
    _started: float | None = field(default=None, repr=False)

    def start(self) -> "Budget":
        """Start the deadline clock (first call wins)."""
        if self._started is None:
            self._started = time.monotonic()
        return self

    @property
    def started(self) -> bool:
        return self._started is not None

    def elapsed_s(self) -> float:
        if self._started is None:
            return 0.0
        return time.monotonic() - self._started

    def remaining_s(self) -> float | None:
        """Seconds left before the deadline, or None when unlimited."""
        if self.deadline_s is None:
            return None
        self.start()
        return self.deadline_s - self.elapsed_s()

    def deadline(self) -> float | None:
        """The deadline as an absolute ``time.monotonic()`` timestamp."""
        if self.deadline_s is None:
            return None
        self.start()
        return self._started + self.deadline_s

    @property
    def expired(self) -> bool:
        remaining = self.remaining_s()
        return remaining is not None and remaining <= 0.0

    def check_deadline(self, where: str = "") -> None:
        """Raise :class:`DeadlineExceeded` when past the deadline."""
        if self.expired:
            suffix = f" ({where})" if where else ""
            raise DeadlineExceeded(
                f"deadline of {self.deadline_s:g}s exceeded after "
                f"{self.elapsed_s():.2f}s{suffix}", budget=self)

    # -- cap merging -----------------------------------------------------
    @staticmethod
    def _merge(cap: int | None, default: int | None) -> int | None:
        if cap is None:
            return default
        if default is None:
            return cap
        return min(cap, default)

    def bdd_cap(self, default: int | None = None) -> int | None:
        return self._merge(self.bdd_node_cap, default)

    def sat_cap(self, default: int | None = None) -> int | None:
        return self._merge(self.sat_conflict_cap, default)

    def repair_cap(self, default: int | None = None) -> int | None:
        return self._merge(self.repair_round_cap, default)

    def describe(self) -> dict:
        """The configured limits as a plain JSON-safe dict."""
        return {
            "deadline_s": self.deadline_s,
            "bdd_node_cap": self.bdd_node_cap,
            "sat_conflict_cap": self.sat_conflict_cap,
            "repair_round_cap": self.repair_round_cap,
        }
