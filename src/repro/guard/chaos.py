"""Deterministic fault injection for the resource-governance layer.

Chaos kinds rig a :class:`~repro.guard.Budget` (or a lab job) so that a
specific engine failure happens *deterministically*, proving each rung
of the degradation ladder and each executor failure path is actually
exercised:

* ``bdd-overflow``    — clamps the BDD node cap to a handful of nodes,
  so the global-BDD rung of the implication check overflows immediately
  and control falls to the SAT rung;
* ``sat-exhausted``   — clamps the SAT conflict cap to zero, so the SAT
  rung reports *unknown* on the first conflict and control falls to the
  conformance rung;
* ``worker-sigalrm``  — a lab job (:func:`sigalrm_victim`) that spins
  past any reasonable timeout, forcing the worker's SIGALRM path;
* ``broken-pool``     — a lab job (:func:`broken_pool_victim`) that
  kills its worker process outright, forcing the scheduler's
  ``BrokenProcessPool`` recovery path.

The first two act on flow passes (via the Budget), the last two on lab
jobs; :data:`FLOW_CHAOS` lists the flow-applicable subset.
"""

from __future__ import annotations

import os
import time

from .budget import Budget

#: Every chaos kind the harness knows.
CHAOS_KINDS = ("bdd-overflow", "sat-exhausted", "worker-sigalrm",
               "broken-pool")

#: Kinds applicable to flow passes (rigged through the Budget).
FLOW_CHAOS = ("bdd-overflow", "sat-exhausted")

#: Node cap injected by ``bdd-overflow`` — too small for any real
#: benchmark's pair BDDs, so the overflow is guaranteed.
BDD_OVERFLOW_CAP = 64


def parse_chaos(spec) -> tuple[str, ...]:
    """Normalize a chaos spec (comma string or iterable) to a tuple."""
    if spec is None:
        return ()
    if isinstance(spec, str):
        kinds = tuple(part.strip() for part in spec.split(",")
                      if part.strip())
    else:
        kinds = tuple(spec)
    for kind in kinds:
        if kind not in CHAOS_KINDS:
            raise ValueError(f"unknown chaos kind {kind!r}; "
                             f"known: {', '.join(CHAOS_KINDS)}")
    return kinds


def apply_chaos(budget: Budget | None, kinds) -> Budget | None:
    """Rig ``budget`` so the named flow faults fire deterministically.

    Creates a Budget when none was given and any flow-applicable kind
    is requested; records every injected kind in the report so the
    provenance of the degradation is visible downstream.  Kinds that
    only apply to lab jobs are recorded but change no caps.
    """
    kinds = parse_chaos(kinds)
    if not kinds:
        return budget
    if budget is None:
        budget = Budget()
    for kind in kinds:
        if kind not in budget.report.chaos:
            budget.report.chaos.append(kind)
    if "bdd-overflow" in kinds:
        budget.bdd_node_cap = Budget._merge(budget.bdd_node_cap,
                                            BDD_OVERFLOW_CAP)
    if "sat-exhausted" in kinds:
        budget.sat_conflict_cap = 0
    return budget


# ----------------------------------------------------------------------
# Lab-job victims (module-level so worker processes can unpickle them)
# ----------------------------------------------------------------------
def sigalrm_victim(duration: float = 30.0, **_ignored) -> None:
    """A job guaranteed to outlive its timeout (``worker-sigalrm``).

    Sleeps in short slices so the SIGALRM handler gets a prompt shot at
    interrupting it on every platform.
    """
    end = time.monotonic() + duration
    while time.monotonic() < end:
        time.sleep(0.01)


def broken_pool_victim(exit_code: int = 13, **_ignored) -> None:
    """A job that kills its worker process (``broken-pool``).

    ``os._exit`` bypasses every cleanup handler, exactly like an OOM
    kill or a segfault would — the pool's other end sees the worker
    vanish and raises ``BrokenProcessPool`` on the pending future.
    """
    os._exit(exit_code)
