"""Unified resource governance: budgets, degradation, fault injection.

* :class:`Budget` — deadline + BDD/SAT/repair caps, threaded through
  the flow and enforced cooperatively inside the engine layers;
* :class:`BudgetReport` / :func:`validate_budget_report` — structured
  record of the degradation ladder (engine used, resources consumed,
  work skipped) carried by traces and flow results;
* :class:`BudgetExceeded` / :class:`DeadlineExceeded` — the structured
  errors for budgets that cannot be degraded around (deadline already
  passed at flow entry);
* :mod:`repro.guard.chaos` — deterministic fault injection proving
  every ladder rung and executor failure path is exercised.

Imports only the standard library, so every engine layer can depend on
it without cycles.
"""

from .budget import (BUDGET_REPORT_SCHEMA, Budget, BudgetExceeded,
                     BudgetReport, DeadlineExceeded,
                     validate_budget_report)
from .chaos import (BDD_OVERFLOW_CAP, CHAOS_KINDS, FLOW_CHAOS,
                    apply_chaos, parse_chaos)

__all__ = [
    "BDD_OVERFLOW_CAP", "BUDGET_REPORT_SCHEMA", "Budget",
    "BudgetExceeded", "BudgetReport", "CHAOS_KINDS", "DeadlineExceeded",
    "FLOW_CHAOS", "apply_chaos", "parse_chaos",
    "validate_budget_report",
]
