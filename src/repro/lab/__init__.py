"""repro.lab — parallel experiment orchestration.

The paper's tables are embarrassingly parallel (circuit x config)
grids of ``run_ced_flow`` invocations.  This subsystem runs such grids
on a pluggable execution backend (``local`` process pool, distributed
``tcp`` coordinator/worker, in-process ``workqueue`` work stealer) with
deterministic per-job seeds, a content-addressed artifact cache
(``.lab_cache/``) that makes killed runs resumable — and doubles as the
``tcp`` backend's result-transfer medium — and structured run manifests
under ``results/runs/<run_id>/``; :func:`merge_manifests` folds the
manifests of a sweep split across hosts back into one document.

Task functions live in :mod:`repro.lab.tasks` (imported lazily — it
pulls in the whole flow stack).
"""

from .backends import (BACKEND_ENV, ExecutorBackend,  # noqa: F401
                       JobRequest, LocalBackend, TcpBackend,
                       WorkqueueBackend, backend_names,
                       create_backend, register_backend,
                       resolve_backend)
from .cache import (MISS, ArtifactStore, cache_key,  # noqa: F401
                    code_fingerprint)
from .executor import (WORKERS_ENV, JobResult, JobTimeout,  # noqa: F401
                       LabRun, LabRunner, resolve_workers, run_jobs)
from .job import (Job, JobGraph, canonical_params,  # noqa: F401
                  derive_seed)
from .manifest import (JOB_STATUSES,  # noqa: F401
                       MANIFEST_SCHEMA_VERSION, build_manifest,
                       load_manifest, merge_manifests, new_run_id,
                       validate_manifest, write_manifest)
from .proofs import (PROOF_WORKERS_ENV, ConeFingerprinter,  # noqa: F401
                     ProofCache, proof_workers)

__all__ = [
    "Job", "JobGraph", "derive_seed", "canonical_params",
    "ArtifactStore", "MISS", "cache_key", "code_fingerprint",
    "JobResult", "JobTimeout", "LabRun", "LabRunner", "run_jobs",
    "resolve_workers", "WORKERS_ENV",
    "ExecutorBackend", "JobRequest", "LocalBackend", "TcpBackend",
    "WorkqueueBackend", "register_backend", "create_backend",
    "backend_names", "resolve_backend", "BACKEND_ENV",
    "MANIFEST_SCHEMA_VERSION", "JOB_STATUSES", "build_manifest",
    "load_manifest", "merge_manifests", "new_run_id",
    "validate_manifest", "write_manifest",
    "ProofCache", "ConeFingerprinter", "proof_workers",
    "PROOF_WORKERS_ENV",
]
