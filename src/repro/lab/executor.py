"""Scheduler/executor: ready jobs onto an execution backend.

``LabRunner`` runs a :class:`~repro.lab.job.JobGraph` on a pluggable
:class:`~repro.lab.backends.ExecutorBackend` — the default ``local``
process pool, the distributed ``tcp`` coordinator/worker pair, or the
in-process ``workqueue`` work stealer — or inline in ``serial`` mode
for debugging.  Jobs get per-job timeouts enforced inside the worker
via ``SIGALRM``,
bounded retry on failure, and graceful partial-failure semantics: a
failed job marks its transitive dependents ``skipped`` instead of
aborting the whole grid.  Completed artifacts land in the
content-addressed :class:`~repro.lab.cache.ArtifactStore`, so
re-invoking the same grid skips finished jobs and a killed run resumes
where it left off.  Every run writes a structured manifest under
``results/runs/<run_id>/``.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import traceback
from concurrent.futures import (FIRST_COMPLETED, CancelledError, Future,
                                wait)
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from .backends import (ExecutorBackend, JobRequest, create_backend,
                       resolve_backend)
from .cache import MISS, ArtifactStore, cache_key
from .job import Job, JobGraph
from .manifest import build_manifest, new_run_id, write_manifest

__all__ = ["JobResult", "LabRun", "LabRunner", "run_jobs",
           "resolve_workers", "JobTimeout", "WORKERS_ENV"]

#: Environment knob for the worker count; ``serial`` or an integer.
WORKERS_ENV = "REPRO_LAB_WORKERS"


class JobTimeout(Exception):
    """Raised inside a worker when a job exceeds its timeout."""


def resolve_workers(value: "int | str | None" = None) -> "int | str":
    """Worker count from the argument, env, or ``cpu_count() - 1``.

    Returns the string ``"serial"`` (run jobs inline, no subprocesses —
    the debugging escape hatch) or an integer >= 2.  ``0``/``1`` map to
    serial: a one-worker pool only adds pickling overhead.

    An unparseable value — from the argument or from
    ``REPRO_LAB_WORKERS`` — raises a structured
    :class:`~repro.approx.ConfigError` naming the bad value, so the CLI
    can reject it as exit 2 with a JSON document instead of dying on a
    bare ``ValueError`` traceback.
    """
    source = "workers"
    if value is None:
        value = os.environ.get(WORKERS_ENV)
        if value is not None:
            source = WORKERS_ENV
    if value is None:
        value = max(1, (os.cpu_count() or 2) - 1)
    if isinstance(value, str):
        text = value.strip().lower()
        if text == "serial":
            return "serial"
        try:
            value = int(text)
        except ValueError:
            from repro.approx import ConfigError
            raise ConfigError(
                f"invalid worker count {value!r} "
                f"(expected an integer or 'serial')",
                field_name=source, value=value) from None
    return "serial" if value <= 1 else int(value)


def _alarm(signum, frame):
    raise JobTimeout()


def _disarm_alarm() -> None:
    """Disarm the job interval timer.

    A separate function so tests can intercept the instant between the
    job body returning and the timer being cleared — the race window in
    which a near-deadline alarm must not turn a finished job into a
    timeout.
    """
    signal.setitimer(signal.ITIMER_REAL, 0.0)


def _restore_itimer(old: "tuple[float, float] | None",
                    elapsed: float) -> None:
    """Re-arm a pre-existing interval timer, net of our elapsed time.

    The caller (e.g. an outer harness with its own watchdog) had
    ``old = (seconds_remaining, interval)`` on the clock when the job
    borrowed SIGALRM; give it back what is left, never less than a tick
    so an already-due alarm still fires.
    """
    if old is not None and old[0] > 0:
        signal.setitimer(signal.ITIMER_REAL,
                         max(old[0] - elapsed, 1e-6), old[1])


def _peak_rss_kb() -> "int | None":
    try:
        import resource
        usage = resource.getrusage(resource.RUSAGE_SELF)
        return int(usage.ru_maxrss)  # KiB on Linux
    except (ImportError, ValueError, OSError):
        return None


def _execute_payload(fn: Callable[..., Any], params: dict[str, Any],
                     timeout: "float | None",
                     dep_results: "dict[str, Any] | None"
                     ) -> tuple[str, Any, float, "int | None"]:
    """Run one job in this process; never raises across the boundary.

    Returns ``(status, payload, wall_time_s, peak_rss_kb)`` where
    ``status`` is ``ok``/``error``/``timeout`` and ``payload`` is the
    value or the error string.  The timeout is enforced with a real
    interval timer so a hung job cannot wedge the worker; any
    pre-existing SIGALRM handler and timer are saved and restored (the
    timer net of the time this job consumed), and a job that finishes
    within epsilon of its deadline is reported ``ok`` even if the alarm
    fires in the window before the timer is disarmed.
    """
    start = time.perf_counter()
    # SIGALRM can only be armed on the main thread; the workqueue
    # backend (and any other thread-hosted executor) runs jobs to
    # completion instead of interrupting them.
    use_alarm = bool(timeout) and hasattr(signal, "SIGALRM") \
        and threading.current_thread() is threading.main_thread()
    old_handler = old_timer = None
    completed, value = False, None
    if use_alarm:
        old_handler = signal.signal(signal.SIGALRM, _alarm)
        old_timer = signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        kwargs = dict(params)
        if dep_results is not None:
            kwargs["dep_results"] = dep_results
        try:
            value = fn(**kwargs)
            completed = True
        finally:
            # Disarm right here, not in the outer finally: the alarm
            # must not fire while the outcome is being packaged.
            if use_alarm:
                _disarm_alarm()
        status, payload = "ok", value
    except JobTimeout:
        if completed:
            # The job finished; the alarm merely won the race to the
            # disarm call.  Its value stands.
            status, payload = "ok", value
        else:
            status = "timeout"
            payload = f"timed out after {timeout:.1f}s"
    except Exception as exc:
        status = "error"
        payload = (f"{type(exc).__name__}: {exc}\n"
                   + traceback.format_exc(limit=8)[-2000:])
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, old_handler)
            _restore_itimer(old_timer, time.perf_counter() - start)
    wall = time.perf_counter() - start
    return status, payload, wall, _peak_rss_kb()


@dataclass
class JobResult:
    """Terminal record of one job in a run."""

    name: str
    status: str          # ok | cached | failed | skipped | cancelled
    value: Any = None
    error: "str | None" = None
    attempts: int = 0
    wall_time_s: float = 0.0
    peak_rss_kb: "int | None" = None
    seed: "int | None" = None
    cache_key: "str | None" = None
    artifact_digest: "str | None" = None

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")


@dataclass
class LabRun:
    """Everything a finished run produced."""

    run_id: str
    results: dict[str, JobResult]
    wall_time_s: float
    manifest_path: "Path | None" = None
    workers: "int | str" = "serial"
    backend: str = "local"

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results.values())

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for result in self.results.values():
            counts[result.status] = counts.get(result.status, 0) + 1
        return counts

    def value(self, name: str) -> Any:
        """The job's value; raises with its recorded error if it failed."""
        result = self.results[name]
        if not result.ok:
            raise RuntimeError(
                f"job {name!r} {result.status}: {result.error}")
        return result.value

    def values(self) -> dict[str, Any]:
        """name -> value for successful jobs only."""
        return {n: r.value for n, r in self.results.items() if r.ok}


def _default_log(message: str) -> None:
    print(message, flush=True)


@dataclass
class LabRunner:
    """Configured executor for job graphs.

    ``workers`` follows :func:`resolve_workers` (argument > env >
    ``cpu_count() - 1``); ``cache=None`` disables artifact caching;
    ``results_dir=None`` disables manifest writing.
    """

    workers: "int | str | None" = None
    #: Execution backend name (``local``/``tcp``/``workqueue``/...);
    #: ``None`` falls back to ``REPRO_LAB_BACKEND`` then ``local``.
    backend: "str | None" = None
    cache: "ArtifactStore | None" = field(
        default_factory=ArtifactStore)
    results_dir: "str | Path | None" = "results"
    log: "Callable[[str], None] | None" = _default_log
    default_timeout: "float | None" = None
    default_retries: int = 0
    manifest_extra: "dict[str, Any] | None" = None
    #: Set by :meth:`request_shutdown`; polled between scheduling steps.
    _shutdown: threading.Event = field(default_factory=threading.Event,
                                       init=False, repr=False)

    def request_shutdown(self) -> None:
        """Ask a run in progress to stop (thread-safe, idempotent).

        In-flight jobs are recorded as ``cancelled`` — not ``failed`` —
        never-started jobs are left out of the manifest, and
        :meth:`run` still writes the manifest before returning.
        """
        self._shutdown.set()

    def run(self, graph: JobGraph, run_id: "str | None" = None
            ) -> LabRun:
        graph.validate()
        workers = resolve_workers(self.workers)
        backend_name = resolve_backend(self.backend)
        run_id = run_id or new_run_id()
        start = time.perf_counter()
        results: dict[str, JobResult] = {}
        total = len(graph)
        self._emit(f"[lab] run {run_id}: {total} jobs, "
                   f"workers={workers}, backend={backend_name}")
        interrupt: "BaseException | None" = None
        try:
            if workers == "serial":
                self._run_serial(graph, results)
            else:
                backend = create_backend(backend_name, int(workers),
                                         cache=self.cache,
                                         log=self.log)
                self._run_backend(graph, results, backend)
        except (KeyboardInterrupt, SystemExit) as exc:
            # Pool teardown (Ctrl-C or a harness kill): the manifest
            # below records what actually happened — in-flight jobs as
            # ``cancelled``, finished ones with their real status —
            # and the interrupt continues on its way.
            interrupt = exc
        wall = time.perf_counter() - start
        run = LabRun(run_id=run_id, results=results, wall_time_s=wall,
                     workers=workers, backend=backend_name)
        run.manifest_path = self._write_manifest(graph, run)
        counts = ", ".join(f"{k}={v}"
                           for k, v in sorted(run.counts().items()))
        if interrupt is not None:
            self._emit(f"[lab] run {run_id} interrupted after "
                       f"{wall:.2f}s ({counts}); manifest written")
            raise interrupt
        self._emit(f"[lab] run {run_id} done in {wall:.2f}s ({counts})")
        return run

    # -- shared helpers --------------------------------------------------
    def _emit(self, message: str) -> None:
        if self.log is not None:
            self.log(message)

    def _seed_of(self, graph: JobGraph, job: Job) -> int:
        seed = job.params.get("seed")
        return seed if isinstance(seed, int) \
            else graph.seed_for(job.name)

    def _key_of(self, job: Job, results: dict[str, JobResult]
                ) -> str:
        digests = {d: results[d].artifact_digest or ""
                   for d in job.deps} if job.pass_deps else None
        return cache_key(job, digests)

    def _try_cache(self, graph: JobGraph, job: Job,
                   results: dict[str, JobResult]) -> "JobResult | None":
        if self.cache is None:
            return None
        key = self._key_of(job, results)
        value = self.cache.get(key, MISS)
        if value is MISS:
            return None
        return JobResult(
            name=job.name, status="cached", value=value,
            seed=self._seed_of(graph, job), cache_key=key,
            artifact_digest=self.cache.digest(key))

    def _dep_results(self, job: Job, results: dict[str, JobResult]
                     ) -> "dict[str, Any] | None":
        if not job.pass_deps:
            return None
        return {d: results[d].value for d in job.deps}

    def _finish(self, graph: JobGraph, job: Job, attempts: int,
                outcome: tuple[str, Any, float, "int | None"],
                results: dict[str, JobResult]) -> JobResult:
        status, payload, wall, rss = outcome
        seed = self._seed_of(graph, job)
        if status == "ok":
            key = digest = None
            if self.cache is not None:
                key = self._key_of(job, results)
                digest = self.cache.put(key, payload, meta={
                    "job": job.name, "params": job.params,
                    "wall_time_s": round(wall, 6)})
            result = JobResult(
                name=job.name, status="ok", value=payload,
                attempts=attempts, wall_time_s=wall, peak_rss_kb=rss,
                seed=seed, cache_key=key, artifact_digest=digest)
        else:
            result = JobResult(
                name=job.name, status="failed", error=str(payload),
                attempts=attempts, wall_time_s=wall, peak_rss_kb=rss,
                seed=seed)
        results[job.name] = result
        return result

    def _skip_dependents(self, graph: JobGraph, name: str,
                         results: dict[str, JobResult],
                         total: int) -> None:
        for child in graph.dependents_of(name):
            if child not in results:
                results[child] = JobResult(
                    name=child, status="skipped",
                    error=f"dependency {name!r} failed",
                    seed=graph.seed_for(child))
                self._progress(results[child], len(results), total)

    def _progress(self, result: JobResult, done: int, total: int
                  ) -> None:
        bits = [f"[lab] {done}/{total} {result.name}: "
                f"{result.status}"]
        if result.status in ("ok", "failed"):
            bits.append(f"wall={result.wall_time_s:.2f}s")
        if result.attempts > 1:
            bits.append(f"attempts={result.attempts}")
        if result.status == "failed" and result.error:
            bits.append(f"error={result.error.splitlines()[0]}")
        self._emit(" ".join(bits))

    def _retries_of(self, job: Job) -> int:
        return job.retries if job.retries else self.default_retries

    def _timeout_of(self, job: Job) -> "float | None":
        return job.timeout if job.timeout else self.default_timeout

    def _cancel(self, graph: JobGraph, name: str,
                results: dict[str, JobResult], total: int,
                wall: float = 0.0) -> None:
        """Record an in-flight job interrupted by pool teardown."""
        results[name] = JobResult(
            name=name, status="cancelled",
            error="interrupted by pool teardown",
            wall_time_s=wall, seed=graph.seed_for(name))
        self._progress(results[name], len(results), total)

    # -- serial mode -----------------------------------------------------
    def _run_serial(self, graph: JobGraph,
                    results: dict[str, JobResult]) -> None:
        total = len(graph)
        for name in graph.topological_order():
            if name in results:          # already marked skipped
                continue
            if self._shutdown.is_set():
                return
            job = graph.job(name)
            if not all(results[d].ok for d in job.deps):
                results[name] = JobResult(
                    name=name, status="skipped",
                    error="dependency failed",
                    seed=graph.seed_for(name))
                self._progress(results[name], len(results), total)
                continue
            cached = self._try_cache(graph, job, results)
            if cached is not None:
                results[name] = cached
                self._progress(cached, len(results), total)
                continue
            attempts = 0
            started = time.perf_counter()
            while True:
                attempts += 1
                try:
                    outcome = _execute_payload(
                        job.fn, job.params, self._timeout_of(job),
                        self._dep_results(job, results))
                except (KeyboardInterrupt, SystemExit):
                    # _execute_payload only absorbs Exception; an
                    # interrupt mid-job is a teardown, not a failure.
                    self._cancel(graph, name, results, total,
                                 wall=time.perf_counter() - started)
                    raise
                if outcome[0] == "ok" \
                        or attempts > self._retries_of(job):
                    break
                self._emit(f"[lab] retry {name} "
                           f"(attempt {attempts + 1})")
            result = self._finish(graph, job, attempts, outcome,
                                  results)
            if not result.ok:
                self._skip_dependents(graph, name, results, total)
            self._progress(result, len(results), total)

    # -- backend mode ----------------------------------------------------
    def _run_backend(self, graph: JobGraph,
                     results: dict[str, JobResult],
                     backend: ExecutorBackend) -> None:
        """Drive the graph on any :class:`ExecutorBackend`.

        This is the historical process-pool scheduling loop with the
        executor behind the :class:`ExecutorBackend` seam; with the
        ``local`` backend it is move-for-move identical to the old
        ``_run_pool``.
        """
        total = len(graph)
        pending = set(graph.names)
        running: dict[Future, tuple[str, int]] = {}

        with backend:

            def submit(job: Job, attempts: int) -> bool:
                try:
                    future = backend.submit(JobRequest(
                        name=job.name, fn=job.fn, params=job.params,
                        timeout=self._timeout_of(job),
                        dep_results=self._dep_results(job, results)))
                except Exception as exc:  # unpicklable/unshippable fn
                    results[job.name] = JobResult(
                        name=job.name, status="failed",
                        error=f"submit failed: {exc}",
                        attempts=attempts,
                        seed=graph.seed_for(job.name))
                    return False
                running[future] = (job.name, attempts)
                return True

            def schedule_ready() -> bool:
                """Launch/cache-resolve every ready job; True if moved."""
                progressed = False
                in_flight = {name for name, _ in running.values()}
                for name in sorted(pending):
                    if name in in_flight or name in results:
                        continue
                    job = graph.job(name)
                    if not all(d in results for d in job.deps):
                        continue
                    if not all(results[d].ok for d in job.deps):
                        results[name] = JobResult(
                            name=name, status="skipped",
                            error="dependency failed",
                            seed=graph.seed_for(name))
                        pending.discard(name)
                        self._progress(results[name], len(results),
                                       total)
                        progressed = True
                        continue
                    cached = self._try_cache(graph, job, results)
                    if cached is not None:
                        results[name] = cached
                        pending.discard(name)
                        self._progress(cached, len(results), total)
                        progressed = True
                        continue
                    if submit(job, 1):
                        progressed = True
                    else:
                        pending.discard(name)
                        self._skip_dependents(graph, name, results, total)
                        self._progress(results[name], len(results),
                                       total)
                return progressed

            def teardown(current: "str | None" = None) -> None:
                """Record in-flight jobs cancelled, stop the backend."""
                if current is not None:
                    self._cancel(graph, current, results, total)
                for name, _ in running.values():
                    if name not in results:
                        self._cancel(graph, name, results, total)
                running.clear()
                pending.clear()
                backend.shutdown(cancel_futures=True)

            try:
                while pending or running:
                    if self._shutdown.is_set():
                        teardown()
                        return
                    moved = schedule_ready()
                    if moved:
                        continue    # cache hits may unblock more jobs
                    if not running:
                        # Nothing runnable and nothing running:
                        # remaining jobs are unreachable (defensive;
                        # validate() should have caught cycles).
                        for name in sorted(pending):
                            if name not in results:
                                results[name] = JobResult(
                                    name=name, status="skipped",
                                    error="unreachable",
                                    seed=graph.seed_for(name))
                        pending.clear()
                        break
                    # The timeout keeps request_shutdown() responsive.
                    finished, _ = wait(running,
                                       return_when=FIRST_COMPLETED,
                                       timeout=0.25)
                    for future in finished:
                        name, attempts = running.pop(future)
                        job = graph.job(name)
                        try:
                            outcome = future.result()
                        except CancelledError:
                            # Torn down before it ran: not a failure.
                            self._cancel(graph, name, results, total)
                            pending.discard(name)
                            continue
                        except (KeyboardInterrupt, SystemExit):
                            # The interrupt surfaced through the
                            # worker; this job (and every other
                            # in-flight one) was a teardown victim,
                            # not a spurious failure.
                            teardown(current=name)
                            raise
                        except Exception as exc:
                            # e.g. BrokenProcessPool: the worker died
                            # on its own — a real failure.
                            outcome = ("error",
                                       f"{type(exc).__name__}: {exc}",
                                       0.0, None)
                        if outcome[0] != "ok" \
                                and attempts <= self._retries_of(job):
                            self._emit(f"[lab] retry {name} "
                                       f"(attempt {attempts + 1})")
                            submit(job, attempts + 1)
                            continue
                        result = self._finish(graph, job, attempts,
                                              outcome, results)
                        pending.discard(name)
                        if not result.ok:
                            self._skip_dependents(graph, name, results,
                                                  total)
                        self._progress(result, len(results), total)
            except (KeyboardInterrupt, SystemExit):
                # An interrupt delivered to the parent while waiting.
                teardown()
                raise

    # -- manifest --------------------------------------------------------
    def _write_manifest(self, graph: JobGraph, run: LabRun
                        ) -> "Path | None":
        if self.results_dir is None:
            return None
        entries: dict[str, dict[str, Any]] = {}
        for name in graph.topological_order():
            result = run.results.get(name)
            if result is None:
                continue
            job = graph.job(name)
            entries[name] = {
                "params": job.params,
                "deps": list(job.deps),
                "seed": result.seed,
                "status": result.status,
                "attempts": result.attempts,
                "wall_time_s": round(result.wall_time_s, 6),
                "peak_rss_kb": result.peak_rss_kb,
                "cache_key": result.cache_key,
                "artifact_digest": result.artifact_digest,
                "error": result.error,
            }
            # Surface static-verification results next to the job so
            # manifest readers need not unpack the cached artifact.
            if isinstance(result.value, dict) \
                    and isinstance(result.value.get("lint"), dict):
                entries[name]["diagnostics"] = result.value["lint"]
            # Likewise the per-pass flow trace (wall times, cache
            # hit/miss counters, resume status).
            if isinstance(result.value, dict) \
                    and isinstance(result.value.get("trace"), dict):
                entries[name]["trace"] = result.value["trace"]
        doc = build_manifest(
            run_id=run.run_id, root_seed=graph.root_seed,
            workers=run.workers, wall_time_s=run.wall_time_s,
            jobs=entries, backend=run.backend,
            extra=self.manifest_extra)
        run_dir = Path(self.results_dir) / "runs" / run.run_id
        return write_manifest(run_dir, doc)


def run_jobs(jobs: "list[Job] | JobGraph", *,
             root_seed: int = 2008,
             run_id: "str | None" = None,
             **runner_kwargs: Any) -> LabRun:
    """Convenience wrapper: build a graph (if needed) and run it."""
    graph = jobs if isinstance(jobs, JobGraph) \
        else JobGraph(jobs, root_seed=root_seed)
    return LabRunner(**runner_kwargs).run(graph, run_id=run_id)
