"""Cross-process content-addressed proof cache + parallel cone proving.

The per-PO implication condition (paper Sec 2.2) only depends on the
*cones* of the original and approximate output and the check direction.
This module derives a content address for that triple — the sha256 of a
levelized serialization of both cones — and persists proved verdicts as
small JSON entries under ``.lab_cache/proofs/``, so repeated sweeps,
warm serve-style workloads, and lint re-verification never re-prove a
cone.  Only *exact* verdicts (BDD or SAT engines) are ever stored or
served; statistical simulation verdicts stay out of the cache so a flow
produces bit-identical results with a cold or warm cache.

Every entry embeds a digest of its own payload: a corrupted entry
(truncated write, bit rot, hand editing) is detected on read, evicted,
and transparently re-proved.

Independent POs' implications can also be proved *concurrently*:
:func:`prove_implications` ships self-contained cone payloads to a
process pool (``REPRO_PROOF_WORKERS`` workers), each worker rebuilding
the pair of cone networks and proving with budget-capped global BDDs.
Budget state threads into the workers — node caps and the remaining
wall-clock deadline — so a blow-up or deadline inside a worker reports
back as "undecided" and the caller's degradation ladder fires for that
cone exactly as it would in-process.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

__all__ = ["ProofCache", "ConeFingerprinter", "implication_key",
           "pct_key", "error_key", "cone_payload", "prove_implications",
           "proof_workers", "PROOF_WORKERS_ENV", "PROOF_SCHEMA",
           "CHECK_KIND_VERSIONS", "EXACT_ENGINES", "STATIC_ENGINE",
           "TRUSTED_ENGINES"]

#: Bump when the entry layout or the fingerprint recipe changes.
#: v2: keys carry the synthesis-engine name and a per-check-kind
#: version, so mixed-engine sweeps sharing one cache directory can
#: never serve a cube-selection verdict to a resub query (or vice
#: versa); v1 entries are stale-format and evicted on read or via
#: ``cache prune``.
PROOF_SCHEMA = 2

#: Version of each check kind's *meaning*.  Bumping one invalidates
#: that kind's keys only, instead of the whole cache via PROOF_SCHEMA.
CHECK_KIND_VERSIONS = {"implication": 1, "approx_pct": 1,
                       "error_metric": 1}

#: Environment variable selecting the parallel-prover worker count.
#: ``0`` (the default) disables out-of-process proving.
PROOF_WORKERS_ENV = "REPRO_PROOF_WORKERS"

#: Engines whose verdicts are exact and therefore cacheable.
EXACT_ENGINES = ("bdd", "sat")

#: The static-discharge rung (repro.analyze): verdicts are theorems of
#: the dataflow analyses, as trustworthy as BDD/SAT proofs.
STATIC_ENGINE = "static"

#: Every engine whose cached verdicts may be served without re-proving.
TRUSTED_ENGINES = (*EXACT_ENGINES, STATIC_ENGINE)


def proof_workers() -> int:
    """Worker count for parallel cone proving (0 = in-process only)."""
    raw = os.environ.get(PROOF_WORKERS_ENV, "0").strip()
    try:
        return max(int(raw), 0)
    except ValueError:
        return 0


# ----------------------------------------------------------------------
# Cone fingerprints
# ----------------------------------------------------------------------
class ConeFingerprinter:
    """Memoizing serializer of per-signal cones.

    One per-network serialization (a line per node: name, fanins, SOP
    cover rows) is computed per ``(object, version)`` and reused for
    every root, so fingerprinting all POs of a network costs one table
    build plus one transitive-fanin walk per PO.
    """

    def __init__(self):
        self._memo: dict[int, tuple] = {}

    def _table(self, network) -> tuple[dict[str, str], dict[str, int]]:
        key = id(network)
        memo = self._memo.get(key)
        version = getattr(network, "version", None)
        if memo is not None and memo[0] is network and memo[1] == version:
            return memo[2], memo[3]
        order = network.topological_order()
        index = {name: i for i, name in enumerate(order)}
        lines = {}
        for name in order:
            node = network.nodes[name]
            lines[name] = (f"{name}<{','.join(node.fanins)}"
                          f"<{';'.join(node.cover.to_strings())}")
        self._memo[key] = (network, version, lines, index)
        return lines, index

    def cone(self, network, root: str) -> str:
        """Deterministic levelized serialization of one root's cone."""
        if root not in network.nodes:
            return f"pi:{root}"
        lines, index = self._table(network)
        cone = network.transitive_fanin([root])
        members = sorted((n for n in cone if n in lines),
                         key=index.__getitem__)
        pis = sorted(n for n in cone if n not in lines)
        return "|".join([f"root:{root}", "pis:" + ",".join(pis)]
                        + [lines[n] for n in members])


def _key(fp: ConeFingerprinter, original, approx, po: str,
         kind: str, engine: str, extra: list[str]) -> str:
    payload = "\n".join([
        f"proof-v{PROOF_SCHEMA}", f"kind={kind}",
        f"kind-v{CHECK_KIND_VERSIONS[kind]}", f"engine={engine}",
        *extra,
        "[original]", fp.cone(original, po),
        "[approx]", fp.cone(approx, po)])
    return hashlib.sha256(payload.encode()).hexdigest()


def implication_key(fp: ConeFingerprinter, original, approx,
                    po: str, direction: int,
                    engine: str = "cube") -> str:
    """Content address of one per-PO implication check.

    ``engine`` is the synthesis engine asking — its verdicts never
    collide with another engine's even on identical cones.
    """
    return _key(fp, original, approx, po, "implication", engine,
                [f"direction={int(direction)}"])


def pct_key(fp: ConeFingerprinter, original, approx,
            po: str, direction: int, engine: str = "cube") -> str:
    """Content address of one per-PO approximation percentage."""
    return _key(fp, original, approx, po, "approx_pct", engine,
                [f"direction={int(direction)}"])


def error_key(fp: ConeFingerprinter, original, approx, po: str,
              metric: str, engine: str = "resub") -> str:
    """Content address of one per-PO exact error-metric evaluation."""
    return _key(fp, original, approx, po, "error_metric", engine,
                [f"metric={metric}"])


# ----------------------------------------------------------------------
# The on-disk cache
# ----------------------------------------------------------------------
class ProofCache:
    """JSON proof entries addressed by cone fingerprint.

    Entries live in ``root/<key[:2]>/<key>.json``; writes are atomic
    (temp file + ``os.replace``).  Each entry carries a digest of its
    own canonical payload — a mismatch means corruption, and the entry
    is evicted and treated as a miss.
    """

    def __init__(self, root: "str | Path" = ".lab_cache/proofs"):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    @staticmethod
    def _digest(entry: dict) -> str:
        payload = {k: v for k, v in sorted(entry.items())
                   if k != "digest"}
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()).hexdigest()

    def get(self, key: str) -> dict | None:
        """The cached entry, or None; corrupted entries are evicted."""
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
        except OSError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, UnicodeDecodeError):
            self.evict(key)
            self.evictions += 1
            self.misses += 1
            return None
        if not isinstance(entry, dict) \
                or entry.get("schema") != PROOF_SCHEMA \
                or entry.get("digest") != self._digest(entry):
            self.evict(key)
            self.evictions += 1
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key: str, entry: dict) -> None:
        """Store an entry atomically (its digest is filled in here).

        The temp name is unique per process *and* thread (warm serve
        workers share one pid across shards in thread mode), and a
        failed write never leaves the temp file behind — concurrent
        readers either see the old complete entry or the new one,
        never a torn JSON document.
        """
        import threading

        doc = dict(entry)
        doc["schema"] = PROOF_SCHEMA
        doc["digest"] = self._digest(doc)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}"
            f".{threading.get_ident():x}.tmp")
        try:
            tmp.write_text(json.dumps(doc, sort_keys=True))
            os.replace(tmp, path)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise

    def evict(self, key: str) -> None:
        try:
            self._path(key).unlink()
        except OSError:
            pass

    # -- hygiene ---------------------------------------------------------
    def _entries(self) -> list[tuple[Path, int, float]]:
        found = []
        if not self.root.is_dir():
            return found
        for path in self.root.glob("*/*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            found.append((path, stat.st_size, stat.st_mtime))
        return found

    def stats(self) -> dict:
        """On-disk totals plus this process's runtime counters."""
        entries = self._entries()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(size for _, size, _ in entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    @staticmethod
    def _unlink_if_older(path: Path, scan_start: float) -> bool:
        """Unlink ``path`` unless a writer refreshed it after the scan.

        Prune scans race with concurrent ``put`` writers: the atomic
        ``os.replace`` can land between the directory walk and the
        unlink, and blindly unlinking would then delete the *fresh*
        entry that the scan never judged.  Re-stat right before the
        unlink and spare anything written at or after ``scan_start``;
        an entry already evicted by someone else is simply not ours to
        count.  Returns True when this call removed the entry.
        """
        try:
            if path.stat().st_mtime >= scan_start:
                return False
            path.unlink()
            return True
        except FileNotFoundError:
            return False
        except OSError:
            return False

    def prune(self, max_bytes: int) -> dict:
        """Evict oldest entries (by mtime) until under ``max_bytes``.

        Safe against concurrent writers: entries written after the scan
        started are never deleted, and an entry vanishing mid-scan
        (evicted by a reader, pruned by another process) is tolerated.
        """
        scan_start = time.time()
        entries = sorted(self._entries(), key=lambda e: e[2])
        total = sum(size for _, size, _ in entries)
        removed = 0
        for path, size, mtime in entries:
            if total <= max_bytes:
                break
            if mtime >= scan_start:
                continue
            if not self._unlink_if_older(path, scan_start):
                continue
            total -= size
            removed += 1
        return {"removed": removed, "kept_entries": len(entries) - removed,
                "kept_bytes": total}

    def prune_stale(self) -> dict:
        """Evict stale-format entries (old schema, corrupt, torn).

        ``get`` already evicts lazily on read; this sweeps the whole
        store eagerly so a ``cache prune`` after a schema bump leaves
        only current-format entries behind.  Concurrent writers are
        tolerated: a file that disappears mid-scan is skipped, and an
        entry rewritten after the scan started is never unlinked even
        when the bytes the scan judged looked stale.
        """
        scan_start = time.time()
        removed = 0
        kept = 0
        for path, _, _ in self._entries():
            try:
                entry = json.loads(path.read_text())
                stale = (not isinstance(entry, dict)
                         or entry.get("schema") != PROOF_SCHEMA
                         or entry.get("digest") != self._digest(entry))
            except FileNotFoundError:
                continue               # evicted under us: not ours to count
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                stale = True
            if stale:
                if self._unlink_if_older(path, scan_start):
                    removed += 1
                else:
                    kept += 1
            else:
                kept += 1
        return {"removed_stale": removed, "kept_entries": kept}


# ----------------------------------------------------------------------
# Parallel cone proving
# ----------------------------------------------------------------------
def cone_payload(network, root: str) -> dict:
    """A self-contained, picklable description of one root's cone."""
    if root not in network.nodes:
        return {"root": root, "inputs": [root], "nodes": []}
    cone = network.transitive_fanin([root])
    inputs = [pi for pi in network.inputs if pi in cone]
    nodes = []
    for name in network.topological_order():
        if name not in cone:
            continue
        node = network.nodes[name]
        nodes.append((name, list(node.fanins), node.cover.to_strings(),
                      node.cover.n))
    return {"root": root, "inputs": inputs, "nodes": nodes}


def _network_from_payload(payload: dict, name: str):
    from repro.cubes import Cover
    from repro.network import Network
    net = Network(name)
    for pi in payload["inputs"]:
        net.add_input(pi)
    for node_name, fanins, rows, width in payload["nodes"]:
        cover = Cover.from_strings(rows) if rows else Cover(width)
        net.add_node(node_name, list(fanins), cover)
    net.add_output(payload["root"])
    return net


def _prove_entry(job: dict) -> dict:
    """Worker: rebuild one cone pair and prove its implication.

    Returns ``{"key", "ok", "holds", "engine"}`` on success; on
    overflow/deadline/any failure ``ok`` is False and the caller's
    in-process ladder takes over for that cone.
    """
    key = job["key"]
    try:
        from repro.bdd import BddOverflowError
        from repro.guard import Budget, BudgetExceeded
        from repro.network import GlobalBdds, dfs_input_order

        original = _network_from_payload(job["original"], "cone_o")
        approx = _network_from_payload(job["approx"], "cone_a")
        inputs = dfs_input_order(original)
        for pi in approx.inputs:
            if pi not in inputs:
                inputs.append(pi)
        try:
            bdds = GlobalBdds(inputs, max_nodes=job.get("node_cap"))
            deadline_s = job.get("deadline_s")
            if deadline_s is not None:
                bdds.manager.guard = Budget(deadline_s=deadline_s).start()
            bdds.add_network(original, prefix="o_")
            bdds.add_network(approx, prefix="a_")
            po = job["po"]
            if job["direction"] == 1:
                holds = bdds.implies("a_" + po, "o_" + po)
            else:
                holds = bdds.implies("o_" + po, "a_" + po)
            return {"key": key, "ok": True, "holds": bool(holds),
                    "engine": "bdd"}
        except (BddOverflowError, BudgetExceeded) as exc:
            return {"key": key, "ok": False, "why": type(exc).__name__}
    except Exception as exc:  # never kill the pool on a cone
        return {"key": key, "ok": False, "why": repr(exc)}


def prove_implications(jobs: list[dict], workers: int) -> list[dict]:
    """Prove many independent cone implications on a process pool.

    Each job: ``{"key", "original", "approx", "po", "direction",
    "node_cap", "deadline_s"}`` (see :func:`cone_payload`).  Falls back
    to in-process proving when ``workers <= 1`` or the pool cannot
    start (sandboxes without semaphores).
    """
    if workers <= 1 or len(jobs) <= 1:
        return [_prove_entry(job) for job in jobs]
    try:
        from concurrent.futures import ProcessPoolExecutor
        with ProcessPoolExecutor(max_workers=min(workers,
                                                 len(jobs))) as pool:
            chunk = max(len(jobs) // (4 * workers), 1)
            return list(pool.map(_prove_entry, jobs, chunksize=chunk))
    except (OSError, ImportError, RuntimeError):
        return [_prove_entry(job) for job in jobs]
