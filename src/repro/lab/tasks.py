"""Picklable task functions for orchestrated experiments.

Every benchmark table, ablation grid, and CLI sweep point is expressed
as a module-level function of plain parameters returning plain JSON
data, so jobs can cross the process boundary, land in the
content-addressed cache, and appear verbatim in run manifests.  Keep
task bodies byte-for-byte faithful to the original serial drivers:
the lab must change *how* experiments are scheduled, never *what*
they compute.
"""

from __future__ import annotations

import time
from typing import Any

from repro.approx import (ApproxConfig, NodeType, exact_select,
                          odc_select, synthesize_approximation)
from repro.bench import (figure1_network, figure1_selections,
                         load_benchmark, random_network,
                         tiny_benchmark)
from repro.ced import (build_ced, build_parity_ced,
                       build_partial_duplication, evaluate_ced,
                       run_ced_flow)
from repro.reliability import analyze_reliability
from repro.sim import switching_activity
from repro.synth import TABLE3_SCRIPTS, quick_map

__all__ = ["load_circuit", "ced_flow_task", "table2_schemes_task",
           "table3_task", "scalability_task", "figure1_task"]


def load_circuit(circuit: str, table: int = 2):
    """Resolve a circuit name; ``tiny`` is the fast smoke circuit."""
    if circuit == "tiny":
        return tiny_benchmark()
    return load_benchmark(circuit, table=table)


def ced_flow_task(circuit: str, table: int = 2, words: int = 4,
                  seed: int = 2008, share_logic: bool = False,
                  config: "dict[str, Any] | None" = None,
                  directions: "dict[str, int] | None" = None,
                  min_approx_pct: float = 25.0,
                  lint_level: str = "off",
                  checkpoint_dir: "str | None" = None,
                  proof_cache_dir: "str | None" = None) -> dict[str, Any]:
    """One complete CED flow run -> machine-readable record.

    ``config`` is a dict of :class:`~repro.approx.ApproxConfig`
    keyword overrides (kept as plain data so the job is hashable for
    the artifact cache).  ``lint_level`` != "off" runs the static
    verifier over the finished flow; its diagnostics land in the
    returned record (and hence in the run manifest).
    ``checkpoint_dir`` persists per-pass checkpoints to that
    content-addressed store, so a killed sweep re-run resumes each
    flow after its last completed pass instead of from scratch.
    ``proof_cache_dir`` shares per-PO implication proofs across the
    sweep's worker processes by cone fingerprint (results stay
    bit-identical; see :mod:`repro.lab.proofs`).
    """
    net = load_circuit(circuit, table)
    cfg = ApproxConfig.from_dict(config) if config else None
    if directions is not None:
        directions = {po: int(d) for po, d in directions.items()}
    flow = run_ced_flow(net, config=cfg, share_logic=share_logic,
                        reliability_words=words, coverage_words=words,
                        seed=seed, directions=directions,
                        min_approx_pct=min_approx_pct,
                        lint_level=lint_level,
                        checkpoint_dir=checkpoint_dir,
                        proof_cache_dir=proof_cache_dir)
    return flow.to_dict()


def table2_schemes_task(circuit: str, words: int) -> dict[str, Any]:
    """All four Table 2 schemes on one circuit (paper Sec 4)."""
    net = load_circuit(circuit)
    plain = run_ced_flow(net, reliability_words=words,
                         coverage_words=words)
    shared = run_ced_flow(net, share_logic=True,
                          reliability_words=words,
                          coverage_words=words)
    original = plain.original_mapped

    budget = max(plain.summary()["area_overhead_pct"], 5.0)
    pdup = build_partial_duplication(original, budget, n_words=words)
    pdup_cov = evaluate_ced(pdup, n_words=words, seed=11)
    pdup_gates = sum(1 for g in pdup.netlist.gates
                     if g.startswith("dup_"))

    parity = build_parity_ced(original, net)
    parity_cov = evaluate_ced(parity, n_words=words, seed=11)
    parity_gates = sum(1 for g in parity.netlist.gates
                       if g.startswith("pp_"))
    base_power = switching_activity(original, n_words=8)
    parity_power = switching_activity(parity.netlist, n_words=8)

    return {
        "plain": plain.to_dict(),
        "shared": shared.to_dict(),
        "pdup_area": float(100 * pdup_gates / original.gate_count),
        "pdup_cov": float(pdup_cov.coverage),
        "parity_area": float(100 * parity_gates
                             / original.gate_count),
        "parity_power": float(100 * (parity_power - base_power)
                              / base_power),
        "parity_cov": float(parity_cov.coverage),
    }


def table3_task(circuit: str, words: int) -> dict[str, Any]:
    """CED coverage of one approximation across five mappings."""
    net = load_circuit(circuit)
    reliability = analyze_reliability(quick_map(net), n_words=words)
    approx = synthesize_approximation(net, reliability.approximations)
    coverages = []
    for script in TABLE3_SCRIPTS:
        original = script.run(net)
        approx_mapped = script.run(approx.approx)
        assembly = build_ced(original, approx_mapped,
                             reliability.approximations)
        result = evaluate_ced(assembly, n_words=words, seed=31)
        coverages.append(float(result.coverage))
    return {
        "coverages": coverages,
        "spread": float(max(coverages) - min(coverages)),
    }


def scalability_task(n_nodes: int) -> dict[str, Any]:
    """Time approximate synthesis on a generated n-node network."""
    net = random_network(4242 + n_nodes, n_nodes, 48, 12,
                         name=f"scale{n_nodes}")
    reliability = analyze_reliability(quick_map(net), n_words=1)
    # Simulation checking: the scaling claim is about the synthesis
    # algorithm, not about BDD construction.
    config = ApproxConfig(check="sim", sim_check_words=16)
    start = time.perf_counter()
    result = synthesize_approximation(net, reliability.approximations,
                                      config)
    elapsed = time.perf_counter() - start
    return {
        "nodes": int(net.num_nodes),
        "elapsed_s": float(elapsed),
        "repair_rounds": int(result.repair_rounds),
    }


def figure1_task() -> dict[str, Any]:
    """The Figure 1 cube-selection outcomes and exact-vs-ODC facts."""
    selections = figure1_selections()
    net = figure1_network()
    sop = net.nodes["n5"].cover
    types = [NodeType.ONE, NodeType.DC, NodeType.DC]
    exact = exact_select(sop, types)
    odc = odc_select(sop, types)
    return {
        "solution1": selections["solution1"].to_strings(),
        "solution2": sorted(selections["solution2"].to_strings()),
        "odc": selections["odc"].to_strings(),
        "exact_implies_odc": bool(exact.implies(odc)),
        "odc_implies_exact": bool(odc.implies(exact)),
        "exact_minterms": int(exact.count_minterms()),
        "odc_minterms": int(odc.count_minterms()),
    }
