"""Lab TCP worker: lease jobs, heartbeat, report outcomes.

``python -m repro.lab.worker --host H --port P --store DIR`` joins the
grid a :class:`~repro.lab.backends.TcpBackend` coordinator is serving.
The loop is deliberately dumb: poll ``/v1/lab/lease``, run the job with
the same ``_execute_payload`` body the local pool uses (timeouts,
captured tracebacks, peak-RSS accounting all included), heartbeat from
a side thread while it runs, drop the result into the shared
content-addressed artifact store, and ``/v1/lab/complete`` with the
result key.  Any coordinator disappearance (connection refused/reset)
means the run is over and the worker exits cleanly — workers never
outlive the grid.

Remote machines run this module directly against a reachable
coordinator with the store root on a shared filesystem; the spawned
loopback workers the backend manages use exactly this entry point.
"""

from __future__ import annotations

import argparse
import http.client
import json
import threading
import time

from .cache import MISS, ArtifactStore

__all__ = ["main", "WorkerLoop"]


class _CoordinatorGone(Exception):
    """The coordinator stopped answering: the run is over."""


class WorkerLoop:
    """One worker process's lease/run/complete loop."""

    def __init__(self, host: str, port: int, worker_id: str,
                 store: ArtifactStore, *, heartbeat_s: float = 0.25,
                 poll_s: float = 0.05, timeout: float = 10.0):
        self.host = host
        self.port = port
        self.worker_id = worker_id
        self.store = store
        self.heartbeat_s = heartbeat_s
        self.poll_s = poll_s
        self.timeout = timeout

    # -- wire ------------------------------------------------------------
    def _post(self, path: str, doc: dict) -> "tuple[int, dict]":
        """One POST on a fresh connection; simple beats clever here."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            body = json.dumps(doc).encode("utf-8")
            try:
                conn.request("POST", path, body=body,
                             headers={"Content-Type":
                                      "application/json"})
                response = conn.getresponse()
                raw = response.read()
            except (ConnectionError, http.client.HTTPException,
                    OSError) as exc:
                raise _CoordinatorGone(str(exc)) from exc
            if response.status == 204 or not raw:
                return response.status, {}
            try:
                return response.status, json.loads(raw.decode("utf-8"))
            except ValueError:
                return response.status, {}
        finally:
            conn.close()

    # -- one job ---------------------------------------------------------
    def _run_job(self, spec: dict) -> None:
        from .backends import _transfer_key, resolve_fn_reference
        from .executor import _execute_payload

        token = spec["job"]
        stop_beat = threading.Event()

        def beat() -> None:
            while not stop_beat.wait(self.heartbeat_s):
                try:
                    _, doc = self._post("/v1/lab/heartbeat",
                                        {"worker": self.worker_id,
                                         "job": token})
                except _CoordinatorGone:
                    return
                if doc.get("abandon"):
                    return          # job re-dispatched or cancelled

        beater = threading.Thread(target=beat, daemon=True,
                                  name="lab-worker-heartbeat")
        beater.start()
        started = time.perf_counter()
        try:
            fn = resolve_fn_reference(spec["fn"])
            dep_results = None
            if spec.get("deps_key"):
                dep_results = self.store.get(spec["deps_key"], MISS)
                if dep_results is MISS:
                    raise RuntimeError(
                        f"dependency payload {spec['deps_key']} "
                        f"missing from the shared store")
            outcome = _execute_payload(fn, spec.get("params") or {},
                                       spec.get("timeout"), dep_results)
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            outcome = ("error", f"{type(exc).__name__}: {exc}",
                       time.perf_counter() - started, None)
        finally:
            stop_beat.set()
        beater.join(timeout=2 * self.heartbeat_s)

        status, payload, wall, rss = outcome
        report = {"worker": self.worker_id, "job": token,
                  "status": status, "wall_time_s": wall,
                  "peak_rss_kb": rss}
        if status == "ok":
            result_key = _transfer_key("result", token)
            self.store.put(result_key, payload,
                           meta={"job": token,
                                 "worker": self.worker_id})
            report["result_key"] = result_key
        else:
            report["error"] = str(payload)
        self._post("/v1/lab/complete", report)

    # -- main loop -------------------------------------------------------
    def run_forever(self) -> int:
        while True:
            try:
                status, doc = self._post("/v1/lab/lease",
                                         {"worker": self.worker_id})
            except _CoordinatorGone:
                return 0
            if doc.get("shutdown"):
                return 0
            if status != 200 or "job" not in doc:
                time.sleep(self.poll_s)
                continue
            try:
                self._run_job(doc)
            except _CoordinatorGone:
                return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.lab.worker",
        description="lab TCP backend worker process")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--worker-id", default=None)
    parser.add_argument("--store", required=True,
                        help="shared artifact-store root "
                             "(the result transfer medium)")
    parser.add_argument("--heartbeat-s", type=float, default=0.25)
    parser.add_argument("--poll-s", type=float, default=0.05)
    args = parser.parse_args(argv)
    worker_id = args.worker_id
    if worker_id is None:
        import os
        worker_id = f"pid{os.getpid()}"
    loop = WorkerLoop(args.host, args.port, worker_id,
                      ArtifactStore(args.store),
                      heartbeat_s=args.heartbeat_s,
                      poll_s=args.poll_s)
    return loop.run_forever()


if __name__ == "__main__":                       # pragma: no cover
    raise SystemExit(main())
