"""The job model of the experiment-orchestration subsystem.

A :class:`Job` wraps any picklable module-level callable — a
``run_ced_flow`` invocation, a reliability analysis, one point of a
sweep — together with explicit, JSON-serializable parameters, an
optional list of dependencies, and scheduling attributes (timeout,
retry budget).  A :class:`JobGraph` collects jobs, validates the DAG,
and derives a deterministic per-job seed from the graph's root seed so
results are bit-identical regardless of worker count or completion
order.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Job", "JobGraph", "derive_seed", "canonical_params"]


def derive_seed(root_seed: int, job_name: str) -> int:
    """Deterministic per-job seed: a stable hash of (root seed, name).

    Independent of scheduling, worker count, and Python's randomized
    ``hash()``; distinct job names get (almost surely) distinct seeds.
    """
    digest = hashlib.sha256(
        f"{root_seed}\x1f{job_name}".encode()).digest()
    return int.from_bytes(digest[:4], "big") % (2 ** 31 - 1)


def canonical_params(params: dict[str, Any]) -> str:
    """Canonical JSON encoding of a job's parameters.

    Raises ``TypeError`` when a parameter is not JSON-serializable:
    content-addressed caching and manifests both require plain-data
    params (circuit *names*, thresholds, word counts — not live
    ``Network`` objects).
    """
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


@dataclass
class Job:
    """One schedulable unit of work.

    ``fn`` must be picklable by reference (a module-level function) so
    it can cross the process boundary; it is called as ``fn(**params)``.
    When ``pass_deps`` is set it additionally receives
    ``dep_results={dep_name: value}``.
    """

    name: str
    fn: Callable[..., Any]
    params: dict[str, Any] = field(default_factory=dict)
    deps: tuple[str, ...] = ()
    timeout: float | None = None
    retries: int = 0
    pass_deps: bool = False

    def __post_init__(self):
        if not self.name:
            raise ValueError("job name must be non-empty")
        self.deps = tuple(self.deps)
        canonical_params(self.params)  # fail fast on bad params


class JobGraph:
    """A named DAG of jobs with a shared root seed."""

    def __init__(self, jobs: "list[Job] | tuple[Job, ...]" = (),
                 root_seed: int = 2008):
        self.root_seed = root_seed
        self._jobs: dict[str, Job] = {}
        for job in jobs:
            self.add(job)

    # -- construction ----------------------------------------------------
    def add(self, job: Job) -> Job:
        if job.name in self._jobs:
            raise ValueError(f"duplicate job name {job.name!r}")
        self._jobs[job.name] = job
        return job

    def job(self, name: str) -> Job:
        return self._jobs[name]

    @property
    def names(self) -> list[str]:
        return list(self._jobs)

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self):
        return iter(self._jobs.values())

    def __contains__(self, name: str) -> bool:
        return name in self._jobs

    def seed_for(self, name: str) -> int:
        """The deterministic seed assigned to job ``name``."""
        if name not in self._jobs:
            raise KeyError(name)
        return derive_seed(self.root_seed, name)

    # -- validation / ordering -------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` on unknown dependencies or cycles."""
        for job in self._jobs.values():
            for dep in job.deps:
                if dep not in self._jobs:
                    raise ValueError(
                        f"job {job.name!r} depends on unknown job "
                        f"{dep!r}")
        self.topological_order()

    def topological_order(self) -> list[str]:
        """Kahn's algorithm; ties broken by name for determinism."""
        indegree = {name: 0 for name in self._jobs}
        dependents: dict[str, list[str]] = {n: [] for n in self._jobs}
        for job in self._jobs.values():
            for dep in job.deps:
                if dep in indegree:
                    indegree[job.name] += 1
                    dependents[dep].append(job.name)
        ready = sorted(n for n, d in indegree.items() if d == 0)
        order: list[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            freed = []
            for child in dependents[name]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    freed.append(child)
            if freed:
                ready = sorted(ready + freed)
        if len(order) != len(self._jobs):
            cyclic = sorted(set(self._jobs) - set(order))
            raise ValueError(f"dependency cycle involving {cyclic}")
        return order

    def dependents_of(self, name: str) -> list[str]:
        """Transitive dependents of ``name`` (jobs it unblocks)."""
        direct: dict[str, list[str]] = {n: [] for n in self._jobs}
        for job in self._jobs.values():
            for dep in job.deps:
                if dep in direct:
                    direct[dep].append(job.name)
        seen: set[str] = set()
        stack = list(direct.get(name, ()))
        while stack:
            child = stack.pop()
            if child in seen:
                continue
            seen.add(child)
            stack.extend(direct[child])
        return sorted(seen)
