"""Structured run manifests and progress telemetry.

Every orchestrated run writes ``results/runs/<run_id>/manifest.json``
recording, per job: parameters, derived seed, status, attempt count,
wall time, peak RSS (when the platform exposes it), cache key, and
artifact digest.  The manifest replaces ad-hoc append-only text files
as the machine-readable record of an experiment, and
:func:`validate_manifest` keeps its schema honest in tests and CI.
"""

from __future__ import annotations

import datetime
import json
import os
from pathlib import Path
from typing import Any

from repro.flow import validate_trace

__all__ = ["MANIFEST_SCHEMA_VERSION", "new_run_id", "write_manifest",
           "load_manifest", "validate_manifest", "merge_manifests",
           "JOB_STATUSES"]

MANIFEST_SCHEMA_VERSION = 1

#: Terminal job states.  ``ok``/``cached`` are successes; ``failed``
#: exhausted its retry budget; ``skipped`` had a failed dependency;
#: ``cancelled`` was in flight when the runner itself was torn down
#: (Ctrl-C / ``request_shutdown``) — the job did not fail on its own.
JOB_STATUSES = ("ok", "cached", "failed", "skipped", "cancelled")

_REQUIRED_RUN_KEYS = ("schema_version", "run_id", "created",
                      "root_seed", "workers", "wall_time_s", "counts",
                      "jobs")
_REQUIRED_JOB_KEYS = ("params", "seed", "status", "attempts",
                      "wall_time_s")


def new_run_id(prefix: str = "run") -> str:
    """A sortable, collision-resistant run identifier."""
    stamp = datetime.datetime.now(datetime.timezone.utc)
    return (f"{prefix}-{stamp.strftime('%Y%m%dT%H%M%S')}"
            f"-{os.getpid()}")


def write_manifest(run_dir: "str | Path", doc: dict[str, Any]) -> Path:
    """Atomically write ``manifest.json`` under ``run_dir``."""
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    path = run_dir / "manifest.json"
    tmp = run_dir / f".manifest.{os.getpid()}.tmp"
    tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


def load_manifest(path: "str | Path") -> dict[str, Any]:
    return json.loads(Path(path).read_text())


def build_manifest(*, run_id: str, root_seed: int, workers: Any,
                   wall_time_s: float,
                   jobs: dict[str, dict[str, Any]],
                   backend: str = "local",
                   extra: dict[str, Any] | None = None
                   ) -> dict[str, Any]:
    """Assemble a schema-conformant manifest document."""
    counts = {status: 0 for status in JOB_STATUSES}
    for entry in jobs.values():
        status = entry.get("status", "failed")
        counts[status] = counts.get(status, 0) + 1
    doc = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "run_id": run_id,
        "created": datetime.datetime.now(
            datetime.timezone.utc).isoformat(),
        "root_seed": root_seed,
        "workers": workers,
        "backend": backend,
        "wall_time_s": round(wall_time_s, 6),
        "counts": counts,
        "jobs": jobs,
    }
    if extra:
        for key, value in extra.items():
            doc.setdefault(key, value)
    return doc


def merge_manifests(docs: "list[dict[str, Any]]", *,
                    run_id: "str | None" = None) -> dict[str, Any]:
    """Combine per-host manifests of one split sweep into one document.

    A grid split across hosts (each running its slice of the job graph,
    or a ``tcp`` coordinator per site) yields one manifest per run;
    this folds them into a single schema-valid manifest.  Job names
    must not collide across slices — a collision means two hosts ran
    the same job, which is a partitioning bug worth loud failure.
    Wall time is the max (slices ran concurrently), ``workers`` the
    sum of integer worker counts, and ``backend``/``root_seed`` are
    carried through when the slices agree (else marked ``mixed``).
    """
    if not docs:
        raise ValueError("merge_manifests needs at least one manifest")
    jobs: dict[str, dict[str, Any]] = {}
    sources: list[str] = []
    for doc in docs:
        for name, entry in doc.get("jobs", {}).items():
            if name in jobs:
                raise ValueError(
                    f"job {name!r} appears in more than one manifest "
                    f"(overlapping sweep slices?)")
            jobs[name] = entry
        sources.append(str(doc.get("run_id", "?")))

    def agreed(key: str, default: Any) -> Any:
        values = {json.dumps(doc.get(key, default), sort_keys=True)
                  for doc in docs}
        return docs[0].get(key, default) if len(values) == 1 \
            else "mixed"

    worker_counts = [doc.get("workers") for doc in docs]
    workers: Any = (sum(w for w in worker_counts if isinstance(w, int))
                    or agreed("workers", "serial"))
    merged = build_manifest(
        run_id=run_id or f"merged-{'+'.join(sources)}",
        root_seed=agreed("root_seed", 0),
        workers=workers,
        wall_time_s=max(float(doc.get("wall_time_s", 0.0))
                        for doc in docs),
        jobs=jobs,
        backend=agreed("backend", "local"),
        extra={"merged_from": sources})
    return merged


def validate_manifest(doc: dict[str, Any]) -> list[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["manifest is not an object"]
    for key in _REQUIRED_RUN_KEYS:
        if key not in doc:
            errors.append(f"missing run key {key!r}")
    if doc.get("schema_version") != MANIFEST_SCHEMA_VERSION:
        errors.append(
            f"schema_version {doc.get('schema_version')!r} != "
            f"{MANIFEST_SCHEMA_VERSION}")
    jobs = doc.get("jobs")
    if not isinstance(jobs, dict):
        errors.append("jobs is not an object")
        return errors
    for name, entry in jobs.items():
        if not isinstance(entry, dict):
            errors.append(f"job {name!r} entry is not an object")
            continue
        for key in _REQUIRED_JOB_KEYS:
            if key not in entry:
                errors.append(f"job {name!r} missing key {key!r}")
        status = entry.get("status")
        if status not in JOB_STATUSES:
            errors.append(f"job {name!r} has bad status {status!r}")
        if status == "failed" and not entry.get("error"):
            errors.append(f"failed job {name!r} records no error")
        diagnostics = entry.get("diagnostics")
        if diagnostics is not None:
            if not isinstance(diagnostics, dict) \
                    or not isinstance(diagnostics.get("diagnostics"),
                                      list):
                errors.append(f"job {name!r} diagnostics entry is not "
                              f"a lint report")
        trace = entry.get("trace")
        if trace is not None:
            for problem in validate_trace(trace):
                errors.append(f"job {name!r} trace: {problem}")
    counts = doc.get("counts")
    if isinstance(counts, dict) and isinstance(jobs, dict):
        if sum(counts.get(s, 0) for s in JOB_STATUSES) != len(jobs):
            errors.append("counts do not sum to the number of jobs")
    try:
        json.dumps(doc)
    except TypeError as exc:
        errors.append(f"manifest is not JSON-serializable: {exc}")
    return errors
