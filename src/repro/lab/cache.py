"""Content-addressed artifact store backing resumable runs.

Every job's result is cached under a key derived from the job name, its
canonical parameters, the code fingerprint of its task function, and —
for jobs that consume dependency results — the artifact digests of its
dependencies (a Merkle-style chain).  Re-invoking a sweep therefore
skips completed jobs, and a killed run resumes where it left off.

Artifacts live in ``.lab_cache/<key[:2]>/<key>.pkl`` next to a small
JSON sidecar with provenance metadata.  Writes are atomic (temp file +
``os.replace``) so a kill mid-write never leaves a truncated artifact:
a corrupt or unreadable entry is treated as a miss.
"""

from __future__ import annotations

import hashlib
import inspect
import os
import pickle
import json
from pathlib import Path
from typing import Any, Callable

from .job import Job, canonical_params

__all__ = ["ArtifactStore", "code_fingerprint", "cache_key", "MISS"]

#: Sentinel for "not in the cache" (``None`` is a valid artifact).
MISS = object()

#: Bump to invalidate every cached artifact after a change that the
#: per-function fingerprint cannot see (e.g. a core algorithm edit).
CACHE_SCHEMA = 1


def code_fingerprint(fn: Callable[..., Any]) -> str:
    """A short digest of the task function's identity and source.

    Editing the task function invalidates its cached artifacts.  The
    fingerprint intentionally does not chase transitive callees; bump
    :data:`CACHE_SCHEMA` (or clear ``.lab_cache/``) after changing the
    algorithms underneath the tasks.
    """
    ident = (f"{getattr(fn, '__module__', '?')}."
             f"{getattr(fn, '__qualname__', repr(fn))}")
    try:
        source = inspect.getsource(fn)
    except (OSError, TypeError):
        source = ""
    payload = f"schema={CACHE_SCHEMA}\n{ident}\n{source}"
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def cache_key(job: Job, dep_digests: dict[str, str] | None = None
              ) -> str:
    """Content address of a job: name + params + code fingerprint.

    ``dep_digests`` (dependency name -> artifact digest) is folded in
    for jobs that consume dependency results, so an upstream change
    re-runs the downstream job.
    """
    parts = [
        f"name={job.name}",
        f"params={canonical_params(job.params)}",
        f"code={code_fingerprint(job.fn)}",
    ]
    if job.pass_deps and dep_digests:
        chained = ",".join(f"{k}:{v}"
                           for k, v in sorted(dep_digests.items()))
        parts.append(f"deps={chained}")
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


class ArtifactStore:
    """Pickled artifacts addressed by content key under one root."""

    def __init__(self, root: "str | Path" = ".lab_cache"):
        self.root = Path(root)

    def _paths(self, key: str) -> tuple[Path, Path]:
        shard = self.root / key[:2]
        return shard / f"{key}.pkl", shard / f"{key}.json"

    def has(self, key: str) -> bool:
        return self._paths(key)[0].exists()

    def get(self, key: str, default: Any = MISS) -> Any:
        """The cached artifact, or ``default`` on miss/corruption.

        A truncated or corrupt pickle (killed writer on a pre-atomic
        store, bit rot, hand editing) is *evicted* and reported as a
        miss — the same evict-and-recompute policy as the proof cache —
        so one bad entry costs a re-run instead of crashing the whole
        grid.  ``pickle.loads`` on garbage can raise nearly anything
        (``UnpicklingError``, ``EOFError``, ``ValueError``, ``KeyError``,
        ``MemoryError`` on absurd length prefixes, ...), so anything but
        a plain read miss counts as corruption.
        """
        path, _ = self._paths(key)
        try:
            blob = path.read_bytes()
        except OSError:
            return default
        try:
            return pickle.loads(blob)
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.evict(key)
            return default

    def meta(self, key: str) -> dict[str, Any] | None:
        _, meta_path = self._paths(key)
        try:
            return json.loads(meta_path.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def put(self, key: str, value: Any,
            meta: dict[str, Any] | None = None) -> str:
        """Store ``value`` atomically; returns its artifact digest."""
        path, meta_path = self._paths(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(blob).hexdigest()
        self._atomic_write(path, blob)
        doc = dict(meta or {})
        doc["artifact_digest"] = digest
        self._atomic_write(meta_path,
                           json.dumps(doc, sort_keys=True).encode())
        return digest

    def digest(self, key: str) -> str | None:
        """The stored artifact digest, recomputing if the sidecar died."""
        doc = self.meta(key)
        if doc and "artifact_digest" in doc:
            return doc["artifact_digest"]
        path, _ = self._paths(key)
        try:
            return hashlib.sha256(path.read_bytes()).hexdigest()
        except OSError:
            return None

    def evict(self, key: str) -> None:
        for path in self._paths(key):
            try:
                path.unlink()
            except OSError:
                pass

    @staticmethod
    def _atomic_write(path: Path, blob: bytes) -> None:
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(blob)
        os.replace(tmp, path)
