"""Pluggable execution backends for the lab scheduler.

The :class:`~repro.lab.executor.LabRunner` scheduling loop (dependency
resolution, caching, retries, skip/cancel taxonomy, manifests) is
backend-agnostic: it submits :class:`JobRequest` payloads and collects
``(status, payload, wall_time_s, peak_rss_kb)`` outcome tuples from
:class:`concurrent.futures.Future` handles.  This module supplies the
backends behind that seam:

* ``local`` — today's ``ProcessPoolExecutor``, behavior-identical to
  the pre-backend runner;
* ``tcp`` — a stdlib-only coordinator/worker pair over asyncio sockets
  reusing the serve HTTP framing (:mod:`repro.serve.protocol`): the
  coordinator embeds in the runner process, workers
  (``python -m repro.lab.worker``) lease jobs over HTTP, heartbeat
  while running, and return results through a shared content-addressed
  :class:`~repro.lab.cache.ArtifactStore` (the transfer medium).
  Stragglers are re-dispatched after a heartbeat lapse; a worker death
  beyond the re-dispatch budget resolves the job as a structured
  ``failed``.  Workers are spawned on loopback by default; remote
  machines join the same grid by running the worker module against the
  coordinator's host/port with the store on a shared filesystem.  The
  coordinator runs named module-level callables sent by the runner —
  point it only at hosts you trust with code execution;
* ``workqueue`` — an in-process work-stealing thread pool for
  many-small-jobs grids, where process-pool pickling overhead dominates
  the work itself.

Backends are selected with ``LabRunner(backend=...)`` or the
``REPRO_LAB_BACKEND`` environment variable, and third parties can
:func:`register_backend` their own.
"""

from __future__ import annotations

import collections
import hashlib
import json
import os
import subprocess
import sys
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

from .cache import MISS, ArtifactStore

__all__ = ["JobRequest", "ExecutorBackend", "LocalBackend",
           "TcpBackend", "WorkqueueBackend", "register_backend",
           "create_backend", "backend_names", "resolve_backend",
           "BACKEND_ENV"]

#: Environment knob selecting the executor backend by name.
BACKEND_ENV = "REPRO_LAB_BACKEND"


@dataclass
class JobRequest:
    """One job as handed to a backend: everything needed to run it."""

    name: str
    fn: Callable[..., Any]
    params: dict[str, Any]
    timeout: "float | None" = None
    dep_results: "dict[str, Any] | None" = None


class ExecutorBackend:
    """Protocol of a lab execution backend.

    A backend is a context manager (``__enter__`` provisions workers,
    ``__exit__`` releases them); between the two, :meth:`submit`
    accepts :class:`JobRequest` payloads and returns futures resolving
    to ``_execute_payload`` outcome tuples.  ``submit`` may raise when
    a request cannot cross the backend's boundary (unpicklable
    callable, non-module-level function for ``tcp``); the runner
    records that as a failed submission.
    """

    name = "abstract"

    def __enter__(self) -> "ExecutorBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def submit(self, request: JobRequest) -> Future:
        raise NotImplementedError

    def shutdown(self, cancel_futures: bool = False) -> None:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_BACKENDS: "dict[str, Callable[..., ExecutorBackend]]" = {}


def register_backend(name: str,
                     factory: Callable[..., ExecutorBackend]) -> None:
    """Register a backend factory under ``name``.

    The factory is called as ``factory(workers, cache=..., log=...)``
    with the resolved integer worker count, the runner's artifact store
    (or ``None``), and the runner's log callable (or ``None``).
    """
    _BACKENDS[name] = factory


def backend_names() -> list[str]:
    return sorted(_BACKENDS)


def resolve_backend(value: "str | None" = None) -> str:
    """Backend name from the argument, env, or the ``local`` default.

    Unknown names raise a structured
    :class:`~repro.approx.ConfigError` (CLI: exit 2 with JSON), naming
    whether the bad value came from the argument or the environment.
    """
    source = "backend"
    if value is None:
        value = os.environ.get(BACKEND_ENV)
        if value is not None:
            source = BACKEND_ENV
    if value is None:
        return "local"
    name = value.strip().lower()
    if name not in _BACKENDS:
        from repro.approx import ConfigError
        raise ConfigError(
            f"unknown lab backend {value!r} "
            f"(registered: {', '.join(backend_names())})",
            field_name=source, value=value)
    return name


def create_backend(name: str, workers: int, *,
                   cache: "ArtifactStore | None" = None,
                   log: "Callable[[str], None] | None" = None
                   ) -> ExecutorBackend:
    """Instantiate the registered backend ``name``."""
    return _BACKENDS[resolve_backend(name)](workers, cache=cache,
                                            log=log)


# ----------------------------------------------------------------------
# local: the historical ProcessPoolExecutor
# ----------------------------------------------------------------------
class LocalBackend(ExecutorBackend):
    """One ``ProcessPoolExecutor``; behavior-identical to the
    pre-backend runner."""

    name = "local"

    def __init__(self, workers: int, cache=None, log=None):
        self.workers = workers
        self._pool: "ProcessPoolExecutor | None" = None

    def __enter__(self) -> "LocalBackend":
        self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self

    def submit(self, request: JobRequest) -> Future:
        from .executor import _execute_payload
        return self._pool.submit(
            _execute_payload, request.fn, request.params,
            request.timeout, request.dep_results)

    def shutdown(self, cancel_futures: bool = False) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=not cancel_futures,
                                cancel_futures=cancel_futures)
            self._pool = None


# ----------------------------------------------------------------------
# workqueue: in-process work stealing
# ----------------------------------------------------------------------
class WorkqueueBackend(ExecutorBackend):
    """Work-stealing thread pool for many-small-jobs grids.

    Each worker owns a deque: it pops its own work FIFO (submission
    order) and steals LIFO from the tail of the busiest victim when
    idle, the classic Blumofe–Leiserson discipline.  Jobs run in
    threads of the runner process — no pickling, no fork, no per-job
    process startup — which is exactly right when a grid has thousands
    of millisecond-scale candidate evaluations (the search workload)
    and exactly wrong for CPU-hour jobs wanting memory isolation.
    Timeouts are best-effort only (SIGALRM is main-thread-only); a hung
    job occupies its thread.
    """

    name = "workqueue"

    def __init__(self, workers: int, cache=None, log=None):
        self.workers = max(int(workers), 1)
        self._deques: "list[collections.deque]" = [
            collections.deque() for _ in range(self.workers)]
        self._cv = threading.Condition()
        self._rr = 0
        self._stop = False
        self._threads: list[threading.Thread] = []

    def __enter__(self) -> "WorkqueueBackend":
        for i in range(self.workers):
            thread = threading.Thread(target=self._worker, args=(i,),
                                      name=f"lab-wq-{i}", daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def submit(self, request: JobRequest) -> Future:
        future: Future = Future()
        with self._cv:
            if self._stop:
                raise RuntimeError("workqueue backend is shut down")
            self._deques[self._rr % self.workers].append(
                (request, future))
            self._rr += 1
            self._cv.notify()
        return future

    def _take(self, index: int):
        own = self._deques[index]
        if own:
            return own.popleft()
        victims = sorted(
            (i for i in range(self.workers) if i != index),
            key=lambda i: len(self._deques[i]), reverse=True)
        for victim in victims:
            if self._deques[victim]:
                return self._deques[victim].pop()      # steal the tail
        return None

    def _worker(self, index: int) -> None:
        from .executor import _execute_payload
        while True:
            with self._cv:
                item = self._take(index)
                while item is None and not self._stop:
                    self._cv.wait(timeout=0.2)
                    item = self._take(index)
                if item is None:
                    return
            request, future = item
            if not future.set_running_or_notify_cancel():
                continue
            outcome = _execute_payload(
                request.fn, request.params, request.timeout,
                request.dep_results)
            future.set_result(outcome)

    def shutdown(self, cancel_futures: bool = False) -> None:
        with self._cv:
            self._stop = True
            if cancel_futures:
                for deque_ in self._deques:
                    while deque_:
                        _, future = deque_.pop()
                        future.cancel()
            self._cv.notify_all()
        for thread in self._threads:
            thread.join(timeout=None if not cancel_futures else 0.1)
        self._threads = []


# ----------------------------------------------------------------------
# tcp: coordinator/worker over asyncio sockets (serve framing)
# ----------------------------------------------------------------------
def fn_reference(fn: Callable[..., Any]) -> str:
    """``module:qualname`` of a module-level callable.

    The wire protocol ships functions by reference, exactly like the
    pickle-by-reference contract the process pool already imposes;
    closures and lambdas cannot cross and are rejected at submit time.
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        raise TypeError(
            f"tcp backend needs a module-level callable, got {fn!r}")
    return f"{module}:{qualname}"


def resolve_fn_reference(ref: str) -> Callable[..., Any]:
    """Import the callable a :func:`fn_reference` string names."""
    import importlib
    module_name, _, qualname = ref.partition(":")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise TypeError(f"{ref} is not callable")
    return obj


def _transfer_key(kind: str, token: str) -> str:
    """Content address of a transfer blob in the shared store."""
    return hashlib.sha256(f"lab-xfer\x1f{kind}\x1f{token}"
                          .encode()).hexdigest()


@dataclass
class _TcpJob:
    """Coordinator-side state of one submitted job."""

    name: str
    spec: dict[str, Any]
    future: Future
    submitted: float
    dispatches: int = 0
    leases: dict[str, "_TcpLease"] = field(default_factory=dict)


@dataclass
class _TcpLease:
    """One dispatch of a job to one worker."""

    token: str
    worker: str
    job: _TcpJob
    last_beat: float


class TcpBackend(ExecutorBackend):
    """Coordinator for the distributed ``tcp`` backend.

    The coordinator is an asyncio HTTP server (the serve wire framing)
    hosted on a background thread of the runner process.  Workers poll
    ``POST /v1/lab/lease`` for work, ``POST /v1/lab/heartbeat`` while
    running, and ``POST /v1/lab/complete`` with the outcome; ``ok``
    payloads travel through the shared content-addressed artifact
    store, never inline on the socket.  The monitor task re-dispatches
    a job whose lease went silent (straggler or killed worker) up to
    ``max_redispatch`` times — first completion wins — and beyond that
    resolves it as a structured error so the runner records ``failed``
    and the rest of the grid completes.  Dead spawned workers are
    respawned (bounded by ``respawn_limit``) the way serve respawns
    dead shards.
    """

    name = "tcp"

    def __init__(self, workers: int, cache=None, log=None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 spawn: "int | None" = None,
                 heartbeat_s: float = 0.25,
                 stale_after_s: float = 4.0,
                 max_redispatch: int = 1,
                 respawn_limit: "int | None" = None):
        self.workers = max(int(workers), 1)
        self.host = host
        self.port = port                 # 0 = pick a free port
        self.spawn = self.workers if spawn is None else spawn
        self.heartbeat_s = heartbeat_s
        self.stale_after_s = stale_after_s
        self.max_redispatch = max_redispatch
        self.respawn_limit = (2 * self.workers if respawn_limit is None
                              else respawn_limit)
        self.log = log
        if cache is not None:
            self.store = cache
            self._own_store_root = None
        else:
            import tempfile
            self._own_store_root = tempfile.mkdtemp(prefix="lab-tcp-")
            self.store = ArtifactStore(self._own_store_root)
        self._queue: "collections.deque[_TcpJob]" = collections.deque()
        self._jobs: dict[str, _TcpJob] = {}
        self._leases: dict[str, _TcpLease] = {}
        self._procs: dict[str, subprocess.Popen] = {}
        self._spawned = 0          # monotonic: worker ids never reused
        self._respawns = 0
        self._loop = None
        self._thread: "threading.Thread | None" = None
        self._started = threading.Event()
        self._stopping = False
        self._start_error: "BaseException | None" = None

    # -- lifecycle (runner thread) ---------------------------------------
    def __enter__(self) -> "TcpBackend":
        self._thread = threading.Thread(target=self._loop_main,
                                        name="lab-tcp-coordinator",
                                        daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("tcp coordinator did not start")
        if self._start_error is not None:
            raise RuntimeError(
                f"tcp coordinator failed to start: {self._start_error}")
        for _ in range(self.spawn):
            self._spawn_worker()
        return self

    def _spawn_worker(self) -> None:
        wid = f"w{self._spawned}"
        self._spawned += 1
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in sys.path if p) + os.pathsep \
            + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.lab.worker",
             "--host", self.host, "--port", str(self.port),
             "--worker-id", wid, "--store", str(self.store.root),
             "--heartbeat-s", str(self.heartbeat_s)],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        self._procs[wid] = proc
        self._emit(f"[lab:tcp] spawned worker {wid} (pid {proc.pid})")

    def _emit(self, message: str) -> None:
        if self.log is not None:
            self.log(message)

    def submit(self, request: JobRequest) -> Future:
        ref = fn_reference(request.fn)       # raises on non-importable
        spec = {
            "name": request.name,
            "fn": ref,
            "params": request.params,
            "timeout": request.timeout,
            "deps_key": None,
        }
        if request.dep_results is not None:
            deps_key = _transfer_key("deps", request.name)
            self.store.put(deps_key, request.dep_results)
            spec["deps_key"] = deps_key
        future: Future = Future()
        job = _TcpJob(name=request.name, spec=spec, future=future,
                      submitted=time.monotonic())
        self._loop.call_soon_threadsafe(self._enqueue, job)
        return future

    def shutdown(self, cancel_futures: bool = False) -> None:
        if self._loop is None:
            return
        self._stopping = True
        if cancel_futures:
            for job in list(self._jobs.values()):
                job.future.cancel()
        loop = self._loop
        try:
            loop.call_soon_threadsafe(self._request_stop)
        except RuntimeError:
            pass                             # loop already closed
        for proc in self._procs.values():
            if proc.poll() is None:
                proc.terminate()
        if self._thread is not None:
            self._thread.join(timeout=10)
        for proc in self._procs.values():
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
        self._procs.clear()
        self._loop = None
        self._thread = None

    # -- event loop (coordinator thread) ---------------------------------
    def _loop_main(self) -> None:
        import asyncio

        async def main() -> None:
            from repro.serve.protocol import (HttpError, error_response,
                                              json_response,
                                              read_request,
                                              write_response)

            stop = asyncio.Event()
            self._stop_event = stop

            async def handle(reader, writer):
                try:
                    while True:
                        try:
                            request = await read_request(reader)
                        except HttpError as exc:
                            error_response(writer, exc.status,
                                           "bad_request", str(exc),
                                           keep_alive=False)
                            break
                        if request is None:
                            break
                        status, doc = self._route(request)
                        if doc is None:
                            write_response(writer, status, b"",
                                           keep_alive=True)
                        else:
                            json_response(writer, status, doc)
                        await writer.drain()
                        if not request.keep_alive:
                            break
                except (ConnectionError, asyncio.IncompleteReadError,
                        OSError):
                    pass
                except asyncio.CancelledError:
                    # Coordinator shutdown cancelled us mid-read; end
                    # the task normally so the stream protocol's
                    # done-callback does not log a spurious exception.
                    pass
                finally:
                    try:
                        writer.close()
                        await writer.wait_closed()
                    except (ConnectionError, OSError):
                        pass

            server = await asyncio.start_server(
                handle, host=self.host, port=self.port)
            self.port = server.sockets[0].getsockname()[1]
            monitor = asyncio.ensure_future(self._monitor(stop))
            self._started.set()
            await stop.wait()
            monitor.cancel()
            server.close()
            await server.wait_closed()
            # Drain handler tasks for connections still open (workers
            # mid-poll) so the loop closes without pending-task noise.
            me = asyncio.current_task()
            others = [t for t in asyncio.all_tasks() if t is not me]
            for task in others:
                task.cancel()
            await asyncio.gather(*others, return_exceptions=True)

        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            loop.run_until_complete(main())
        except BaseException as exc:
            self._start_error = exc
            self._started.set()
        finally:
            loop.close()

    def _request_stop(self) -> None:
        self._stop_event.set()

    # -- coordinator state transitions (loop thread only) ----------------
    def _enqueue(self, job: _TcpJob) -> None:
        if self._stopping or job.future.cancelled():
            job.future.cancel()
            return
        self._jobs[job.name] = job
        self._queue.append(job)

    def _resolve(self, job: _TcpJob, outcome: tuple) -> None:
        for token in list(job.leases):
            self._leases.pop(token, None)
        job.leases.clear()
        self._jobs.pop(job.name, None)
        if not job.future.done():
            job.future.set_result(outcome)

    def _route(self, request) -> "tuple[int, dict | None]":
        path, method = request.path, request.method
        if path == "/v1/lab/health" and method == "GET":
            return 200, {"status": "ok", "queued": len(self._queue),
                         "leased": len(self._leases)}
        if path == "/v1/lab/lease" and method == "POST":
            return self._handle_lease(request)
        if path == "/v1/lab/heartbeat" and method == "POST":
            return self._handle_heartbeat(request)
        if path == "/v1/lab/complete" and method == "POST":
            return self._handle_complete(request)
        return 404, {"error": "not_found", "path": path}

    @staticmethod
    def _body(request) -> dict:
        try:
            doc = json.loads(request.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return {}
        return doc if isinstance(doc, dict) else {}

    def _handle_lease(self, request) -> "tuple[int, dict | None]":
        worker = str(self._body(request).get("worker", "?"))
        if self._stopping:
            return 200, {"shutdown": True}
        while self._queue:
            job = self._queue.popleft()
            if job.future.cancelled() or job.future.done():
                self._jobs.pop(job.name, None)
                continue
            job.dispatches += 1
            token = f"{job.name}@{job.dispatches}"
            lease = _TcpLease(token=token, worker=worker, job=job,
                              last_beat=time.monotonic())
            self._leases[token] = lease
            job.leases[token] = lease
            return 200, {"job": token, **job.spec}
        return 204, None

    def _handle_heartbeat(self, request) -> "tuple[int, dict]":
        doc = self._body(request)
        lease = self._leases.get(str(doc.get("job", "")))
        if lease is None:
            # The job completed elsewhere (re-dispatch won) or was
            # cancelled; tell the worker to stop wasting cycles on it.
            return 200, {"abandon": True}
        lease.last_beat = time.monotonic()
        return 200, {"ok": True}

    def _handle_complete(self, request) -> "tuple[int, dict]":
        doc = self._body(request)
        token = str(doc.get("job", ""))
        lease = self._leases.pop(token, None)
        if lease is None:
            return 200, {"ignored": True}      # duplicate completion
        job = lease.job
        job.leases.pop(token, None)
        if job.future.done():
            return 200, {"ignored": True}
        status = str(doc.get("status", "error"))
        wall = float(doc.get("wall_time_s", 0.0))
        rss = doc.get("peak_rss_kb")
        if status == "ok":
            value = self.store.get(str(doc.get("result_key", "")), MISS)
            if value is MISS:
                outcome = ("error",
                           f"worker {lease.worker} reported ok but the "
                           f"result artifact is missing/corrupt",
                           wall, rss)
            else:
                outcome = ("ok", value, wall, rss)
        else:
            outcome = (status, str(doc.get("error", "worker error")),
                       wall, rss)
        self._resolve(job, outcome)
        return 200, {"ok": True}

    async def _monitor(self, stop) -> None:
        import asyncio
        while not stop.is_set():
            await asyncio.sleep(min(self.heartbeat_s, 0.25))
            now = time.monotonic()
            dead_workers = set()
            for wid, proc in list(self._procs.items()):
                if proc.poll() is None:
                    continue
                dead_workers.add(wid)
                del self._procs[wid]
                if not self._stopping \
                        and self._respawns < self.respawn_limit:
                    self._respawns += 1
                    self._emit(f"[lab:tcp] worker {wid} died "
                               f"(exit {proc.returncode}); respawning")
                    try:
                        self._spawn_worker()
                    except OSError as exc:
                        self._emit(f"[lab:tcp] respawn failed: {exc}")
            for token, lease in list(self._leases.items()):
                died = lease.worker in dead_workers
                stale = now - lease.last_beat > self.stale_after_s
                if not died and not stale:
                    continue
                self._leases.pop(token, None)
                job = lease.job
                job.leases.pop(token, None)
                if job.future.done():
                    continue
                why = (f"worker {lease.worker} died"
                       if died else
                       f"worker {lease.worker} heartbeat lost "
                       f"(> {self.stale_after_s:.1f}s)")
                if job.dispatches <= self.max_redispatch \
                        and not self._stopping:
                    self._emit(f"[lab:tcp] {why}; re-dispatching "
                               f"{job.name}")
                    self._queue.append(job)
                else:
                    self._resolve(job, (
                        "error",
                        f"{why} after {job.dispatches} dispatch(es)",
                        now - job.submitted, None))


register_backend("local", LocalBackend)
register_backend("workqueue", WorkqueueBackend)
register_backend("tcp", TcpBackend)
