"""Algebraic factoring of SOP covers into expression trees.

Technology mapping decomposes each network node into primitive gates; to
get competitive gate counts the node SOP is first *factored* — rewritten
as a nested and/or expression with shared literals — using the classic
quick-factor recursion (divide by the most frequent literal).

Expression trees are tiny immutable structures: ``Lit`` leaves reference
the node's fanin index and phase; ``AndExpr`` / ``OrExpr`` are n-ary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cubes import Cover, Cube


@dataclass(frozen=True)
class Lit:
    """A literal on fanin ``index``; ``positive`` selects the phase."""
    index: int
    positive: bool


@dataclass(frozen=True)
class AndExpr:
    terms: tuple


@dataclass(frozen=True)
class OrExpr:
    terms: tuple


@dataclass(frozen=True)
class ConstExpr:
    value: bool


Expr = Lit | AndExpr | OrExpr | ConstExpr


def factor(cover: Cover) -> Expr:
    """Factor an SOP cover into an expression tree.

    The recursion picks the literal occurring in the most cubes, divides
    the cover into quotient and remainder, and factors both:
    ``F = lit * factor(Q) + factor(R)``.
    """
    if cover.is_zero():
        return ConstExpr(False)
    if any(c.num_literals == 0 for c in cover.cubes):
        return ConstExpr(True)
    return _factor(cover.cubes, cover.n)


def _factor(cubes: list[Cube], n: int) -> Expr:
    if len(cubes) == 1:
        return _cube_expr(cubes[0])
    best = _most_frequent_literal(cubes)
    if best is None:
        # Every literal occurs once: plain OR of cube ANDs.
        return _or(tuple(_cube_expr(c) for c in cubes))
    var, positive = best
    bit = 1 << var
    quotient: list[Cube] = []
    remainder: list[Cube] = []
    for cube in cubes:
        mask = cube.ones if positive else cube.zeros
        if mask & bit:
            quotient.append(cube.without_literal(var))
        else:
            remainder.append(cube)
    lit = Lit(var, positive)
    q_expr = _factor(quotient, n) if quotient else ConstExpr(False)
    factored = _and((lit, q_expr))
    if not remainder:
        return factored
    return _or((factored, _factor(remainder, n)))


def _cube_expr(cube: Cube) -> Expr:
    lits = []
    for var in range(cube.n):
        value = cube.literal(var)
        if value == "1":
            lits.append(Lit(var, True))
        elif value == "0":
            lits.append(Lit(var, False))
    if not lits:
        return ConstExpr(True)
    if len(lits) == 1:
        return lits[0]
    return AndExpr(tuple(lits))


def _most_frequent_literal(cubes: list[Cube]) -> tuple[int, bool] | None:
    counts: dict[tuple[int, bool], int] = {}
    for cube in cubes:
        for var in range(cube.n):
            value = cube.literal(var)
            if value == "1":
                key = (var, True)
            elif value == "0":
                key = (var, False)
            else:
                continue
            counts[key] = counts.get(key, 0) + 1
    if not counts:
        return None
    key, count = max(counts.items(), key=lambda item: item[1])
    if count < 2:
        return None
    return key


def _and(terms: tuple) -> Expr:
    flat: list[Expr] = []
    for term in terms:
        if isinstance(term, ConstExpr):
            if not term.value:
                return ConstExpr(False)
            continue
        if isinstance(term, AndExpr):
            flat.extend(term.terms)
        else:
            flat.append(term)
    if not flat:
        return ConstExpr(True)
    if len(flat) == 1:
        return flat[0]
    return AndExpr(tuple(flat))


def _or(terms: tuple) -> Expr:
    flat: list[Expr] = []
    for term in terms:
        if isinstance(term, ConstExpr):
            if term.value:
                return ConstExpr(True)
            continue
        if isinstance(term, OrExpr):
            flat.extend(term.terms)
        else:
            flat.append(term)
    if not flat:
        return ConstExpr(False)
    if len(flat) == 1:
        return flat[0]
    return OrExpr(tuple(flat))


def evaluate_expr(expr: Expr, assignment: int) -> bool:
    """Reference evaluation of an expression tree (tests, checks)."""
    if isinstance(expr, ConstExpr):
        return expr.value
    if isinstance(expr, Lit):
        bit = bool(assignment >> expr.index & 1)
        return bit if expr.positive else not bit
    if isinstance(expr, AndExpr):
        return all(evaluate_expr(t, assignment) for t in expr.terms)
    return any(evaluate_expr(t, assignment) for t in expr.terms)


def literal_count(expr: Expr) -> int:
    """Number of literal leaves — the classic factored-form cost."""
    if isinstance(expr, Lit):
        return 1
    if isinstance(expr, ConstExpr):
        return 0
    return sum(literal_count(t) for t in expr.terms)
