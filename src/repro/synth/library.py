"""Gate libraries for technology mapping.

A :class:`Gate` is a library cell: a small Boolean function (stored as an
SOP cover over its input pins) with area, delay, and relative-power
numbers in generic units.  Several libraries with different cell sets and
numbers are provided so the Table 3 experiment can produce genuinely
different technology-mapped implementations of the same circuit.

Area in the paper's evaluation is "the total number of gates"; the
per-cell ``area`` here feeds an alternative weighted-area metric, while
gate count remains the primary Table 2 metric.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cubes import Cover


@dataclass(frozen=True)
class Gate:
    """A library cell with function and physical characteristics."""

    name: str
    cover: Cover
    area: float
    delay: float
    power: float = 1.0

    @property
    def num_inputs(self) -> int:
        return self.cover.n

    def evaluate(self, inputs: tuple[bool, ...]) -> bool:
        assignment = 0
        for i, value in enumerate(inputs):
            if value:
                assignment |= 1 << i
        return self.cover.evaluate(assignment)


class GateLibrary:
    """A named collection of gates, keyed by cell name."""

    def __init__(self, name: str, gates: list[Gate]):
        self.name = name
        self.gates: dict[str, Gate] = {}
        for gate in gates:
            if gate.name in self.gates:
                raise ValueError(f"duplicate cell {gate.name!r}")
            self.gates[gate.name] = gate

    def __contains__(self, cell: str) -> bool:
        return cell in self.gates

    def get(self, cell: str) -> Gate:
        try:
            return self.gates[cell]
        except KeyError:
            raise KeyError(
                f"library {self.name!r} has no cell {cell!r}") from None

    def cells(self) -> list[str]:
        return list(self.gates)

    def __repr__(self) -> str:
        return f"GateLibrary({self.name!r}, {len(self.gates)} cells)"


def _and_cover(n: int) -> Cover:
    return Cover.from_strings(["1" * n])


def _or_cover(n: int) -> Cover:
    rows = []
    for i in range(n):
        rows.append("-" * i + "1" + "-" * (n - i - 1))
    return Cover.from_strings(rows)


def _gate_family(area2: float, delay2: float, step_area: float,
                 step_delay: float, power2: float) -> list[Gate]:
    """Build AND/OR/NAND/NOR families for 2..4 inputs."""
    gates = []
    for n in (2, 3, 4):
        area = area2 + (n - 2) * step_area
        delay = delay2 + (n - 2) * step_delay
        power = power2 + (n - 2) * 0.3
        and_c = _and_cover(n)
        or_c = _or_cover(n)
        gates.extend([
            Gate(f"AND{n}", and_c, area, delay, power),
            Gate(f"OR{n}", or_c, area, delay, power),
            Gate(f"NAND{n}", and_c.complement(), area - 0.5,
                 delay - 0.1, power - 0.1),
            Gate(f"NOR{n}", or_c.complement(), area - 0.5,
                 delay - 0.1, power - 0.1),
        ])
    return gates


def _tie_cells() -> list[Gate]:
    """Constant drivers, present in every library (zero-ish cost)."""
    return [
        Gate("TIE0", Cover.zero(0), 0.0, 0.0, 0.0),
        Gate("TIE1", Cover.one(0), 0.0, 0.0, 0.0),
    ]


def _make_generic() -> GateLibrary:
    gates = _tie_cells() + [
        Gate("INV", Cover.from_strings(["0"]), 1.0, 0.5, 0.5),
        Gate("BUF", Cover.from_strings(["1"]), 1.0, 0.6, 0.5),
        Gate("XOR2", Cover.from_strings(["10", "01"]), 3.0, 1.6, 1.8),
        Gate("XNOR2", Cover.from_strings(["11", "00"]), 3.0, 1.6, 1.8),
    ]
    gates += _gate_family(2.0, 1.0, 1.0, 0.4, 1.0)
    return GateLibrary("generic", gates)


def _make_nand_nor() -> GateLibrary:
    """An ASIC-flavoured library with only inverting cells."""
    gates = _tie_cells() + [
        Gate("INV", Cover.from_strings(["0"]), 0.8, 0.4, 0.4),
    ]
    for n in (2, 3):
        gates.append(Gate(f"NAND{n}", _and_cover(n).complement(),
                          1.2 + 0.8 * (n - 2), 0.8 + 0.3 * (n - 2), 0.9))
        gates.append(Gate(f"NOR{n}", _or_cover(n).complement(),
                          1.4 + 0.8 * (n - 2), 0.9 + 0.35 * (n - 2), 1.0))
    return GateLibrary("nand_nor", gates)


def _make_lowpower() -> GateLibrary:
    """Generic cell set with low-power sizing (slower, smaller)."""
    gates = _tie_cells() + [
        Gate("INV", Cover.from_strings(["0"]), 0.7, 0.8, 0.3),
        Gate("BUF", Cover.from_strings(["1"]), 0.7, 0.9, 0.3),
        Gate("XOR2", Cover.from_strings(["10", "01"]), 2.4, 2.2, 1.2),
        Gate("XNOR2", Cover.from_strings(["11", "00"]), 2.4, 2.2, 1.2),
    ]
    gates += _gate_family(1.6, 1.5, 0.8, 0.5, 0.7)
    return GateLibrary("lowpower", gates)


LIB_GENERIC = _make_generic()
LIB_NAND_NOR = _make_nand_nor()
LIB_LOWPOWER = _make_lowpower()

LIBRARIES = {lib.name: lib
             for lib in (LIB_GENERIC, LIB_NAND_NOR, LIB_LOWPOWER)}
