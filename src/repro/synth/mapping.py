"""Technology mapping: networks to gate-level netlists.

The mapper factors each node's SOP (:mod:`repro.synth.factor`), then
emits library cells for the factored tree.  Emission is library-aware:
AND/OR trees use the widest available cells (optionally), fall back to
NAND/NOR plus inverters in inverting-only libraries, share inverters per
signal, and cancel double inversions at creation time.  A small peephole
pass then merges gate+INV pairs into inverting cells.

The :class:`Emitter` is reused by the CED assembly code to build
checkers and baseline circuits directly at gate level.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cubes import Cover
from repro.network import Network

from .factor import AndExpr, ConstExpr, Expr, Lit, factor
from .library import GateLibrary
from .netlist import MappedNetlist


@dataclass
class MappingOptions:
    """Knobs that differentiate the Table 3 synthesis scripts."""

    balanced: bool = True      # balanced trees vs. chains
    prefer_wide: bool = False  # use 3/4-input cells when available
    use_xor: bool = True       # map 2-input XOR/XNOR nodes to XOR cells
    peephole: bool = True      # merge gate+INV pairs after emission


class Emitter:
    """Library-aware emission of AND/OR/INV/XOR logic into a netlist."""

    def __init__(self, netlist: MappedNetlist,
                 options: MappingOptions | None = None):
        self.netlist = netlist
        self.options = options or MappingOptions()
        self._inv_cache: dict[str, str] = {}

    # -- leaf emission --------------------------------------------------
    def emit_inv(self, signal: str, stem: str = "inv") -> str:
        cached = self._inv_cache.get(signal)
        if cached is not None:
            return cached
        gate = self.netlist.gates.get(signal)
        if gate is not None and gate.cell.name == "INV":
            # Double inversion cancels at creation time.
            result = gate.fanins[0]
        else:
            name = self.netlist.fresh_name(f"{stem}_{signal}")
            self.netlist.add_gate(name, "INV", [signal])
            result = name
        self._inv_cache[signal] = result
        return result

    def emit_const(self, value: bool, stem: str = "tie") -> str:
        cell = "TIE1" if value else "TIE0"
        name = self.netlist.fresh_name(f"{stem}{int(value)}")
        self.netlist.add_gate(name, cell, [])
        return name

    def emit_buf(self, signal: str, name: str) -> str:
        if "BUF" in self.netlist.library:
            self.netlist.add_gate(name, "BUF", [signal])
        else:
            # No buffer cell: two inverters, output on the named signal.
            inner = self.netlist.fresh_name(name + "_b")
            self.netlist.add_gate(inner, "INV", [signal])
            self.netlist.add_gate(name, "INV", [inner])
        return name

    # -- tree emission ---------------------------------------------------
    def _chunk_width(self, op: str) -> int:
        lib = self.netlist.library
        widths = [2]
        limit = 4 if self.options.prefer_wide else 2
        for n in (3, 4):
            if n <= limit and (f"{op}{n}" in lib
                               or f"{_inverted(op)}{n}" in lib):
                widths.append(n)
        return max(widths)

    def _emit_op(self, op: str, fanins: list[str], stem: str,
                 out_name: str | None = None) -> str:
        """Emit one n-ary gate, using the inverting form if necessary."""
        lib = self.netlist.library
        n = len(fanins)
        cell = f"{op}{n}"
        if cell in lib:
            name = out_name or self.netlist.fresh_name(stem)
            self.netlist.add_gate(name, cell, fanins)
            return name
        inverted = f"{_inverted(op)}{n}"
        if inverted in lib:
            inner = self.netlist.fresh_name(stem + "_n")
            self.netlist.add_gate(inner, inverted, fanins)
            if out_name is not None:
                self.netlist.add_gate(out_name, "INV", [inner])
                return out_name
            return self.emit_inv(inner, stem)
        raise KeyError(f"library {lib.name!r} offers neither {cell} "
                       f"nor {inverted}")

    def emit_tree(self, op: str, fanins: list[str], stem: str,
                  out_name: str | None = None) -> str:
        """Reduce ``fanins`` with ``op`` ('AND' or 'OR') gates."""
        if not fanins:
            raise ValueError("cannot emit an empty tree")
        if len(fanins) == 1:
            if out_name is not None:
                return self.emit_buf(fanins[0], out_name)
            return fanins[0]
        width = self._chunk_width(op)
        signals = list(fanins)
        while len(signals) > width:
            if self.options.balanced:
                packed = []
                for i in range(0, len(signals), width):
                    chunk = signals[i:i + width]
                    if len(chunk) == 1:
                        packed.append(chunk[0])
                    else:
                        packed.append(self._emit_op(op, chunk, stem))
                signals = packed
            else:
                first = signals[:width]
                rest = signals[width:]
                signals = [self._emit_op(op, first, stem)] + rest
        return self._emit_op(op, signals, stem, out_name)

    def emit_and(self, fanins: list[str], stem: str = "and",
                 out_name: str | None = None) -> str:
        return self.emit_tree("AND", fanins, stem, out_name)

    def emit_or(self, fanins: list[str], stem: str = "or",
                out_name: str | None = None) -> str:
        return self.emit_tree("OR", fanins, stem, out_name)

    def emit_xor(self, a: str, b: str, stem: str = "xor",
                 out_name: str | None = None) -> str:
        if "XOR2" in self.netlist.library:
            name = out_name or self.netlist.fresh_name(stem)
            self.netlist.add_gate(name, "XOR2", [a, b])
            return name
        na, nb = self.emit_inv(a, stem), self.emit_inv(b, stem)
        t1 = self.emit_and([a, nb], stem + "_p")
        t2 = self.emit_and([na, b], stem + "_q")
        return self.emit_or([t1, t2], stem, out_name)

    def emit_xnor(self, a: str, b: str, stem: str = "xnor",
                  out_name: str | None = None) -> str:
        if "XNOR2" in self.netlist.library:
            name = out_name or self.netlist.fresh_name(stem)
            self.netlist.add_gate(name, "XNOR2", [a, b])
            return name
        inner = self.emit_xor(a, b, stem + "_x")
        if out_name is not None:
            self.netlist.add_gate(out_name, "INV", [inner])
            return out_name
        return self.emit_inv(inner, stem)

    def emit_nand(self, fanins: list[str], stem: str = "nand",
                  out_name: str | None = None) -> str:
        lib = self.netlist.library
        cell = f"NAND{len(fanins)}"
        if cell in lib:
            name = out_name or self.netlist.fresh_name(stem)
            self.netlist.add_gate(name, cell, fanins)
            return name
        inner = self.emit_and(fanins, stem + "_a")
        if out_name is not None:
            self.netlist.add_gate(out_name, "INV", [inner])
            return out_name
        return self.emit_inv(inner, stem)

    def emit_nor(self, fanins: list[str], stem: str = "nor",
                 out_name: str | None = None) -> str:
        lib = self.netlist.library
        cell = f"NOR{len(fanins)}"
        if cell in lib:
            name = out_name or self.netlist.fresh_name(stem)
            self.netlist.add_gate(name, cell, fanins)
            return name
        inner = self.emit_or(fanins, stem + "_o")
        if out_name is not None:
            self.netlist.add_gate(out_name, "INV", [inner])
            return out_name
        return self.emit_inv(inner, stem)

    # -- expression emission ----------------------------------------------
    def emit_expr(self, expr: Expr, fanin_signals: list[str],
                  stem: str, out_name: str | None = None) -> str:
        if isinstance(expr, ConstExpr):
            signal = self.emit_const(expr.value, stem)
            if out_name is not None:
                return self.emit_buf(signal, out_name)
            return signal
        if isinstance(expr, Lit):
            signal = fanin_signals[expr.index]
            if not expr.positive:
                signal = self.emit_inv(signal, stem)
            if out_name is not None:
                return self.emit_buf(signal, out_name)
            return signal
        terms = [self._emit_term(t, fanin_signals, stem) for t in expr.terms]
        op = "AND" if isinstance(expr, AndExpr) else "OR"
        return self.emit_tree(op, terms, stem, out_name)

    def _emit_term(self, expr: Expr, fanin_signals: list[str],
                   stem: str) -> str:
        if isinstance(expr, Lit):
            signal = fanin_signals[expr.index]
            return self.emit_inv(signal, stem) if not expr.positive \
                else signal
        if isinstance(expr, ConstExpr):
            return self.emit_const(expr.value, stem)
        terms = [self._emit_term(t, fanin_signals, stem) for t in expr.terms]
        op = "AND" if isinstance(expr, AndExpr) else "OR"
        return self.emit_tree(op, terms, stem)


def _inverted(op: str) -> str:
    return {"AND": "NAND", "OR": "NOR"}[op]


def _as_xor(cover: Cover) -> str | None:
    """Classify a 2-input cover as 'xor' / 'xnor', else None."""
    if cover.n != 2:
        return None
    table = tuple(cover.evaluate(m) for m in range(4))
    if table == (False, True, True, False):
        return "xor"
    if table == (True, False, False, True):
        return "xnor"
    return None


def technology_map(network: Network, library: GateLibrary,
                   options: MappingOptions | None = None) -> MappedNetlist:
    """Map a technology-independent network onto a gate library.

    Node output signals keep their network names; intermediate gates get
    derived names.  Primary outputs are registered under their logical
    names.
    """
    options = options or MappingOptions()
    netlist = MappedNetlist(network.name, library)
    for pi in network.inputs:
        netlist.add_input(pi)
    emitter = Emitter(netlist, options)
    signal_of: dict[str, str] = {pi: pi for pi in network.inputs}

    for name in network.topological_order():
        node = network.nodes[name]
        fanin_signals = [signal_of[f] for f in node.fanins]
        out_name = netlist.fresh_name(name)
        constant = node.constant_value()
        if constant is not None:
            signal_of[name] = emitter.emit_const(constant, out_name)
            continue
        if options.use_xor:
            kind = _as_xor(node.cover)
            if kind == "xor":
                signal_of[name] = emitter.emit_xor(
                    fanin_signals[0], fanin_signals[1],
                    stem=out_name + "_t", out_name=out_name)
                continue
            if kind == "xnor":
                signal_of[name] = emitter.emit_xnor(
                    fanin_signals[0], fanin_signals[1],
                    stem=out_name + "_t", out_name=out_name)
                continue
        expr = factor(node.cover)
        signal_of[name] = emitter.emit_expr(
            expr, fanin_signals, stem=out_name + "_t", out_name=out_name)

    for po in network.outputs:
        netlist.set_output(po, signal_of[po])
    if options.peephole:
        peephole_optimize(netlist)
    netlist.sweep()
    return netlist


def peephole_optimize(netlist: MappedNetlist) -> int:
    """Merge gate+INV pairs into inverting cells; drop dead gates.

    Returns the number of rewrites performed.
    """
    rewrites = 0
    merge_map = {"AND": "NAND", "OR": "NOR", "NAND": "AND", "NOR": "OR"}
    changed = True
    while changed:
        changed = False
        fanouts = netlist.fanouts()
        protected = set(netlist.output_signals())
        for name in list(netlist.gates):
            gate = netlist.gates.get(name)
            if gate is None or gate.cell.name != "INV":
                continue
            source = gate.fanins[0]
            src_gate = netlist.gates.get(source)
            if src_gate is None:
                continue
            base = src_gate.cell.name.rstrip("0123456789")
            width = src_gate.cell.name[len(base):]
            target = merge_map.get(base)
            if target is None or f"{target}{width}" not in netlist.library:
                continue
            if len(fanouts.get(source, ())) != 1 or source in protected:
                continue
            # Replace INV(g(x)) by the inverting/non-inverting dual.
            netlist.gates[name] = type(gate)(
                name, netlist.library.get(f"{target}{width}"),
                list(src_gate.fanins))
            del netlist.gates[source]
            netlist._topo_cache = None
            rewrites += 1
            changed = True
            break
    netlist.sweep()
    return rewrites
