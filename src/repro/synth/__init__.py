"""Technology-independent synthesis and technology mapping."""

from .library import (Gate, GateLibrary, LIBRARIES, LIB_GENERIC,
                      LIB_LOWPOWER, LIB_NAND_NOR)
from .netlist import MappedGate, MappedNetlist
from .factor import (AndExpr, ConstExpr, Expr, Lit, OrExpr, evaluate_expr,
                     factor, literal_count)
from .mapping import (Emitter, MappingOptions, peephole_optimize,
                      technology_map)
from .scripts import (QUICK_SCRIPT, SCRIPT_BALANCED, SCRIPT_CHAIN,
                      SCRIPT_ELIMINATE, SCRIPT_LOWPOWER, SCRIPT_NAND,
                      SynthesisScript, TABLE3_SCRIPTS, quick_map)

__all__ = [
    "AndExpr", "ConstExpr", "Emitter", "Expr", "Gate", "GateLibrary",
    "LIBRARIES", "LIB_GENERIC", "LIB_LOWPOWER", "LIB_NAND_NOR", "Lit",
    "MappedGate", "MappedNetlist", "MappingOptions", "OrExpr",
    "QUICK_SCRIPT", "SCRIPT_BALANCED", "SCRIPT_CHAIN", "SCRIPT_ELIMINATE",
    "SCRIPT_LOWPOWER", "SCRIPT_NAND", "SynthesisScript", "TABLE3_SCRIPTS",
    "evaluate_expr", "factor", "literal_count", "peephole_optimize",
    "quick_map", "technology_map",
]
