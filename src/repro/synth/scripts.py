"""Named synthesis scripts — distinct optimize-and-map flows.

Table 3 of the paper shows CED coverage across five different
technology-mapped implementations of each circuit, produced with
different ABC optimization scripts and libraries.  These five flows play
that role here: each combines a network-level optimization recipe, a
mapping style, and a gate library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.network import Network, cleanup, eliminate

from .library import (GateLibrary, LIB_GENERIC, LIB_LOWPOWER,
                      LIB_NAND_NOR)
from .mapping import MappingOptions, technology_map
from .netlist import MappedNetlist


@dataclass(frozen=True)
class SynthesisScript:
    """A named synthesis recipe: network transforms + mapping style."""

    name: str
    library: GateLibrary
    options: MappingOptions
    pre_transform: Callable[[Network], None] | None = None

    def run(self, network: Network) -> MappedNetlist:
        """Apply the script to a copy of ``network`` and map it."""
        work = network.copy()
        cleanup(work)
        if self.pre_transform is not None:
            self.pre_transform(work)
        return technology_map(work, self.library, self.options)


def _eliminate_small(network: Network) -> None:
    eliminate(network, max_support=6, max_cubes=12)
    cleanup(network)


SCRIPT_BALANCED = SynthesisScript(
    "balanced_generic", LIB_GENERIC,
    MappingOptions(balanced=True, prefer_wide=False, use_xor=True))

SCRIPT_CHAIN = SynthesisScript(
    "chain_generic", LIB_GENERIC,
    MappingOptions(balanced=False, prefer_wide=False, use_xor=True))

SCRIPT_NAND = SynthesisScript(
    "balanced_nand", LIB_NAND_NOR,
    MappingOptions(balanced=True, prefer_wide=False, use_xor=False))

SCRIPT_ELIMINATE = SynthesisScript(
    "eliminate_generic", LIB_GENERIC,
    MappingOptions(balanced=True, prefer_wide=True, use_xor=True),
    pre_transform=_eliminate_small)

SCRIPT_LOWPOWER = SynthesisScript(
    "wide_lowpower", LIB_LOWPOWER,
    MappingOptions(balanced=True, prefer_wide=True, use_xor=False))

TABLE3_SCRIPTS = [SCRIPT_BALANCED, SCRIPT_CHAIN, SCRIPT_NAND,
                  SCRIPT_ELIMINATE, SCRIPT_LOWPOWER]

# The flow used for "quick synthesis and mapping" before reliability
# analysis (paper Sec 3): cheap, deterministic, generic library.
QUICK_SCRIPT = SCRIPT_BALANCED


def quick_map(network: Network) -> MappedNetlist:
    """Quick synthesis pass used ahead of reliability analysis."""
    return QUICK_SCRIPT.run(network)
