"""Technology-mapped, gate-level netlists.

A :class:`MappedNetlist` is the post-mapping representation: every node
is an instance of a library :class:`~repro.synth.library.Gate`.  This is
the level at which the paper measures everything — area (gate count),
power (switching activity), delay (critical path), and fault injection
(single stuck-at faults at gate outputs).
"""

from __future__ import annotations

from repro.cubes import Cover

from repro.network import Network, NetworkError

from .library import Gate, GateLibrary


class MappedGate:
    """One gate instance: a named output signal driven by a library cell."""

    __slots__ = ("name", "cell", "fanins")

    def __init__(self, name: str, cell: Gate, fanins: list[str]):
        if len(fanins) != cell.num_inputs:
            raise ValueError(
                f"gate {name!r}: cell {cell.name} needs {cell.num_inputs} "
                f"inputs, got {len(fanins)}")
        self.name = name
        self.cell = cell
        self.fanins = list(fanins)

    def __repr__(self) -> str:
        return f"MappedGate({self.name!r} = {self.cell.name}{self.fanins})"


class MappedNetlist:
    """A gate-level circuit over a single library."""

    def __init__(self, name: str, library: GateLibrary):
        self.name = name
        self.library = library
        self.inputs: list[str] = []
        self.gates: dict[str, MappedGate] = {}
        # Logical output name -> driving signal name.
        self.po_signals: dict[str, str] = {}
        self.outputs: list[str] = []  # logical output names, ordered
        self._topo_cache: list[str] | None = None
        self._version: int = 0

    def _invalidate(self) -> None:
        self._topo_cache = None
        self._version += 1

    @property
    def version(self) -> int:
        """Monotonic mutation counter; bumps on every structural change."""
        return self._version

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        if self.signal_exists(name):
            raise NetworkError(f"signal {name!r} already defined")
        self.inputs.append(name)
        self._invalidate()
        return name

    def add_gate(self, name: str, cell: str, fanins: list[str]) -> str:
        if self.signal_exists(name):
            raise NetworkError(f"signal {name!r} already defined")
        for fanin in fanins:
            if not self.signal_exists(fanin):
                raise NetworkError(f"gate {name!r}: unknown fanin {fanin!r}")
        self.gates[name] = MappedGate(name, self.library.get(cell), fanins)
        self._invalidate()
        return name

    def fresh_name(self, stem: str) -> str:
        if not self.signal_exists(stem):
            return stem
        counter = 0
        while self.signal_exists(f"{stem}_{counter}"):
            counter += 1
        return f"{stem}_{counter}"

    def set_output(self, po_name: str, signal: str) -> None:
        if not self.signal_exists(signal):
            raise NetworkError(f"output {po_name!r}: unknown signal "
                               f"{signal!r}")
        if po_name not in self.po_signals:
            self.outputs.append(po_name)
        self.po_signals[po_name] = signal
        self._invalidate()

    def signal_exists(self, name: str) -> bool:
        return name in self.gates or name in self.inputs

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def output_signals(self) -> list[str]:
        return [self.po_signals[po] for po in self.outputs]

    def topological_order(self) -> list[str]:
        if self._topo_cache is not None:
            return list(self._topo_cache)
        inputs = set(self.inputs)
        pending: dict[str, int] = {}
        fanout: dict[str, list[str]] = {}
        ready: list[str] = []
        for name, gate in self.gates.items():
            internal = [f for f in gate.fanins if f not in inputs]
            pending[name] = len(internal)
            for fanin in internal:
                fanout.setdefault(fanin, []).append(name)
            if not internal:
                ready.append(name)
        order: list[str] = []
        while ready:
            name = ready.pop()
            order.append(name)
            for reader in fanout.get(name, ()):
                pending[reader] -= 1
                if pending[reader] == 0:
                    ready.append(reader)
        if len(order) != len(self.gates):
            raise NetworkError("cycle in mapped netlist")
        self._topo_cache = order
        return list(order)

    def fanouts(self) -> dict[str, list[str]]:
        result: dict[str, list[str]] = {s: [] for s in self.inputs}
        result.update({s: result.get(s, []) for s in self.gates})
        for gate in self.gates.values():
            for fanin in gate.fanins:
                result[fanin].append(gate.name)
        return result

    def transitive_fanout(self, signal: str) -> set[str]:
        """Gate names whose value can change when ``signal`` changes."""
        fanouts = self.fanouts()
        seen: set[str] = set()
        stack = list(fanouts.get(signal, ()))
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(fanouts.get(name, ()))
        return seen

    def sweep(self) -> int:
        """Drop gates that reach no output.  Returns the removal count."""
        live: set[str] = set()
        stack = [self.po_signals[po] for po in self.outputs]
        while stack:
            name = stack.pop()
            if name in live or name not in self.gates:
                continue
            live.add(name)
            stack.extend(self.gates[name].fanins)
        dead = [name for name in self.gates if name not in live]
        for name in dead:
            del self.gates[name]
        if dead:
            self._invalidate()
        return len(dead)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def gate_count(self) -> int:
        return len(self.gates)

    def area(self) -> float:
        """Library-weighted area (gate count is the paper's main metric)."""
        return sum(gate.cell.area for gate in self.gates.values())

    def arrival_times(self) -> dict[str, float]:
        times = {pi: 0.0 for pi in self.inputs}
        for name in self.topological_order():
            gate = self.gates[name]
            arrival = max((times[f] for f in gate.fanins), default=0.0)
            times[name] = arrival + gate.cell.delay
        return times

    def delay(self) -> float:
        if not self.outputs:
            return 0.0
        times = self.arrival_times()
        return max(times[self.po_signals[po]] for po in self.outputs)

    # ------------------------------------------------------------------
    # Evaluation / conversion
    # ------------------------------------------------------------------
    def evaluate(self, pi_values: dict[str, bool]) -> dict[str, bool]:
        values: dict[str, bool] = {pi: bool(pi_values[pi])
                                   for pi in self.inputs}
        for name in self.topological_order():
            gate = self.gates[name]
            values[name] = gate.cell.evaluate(
                tuple(values[f] for f in gate.fanins))
        return values

    def evaluate_outputs(self, pi_values: dict[str, bool]) -> dict[str, bool]:
        values = self.evaluate(pi_values)
        return {po: values[self.po_signals[po]] for po in self.outputs}

    def to_network(self) -> Network:
        """Convert to a technology-independent network (for BDD checks)."""
        net = Network(self.name)
        for pi in self.inputs:
            net.add_input(pi)
        for name in self.topological_order():
            gate = self.gates[name]
            net.add_node(name, list(gate.fanins), gate.cell.cover.copy())
        for po in self.outputs:
            signal = self.po_signals[po]
            if po != signal and not net.signal_exists(po):
                # Alias through a buffer so logical names survive.
                net.add_node(po, [signal], Cover.from_strings(["1"]))
                net.add_output(po)
            else:
                net.add_output(signal)
        return net

    def merge_from(self, other: "MappedNetlist", prefix: str,
                   binding: dict[str, str]) -> dict[str, str]:
        """Instantiate another mapped netlist inside this one.

        ``binding`` maps each input of ``other`` to a signal here.
        Returns the signal mapping (other name -> local name).  Outputs of
        ``other`` are not registered as outputs here; the caller wires
        them explicitly.
        """
        if other.library is not self.library:
            raise NetworkError("cannot merge netlists from different "
                               "libraries")
        mapping: dict[str, str] = {}
        for pi in other.inputs:
            if pi not in binding:
                raise NetworkError(f"merge_from: unbound input {pi!r}")
            if not self.signal_exists(binding[pi]):
                raise NetworkError(
                    f"merge_from: unknown binding target {binding[pi]!r}")
            mapping[pi] = binding[pi]
        for name in other.topological_order():
            gate = other.gates[name]
            local = self.fresh_name(prefix + name)
            self.add_gate(local, gate.cell.name,
                          [mapping[f] for f in gate.fanins])
            mapping[name] = local
        return mapping

    def __repr__(self) -> str:
        return (f"MappedNetlist({self.name!r}, lib={self.library.name!r}, "
                f"{len(self.inputs)} PIs, {len(self.gates)} gates, "
                f"{len(self.outputs)} POs)")
