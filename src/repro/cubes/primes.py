"""Prime implicant generation by iterated consensus.

Small-scale classical machinery: compute all prime implicants of a
cover (complete sum).  Used by tests to validate the heuristic
minimizer (every cube of a minimized cover without don't cares must be
a prime implicant) and available for exact minimization experiments on
node-sized functions.
"""

from __future__ import annotations

from .cover import Cover
from .cube import Cube


def prime_implicants(cover: Cover, max_iterations: int = 10_000) -> Cover:
    """All prime implicants of ``cover`` (the complete sum).

    Iterated consensus: repeatedly add consensus cubes and drop
    single-cube-contained ones until closure.  Exponential in the worst
    case — intended for node-local functions (a handful of variables).
    """
    cubes: list[Cube] = list(cover.sccc().cubes)
    iterations = 0
    changed = True
    while changed:
        changed = False
        for i in range(len(cubes)):
            for j in range(i + 1, len(cubes)):
                iterations += 1
                if iterations > max_iterations:
                    raise RuntimeError(
                        "prime implicant generation exceeded budget")
                consensus = cubes[i].consensus(cubes[j])
                if consensus is None:
                    continue
                if any(c.contains(consensus) for c in cubes):
                    continue
                cubes = [c for c in cubes if not consensus.contains(c)]
                cubes.append(consensus)
                changed = True
                break
            if changed:
                break
    return Cover(cover.n, cubes)


def is_prime(cube: Cube, cover: Cover) -> bool:
    """True iff ``cube`` is a prime implicant of ``cover``.

    The cube must be an implicant (contained in the function) and no
    single-literal expansion of it may remain one.
    """
    if not cover.covers_cube(cube):
        return False
    for var in range(cube.n):
        if not cube.has_literal(var):
            continue
        if cover.covers_cube(cube.without_literal(var)):
            return False
    return True


def essential_primes(cover: Cover) -> Cover:
    """Prime implicants covering some minterm no other prime covers."""
    primes = prime_implicants(cover)
    essential = []
    for i, prime in enumerate(primes.cubes):
        others = Cover(cover.n, primes.cubes[:i] + primes.cubes[i + 1:])
        # Essential iff some minterm of this prime escapes the others.
        if not others.covers_cube(prime):
            essential.append(prime)
    return Cover(cover.n, essential)
