"""Espresso-style heuristic two-level minimization.

Implements the classic EXPAND / IRREDUNDANT / REDUCE loop on
:class:`~repro.cubes.cover.Cover` objects, with an optional don't-care
cover.  Node SOPs in the multi-level network are small (the support is the
node's fanin list), so this straightforward formulation is fast enough and
keeps the algorithms auditable.

The minimizer is used when rebuilding node SOPs after cube selection and
when synthesizing checker / baseline logic.
"""

from __future__ import annotations

from .cover import Cover
from .cube import Cube


def expand(cover: Cover, dc: Cover | None = None) -> Cover:
    """Grow each cube maximally while staying inside ``cover | dc``.

    Expanding a cube (removing literals) can only add minterms, so the
    containment check is against the original function plus don't cares.
    Expanded cubes frequently swallow other cubes, which the final
    single-cube-containment pass removes.
    """
    bound = cover if dc is None else cover.union(dc)
    expanded: list[Cube] = []
    # Expand large cubes first: they are the most likely to swallow others.
    for cube in sorted(cover.cubes, key=lambda c: c.num_literals):
        current = cube
        for var in range(cover.n):
            if not current.has_literal(var):
                continue
            candidate = current.without_literal(var)
            if bound.covers_cube(candidate):
                current = candidate
        expanded.append(current)
    return Cover(cover.n, expanded).sccc()


def irredundant(cover: Cover, dc: Cover | None = None) -> Cover:
    """Drop cubes covered by the union of the other cubes plus don't cares."""
    cubes = list(cover.sccc().cubes)
    # Try to drop the largest cubes last: small cubes are more likely
    # redundant once large ones are present.
    cubes.sort(key=lambda c: -c.num_literals)
    changed = True
    while changed:
        changed = False
        for i, cube in enumerate(cubes):
            rest = Cover(cover.n, cubes[:i] + cubes[i + 1:])
            if dc is not None:
                rest = rest.union(dc)
            if rest.covers_cube(cube):
                del cubes[i]
                changed = True
                break
    return Cover(cover.n, cubes)


def reduce_cover(cover: Cover, dc: Cover | None = None) -> Cover:
    """Shrink each cube to the supercube of its essential minterms.

    The essential part of a cube is what the remaining cubes (plus don't
    cares) fail to cover; reducing unlocks better expansions on the next
    EXPAND pass.
    """
    current: list[Cube | None] = list(cover.cubes)
    for i, cube in enumerate(current):
        others = [c for j, c in enumerate(current) if j != i and c is not None]
        rest = Cover(cover.n, others)
        if dc is not None:
            rest = rest.union(dc)
        essential = Cover(cover.n, [cube]).sharp(rest)
        if essential.is_zero():
            current[i] = None  # fully covered elsewhere: drop
            continue
        shrunk = essential.cubes[0]
        for extra in essential.cubes[1:]:
            shrunk = shrunk.supercube(extra)
        current[i] = shrunk
    return Cover(cover.n, [c for c in current if c is not None])


def minimize(cover: Cover, dc: Cover | None = None,
             max_passes: int = 8, budget=None) -> Cover:
    """Heuristically minimize ``cover`` against optional don't cares.

    Runs EXPAND / IRREDUNDANT / REDUCE until the literal count stops
    improving (or ``max_passes`` is hit) and returns the best cover seen.
    The result is functionally equal to ``cover`` modulo the don't-care
    set.

    ``budget`` is an optional :class:`repro.guard.Budget`: when its
    deadline has passed, the loop stops between passes and returns the
    best (still functionally equal) cover found so far — minimization
    is an optimization, so truncating it degrades quality, never
    correctness.
    """
    if cover.is_zero():
        return cover.copy()
    if budget is not None and budget.expired:
        return cover.copy()
    best = irredundant(expand(cover, dc), dc)
    best_cost = _cost(best)
    current = best
    for _ in range(max_passes):
        if budget is not None and budget.expired:
            break
        current = reduce_cover(current, dc)
        current = irredundant(expand(current, dc), dc)
        cost = _cost(current)
        if cost < best_cost:
            best, best_cost = current, cost
        else:
            break
    return best


def _cost(cover: Cover) -> tuple[int, int]:
    """Minimization objective: cube count first, then literal count."""
    return (len(cover), cover.num_literals)
