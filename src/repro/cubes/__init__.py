"""Two-level logic: cubes, SOP covers, and heuristic minimization."""

from .cube import Cube
from .cover import Cover
from .minimize import expand, irredundant, minimize, reduce_cover
from .primes import essential_primes, is_prime, prime_implicants

__all__ = ["Cube", "Cover", "essential_primes", "expand", "irredundant",
           "is_prime", "minimize", "prime_implicants", "reduce_cover"]
