"""Cubes in positional notation over a fixed variable count.

A cube is a conjunction of literals over variables ``x0 .. x(n-1)``.  Each
variable appears either as a positive literal (the cube requires the
variable to be 1), a negative literal (requires 0), or not at all (don't
care).  Cubes are the atoms of two-level sum-of-products (SOP) covers and
of the cube-selection algorithms in the paper (Sec 2.1.2).

The representation uses two integer bitmasks, ``ones`` and ``zeros``:
bit ``i`` of ``ones`` is set when the cube contains the positive literal
``xi``; bit ``i`` of ``zeros`` when it contains the negative literal
``!xi``.  The masks are disjoint.  Integers-as-bitsets keep every cube
operation a handful of machine-word operations for n <= 63 while still
supporting arbitrary variable counts.
"""

from __future__ import annotations

from typing import Iterator


class Cube:
    """An immutable product term over ``n`` variables."""

    __slots__ = ("n", "ones", "zeros")

    def __init__(self, n: int, ones: int = 0, zeros: int = 0):
        if n < 0:
            raise ValueError("variable count must be non-negative")
        mask = (1 << n) - 1
        if ones & ~mask or zeros & ~mask:
            raise ValueError("literal mask references variables beyond n")
        if ones & zeros:
            raise ValueError("cube has contradictory literals (empty cube); "
                             "represent the empty function as an empty cover")
        object.__setattr__(self, "n", n)
        object.__setattr__(self, "ones", ones)
        object.__setattr__(self, "zeros", zeros)

    def __setattr__(self, name, value):
        raise AttributeError("Cube is immutable")

    def __reduce__(self):
        # Default pickling restores slots via __setattr__, which the
        # immutability guard blocks; rebuild through __init__ instead.
        return (Cube, (self.n, self.ones, self.zeros))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def full(cls, n: int) -> "Cube":
        """The universal cube (no literals, covers all 2^n minterms)."""
        return cls(n)

    @classmethod
    def from_string(cls, text: str) -> "Cube":
        """Parse positional notation, e.g. ``"1-0"`` = x0 & !x2."""
        ones = zeros = 0
        for i, ch in enumerate(text):
            if ch == "1":
                ones |= 1 << i
            elif ch == "0":
                zeros |= 1 << i
            elif ch != "-":
                raise ValueError(f"invalid cube character {ch!r}")
        return cls(len(text), ones, zeros)

    @classmethod
    def from_minterm(cls, n: int, minterm: int) -> "Cube":
        """The cube containing exactly one minterm (given as a bit vector)."""
        mask = (1 << n) - 1
        if minterm & ~mask:
            raise ValueError("minterm out of range")
        return cls(n, minterm, mask & ~minterm)

    def to_string(self) -> str:
        chars = []
        for i in range(self.n):
            bit = 1 << i
            if self.ones & bit:
                chars.append("1")
            elif self.zeros & bit:
                chars.append("0")
            else:
                chars.append("-")
        return "".join(chars)

    # ------------------------------------------------------------------
    # Literal access
    # ------------------------------------------------------------------
    def literal(self, var: int) -> str:
        """Return ``'1'``, ``'0'``, or ``'-'`` for variable ``var``."""
        bit = 1 << var
        if self.ones & bit:
            return "1"
        if self.zeros & bit:
            return "0"
        return "-"

    def has_literal(self, var: int) -> bool:
        return bool((self.ones | self.zeros) & (1 << var))

    @property
    def support(self) -> int:
        """Bitmask of variables that appear as literals."""
        return self.ones | self.zeros

    @property
    def num_literals(self) -> int:
        return (self.ones | self.zeros).bit_count()

    def minterm_count(self) -> int:
        """Number of minterms covered (2^(free variables))."""
        return 1 << (self.n - self.num_literals)

    # ------------------------------------------------------------------
    # Cube algebra
    # ------------------------------------------------------------------
    def contains(self, other: "Cube") -> bool:
        """True iff every minterm of ``other`` is in ``self``.

        Containment holds exactly when self's literals are a subset of
        other's literals.
        """
        return (self.ones & ~other.ones) == 0 and (self.zeros & ~other.zeros) == 0

    def intersects(self, other: "Cube") -> bool:
        """True iff the two cubes share at least one minterm."""
        return (self.ones & other.zeros) == 0 and (self.zeros & other.ones) == 0

    def intersection(self, other: "Cube") -> "Cube | None":
        """The cube of shared minterms, or None when disjoint."""
        if not self.intersects(other):
            return None
        return Cube(self.n, self.ones | other.ones, self.zeros | other.zeros)

    def distance(self, other: "Cube") -> int:
        """Number of variables on which the cubes conflict.

        Distance 0 means the cubes intersect; distance 1 cubes can be
        merged by the consensus operation.
        """
        return ((self.ones & other.zeros) | (self.zeros & other.ones)).bit_count()

    def supercube(self, other: "Cube") -> "Cube":
        """Smallest cube containing both cubes."""
        return Cube(self.n, self.ones & other.ones, self.zeros & other.zeros)

    def consensus(self, other: "Cube") -> "Cube | None":
        """The consensus cube when the cubes are at distance exactly 1."""
        conflict = (self.ones & other.zeros) | (self.zeros & other.ones)
        if conflict.bit_count() != 1:
            return None
        ones = (self.ones | other.ones) & ~conflict
        zeros = (self.zeros | other.zeros) & ~conflict
        return Cube(self.n, ones, zeros)

    def without_literal(self, var: int) -> "Cube":
        """Copy with the literal on ``var`` removed (cube expansion)."""
        bit = 1 << var
        return Cube(self.n, self.ones & ~bit, self.zeros & ~bit)

    def with_literal(self, var: int, value: int) -> "Cube":
        """Copy with variable ``var`` forced to ``value`` (0 or 1)."""
        bit = 1 << var
        if value:
            if self.zeros & bit:
                raise ValueError("contradictory literal")
            return Cube(self.n, self.ones | bit, self.zeros & ~bit)
        if self.ones & bit:
            raise ValueError("contradictory literal")
        return Cube(self.n, self.ones & ~bit, self.zeros | bit)

    def cofactor(self, var: int, value: int) -> "Cube | None":
        """Shannon cofactor with respect to ``var = value``.

        Returns None when the cube vanishes under the assignment.
        """
        bit = 1 << var
        if value:
            if self.zeros & bit:
                return None
            return Cube(self.n, self.ones & ~bit, self.zeros)
        if self.ones & bit:
            return None
        return Cube(self.n, self.ones, self.zeros & ~bit)

    def cofactor_cube(self, other: "Cube") -> "Cube | None":
        """Cofactor of this cube with respect to another cube.

        The result is this cube with all literals on ``other``'s support
        removed, or None when the cubes do not intersect.
        """
        if not self.intersects(other):
            return None
        keep = ~(other.ones | other.zeros)
        return Cube(self.n, self.ones & keep, self.zeros & keep)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, assignment: int) -> bool:
        """Evaluate on a complete assignment given as a bit vector."""
        return (self.ones & ~assignment) == 0 and (self.zeros & assignment) == 0

    def iter_minterms(self) -> Iterator[int]:
        """Yield every minterm (as a bit vector).  Exponential in free vars."""
        free = [i for i in range(self.n) if not self.has_literal(i)]
        base = self.ones
        for combo in range(1 << len(free)):
            value = base
            for j, var in enumerate(free):
                if combo >> j & 1:
                    value |= 1 << var
            yield value

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, Cube):
            return NotImplemented
        return (self.n, self.ones, self.zeros) == (other.n, other.ones, other.zeros)

    def __hash__(self) -> int:
        return hash((self.n, self.ones, self.zeros))

    def __repr__(self) -> str:
        return f"Cube({self.to_string()!r})"
