"""Sum-of-products covers and the classic two-level operations.

A :class:`Cover` is a set of :class:`~repro.cubes.cube.Cube` objects over a
shared variable count, interpreted as the disjunction (OR) of its cubes.
Covers are the local Boolean functions attached to nodes of the multi-level
network (paper Sec 2.1): every node SOP, in either phase, is a ``Cover``.

The recursive algorithms (tautology, complement, cofactor containment)
follow the unate-recursive paradigm of espresso; sizes encountered here are
node-local (a handful of fanins), so clarity is preferred over the full
suite of espresso speedups.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from .cube import Cube


class Cover:
    """An SOP formula: the OR of a list of cubes over ``n`` variables."""

    __slots__ = ("n", "cubes")

    def __init__(self, n: int, cubes: Iterable[Cube] = ()):
        self.n = n
        self.cubes: list[Cube] = []
        for cube in cubes:
            if cube.n != n:
                raise ValueError("cube variable count mismatch")
            self.cubes.append(cube)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, n: int) -> "Cover":
        """The constant-0 function (empty cover)."""
        return cls(n)

    @classmethod
    def one(cls, n: int) -> "Cover":
        """The constant-1 function (single universal cube)."""
        return cls(n, [Cube.full(n)])

    @classmethod
    def from_strings(cls, rows: Sequence[str]) -> "Cover":
        """Build from positional-notation rows, e.g. ``["1-0", "-11"]``."""
        if not rows:
            raise ValueError("cannot infer variable count from empty rows; "
                             "use Cover.zero(n)")
        n = len(rows[0])
        return cls(n, [Cube.from_string(row) for row in rows])

    @classmethod
    def literal(cls, n: int, var: int, value: int) -> "Cover":
        """The single-literal function ``xvar`` (value=1) or ``!xvar``."""
        return cls(n, [Cube.full(n).with_literal(var, value)])

    def copy(self) -> "Cover":
        return Cover(self.n, list(self.cubes))

    def to_strings(self) -> list[str]:
        return [cube.to_string() for cube in self.cubes]

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self) -> Iterator[Cube]:
        return iter(self.cubes)

    def __repr__(self) -> str:
        return f"Cover(n={self.n}, cubes={self.to_strings()})"

    def __eq__(self, other) -> bool:
        """Semantic (functional) equality."""
        if not isinstance(other, Cover):
            return NotImplemented
        return self.implies(other) and other.implies(self)

    def __hash__(self):
        raise TypeError("Cover equality is semantic; covers are unhashable")

    @property
    def support(self) -> int:
        """Bitmask of variables appearing in at least one cube."""
        mask = 0
        for cube in self.cubes:
            mask |= cube.support
        return mask

    @property
    def num_literals(self) -> int:
        return sum(cube.num_literals for cube in self.cubes)

    def is_zero(self) -> bool:
        return not self.cubes

    def evaluate(self, assignment: int) -> bool:
        return any(cube.evaluate(assignment) for cube in self.cubes)

    # ------------------------------------------------------------------
    # Cofactors
    # ------------------------------------------------------------------
    def cofactor(self, var: int, value: int) -> "Cover":
        cubes = []
        for cube in self.cubes:
            cf = cube.cofactor(var, value)
            if cf is not None:
                cubes.append(cf)
        return Cover(self.n, cubes)

    def cofactor_cube(self, cube: Cube) -> "Cover":
        cubes = []
        for own in self.cubes:
            cf = own.cofactor_cube(cube)
            if cf is not None:
                cubes.append(cf)
        return Cover(self.n, cubes)

    # ------------------------------------------------------------------
    # Tautology and containment (unate-recursive)
    # ------------------------------------------------------------------
    def is_tautology(self) -> bool:
        """True iff the cover evaluates to 1 on every assignment."""
        return _tautology(self.cubes, self.n)

    def covers_cube(self, cube: Cube) -> bool:
        """True iff every minterm of ``cube`` satisfies the cover.

        Classic cofactor test: F covers c iff F cofactored by c is a
        tautology.
        """
        return self.cofactor_cube(cube).is_tautology()

    def implies(self, other: "Cover") -> bool:
        """True iff self => other (each of self's cubes is covered)."""
        return all(other.covers_cube(cube) for cube in self.cubes)

    def covers_minterm(self, minterm: int) -> bool:
        return self.evaluate(minterm)

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------
    def union(self, other: "Cover") -> "Cover":
        if other.n != self.n:
            raise ValueError("variable count mismatch")
        return Cover(self.n, self.cubes + other.cubes)

    def intersection(self, other: "Cover") -> "Cover":
        if other.n != self.n:
            raise ValueError("variable count mismatch")
        cubes = []
        for a in self.cubes:
            for b in other.cubes:
                c = a.intersection(b)
                if c is not None:
                    cubes.append(c)
        return Cover(self.n, cubes).sccc()

    def complement(self) -> "Cover":
        """The complement of the cover, as a cover."""
        return Cover(self.n, _complement(self.cubes, self.n))

    def sharp(self, other: "Cover") -> "Cover":
        """Set difference: minterms in self but not in other."""
        return self.intersection(other.complement())

    # ------------------------------------------------------------------
    # Cleanup / canonicalization helpers
    # ------------------------------------------------------------------
    def sccc(self) -> "Cover":
        """Single-cube containment: drop cubes contained in another cube."""
        kept: list[Cube] = []
        # Larger cubes (fewer literals) first so contained cubes drop out.
        for cube in sorted(set(self.cubes), key=lambda c: c.num_literals):
            if not any(prev.contains(cube) for prev in kept):
                kept.append(cube)
        return Cover(self.n, kept)

    def irredundant(self) -> "Cover":
        """Drop cubes covered by the union of the remaining cubes."""
        cubes = list(self.sccc().cubes)
        changed = True
        while changed:
            changed = False
            for i, cube in enumerate(cubes):
                rest = Cover(self.n, cubes[:i] + cubes[i + 1:])
                if rest.covers_cube(cube):
                    del cubes[i]
                    changed = True
                    break
        return Cover(self.n, cubes)

    def disjoint(self) -> "Cover":
        """An equivalent cover whose cubes are pairwise disjoint."""
        result: list[Cube] = []
        for cube in self.cubes:
            pending = [cube]
            for placed in result:
                next_pending: list[Cube] = []
                for piece in pending:
                    if piece.intersects(placed):
                        next_pending.extend(_cube_sharp(piece, placed))
                    else:
                        next_pending.append(piece)
                pending = next_pending
                if not pending:
                    break
            result.extend(pending)
        return Cover(self.n, result)

    # ------------------------------------------------------------------
    # Counting
    # ------------------------------------------------------------------
    def count_minterms(self) -> int:
        """Exact number of satisfying assignments."""
        return sum(cube.minterm_count() for cube in self.disjoint().cubes)

    def probability(self, var_probs: Sequence[float] | None = None) -> float:
        """Probability the cover is 1 under independent input probabilities.

        ``var_probs[i]`` is P(xi = 1); defaults to 0.5 for every variable
        (the paper's equally-likely-inputs assumption).
        """
        if var_probs is None:
            return self.count_minterms() / (1 << self.n) if self.n else (
                1.0 if self.cubes else 0.0)
        total = 0.0
        for cube in self.disjoint().cubes:
            p = 1.0
            for i in range(self.n):
                bit = 1 << i
                if cube.ones & bit:
                    p *= var_probs[i]
                elif cube.zeros & bit:
                    p *= 1.0 - var_probs[i]
            total += p
        return total

    def iter_minterms(self) -> Iterator[int]:
        for cube in self.disjoint().cubes:
            yield from cube.iter_minterms()


# ----------------------------------------------------------------------
# Recursive workers
# ----------------------------------------------------------------------
def _tautology(cubes: list[Cube], n: int) -> bool:
    if any(cube.num_literals == 0 for cube in cubes):
        return True
    if not cubes:
        return False
    # Unate reduction: a variable appearing in only one polarity cannot
    # make the cover a tautology by itself; if the cover is unate, it is a
    # tautology iff it contains the universal cube (checked above).
    var = _most_binate_var(cubes)
    if var is None:
        return False
    pos = [cf for cf in (c.cofactor(var, 1) for c in cubes) if cf is not None]
    neg = [cf for cf in (c.cofactor(var, 0) for c in cubes) if cf is not None]
    return _tautology(pos, n) and _tautology(neg, n)


def _most_binate_var(cubes: list[Cube]) -> int | None:
    """Variable appearing in both polarities, maximizing min(#pos, #neg).

    Returns None when the cover is unate (no binate variable).
    """
    ones_count: dict[int, int] = {}
    zeros_count: dict[int, int] = {}
    support = 0
    for cube in cubes:
        support |= cube.support
        mask = cube.ones
        while mask:
            bit = mask & -mask
            ones_count[bit] = ones_count.get(bit, 0) + 1
            mask ^= bit
        mask = cube.zeros
        while mask:
            bit = mask & -mask
            zeros_count[bit] = zeros_count.get(bit, 0) + 1
            mask ^= bit
    best_bit = None
    best_score = -1
    mask = support
    while mask:
        bit = mask & -mask
        mask ^= bit
        p, q = ones_count.get(bit, 0), zeros_count.get(bit, 0)
        if p and q and min(p, q) > best_score:
            best_score = min(p, q)
            best_bit = bit
    return best_bit.bit_length() - 1 if best_bit is not None else None


def _complement(cubes: list[Cube], n: int) -> list[Cube]:
    if not cubes:
        return [Cube.full(n)]
    if any(cube.num_literals == 0 for cube in cubes):
        return []
    if len(cubes) == 1:
        return _complement_single(cubes[0])
    var = _most_binate_var(cubes)
    if var is None:
        # Unate cover: pick any support variable to keep recursing; the
        # split still terminates because literals disappear in cofactors.
        support = 0
        for cube in cubes:
            support |= cube.support
        var = (support & -support).bit_length() - 1
    pos = [cf for cf in (c.cofactor(var, 1) for c in cubes) if cf is not None]
    neg = [cf for cf in (c.cofactor(var, 0) for c in cubes) if cf is not None]
    result = []
    for piece in _complement(pos, n):
        result.append(piece.with_literal(var, 1))
    for piece in _complement(neg, n):
        result.append(piece.with_literal(var, 0))
    return _merge_complement_halves(result, var)


def _merge_complement_halves(cubes: list[Cube], var: int) -> list[Cube]:
    """Merge pairs differing only in the split literal (simple lifting)."""
    by_body: dict[tuple[int, int, str], list[Cube]] = {}
    bit = 1 << var
    merged: list[Cube] = []
    for cube in cubes:
        key = (cube.ones & ~bit, cube.zeros & ~bit, "")
        by_body.setdefault(key, []).append(cube)
    for group in by_body.values():
        polarities = {cube.literal(var) for cube in group}
        if "1" in polarities and "0" in polarities:
            merged.append(group[0].without_literal(var))
        else:
            merged.extend(group)
    return merged


def _complement_single(cube: Cube) -> list[Cube]:
    """DeMorgan on a single cube: one result cube per literal."""
    result = []
    for var in range(cube.n):
        lit = cube.literal(var)
        if lit == "1":
            result.append(Cube.full(cube.n).with_literal(var, 0))
        elif lit == "0":
            result.append(Cube.full(cube.n).with_literal(var, 1))
    return result


def _cube_sharp(a: Cube, b: Cube) -> list[Cube]:
    """Disjoint sharp: minterms of ``a`` not in ``b``, as disjoint cubes."""
    if not a.intersects(b):
        return [a]
    pieces = []
    current = a
    for var in range(a.n):
        b_lit = b.literal(var)
        if b_lit == "-":
            continue
        a_lit = current.literal(var)
        if a_lit != "-":
            continue  # a already agrees (they intersect) on this variable
        opposite = 0 if b_lit == "1" else 1
        pieces.append(current.with_literal(var, opposite))
        current = current.with_literal(var, 1 - opposite)
    # ``current`` is now contained in b: dropped.
    return pieces
