"""Pass-manager flow architecture.

The generic backbone the CED pipeline (and future workloads) runs on:

* :class:`AnalysisContext` — mutation-version-keyed memo of expensive
  analyses (global BDDs, simulator tapes, probabilities, switching);
* :class:`Pass` / :class:`PassManager` / :class:`FlowContext` — named
  passes with declared dependencies, per-pass instrumentation, and
  content-addressed checkpoints for mid-pipeline resume;
* :class:`FlowTrace` / :func:`validate_trace` — the structured trace
  carried by results, CLI output, and lab run manifests.

The concrete CED passes live in :mod:`repro.ced.flow`; this package
deliberately knows nothing about them (no import cycles).
"""

from .analysis import CACHE_KINDS, AnalysisContext
from .passes import (CHECKPOINT_SCHEMA, FlowContext, FlowError, Pass,
                     PassManager, flow_token, pass_fingerprint)
from .trace import (PASS_STATUSES, TRACE_SCHEMA, FlowTrace, PassRecord,
                    validate_trace)

__all__ = [
    "AnalysisContext", "CACHE_KINDS", "CHECKPOINT_SCHEMA",
    "FlowContext", "FlowError", "FlowTrace", "Pass", "PassManager",
    "PassRecord", "PASS_STATUSES", "TRACE_SCHEMA", "flow_token",
    "pass_fingerprint", "validate_trace",
]
